#!/usr/bin/env python3
"""Repair-shop analysis: should returned drives be trusted?

The paper ends by announcing work on drive behaviour "directly following
re-entry".  This example runs that analysis (``repro.analysis.reentry``)
and frames the operational question: a repaired drive that re-enters the
field fails again at an elevated rate — is accepting it back worth it?

The Kaplan-Meier curves handle the right-censoring properly (most periods
never end inside the trace window), which the paper's raw CDFs could not.

Run:  python examples/repair_shop_analysis.py
"""

from __future__ import annotations

from repro.analysis import analyze_reentry, figure5
from repro.simulator import FleetConfig, simulate_fleet


def main() -> None:
    print("Simulating a six-year fleet ...")
    trace = simulate_fleet(
        FleetConfig(
            n_drives_per_model=500,
            horizon_days=2190,
            deploy_spread_days=1400,
            seed=11,
        )
    )
    print(" ", trace.summary())

    print("\n=== The repair pipeline (Figure 5) ===")
    print(figure5(trace).render())

    print("\n=== Post-re-entry behaviour (paper future work) ===")
    res = analyze_reentry(trace)
    print(res.render())

    first_1y = res.first_km.cdf(365.0)
    re_1y = res.reentry_km.cdf(365.0)
    ratio = re_1y / max(first_1y, 1e-9)
    print(
        f"\nA returned drive is ~{ratio:.1f}x more likely to fail within a"
        "\nyear than a fresh one.  Whether re-entry is worth it depends on"
        "\nthe spare-drive cost versus that elevated risk — the same"
        "\ncost trade-off examples/cost_aware_thresholds.py quantifies for"
        "\nalerting."
    )


if __name__ == "__main__":
    main()
