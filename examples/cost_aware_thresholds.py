#!/usr/bin/env python3
"""Cost-aware alerting: pick the operating threshold like an operator would.

Section 5.3 of the paper argues for conservative thresholds because false
positives cost real money.  How conservative is a business decision: it
depends on the ratio between the cost of a missed failure (data loss,
emergency migration, downtime) and the cost of a needless replacement (a
spare drive plus a technician visit).  This example:

1. cross-validates the forest to obtain honest out-of-fold scores;
2. sweeps several miss/false-alarm cost ratios and picks the
   cost-minimizing threshold for each (`repro.core.select_threshold`);
3. lifts each chosen operating point into a fleet policy
   (`ThresholdPolicy.from_choice`) and prices it on an unseen fleet with
   `repro.fleet.run_whatif` — closing the loop from validation-set
   threshold selection to fleet-level cost accounting.

Run:  python examples/cost_aware_thresholds.py
"""

from __future__ import annotations

from repro.core import (
    FailurePredictor,
    build_prediction_dataset,
    default_model_zoo,
    evaluate_model,
    select_threshold,
)
from repro.fleet import ActionCosts, ThresholdPolicy, run_whatif
from repro.simulator import FleetConfig, simulate_fleet

COST_RATIOS = (5.0, 50.0, 500.0)  # missed-failure cost / false-alarm cost
LOOKAHEAD = 3


def simulate(seed: int):
    return simulate_fleet(
        FleetConfig(
            n_drives_per_model=150,
            horizon_days=1095,
            deploy_spread_days=500,
            seed=seed,
        )
    )


def main() -> None:
    print("Simulating fleet ...")
    trace = simulate(seed=99)
    print(" ", trace.summary())

    print(f"\nCross-validating the forest (N = {LOOKAHEAD} days) for honest scores ...")
    dataset = build_prediction_dataset(trace, lookahead=LOOKAHEAD)
    spec = default_model_zoo(seed=0)[-1]
    result = evaluate_model(dataset, spec, n_splits=4, seed=0)
    print(f"  out-of-fold AUC: {result.mean_auc:.3f} ± {result.std_auc:.3f}")

    print("\nCost-minimizing thresholds per cost ratio:")
    print(f"  {'miss:false':>12s} {'threshold':>10s} {'TPR':>6s} {'FPR':>9s}")
    choices = []
    for ratio in COST_RATIOS:
        choice = select_threshold(
            result.oof_true,
            result.oof_score,
            miss_cost=ratio,
            false_alarm_cost=1.0,
        )
        choices.append((ratio, choice))
        print(
            f"  {ratio:>10.0f}:1 {choice.threshold:>10.3f} "
            f"{choice.tpr:>6.2f} {choice.fpr:>9.5f}"
        )

    print("\nWith a hard FPR budget of 0.1% (replacement quota):")
    budgeted = select_threshold(
        result.oof_true,
        result.oof_score,
        miss_cost=500.0,
        false_alarm_cost=1.0,
        max_fpr=0.001,
    )
    print(f"  {budgeted}")

    # --- Close the loop: lift each operating point into a fleet policy
    # and price it on a fleet the threshold was not selected on.
    print("\nPricing each operating point on an unseen fleet (what-if replay):")
    field = simulate(seed=77)
    predictor = FailurePredictor(lookahead=LOOKAHEAD, seed=0).fit(trace)
    probs = predictor.predict_proba_records(field.records)

    header = (
        f"  {'miss:false':>12s} {'replace_at':>11s} {'caught':>7s} "
        f"{'missed':>7s} {'false':>6s} {'cost':>9s} {'savings':>9s}"
    )
    print(header)
    for ratio, choice in choices:
        # Price the fleet in the same units the threshold was chosen in:
        # one false alarm = one replacement, a miss costs `ratio` of that.
        policy = ThresholdPolicy.from_choice(
            choice,
            costs=ActionCosts(replace=1.0, quarantine=0.2, miss=ratio),
        )
        report, _ = run_whatif(field, policy, probs=probs)
        print(
            f"  {ratio:>10.0f}:1 {policy.replace_at:>11.3f} "
            f"{report.caught:>7d} {report.missed:>7d} "
            f"{report.false_replacements:>6d} {report.total_cost:>9.1f} "
            f"{report.savings:>9.1f}"
        )

    print(
        "\nReading: cheap spares push the threshold down (catch everything);"
        "\nexpensive field service pushes it toward the paper's conservative"
        "\nalpha ~ 0.9+ regime.  The what-if rows show the same economics at"
        "\nfleet granularity, priced by the audit-journaled decision loop."
    )


if __name__ == "__main__":
    main()
