#!/usr/bin/env python3
"""Cost-aware alerting: pick the operating threshold like an operator would.

Section 5.3 of the paper argues for conservative thresholds because false
positives cost real money.  How conservative is a business decision: it
depends on the ratio between the cost of a missed failure (data loss,
emergency migration, downtime) and the cost of a needless replacement (a
spare drive plus a technician visit).  This example:

1. cross-validates the forest to obtain honest out-of-fold scores;
2. sweeps several miss/false-alarm cost ratios and picks the
   cost-minimizing threshold for each (`repro.core.select_threshold`);
3. shows the same choice under a hard false-positive-rate budget.

Run:  python examples/cost_aware_thresholds.py
"""

from __future__ import annotations

from repro.core import (
    build_prediction_dataset,
    default_model_zoo,
    evaluate_model,
    select_threshold,
)
from repro.simulator import FleetConfig, simulate_fleet

COST_RATIOS = (5.0, 50.0, 500.0)  # missed-failure cost / false-alarm cost


def main() -> None:
    print("Simulating fleet ...")
    trace = simulate_fleet(
        FleetConfig(
            n_drives_per_model=300,
            horizon_days=1460,
            deploy_spread_days=700,
            seed=99,
        )
    )
    print(" ", trace.summary())

    print("\nCross-validating the forest (N = 3 days) for honest scores ...")
    dataset = build_prediction_dataset(trace, lookahead=3)
    spec = default_model_zoo(seed=0)[-1]
    result = evaluate_model(dataset, spec, n_splits=4, seed=0)
    print(f"  out-of-fold AUC: {result.mean_auc:.3f} ± {result.std_auc:.3f}")

    print("\nCost-minimizing thresholds per cost ratio:")
    print(f"  {'miss:false':>12s} {'threshold':>10s} {'TPR':>6s} {'FPR':>9s}")
    for ratio in COST_RATIOS:
        choice = select_threshold(
            result.oof_true,
            result.oof_score,
            miss_cost=ratio,
            false_alarm_cost=1.0,
        )
        print(
            f"  {ratio:>10.0f}:1 {choice.threshold:>10.3f} "
            f"{choice.tpr:>6.2f} {choice.fpr:>9.5f}"
        )

    print("\nWith a hard FPR budget of 0.1% (replacement quota):")
    choice = select_threshold(
        result.oof_true,
        result.oof_score,
        miss_cost=500.0,
        false_alarm_cost=1.0,
        max_fpr=0.001,
    )
    print(f"  {choice}")

    print(
        "\nReading: cheap spares push the threshold down (catch everything);"
        "\nexpensive field service pushes it toward the paper's conservative"
        "\nalpha ~ 0.9+ regime."
    )


if __name__ == "__main__":
    main()
