#!/usr/bin/env python3
"""Fleet reliability report: the paper's characterization study in one run.

Generates the full Section 2-4 characterization of a simulated fleet — the
same analyses a reliability engineer would run on real telemetry:

- error-type incidence per drive model (Table 1);
- failure incidence and repeat-failure distribution (Tables 3-4);
- the swap -> repair -> re-entry pipeline (Table 5, Figures 4-5);
- infant mortality and the age/wear (non-)relationship (Figures 6, 8);
- error visibility of failed vs healthy drives (Figure 10).

Run:  python examples/fleet_reliability_report.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    figure4,
    figure5,
    figure6,
    figure8,
    figure10,
    table1,
    table3,
    table4,
    table5,
)
from repro.simulator import FleetConfig, simulate_fleet


def main() -> None:
    config = FleetConfig(
        n_drives_per_model=400,
        horizon_days=2190,  # the paper's six-year window
        deploy_spread_days=1400,
        seed=42,
    )
    print("Simulating six-year fleet ...")
    trace = simulate_fleet(config)
    print(" ", trace.summary())

    print("\n=== Error incidence (Table 1) ===")
    print(table1(trace).render())

    print("\n=== Failure incidence (Table 3) ===")
    print(table3(trace).render())

    print("\n=== Repeat failures (Table 4) ===")
    print(table4(trace).render())

    print("\n=== Repair pipeline (Table 5) ===")
    print(table5(trace).render())

    print("\n=== Swap latency (Figure 4) ===")
    print(figure4(trace).render())

    print("\n=== Repair duration (Figure 5) ===")
    print(figure5(trace).render())

    print("\n=== Infant mortality (Figure 6) ===")
    f6 = figure6(trace)
    print(f6.render())
    rate = f6.monthly_rate
    print("  monthly failure rate, first year:", np.round(rate[:12], 4).tolist())

    print("\n=== Wear at failure (Figure 8) ===")
    print(figure8(trace).render())

    print("\n=== Error visibility of failed drives (Figure 10) ===")
    print(figure10(trace).render())

    print(
        "\nHeadline: failures cluster in the first 90 days, strike far below"
        "\nthe P/E endurance limit, and a large share of failed drives never"
        "\nshowed a single uncorrectable error — exactly the paper's story."
    )


if __name__ == "__main__":
    main()
