#!/usr/bin/env python3
"""Age-aware modelling: reproduce the Section 5.3 improvement end to end.

The paper's most actionable modelling insight is that infant (< 90 days)
and mature drive failures are different phenomena: they differ in
predictability AND in which telemetry features carry the signal.  This
example demonstrates all three findings on one fleet:

1. a pooled model is much better on young inputs than old ones (Fig 15);
2. training separate young/old models improves both (0.970/0.890 in the
   paper);
3. the two models rank features completely differently (Fig 16): age and
   non-transparent errors for infants, wear-and-tear for mature drives.

Run:  python examples/age_aware_models.py
"""

from __future__ import annotations

from repro.analysis import figure15, figure16
from repro.core import INFANCY_DAYS
from repro.simulator import FleetConfig, simulate_fleet


def main() -> None:
    print("Simulating fleet ...")
    trace = simulate_fleet(
        FleetConfig(
            n_drives_per_model=400,
            horizon_days=1460,
            deploy_spread_days=900,
            seed=31,
        )
    )
    print(" ", trace.summary())
    print(f"\nInfancy boundary: {INFANCY_DAYS} days (paper Section 4.1)")

    print("\n[1+2] Predictability by age group (Figure 15 / Section 5.3) ...")
    f15 = figure15(trace, n_splits=4, seed=0)
    print("  pooled model, scored per age group:")
    for grp, auc in f15.pooled_auc.items():
        print(f"    {grp:<6s} AUC = {auc:.3f}")
    print("  separately trained models:")
    for grp, (mean, std) in f15.partitioned_auc.items():
        print(f"    {grp:<6s} AUC = {mean:.3f} ± {std:.3f}")

    print("\n[3] What each model looks at (Figure 16) ...")
    f16 = figure16(trace, seed=0)
    print(f16.render(k=10))

    young_rank = [n for n, _ in f16.young.top(10)]
    print(
        "\nReading: 'drive_age' ranks "
        f"#{young_rank.index('drive_age') + 1 if 'drive_age' in young_rank else '>10'}"
        " for infant failures; the mature model leans on workload and"
        " correctable-error-rate counters instead — train one model per age"
        " regime when deploying this in production."
    )


if __name__ == "__main__":
    main()
