#!/usr/bin/env python3
"""Proactive replacement: turn predictions into an operating policy.

The paper's motivation for prediction (Section 5) is operational: if a
failure can be flagged a few days ahead, the operator can migrate data and
stage a spare instead of losing the drive cold.  This example prices that
benefit with the real decision subsystem (:mod:`repro.fleet`):

1. train the predictor on one simulated fleet;
2. replay several candidate policies against a *second*, unseen fleet via
   ``repro.fleet.run_whatif`` — threshold policies at three operating
   points plus a spares-budgeted top-k policy;
3. compare the what-if reports: failures caught vs missed, spares burned
   on healthy drives, days of exposure left on the table, and the net
   savings against the do-nothing baseline.

Every replay is byte-deterministic: the same trace and policy always
produce the same audit journal, so the numbers below are exactly the
numbers ``repro fleet whatif`` would print.

Run:  python examples/proactive_replacement.py
"""

from __future__ import annotations

from repro.core import FailurePredictor
from repro.fleet import ThresholdPolicy, TopKPolicy, run_whatif
from repro.simulator import FleetConfig, simulate_fleet

LOOKAHEAD = 7  # days of warning we ask the model for


def simulate(seed: int):
    return simulate_fleet(
        FleetConfig(
            n_drives_per_model=150,
            horizon_days=1095,
            deploy_spread_days=500,
            seed=seed,
        )
    )


def main() -> None:
    print("Simulating training fleet ...")
    train = simulate(seed=123)
    print(" ", train.summary())
    print("Simulating field fleet (unseen by the model) ...")
    field = simulate(seed=321)
    print(" ", field.summary())

    print(f"\nTraining predictor (lookahead = {LOOKAHEAD} days) ...")
    predictor = FailurePredictor(lookahead=LOOKAHEAD, seed=0).fit(train)

    # Score the field fleet once; every policy replays the same scores.
    probs = predictor.predict_proba_records(field.records)

    policies = [
        ("threshold 0.80", ThresholdPolicy(replace_at=0.80)),
        ("threshold 0.90", ThresholdPolicy(replace_at=0.90)),
        ("threshold 0.97", ThresholdPolicy(replace_at=0.97)),
        (
            "top-4 / 30d",
            TopKPolicy(budget=4, window_days=30, min_risk=0.5),
        ),
    ]

    print("\nWhat-if replay of each policy over the field fleet:")
    header = (
        f"{'policy':>15s} {'caught':>7s} {'missed':>7s} {'false':>6s} "
        f"{'spares':>7s} {'at-risk d':>10s} {'cost':>9s} {'savings':>9s}"
    )
    print(header)
    best = None
    for name, policy in policies:
        report, _ = run_whatif(field, policy, probs=probs)
        print(
            f"{name:>15s} {report.caught:>7d} {report.missed:>7d} "
            f"{report.false_replacements:>6d} {report.spares_used:>7d} "
            f"{report.drive_days_at_risk:>10d} {report.total_cost:>9.0f} "
            f"{report.savings:>9.0f}"
        )
        if best is None or report.savings > best[1].savings:
            best = (name, report)

    assert best is not None
    print(
        f"\nBest policy by savings: {best[0]} "
        f"(caught {best[1].caught}/{best[1].n_failures} failures, "
        f"saved {best[1].savings:.0f} vs doing nothing)."
    )
    print(
        "\nReading: raising the threshold trades missed failures for fewer"
        "\nunnecessary replacements — the paper's argument for conservative"
        "\nthresholds in production (Section 5.3).  The budgeted top-k"
        "\npolicy shows the same trade under a hard spares quota."
    )


if __name__ == "__main__":
    main()
