#!/usr/bin/env python3
"""Proactive replacement: turn predictions into an operating policy.

The paper's motivation for prediction (Section 5) is operational: if a
failure can be flagged a few days ahead, the operator can migrate data and
stage a spare instead of losing the drive cold.  This example quantifies
that benefit on a held-out part of the fleet:

1. train the predictor on one (drive-grouped) split of the fleet;
2. replay the held-out drives day by day: each day, drives whose failure
   probability crosses a conservative threshold are "proactively replaced";
3. score the policy: how many real failures were caught with enough lead
   time, at the cost of how many false replacements.

Run:  python examples/proactive_replacement.py
"""

from __future__ import annotations

import numpy as np

from repro.core import FailurePredictor, build_prediction_dataset
from repro.data import grouped_train_test_split
from repro.simulator import FleetConfig, simulate_fleet

LOOKAHEAD = 3  # days of warning we ask the model for
THRESHOLDS = (0.80, 0.90, 0.97)


def main() -> None:
    print("Simulating fleet ...")
    trace = simulate_fleet(
        FleetConfig(
            n_drives_per_model=400,
            horizon_days=1460,
            deploy_spread_days=700,
            seed=123,
        )
    )
    print(" ", trace.summary())

    dataset = build_prediction_dataset(trace, lookahead=LOOKAHEAD)
    train_idx, test_idx = grouped_train_test_split(
        dataset.groups, test_fraction=0.3, seed=0
    )
    train, test = dataset.select(train_idx), dataset.select(test_idx)
    print(
        f"\nTrain: {len(train):,} drive-days ({train.n_positive} failure-window rows)"
        f"\nTest:  {len(test):,} drive-days ({test.n_positive} failure-window rows)"
    )

    predictor = FailurePredictor(lookahead=LOOKAHEAD, seed=0)
    predictor.fit_dataset(train)
    scores = predictor.predict_proba_dataset(test)

    # Replay: the operator replaces a drive the first time its score
    # crosses the threshold.  Per drive we then classify the outcome:
    #   timely  — flagged on a day inside the failure's lookahead window
    #             (the warning arrived in time to migrate data);
    #   early   — the drive was flagged ahead of the window but does fail
    #             later (replacement still prevented the failure);
    #   false   — flagged, but the drive never fails;
    #   missed  — the drive fails without ever being flagged.
    failed_drives = set(np.unique(test.groups[test.y == 1]).tolist())
    print(f"\nHeld-out drives with an upcoming failure: {len(failed_drives)}")
    header = f"{'threshold':>10s} {'timely':>7s} {'early':>6s} {'missed':>7s} {'false repl.':>12s}"
    print(header)
    for thr in THRESHOLDS:
        flagged = scores >= thr
        timely_drives: set[int] = set()
        flagged_any: set[int] = set()
        for drive, is_flagged, label in zip(test.groups, flagged, test.y):
            if is_flagged:
                flagged_any.add(int(drive))
                if label:
                    timely_drives.add(int(drive))
        early = len((flagged_any - timely_drives) & failed_drives)
        false_repl = len(flagged_any - failed_drives)
        missed = len(failed_drives - flagged_any)
        print(
            f"{thr:>10.2f} {len(timely_drives):>7d} {early:>6d} "
            f"{missed:>7d} {false_repl:>12d}"
        )

    print(
        "\nReading: raising the threshold trades missed failures for fewer"
        "\nunnecessary replacements — the paper's argument for conservative"
        "\nthresholds in production (Section 5.3)."
    )


if __name__ == "__main__":
    main()
