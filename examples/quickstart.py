#!/usr/bin/env python3
"""Quickstart: simulate a fleet, train a failure predictor, rank the fleet.

This walks the three core steps of the library in under a minute:

1. generate a synthetic SSD fleet trace (the stand-in for the paper's
   proprietary Google telemetry);
2. fit the paper's best model — a random forest predicting "swap-inducing
   failure within the next N days" — with the full protocol (failure-day
   pinpointing, daily+cumulative features, 1:1 downsampling);
3. score the live fleet and print the highest-risk drives plus the model's
   own explanation of what it looks at.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import FailurePredictor
from repro.simulator import FleetConfig, simulate_fleet


def main() -> None:
    # A small three-model fleet observed for two years.  Scale up
    # n_drives_per_model / horizon_days for paper-sized experiments.
    config = FleetConfig(
        n_drives_per_model=150,
        horizon_days=730,
        deploy_spread_days=300,
        seed=7,
    )
    print("Simulating fleet ...")
    trace = simulate_fleet(config)
    print(" ", trace.summary())

    print("\nTraining the failure predictor (random forest, N = 3 days) ...")
    predictor = FailurePredictor(lookahead=3, seed=0).fit(trace)

    print("\nCross-validating with the paper's protocol (grouped 4-fold) ...")
    result = predictor.cross_validate(trace, n_splits=4)
    print(f"  ROC AUC: {result.mean_auc:.3f} ± {result.std_auc:.3f}")

    print("\nTop-10 highest-risk drives right now:")
    report = predictor.risk_report(trace.records).top(10)
    print(f"  {'drive':>8s} {'age (d)':>8s} {'P(fail <= 3d)':>14s}")
    for did, age, p in zip(report.drive_id, report.age_days, report.probability):
        print(f"  {did:>8d} {age:>8d} {p:>14.3f}")

    print("\nWhat the model looks at (top feature importances):")
    for name, weight in predictor.feature_importances()[:8]:
        print(f"  {name:<28s} {weight:.4f}")


if __name__ == "__main__":
    main()
