"""Engine telemetry: heartbeats, status.json, parity with telemetry on."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import eventlog, timeline
from repro.obs.eventlog import EventLog
from repro.obs.slo import SloSpec
from repro.obs.timeline import TickPolicy, Timeline
from repro.serve import (
    AdmissionGuard,
    FeatureStore,
    ScoringEngine,
    TelemetryConfig,
    load_status,
    render_status,
    status_exit_code,
)


class TestTelemetryConfig:
    def test_defaults(self):
        cfg = TelemetryConfig()
        assert cfg.status_path is None
        assert cfg.heartbeat_every == 5000
        assert cfg.slo_spec is None

    def test_rejects_bad_cadence(self):
        with pytest.raises(ValueError):
            TelemetryConfig(heartbeat_every=0)


class TestHeartbeats:
    def test_heartbeat_cadence_and_final_flush(
        self, serve_trace, predictor, tmp_path
    ):
        status_path = tmp_path / "status.json"
        engine = ScoringEngine(
            predictor,
            telemetry=TelemetryConfig(
                status_path=str(status_path), heartbeat_every=500
            ),
        )
        result = engine.replay(serve_trace.records, chunk_rows=256)
        assert status_path.exists()
        status = load_status(status_path)
        assert status["events_seen"] == result.n_events
        assert status["schema_version"] == 1
        assert status["health"] == "ready"
        # cadence heartbeats plus the final one at replay end
        assert status["heartbeats"] >= result.n_events // 500

    def test_status_payload_without_status_file(self, serve_trace, predictor):
        engine = ScoringEngine(predictor)
        engine.replay(serve_trace.records, chunk_rows=512)
        payload = engine.status()
        assert payload["events_seen"] > 0
        assert payload["watermark"] >= 0
        assert "guard" not in payload  # unguarded engine
        assert "timeline" not in payload  # no timeline active

    def test_heartbeat_counts_diverted_events(self, predictor):
        # A stream the guard rejects wholesale must still drive
        # events_seen forward — a fully sick input cannot silence the
        # telemetry plane.
        store = FeatureStore()
        guard = AdmissionGuard(store)
        engine = ScoringEngine(
            predictor,
            store=store,
            guard=guard,
            telemetry=TelemetryConfig(heartbeat_every=10),
        )
        for day in range(5):
            engine.submit({"drive_id": 1, "age_days": day})  # malformed
        assert engine.events_seen == 5
        assert guard.stats.dead_lettered == 5

    def test_replay_parity_with_telemetry_enabled(
        self, serve_trace, predictor, offline_probs, tmp_path
    ):
        spec = SloSpec.from_dict(
            {
                "objectives": [
                    {
                        "name": "throughput",
                        "metric": "window.events",
                        "threshold": 1,
                        "op": ">=",
                    }
                ]
            }
        )
        engine = ScoringEngine(
            predictor,
            telemetry=TelemetryConfig(
                status_path=str(tmp_path / "status.json"),
                heartbeat_every=400,
                slo_spec=spec,
            ),
        )
        with (
            timeline.activate(Timeline(TickPolicy(every_events=256))),
            eventlog.activate(EventLog(tmp_path / "events.jsonl")),
        ):
            result = engine.replay(serve_trace.records, chunk_rows=512)
        # The cornerstone: the full telemetry plane never perturbs scores.
        assert np.array_equal(result.probability, offline_probs)
        status = load_status(tmp_path / "status.json")
        assert status["timeline"]["windows_emitted"] > 0
        assert status["slo"]["state"] == "ok"
        assert status_exit_code(status) == 0

    def test_timeline_windows_track_watermark(self, serve_trace, predictor):
        engine = ScoringEngine(predictor)
        with timeline.activate(
            Timeline(TickPolicy(every_events=10**9))
        ) as tl:
            engine.replay(serve_trace.records, chunk_rows=512)
        # Watermark advances close windows even though the event tick
        # (10**9) never fires.
        assert tl.windows_emitted > 0
        assert tl.watermark >= 0
        reasons = {w.reason for w in tl.windows()}
        assert reasons == {"watermark"}


class TestStatusContract:
    def _status(self, **over):
        body = {
            "schema_version": 1,
            "health": "ready",
            "events_seen": 100,
            "requests_total": 100,
            "batches_total": 2,
            "stale_scores": 0,
            "queue_depth": 0,
            "watermark": 42,
            "heartbeats": 3,
        }
        body.update(over)
        return body

    def test_exit_codes(self):
        assert status_exit_code(self._status()) == 0
        assert status_exit_code(self._status(health="draining")) == 0
        assert status_exit_code(self._status(health="degraded")) == 1
        assert (
            status_exit_code(self._status(slo={"state": "warn", "objectives": []}))
            == 1
        )
        assert (
            status_exit_code(
                self._status(slo={"state": "breach", "objectives": []})
            )
            == 2
        )
        # breach dominates even over degraded health
        assert (
            status_exit_code(
                self._status(
                    health="degraded",
                    slo={"state": "breach", "objectives": []},
                )
            )
            == 2
        )

    def test_load_status_errors(self, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            load_status(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{torn")
        with pytest.raises(ValueError, match="unreadable"):
            load_status(bad)
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"events": 3}))
        with pytest.raises(ValueError, match="not a serve status"):
            load_status(wrong)

    def test_render_status_mentions_key_facts(self):
        text = render_status(
            self._status(
                health="degraded",
                guard={
                    "admitted": 90,
                    "duplicates_dropped": 2,
                    "dead_lettered": 8,
                    "shed": 0,
                    "by_fault": {"late": 8},
                },
                slo={
                    "state": "warn",
                    "objectives": [
                        {
                            "name": "dlq",
                            "metric": "counters.x",
                            "state": "warn",
                            "op": "<=",
                            "threshold": 1.0,
                            "violations": 2,
                            "windows_evaluated": 4,
                        }
                    ],
                },
            )
        )
        assert "degraded" in text
        assert "late=8" in text
        assert "warn" in text and "dlq" in text

    def test_heartbeat_emits_eventlog_record(self, predictor, tmp_path):
        engine = ScoringEngine(
            predictor,
            telemetry=TelemetryConfig(status_path=str(tmp_path / "s.json")),
        )
        log_path = tmp_path / "events.jsonl"
        with eventlog.activate(EventLog(log_path)):
            engine.heartbeat()
        records = [
            json.loads(line) for line in log_path.read_text().splitlines()
        ]
        assert [r["kind"] for r in records] == ["serve.engine.heartbeat"]
