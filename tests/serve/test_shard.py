"""Sharded serving plane: the PR 9 acceptance gates.

What is pinned here, in order of importance:

- **shard-count byte-identity**: a sharded replay at 1, 2, or 4 shards
  merges to exactly the serial replay's bytes (and hence the offline
  pipeline's — the existing parity gate composes);
- **SIGKILL failover identity**: a shard killed mid-stream by
  ``REPRO_CHAOS=shard_kill`` is healed by the supervisor retry via
  checkpoint restore + journal-tail replay, and the merged output is
  byte-identical to a never-crashed run;
- **reshard identity**: replaying an N-shard plane's journals through an
  M-shard partition map reproduces the same bytes;
- **local backpressure**: a shard at its queue bound sheds to its *own*
  DLQ and never blocks or pollutes a sibling;
- checkpoint round-trip, plane manifest/status plumbing, and the
  failover-support helpers.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.data.dataset import DriveDayDataset
from repro.data.io import iter_drive_days
from repro.resilience import ENV_CHAOS, ENV_CHAOS_SEED
from repro.serve import (
    BatchPolicy,
    FeatureStore,
    QueuePolicy,
    ShardError,
    ShardRouter,
    merged_plane_events,
    plane_scores,
    plane_status,
    read_plane_manifest,
    reshard_plane,
    run_sharded_replay,
)
from repro.serve.health import status_exit_code
from repro.serve.shard import (
    ShardPaths,
    _save_checkpoint,
    _truncate_jsonl,
    load_checkpoint,
)

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="chaos injection rides the fork start method",
)

#: Probed chaos config whose kill lands *between* checkpoints on both
#: shards, so the journal-tail fast path (not just full restart) is
#: exercised: seed 0 with these strides yields nonzero tail replays.
TAIL_KILL_ENV = {
    ENV_CHAOS: "shard_kill=1.0",
    ENV_CHAOS_SEED: "0",
}
TAIL_KILL_KW = {"checkpoint_every": 900, "chunk_rows": 512, "workers": 2}


class TestShardCountIdentity:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_sharded_replay_matches_offline(
        self, tmp_path, serve_trace, predictor, offline_probs, n_shards
    ):
        result = run_sharded_replay(
            predictor,
            serve_trace.records,
            n_shards,
            tmp_path / "plane",
            chunk_rows=512,
        )
        assert result.n_shards == n_shards
        assert result.n_events == len(offline_probs)
        assert result.n_diverted == 0
        assert result.n_restored == 0
        assert np.array_equal(
            result.accepted_index, np.arange(len(offline_probs))
        )
        # The gate: merged bytes equal the offline pipeline's.
        assert np.array_equal(result.probability, offline_probs)

    def test_chunk_rows_do_not_change_bytes(
        self, tmp_path, serve_trace, predictor, offline_probs
    ):
        result = run_sharded_replay(
            predictor, serve_trace.records, 2, tmp_path / "p", chunk_rows=333
        )
        assert np.array_equal(result.probability, offline_probs)

    def test_checkpointing_does_not_change_bytes(
        self, tmp_path, serve_trace, predictor, offline_probs
    ):
        result = run_sharded_replay(
            predictor,
            serve_trace.records,
            2,
            tmp_path / "p",
            chunk_rows=512,
            checkpoint_every=700,
        )
        assert np.array_equal(result.probability, offline_probs)

    def test_plane_scores_reconstructs_merge_from_disk(
        self, tmp_path, serve_trace, predictor, offline_probs
    ):
        plane = tmp_path / "plane"
        run_sharded_replay(
            predictor, serve_trace.records, 3, plane, chunk_rows=512
        )
        probs, idx = plane_scores(plane)
        assert np.array_equal(probs, offline_probs)
        assert np.array_equal(idx, np.arange(len(offline_probs)))

    def test_rejects_zero_shards(self, tmp_path, serve_trace, predictor):
        with pytest.raises(ShardError, match="n_shards"):
            run_sharded_replay(
                predictor, serve_trace.records, 0, tmp_path / "p"
            )


@fork_only
class TestFailoverIdentity:
    def test_sigkill_heals_byte_identical(
        self, tmp_path, serve_trace, predictor, offline_probs, monkeypatch
    ):
        for key, value in TAIL_KILL_ENV.items():
            monkeypatch.setenv(key, value)
        plane = tmp_path / "plane"
        result = run_sharded_replay(
            predictor, serve_trace.records, 2, plane, **TAIL_KILL_KW
        )
        # Every shard was a planned victim (frac=1.0): each must have
        # actually died (marker on disk) and failed over.
        for shard_id in range(2):
            assert ShardPaths(plane, shard_id).chaos_marker.exists()
        assert result.n_restored == 2
        # At this probed config the kill lands between checkpoints, so
        # the journal-tail fast path ran (not just a checkpoint resume).
        assert sum(s["tail_replayed"] for s in result.shards) > 0
        assert np.array_equal(result.probability, offline_probs)
        assert np.array_equal(
            result.accepted_index, np.arange(len(offline_probs))
        )

    def test_kill_without_checkpoints_restarts_from_zero(
        self, tmp_path, serve_trace, predictor, offline_probs, monkeypatch
    ):
        # No checkpoint_every: the victim leaves nothing behind, and
        # failover degrades to a clean from-scratch rerun of the shard.
        for key, value in TAIL_KILL_ENV.items():
            monkeypatch.setenv(key, value)
        result = run_sharded_replay(
            predictor,
            serve_trace.records,
            2,
            tmp_path / "plane",
            chunk_rows=512,
            workers=2,
        )
        assert result.n_restored == 0
        assert np.array_equal(result.probability, offline_probs)

    def test_serial_fallback_never_self_kills(
        self, tmp_path, serve_trace, predictor, offline_probs, monkeypatch
    ):
        # workers resolving to in-process execution must never inject
        # the SIGKILL (it would take down the caller, not a shard).
        for key, value in TAIL_KILL_ENV.items():
            monkeypatch.setenv(key, value)
        plane = tmp_path / "plane"
        result = run_sharded_replay(
            predictor, serve_trace.records, 2, plane, chunk_rows=512, workers=1
        )
        assert result.n_restored == 0
        for shard_id in range(2):
            assert not ShardPaths(plane, shard_id).chaos_marker.exists()
        assert np.array_equal(result.probability, offline_probs)


class TestReshard:
    @pytest.mark.parametrize("n,m", [(2, 3), (3, 1)])
    def test_reshard_is_byte_identical(
        self, tmp_path, serve_trace, predictor, offline_probs, n, m
    ):
        old = tmp_path / "old"
        run_sharded_replay(
            predictor, serve_trace.records, n, old, chunk_rows=512
        )
        result = reshard_plane(
            old, tmp_path / "new", predictor, m, chunk_rows=512
        )
        assert result.n_shards == m
        assert np.array_equal(result.probability, offline_probs)
        assert np.array_equal(
            result.accepted_index, np.arange(len(offline_probs))
        )

    def test_merged_events_reconstruct_source_order(
        self, tmp_path, serve_trace, predictor
    ):
        plane = tmp_path / "plane"
        run_sharded_replay(
            predictor, serve_trace.records, 3, plane, chunk_rows=512
        )
        events = merged_plane_events(plane)
        ids = np.asarray(serve_trace.records["drive_id"])
        ages = np.asarray(serve_trace.records["age_days"])
        assert [e["drive_id"] for e in events] == ids.tolist()
        assert [e["age_days"] for e in events] == ages.tolist()

    def test_reshard_refuses_same_directory(self, tmp_path, predictor):
        with pytest.raises(ShardError, match="fresh plane"):
            reshard_plane(tmp_path / "p", tmp_path / "p", predictor, 2)

    def test_reshard_requires_a_plane(self, tmp_path, predictor):
        with pytest.raises(ShardError, match="plane"):
            reshard_plane(tmp_path / "nope", tmp_path / "new", predictor, 2)


class TestCheckpoint:
    def test_round_trip(self, tmp_path, serve_trace):
        store = FeatureStore()
        store.ingest_columns(
            {k: np.asarray(v)[:16] for k, v in serve_trace.records.items()}
        )
        path = tmp_path / "ck.npz"
        _save_checkpoint(
            path,
            store,
            probability=np.array([0.25, 0.5]),
            accepted_global=np.array([7, 9], dtype=np.int64),
            shard_id=1,
            n_shards=4,
            rows_seen=12,
            journal_lines=2,
            dlq_lines=0,
            clean=True,
        )
        ck = load_checkpoint(path)
        assert (ck.shard_id, ck.n_shards) == (1, 4)
        assert (ck.rows_seen, ck.journal_lines, ck.dlq_lines) == (12, 2, 0)
        assert ck.clean is True
        np.testing.assert_array_equal(ck.probability, [0.25, 0.5])
        np.testing.assert_array_equal(ck.accepted_global, [7, 9])
        restored = FeatureStore.from_arrays(ck.store_arrays)
        assert restored.state_arrays().keys() == store.state_arrays().keys()
        for key, arr in store.state_arrays().items():
            np.testing.assert_array_equal(restored.state_arrays()[key], arr)

    def test_unreadable_checkpoint_raises_shard_error(self, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"not an npz")
        with pytest.raises(ShardError, match="unreadable"):
            load_checkpoint(bad)

    def test_missing_checkpoint_raises_shard_error(self, tmp_path):
        with pytest.raises(ShardError, match="unreadable"):
            load_checkpoint(tmp_path / "absent.npz")


class TestTruncateJsonl:
    def test_cuts_back_to_prefix(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("".join(f'{{"seq": {i}}}\n' for i in range(5)))
        _truncate_jsonl(path, 2)
        assert path.read_text() == '{"seq": 0}\n{"seq": 1}\n'

    def test_keep_zero_empties_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"seq": 0}\n')
        _truncate_jsonl(path, 0)
        assert path.read_text() == ""

    def test_missing_file_with_zero_keep_is_fine(self, tmp_path):
        _truncate_jsonl(tmp_path / "absent.jsonl", 0)

    def test_missing_file_with_lines_expected_raises(self, tmp_path):
        with pytest.raises(ShardError, match="missing"):
            _truncate_jsonl(tmp_path / "absent.jsonl", 3)

    def test_keep_beyond_length_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"seq": 0}\n')
        with pytest.raises(ShardError, match="cannot keep"):
            _truncate_jsonl(path, 2)


class TestPlanePlumbing:
    def test_manifest_round_trip(self, tmp_path, serve_trace, predictor):
        plane = tmp_path / "plane"
        run_sharded_replay(
            predictor, serve_trace.records, 2, plane, chunk_rows=512
        )
        manifest = read_plane_manifest(plane)
        assert manifest["n_shards"] == 2
        assert manifest["n_rows"] == len(serve_trace.records["drive_id"])
        assert manifest["partition"]["n_shards"] == 2

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(ShardError, match="plane"):
            read_plane_manifest(tmp_path)

    def test_plane_status_rolls_up_ready(
        self, tmp_path, serve_trace, predictor
    ):
        plane = tmp_path / "plane"
        run_sharded_replay(
            predictor, serve_trace.records, 2, plane, chunk_rows=512
        )
        rollup = plane_status(plane)
        assert rollup["sharded"] is True
        assert rollup["n_shards"] == 2
        assert rollup["health"] == "ready"
        n_rows = len(serve_trace.records["drive_id"])
        assert rollup["events_seen"] == n_rows
        assert rollup["requests_total"] == n_rows
        assert status_exit_code(rollup) == 0
        # Per-shard details survive the rollup.
        assert set(rollup["shards"]) == {"shard-00", "shard-01"}
        for body in rollup["shards"].values():
            assert body["shard"]["n_shards"] == 2

    def test_plane_status_without_shards_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no shard status"):
            plane_status(tmp_path)

    def test_shard_status_files_written(self, tmp_path, serve_trace, predictor):
        plane = tmp_path / "plane"
        run_sharded_replay(
            predictor, serve_trace.records, 2, plane, chunk_rows=512
        )
        for shard_id in range(2):
            body = json.loads(ShardPaths(plane, shard_id).status.read_text())
            assert body["shard"]["shard_id"] == shard_id
            assert body["shard"]["restored"] is False


class TestShardRouter:
    def test_routing_matches_serial_scores(
        self, tmp_path, serve_trace, predictor, offline_probs
    ):
        with ShardRouter(
            predictor,
            3,
            plane=tmp_path / "plane",
            batch_policy=BatchPolicy(max_batch_size=64, max_wait_seconds=60),
        ) as router:
            by_row: dict[int, float] = {}
            pending: dict[int, list[int]] = {i: [] for i in range(3)}
            for row, record in enumerate(iter_drive_days(serve_trace.records)):
                shard = router.shard_of(record)
                pending[shard].append(row)
                for event in router.submit(record):
                    by_row[pending[shard].pop(0)] = event.probability
            for event in router.drain():
                # Drain flushes in shard order; each shard's backlog is
                # still FIFO, so pop per-shard rows as scores arrive.
                shard = router.pmap.shard_of(event.drive_id)
                by_row[pending[shard].pop(0)] = event.probability
        assert len(by_row) == len(offline_probs)
        scores = np.array([by_row[r] for r in range(len(offline_probs))])
        assert np.array_equal(scores, offline_probs)

    def test_full_shard_sheds_locally_not_globally(
        self, tmp_path, serve_trace, predictor
    ):
        # Find two drives on different shards, flood one shard past its
        # queue bound, and check the overflow lands in *that* shard's
        # DLQ while the sibling keeps admitting.
        records = list(iter_drive_days(serve_trace.records))
        with ShardRouter(
            predictor,
            2,
            plane=tmp_path / "plane",
            batch_policy=BatchPolicy(max_batch_size=10_000, max_wait_seconds=60),
            queue_policy=QueuePolicy(max_depth=3, on_full="shed"),
        ) as router:
            victim = router.shard_of(records[0])
            flood = [r for r in records if router.shard_of(r) == victim][:10]
            other = [r for r in records if router.shard_of(r) != victim][:10]
            for record in flood:
                router.submit(record)
            sibling = 1 - victim
            assert router.queue_depths()[victim] == 3
            assert router.engines[victim].guard.dlq.appended == 7
            # The sibling is untouched by the victim's backpressure …
            for record in other:
                router.submit(record)
            assert router.queue_depths()[sibling] == 3
            # … and its sheds are its own, in its own DLQ file.
            paths = [ShardPaths(tmp_path / "plane", i).dlq for i in range(2)]
            counts = [
                sum(1 for _ in open(p)) if p.exists() else 0 for p in paths
            ]
            assert counts[victim] == 7
            assert counts[sibling] == 7

    def test_malformed_event_routes_to_shard_zero(self, tmp_path, predictor):
        with ShardRouter(predictor, 4) as router:
            assert router.shard_of({}) == 0
            assert router.shard_of({"drive_id": "garbage"}) == 0

    def test_live_status_rollup(self, serve_trace, predictor):
        with ShardRouter(predictor, 2) as router:
            for _, record in zip(range(50), iter_drive_days(serve_trace.records)):
                router.submit(record)
            router.drain()
            rollup = router.status()
        assert rollup["sharded"] is True
        assert rollup["n_shards"] == 2
        assert rollup["events_seen"] == 50

    def test_rejects_zero_shards(self, predictor):
        with pytest.raises(ShardError):
            ShardRouter(predictor, 0)
