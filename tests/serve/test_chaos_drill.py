"""The serving chaos drill: telemetry faults, then heal to bit-identity.

Tentpole acceptance (ISSUE 6): replaying a trace under ``REPRO_CHAOS``
telemetry faults — reorder, duplicate, late, garble — must leave a
guarded engine with (a) every diverted event accounted for in the DLQ
and (b) a heal path whose re-scored output is **byte-identical** (``==``
on every float) to a run that never saw the faults.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience.chaos import (
    GARBLE_FIELDS,
    TELEMETRY_MODES,
    ChaosError,
    chaos_telemetry_events,
    garble_event,
    parse_chaos_spec,
    planned_fault,
    telemetry_spec_from_env,
)
from repro.serve import (
    AdmissionGuard,
    DeadLetterQueue,
    EventJournal,
    FeatureStore,
    ScoringEngine,
    build_heal_plan,
    canonical_event,
)

from .test_guard import make_stream

SPEC = {"reorder": 0.08, "duplicate": 0.08, "late": 0.04, "garble": 0.04}


class TestTelemetryChaos:
    def test_stream_is_deterministic(self):
        events = make_stream(n_drives=3, n_ages=20)
        a = list(chaos_telemetry_events(iter(events), SPEC, seed=7))
        b = list(chaos_telemetry_events(iter(events), SPEC, seed=7))
        assert a == b

    def test_seed_changes_the_plan(self):
        events = make_stream(n_drives=3, n_ages=20)
        a = list(chaos_telemetry_events(iter(events), SPEC, seed=7))
        b = list(chaos_telemetry_events(iter(events), SPEC, seed=8))
        assert a != b

    def test_empty_spec_is_identity(self):
        events = make_stream()
        assert list(chaos_telemetry_events(iter(events), [], seed=7)) == events

    def test_no_event_is_lost_only_duplicated(self):
        events = make_stream(n_drives=4, n_ages=25)
        out = list(chaos_telemetry_events(iter(events), SPEC, seed=42))
        def key(e):
            return (e["drive_id"], e["age_days"])
        in_keys = {key(e) for e in events}
        out_keys = [key(e) for e in out]
        assert set(out_keys) == in_keys       # nothing dropped
        assert len(out) >= len(events)        # duplicates only add
        dupes = sum(
            1 for m in (planned_fault(i, list(SPEC.items()), 42)
                        for i in range(len(events)))
            if m == "duplicate"
        )
        assert len(out) == len(events) + dupes

    def test_duplicate_mode_emits_back_to_back(self):
        spec = [("duplicate", 1.0)]
        events = make_stream(n_drives=1, n_ages=3)
        out = list(chaos_telemetry_events(iter(events), spec, seed=0))
        assert out == [e for ev in events for e in (ev, ev)]

    def test_garble_corrupts_one_non_key_field(self):
        events = make_stream(n_drives=1, n_ages=1)
        garbled = garble_event(events[0], 0, seed=3)
        diff = {k for k in events[0] if garbled[k] != events[0][k]
                and not (isinstance(garbled[k], float) and np.isnan(garbled[k]))}
        nan_diff = {k for k in events[0]
                    if isinstance(garbled[k], float) and np.isnan(garbled[k])}
        changed = diff | nan_diff
        assert len(changed) == 1
        assert changed < set(GARBLE_FIELDS)
        assert garbled["drive_id"] == events[0]["drive_id"]
        assert garbled["age_days"] == events[0]["age_days"]

    def test_garble_is_pure(self):
        ev = make_stream(n_drives=1, n_ages=1)[0]
        a, b = garble_event(ev, 5, seed=9), garble_event(ev, 5, seed=9)
        assert canonical_event(a) == canonical_event(b)

    def test_spec_from_env_filters_worker_modes(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "crash=0.2,duplicate=0.1,late=0.05")
        monkeypatch.setenv("REPRO_CHAOS_SEED", "17")
        spec, seed = telemetry_spec_from_env()
        assert spec == [("duplicate", 0.1), ("late", 0.05)]
        assert seed == 17

    def test_spec_from_env_empty_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert telemetry_spec_from_env() == ([], 0)

    def test_parse_rejects_unknown_mode_and_bad_rates(self):
        with pytest.raises(ChaosError, match="unknown chaos mode"):
            parse_chaos_spec("scramble=0.1")
        with pytest.raises(ChaosError, match=r"in \[0, 1\]"):
            parse_chaos_spec("late=1.5")
        with pytest.raises(ChaosError, match="sum"):
            parse_chaos_spec("late=0.7,garble=0.6")

    def test_telemetry_modes_all_reachable(self):
        spec = [(m, 0.25) for m in TELEMETRY_MODES]
        seen = {
            planned_fault(i, spec, seed=1) for i in range(400)
        }
        assert set(TELEMETRY_MODES) <= seen


class TestChaosDrill:
    """End-to-end: chaos replay diverts, heal restores bit-identity."""

    @pytest.fixture()
    def drill(self, predictor, tmp_path):
        events = make_stream(n_drives=5, n_ages=40)

        # Clean run: the ground truth no chaos replay may drift from.
        clean_store = FeatureStore()
        clean_engine = ScoringEngine(
            predictor, store=clean_store, guard=AdmissionGuard(clean_store)
        )
        clean = list(clean_engine.score_stream(iter(events)))

        # Chaos run: guarded, journaled, dead-lettered.
        dlq_path = tmp_path / "dlq.jsonl"
        journal_path = tmp_path / "journal.jsonl"
        store = FeatureStore()
        with DeadLetterQueue(dlq_path) as dlq, \
                EventJournal(journal_path) as journal:
            guard = AdmissionGuard(store, dlq=dlq, journal=journal)
            engine = ScoringEngine(predictor, store=store, guard=guard)
            chaotic = list(
                engine.score_stream(
                    chaos_telemetry_events(iter(events), SPEC, seed=42)
                )
            )
        return {
            "events": events,
            "clean": clean,
            "chaotic": chaotic,
            "guard": guard,
            "dlq_path": dlq_path,
            "journal_path": journal_path,
        }

    def test_chaos_actually_bites(self, drill):
        stats = drill["guard"].stats
        assert stats.dead_lettered > 0
        assert stats.duplicates_dropped > 0
        assert stats.by_fault.keys() <= {"late", "schema", "conflict"}

    def test_every_diverted_event_is_accounted(self, drill):
        stats = drill["guard"].stats
        entries = DeadLetterQueue.read(drill["dlq_path"])
        assert len(entries) == stats.dead_lettered
        by_fault = {}
        for e in entries:
            by_fault[e.fault] = by_fault.get(e.fault, 0) + 1
        assert by_fault == stats.by_fault
        # admitted + duplicates + dead letters covers the whole chaotic
        # arrival sequence (duplicate mode only ever adds events).
        n_arrivals = (
            stats.admitted + stats.duplicates_dropped + stats.dead_lettered
        )
        assert n_arrivals >= len(drill["events"])
        assert len(EventJournal.read(drill["journal_path"])) == stats.admitted

    def test_heal_restores_bit_identical_scores(self, drill, predictor):
        refetch = {
            (e["drive_id"], e["age_days"]): e for e in drill["events"]
        }
        plan = build_heal_plan(
            EventJournal.read(drill["journal_path"]),
            DeadLetterQueue.read(drill["dlq_path"]),
            refetch=refetch,
        )
        assert not plan.unhealable
        assert plan.n_healed == drill["guard"].stats.dead_lettered

        store = FeatureStore()
        engine = ScoringEngine(
            predictor, store=store, guard=AdmissionGuard(store)
        )
        healed = list(engine.score_stream(iter(plan.events)))

        clean = drill["clean"]
        assert len(healed) == len(clean)
        for h, c in zip(healed, clean):
            assert (h.drive_id, h.age_days) == (c.drive_id, c.age_days)
            assert h.probability == c.probability  # bit-identical, no tol

    def test_heal_without_refetch_leaves_schema_faults_dead(self, drill):
        entries = DeadLetterQueue.read(drill["dlq_path"])
        plan = build_heal_plan(
            EventJournal.read(drill["journal_path"]), entries
        )
        refetch_needed = [
            e for e in entries if e.fault in ("schema", "conflict")
        ]
        assert plan.unhealable == refetch_needed
