"""Admission guard: classification, diversion, dedup, chunk fast path.

The guard's contract is the serving robustness core (DESIGN.md §14):
no input — malformed, late, conflicting, garbled — makes it raise; every
event is accepted, dropped as an exact duplicate, or dead-lettered with
its fault class and watermark context.  The store only ever absorbs
accepted events, which is what makes duplicate re-delivery idempotent
byte-for-byte.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.fields import FIELD_DTYPES
from repro.reliability.validation import SENTINEL_CEILING
from repro.serve import (
    ACCEPTED,
    DEAD_LETTERED,
    DUPLICATE,
    AdmissionGuard,
    DeadLetterQueue,
    EventJournal,
    FeatureStore,
    ServeBreaker,
)


def make_event(drive_id: int, age: int, **overrides) -> dict:
    ev = {name: 0 for name in FIELD_DTYPES}
    ev.update(
        drive_id=drive_id,
        model=drive_id % 3,
        age_days=age,
        calendar_day=100 + age,
        read_count=7 * age,
        write_count=3 * age,
        erase_count=age,
        pe_cycles=float(age),
    )
    ev.update(overrides)
    return ev


def make_stream(n_drives: int = 3, n_ages: int = 6) -> list[dict]:
    """Canonical drive-major stream (the order a clean trace is stored in)."""
    return [
        make_event(d, a) for d in range(n_drives) for a in range(n_ages)
    ]


class TestClassify:
    def setup_method(self):
        self.guard = AdmissionGuard(FeatureStore())

    def test_fresh_event_accepted(self):
        out = self.guard.classify(make_event(1, 0))
        assert out.status == ACCEPTED
        assert out.watermark == -1

    def test_non_mapping_is_malformed(self):
        out = self.guard.classify([1, 2, 3])
        assert (out.status, out.fault) == (DEAD_LETTERED, "malformed")

    def test_missing_fields_malformed(self):
        out = self.guard.classify({"drive_id": 1, "age_days": 2})
        assert out.fault == "malformed"
        assert "missing field" in out.reason

    def test_non_integer_keys_malformed(self):
        ev = make_event(1, 0)
        ev["drive_id"] = "not-a-number"
        assert self.guard.classify(ev).fault == "malformed"

    def test_non_numeric_counter_malformed(self):
        ev = make_event(1, 0, read_count="high")
        out = self.guard.classify(ev)
        assert out.fault == "malformed"
        assert "read_count" in out.reason

    @pytest.mark.parametrize(
        "value, label",
        [
            (float("nan"), "not finite"),
            (float("inf"), "not finite"),
            (-3, "negative"),
            (SENTINEL_CEILING * 10, "sentinel"),
        ],
    )
    def test_schema_violations(self, value, label):
        out = self.guard.classify(make_event(1, 0, read_count=value))
        assert out.fault == "schema"
        assert label in out.reason

    def test_negative_age_schema_fault(self):
        assert self.guard.classify(make_event(1, -1)).fault == "schema"

    def test_late_event_carries_watermark(self):
        self.guard.admit(make_event(1, 5))
        out = self.guard.classify(make_event(1, 3))
        assert out.fault == "late"
        assert (out.drive_id, out.age_days, out.watermark) == (1, 3, 5)
        assert "2d behind" in out.reason

    def test_exact_redelivery_is_duplicate(self):
        ev = make_event(1, 5)
        self.guard.admit(ev)
        assert self.guard.classify(dict(ev)).status == DUPLICATE

    def test_same_age_different_payload_is_conflict(self):
        self.guard.admit(make_event(1, 5))
        out = self.guard.classify(make_event(1, 5, read_count=999))
        assert out.fault == "conflict"

    def test_classify_never_mutates(self):
        self.guard.classify(make_event(1, 0))
        assert self.guard.store.events_total == 0
        assert self.guard.stats.admitted == 0


class TestAdmit:
    def test_accept_returns_feature_row(self):
        guard = AdmissionGuard(FeatureStore())
        out = guard.admit(make_event(1, 0))
        assert out.accepted and out.row is not None
        assert guard.stats.admitted == 1

    def test_bad_events_never_raise_or_ingest(self):
        guard = AdmissionGuard(FeatureStore())
        for bad in (
            None,
            "text",
            {"drive_id": 1},
            make_event(1, -4),
            make_event(1, 0, erase_count=float("nan")),
        ):
            out = guard.admit(bad)
            assert out.status == DEAD_LETTERED
        assert guard.store.events_total == 0
        assert guard.stats.dead_lettered == 5

    def test_divert_writes_dlq_and_journal_skips(self, tmp_path):
        dlq_path = tmp_path / "dlq.jsonl"
        j_path = tmp_path / "journal.jsonl"
        with DeadLetterQueue(dlq_path) as dlq, EventJournal(j_path) as journal:
            guard = AdmissionGuard(FeatureStore(), dlq=dlq, journal=journal)
            guard.admit(make_event(1, 3))
            guard.admit(make_event(1, 1))  # late
        entries = DeadLetterQueue.read(dlq_path)
        assert [e.fault for e in entries] == ["late"]
        assert entries[0].event["age_days"] == 1
        assert entries[0].watermark == 3
        journal_events = EventJournal.read(j_path)
        assert len(journal_events) == 1  # only the accepted event

    def test_shed_is_replayable(self, tmp_path):
        dlq_path = tmp_path / "dlq.jsonl"
        with DeadLetterQueue(dlq_path) as dlq:
            guard = AdmissionGuard(FeatureStore(), dlq=dlq)
            guard.shed(make_event(4, 9), "queue full")
        (entry,) = DeadLetterQueue.read(dlq_path)
        assert entry.fault == "shed"
        assert entry.source == "backpressure"
        assert entry.event["drive_id"] == 4  # intact payload for heal
        assert guard.stats.shed == 1

    def test_breaker_trips_and_recovers(self):
        guard = AdmissionGuard(
            FeatureStore(),
            breaker=ServeBreaker(fault_threshold=3, recovery_threshold=2),
        )
        for age in (10, 11, 12):
            guard.admit(make_event(1, age))
        assert guard.breaker.state == "ready"
        for _ in range(3):
            guard.admit(make_event(1, 2))  # late streak
        assert guard.breaker.state == "degraded"
        guard.admit(make_event(1, 13))
        guard.admit(make_event(1, 14))
        assert guard.breaker.state == "ready"
        assert guard.breaker.trips == 1
        assert guard.breaker.recoveries == 1


class TestAdmitColumns:
    def _columns(self, events):
        return {
            name: np.asarray([ev[name] for ev in events])
            for name in FIELD_DTYPES
        }

    def test_clean_chunk_matches_per_event_path(self):
        events = make_stream()
        a = AdmissionGuard(FeatureStore())
        adm = a.admit_columns(self._columns(events))
        b = AdmissionGuard(FeatureStore())
        rows = [b.admit(ev).row for ev in events]
        assert np.array_equal(adm.features, np.vstack(rows))
        assert adm.n_diverted == 0
        assert a.stats.admitted == len(events)

    def test_schema_bad_rows_diverted_rest_ingested(self, tmp_path):
        events = make_stream(n_drives=2)
        events[3] = dict(events[3], read_count=-1)
        with DeadLetterQueue(tmp_path / "d.jsonl") as dlq:
            guard = AdmissionGuard(FeatureStore(), dlq=dlq)
            adm = guard.admit_columns(self._columns(events))
        assert adm.n_diverted == 1
        assert adm.features.shape[0] == len(events) - 1
        (entry,) = DeadLetterQueue.read(tmp_path / "d.jsonl")
        assert entry.fault == "schema"
        assert entry.drive_id == events[3]["drive_id"]

    def test_unordered_chunk_falls_back_and_diverts(self):
        events = make_stream(n_drives=1, n_ages=4)
        shuffled = [events[0], events[2], events[1], events[3]]
        guard = AdmissionGuard(FeatureStore())
        adm = guard.admit_columns(self._columns(shuffled))
        # events[1] arrives behind the watermark set by events[2].
        assert adm.n_diverted == 1
        assert guard.stats.by_fault == {"late": 1}
        assert adm.features.shape[0] == 3

    def test_duplicate_run_in_chunk_deduped(self):
        events = make_stream(n_drives=1, n_ages=3)
        guard = AdmissionGuard(FeatureStore())
        guard.admit_columns(self._columns(events))
        adm = guard.admit_columns(self._columns([events[-1]]))
        assert adm.n_duplicates == 1
        assert guard.store.events_total == len(events)

    def test_missing_column_raises(self):
        cols = self._columns(make_stream(n_drives=1, n_ages=2))
        del cols["read_count"]
        with pytest.raises(KeyError, match="read_count"):
            AdmissionGuard(FeatureStore()).admit_columns(cols)


class TestDuplicateIdempotency:
    """The satellite property: duplicated-chunk re-ingest is idempotent.

    For ANY interleaving of duplicated chunks (each duplicate arriving at
    or after its original), the guarded store ends byte-identical to one
    fed the deduplicated stream: immediate re-deliveries drop as exact
    duplicates, stale ones divert as late — neither ever touches the
    store.
    """

    @staticmethod
    def _snapshot_bytes(store: FeatureStore) -> bytes:
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "store.npz"
            store.snapshot(path)
            return path.read_bytes()

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_interleaved_duplicate_chunks_byte_identical(self, data):
        events = make_stream(n_drives=3, n_ages=5)
        # Cut the canonical stream into chunks of drawn sizes.
        chunks: list[list[dict]] = []
        i = 0
        while i < len(events):
            size = data.draw(
                st.integers(1, 5), label=f"chunk_size@{i}"
            )
            chunks.append(events[i : i + size])
            i += size
        # Baseline: each chunk exactly once, in order.
        baseline = FeatureStore()
        guard = AdmissionGuard(baseline)
        for chunk in chunks:
            for ev in chunk:
                assert guard.admit(ev).accepted
        expected = self._snapshot_bytes(baseline)

        # Duplicated interleaving: first occurrences keep their order,
        # duplicates are inserted anywhere at or after them.
        seq = list(range(len(chunks)))
        n_dups = data.draw(st.integers(0, 6), label="n_dups")
        for _ in range(n_dups):
            which = data.draw(st.integers(0, len(chunks) - 1), label="dup")
            pos = data.draw(
                st.integers(seq.index(which) + 1, len(seq)), label="pos"
            )
            seq.insert(pos, which)

        store = FeatureStore()
        dup_guard = AdmissionGuard(store)
        for ci in seq:
            for ev in chunks[ci]:
                out = dup_guard.admit(ev)
                assert out.status in (ACCEPTED, DUPLICATE, DEAD_LETTERED)
        assert self._snapshot_bytes(store) == expected
        assert dup_guard.stats.admitted == len(events)
        # Every non-first delivery was dropped or diverted, never folded.
        extras = sum(len(chunks[ci]) for ci in seq) - len(events)
        assert (
            dup_guard.stats.duplicates_dropped
            + dup_guard.stats.dead_lettered
            == extras
        )


class TestRestartDurability:
    """Boundary digests persist with the store: duplicate detection
    survives snapshot/restore, so an idempotent re-delivery of the last
    pre-restart drive-day drops as a duplicate instead of dead-lettering
    as a conflict (and feeding the breaker a fault)."""

    def test_duplicate_after_restore_still_drops(self, tmp_path):
        events = make_stream(n_drives=2, n_ages=4)
        store = FeatureStore()
        guard = AdmissionGuard(store)
        for ev in events:
            assert guard.admit(ev).accepted
        snap = tmp_path / "store.npz"
        store.snapshot(snap)

        fresh = AdmissionGuard(FeatureStore.restore(snap))
        for d in range(2):  # each drive's boundary event, re-delivered
            out = fresh.admit(make_event(d, 3))
            assert out.status == DUPLICATE
        assert fresh.stats.dead_lettered == 0
        assert fresh.stats.duplicates_dropped == 2
        # A *different* payload at the watermark is still a conflict.
        out = fresh.admit(make_event(0, 3, read_count=999))
        assert out.status == DEAD_LETTERED
        assert out.fault == "conflict"

    def test_chunk_path_digests_survive_restore(self, tmp_path):
        events = make_stream(n_drives=2, n_ages=5)
        cols = {
            k: np.asarray([ev[k] for ev in events]) for k in events[0]
        }
        store = FeatureStore()
        adm = AdmissionGuard(store).admit_columns(cols)
        assert adm.n_diverted == 0
        snap = tmp_path / "store.npz"
        store.snapshot(snap)

        fresh = AdmissionGuard(FeatureStore.restore(snap))
        out = fresh.admit(make_event(1, 4))  # last row of drive 1's run
        assert out.status == DUPLICATE

    def test_old_snapshot_without_digests_restores_cold(self, tmp_path):
        # Snapshots written before digests were persisted still restore;
        # duplicate detection just starts cold (boundary re-delivery
        # classifies as conflict, the pre-fix behavior).
        events = make_stream(n_drives=1, n_ages=3)
        store = FeatureStore()
        guard = AdmissionGuard(store)
        for ev in events:
            assert guard.admit(ev).accepted
        snap = tmp_path / "store.npz"
        store.snapshot(snap)
        with np.load(snap) as payload:
            arrays = {
                k: payload[k]
                for k in payload.files
                if k != "boundary_digest"
            }
        np.savez(tmp_path / "old.npz", **arrays)

        fresh = AdmissionGuard(FeatureStore.restore(tmp_path / "old.npz"))
        out = fresh.admit(make_event(0, 2))
        assert out.status == DEAD_LETTERED
        assert out.fault == "conflict"
