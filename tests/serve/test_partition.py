"""Property tests for the drive-ID hash partition.

The whole sharded-serving design rests on four properties of the
partition map, so they are pinned with hypothesis rather than examples:

- **total**: every drive id maps to exactly one shard in ``[0, N)``;
- **stable/pure**: the mapping is a pure function of ``(drive_id,
  n_shards)`` — no process state, no ordering dependence — so two
  processes (or two runs years apart) route a drive identically;
- **vector/scalar agreement**: the numpy fast path and the scalar
  helper are the same function;
- **reshard order preservation**: re-partitioning a (drive, age)-sorted
  stream from N to M shards never reorders, loses, or duplicates a
  drive's events — each drive rides exactly one shard under each map,
  so per-drive order survives any N→M move.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.partition import (
    PARTITION_VERSION,
    PartitionMap,
    drive_shard,
    drive_shards,
    split_chunk,
)

drive_ids = st.integers(min_value=0, max_value=2**62)
shard_counts = st.integers(min_value=1, max_value=16)


class TestHashProperties:
    @given(st.lists(drive_ids, min_size=1, max_size=200), shard_counts)
    @settings(max_examples=50, deadline=None)
    def test_total_and_in_range(self, ids, n):
        shards = drive_shards(np.asarray(ids, dtype=np.int64), n)
        assert shards.shape == (len(ids),)
        assert shards.dtype == np.int64
        assert np.all((shards >= 0) & (shards < n))

    @given(drive_ids, shard_counts)
    @settings(max_examples=100, deadline=None)
    def test_stable_and_pure(self, did, n):
        first = drive_shard(did, n)
        assert drive_shard(did, n) == first
        assert PartitionMap(n).shard_of(did) == first

    @given(st.lists(drive_ids, min_size=1, max_size=100), shard_counts)
    @settings(max_examples=50, deadline=None)
    def test_vector_matches_scalar(self, ids, n):
        arr = np.asarray(ids, dtype=np.int64)
        vec = drive_shards(arr, n)
        assert [drive_shard(i, n) for i in ids] == vec.tolist()

    @given(st.lists(drive_ids, min_size=1, max_size=100))
    @settings(max_examples=25, deadline=None)
    def test_single_shard_maps_everything_to_zero(self, ids):
        assert not drive_shards(np.asarray(ids, dtype=np.int64), 1).any()

    def test_spread_is_reasonable(self):
        # Not a statistical test — just a tripwire against a degenerate
        # hash (e.g. modulo on sequential ids collapsing to one shard).
        ids = np.arange(10_000, dtype=np.int64)
        counts = np.bincount(drive_shards(ids, 8), minlength=8)
        assert counts.min() > 800


class TestPartitionMap:
    def test_round_trips_through_dict(self):
        pmap = PartitionMap(4)
        assert PartitionMap.from_dict(pmap.to_dict()) == pmap

    def test_version_mismatch_rejected(self):
        body = PartitionMap(4).to_dict()
        body["version"] = PARTITION_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            PartitionMap.from_dict(body)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            PartitionMap(0)


@st.composite
def sorted_streams(draw):
    """A (drive_id, age_days)-sorted stream with per-drive runs."""
    n_drives = draw(st.integers(min_value=1, max_value=12))
    ids = draw(
        st.lists(
            drive_ids, min_size=n_drives, max_size=n_drives, unique=True
        )
    )
    stream_ids: list[int] = []
    stream_ages: list[int] = []
    for did in sorted(ids):
        n_days = draw(st.integers(min_value=1, max_value=8))
        start = draw(st.integers(min_value=0, max_value=100))
        stream_ids.extend([did] * n_days)
        stream_ages.extend(range(start, start + n_days))
    return (
        np.asarray(stream_ids, dtype=np.int64),
        np.asarray(stream_ages, dtype=np.int64),
    )


class TestReshardOrder:
    @given(sorted_streams(), shard_counts, shard_counts)
    @settings(max_examples=50, deadline=None)
    def test_n_to_m_preserves_per_drive_order(self, stream, n, m):
        # Row-index model of the journal-merge reshard: each old shard
        # journals its sub-stream in stream order; the merge sorts the
        # union by (drive_id, age_days); the result replays at M.
        ids, ages = stream
        rows = np.arange(len(ids), dtype=np.int64)
        old = drive_shards(ids, n)
        merged = sorted(
            (int(r) for s in range(n) for r in rows[old == s]),
            key=lambda r: (int(ids[r]), int(ages[r])),
        )
        # The canonical-sort merge reconstructs the source stream
        # exactly: no loss, no duplication, original order (per-drive
        # order was never broken — each drive rode one old shard).
        assert merged == rows.tolist()
        # Replaying the merged stream through the M-map is therefore
        # identical to having partitioned the original stream at M.
        new = drive_shards(ids, m)
        for s in range(m):
            replayed = [r for r in merged if new[r] == s]
            assert replayed == rows[new == s].tolist()

    @given(sorted_streams(), shard_counts)
    @settings(max_examples=50, deadline=None)
    def test_shards_cover_stream_exactly(self, stream, n):
        ids, _ = stream
        shards = drive_shards(ids, n)
        total = sum(int((shards == s).sum()) for s in range(n))
        assert total == len(ids)
        # Per-drive: all of a drive's events land on one shard.
        for did in np.unique(ids):
            assert len(np.unique(shards[ids == did])) == 1


class TestSplitChunk:
    @given(sorted_streams(), shard_counts, st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_split_covers_chunk_with_global_rows(self, stream, n, base):
        ids, ages = stream
        chunk = {"drive_id": ids, "age_days": ages}
        parts = split_chunk(chunk, PartitionMap(n), base_row=base)
        seen = []
        for sub, rows in parts:
            assert len(sub["drive_id"]) == len(rows)
            # Global rows point back at the chunk's source rows.
            np.testing.assert_array_equal(
                sub["drive_id"], ids[rows - base]
            )
            seen.extend(rows.tolist())
        assert sorted(seen) == list(range(base, base + len(ids)))
