"""Feature store: online/offline parity, ordering, persistence.

The cornerstone invariant (DESIGN.md §13): for any split of the event
stream — whole-trace, per-chunk, per-day, or one record at a time — the
store produces exactly the rows :func:`repro.core.features.build_features`
computes in batch.  All cumulated counters are integer-valued, so the
float64 running sums are exact and the comparison is ``==``, not
``allclose``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features import build_features, feature_names
from repro.data.io import iter_drive_day_chunks, iter_drive_days
from repro.reliability import atomic_save_npz, truncate_file
from repro.serve import (
    FeatureStore,
    FeatureStoreError,
    OutOfOrderError,
    SchemaMismatchError,
)
from repro.simulator import FleetConfig, simulate_fleet


def _all_columns(ds):
    return {name: ds[name] for name in ds.column_names}


class TestIngestParity:
    def test_whole_trace_column_ingest_matches_batch(self, serve_trace):
        ds = serve_trace.records
        store = FeatureStore()
        X = store.ingest_columns(_all_columns(ds))
        ff = build_features(ds)
        assert X.shape == ff.X.shape
        assert np.array_equal(X, ff.X)
        assert store.events_total == len(ds)

    def test_rowwise_ingest_matches_batch(self, serve_trace):
        ds = serve_trace.records
        store = FeatureStore()
        rows = [store.ingest(rec) for rec in iter_drive_days(ds)]
        assert np.array_equal(np.vstack(rows), build_features(ds).X)

    @pytest.mark.parametrize("chunk_rows", [7, 256, 4096])
    def test_chunked_ingest_matches_batch(self, serve_trace, chunk_rows):
        ds = serve_trace.records
        store = FeatureStore()
        parts = [
            store.ingest_columns(chunk)
            for chunk in iter_drive_day_chunks(ds, chunk_rows=chunk_rows)
        ]
        assert np.array_equal(np.vstack(parts), build_features(ds).X)

    def test_calendar_day_order_matches_batch(self, serve_trace):
        # Cross-drive arrival order must not matter: stream the fleet
        # day by day (all drives' records for age a, then age a+1, ...)
        # and scatter the rows back to their original positions.
        ds = serve_trace.records
        ids = np.asarray(ds["drive_id"])
        ages = np.asarray(ds["age_days"])
        cols = _all_columns(ds)
        store = FeatureStore()
        out = np.empty((len(ds), len(feature_names())))
        for a in np.unique(ages):
            idx = np.flatnonzero(ages == a)
            idx = idx[np.argsort(ids[idx], kind="stable")]
            chunk = {k: v[idx] for k, v in cols.items()}
            out[idx] = store.ingest_columns(chunk)
        assert np.array_equal(out, build_features(ds).X)

    def test_mixed_single_and_column_ingest(self, serve_trace):
        # Switch ingestion shape mid-stream; state must not care.
        ds = serve_trace.records
        ff = build_features(ds)
        cut = len(ds) // 3
        store = FeatureStore()
        head = [
            store.ingest(rec)
            for _, rec in zip(range(cut), iter_drive_days(ds))
        ]
        tail = store.ingest_columns(
            {k: v[cut:] for k, v in _all_columns(ds).items()}
        )
        assert np.array_equal(np.vstack([np.vstack(head), tail]), ff.X)


class TestFoldLeftProperty:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_batch_equals_fold_left_over_every_drive(self, seed):
        # Property: for a randomly-seeded fleet, batch build_features is
        # the fold-left of the per-row kernel over each drive's stream.
        trace = simulate_fleet(
            FleetConfig(
                n_drives_per_model=3,
                horizon_days=90,
                deploy_spread_days=40,
                seed=seed,
            )
        )
        ds = trace.records
        store = FeatureStore()
        rows = [store.ingest(rec) for rec in iter_drive_days(ds)]
        assert np.array_equal(np.vstack(rows), build_features(ds).X)


class TestOrdering:
    def _record(self, ds, i):
        return {k: v[i] for k, v in _all_columns(ds).items()}

    def test_rewinding_single_ingest_rejected(self, serve_trace):
        ds = serve_trace.records
        store = FeatureStore()
        ids = np.asarray(ds["drive_id"])
        last = np.flatnonzero(ids == ids[0])[-1]
        store.ingest(self._record(ds, int(last)))
        with pytest.raises(OutOfOrderError, match="d late"):
            store.ingest(self._record(ds, 0))

    def test_out_of_order_error_carries_context(self, serve_trace):
        # The error is actionable on its own: drive, offending age, the
        # absorbed watermark, and the lateness in the message.
        ds = serve_trace.records
        store = FeatureStore()
        ids = np.asarray(ds["drive_id"])
        last = int(np.flatnonzero(ids == ids[0])[-1])
        store.ingest(self._record(ds, last))
        with pytest.raises(OutOfOrderError) as exc_info:
            store.ingest(self._record(ds, 0))
        err = exc_info.value
        assert err.drive_id == int(ds["drive_id"][0])
        assert err.age_days == int(ds["age_days"][0])
        assert err.watermark == int(ds["age_days"][last])
        lateness = err.watermark - err.age_days
        assert f"{lateness}d late" in str(err)

    def test_chunk_rewind_error_carries_context(self, serve_trace):
        ds = serve_trace.records
        store = FeatureStore()
        store.ingest_columns(_all_columns(ds))
        head = {k: v[:4] for k, v in _all_columns(ds).items()}
        with pytest.raises(OutOfOrderError) as exc_info:
            store.ingest_columns(head)
        err = exc_info.value
        assert err.drive_id == int(ds["drive_id"][0])
        assert err.age_days == int(ds["age_days"][0])
        assert err.watermark is not None and err.watermark > err.age_days

    def test_watermark_lookup(self, serve_trace):
        ds = serve_trace.records
        store = FeatureStore()
        assert store.watermark(12345) == -1
        store.ingest(self._record(ds, 0))
        did = int(ds["drive_id"][0])
        assert store.watermark(did) == int(ds["age_days"][0])
        marks = store.watermarks(np.array([did, 999_999]))
        assert marks.tolist() == [int(ds["age_days"][0]), -1]
        # Lookup never allocates slots for unseen drives.
        assert store.n_drives == 1

    def test_same_age_reingest_allowed(self, serve_trace):
        # Ages are checked with <, not <=: a same-day correction/duplicate
        # is the stream's business, the store folds it like the batch
        # pipeline would.
        ds = serve_trace.records
        store = FeatureStore()
        store.ingest(self._record(ds, 0))
        store.ingest(self._record(ds, 0))
        assert store.events_total == 2

    def test_interleaved_chunk_rejected(self, serve_trace):
        ds = serve_trace.records
        first_two = np.flatnonzero(
            np.asarray(ds["drive_id"]) == ds["drive_id"][0]
        )[:2]
        pick = np.array([first_two[0], first_two[1], first_two[0]])
        chunk = {k: v[pick] for k, v in _all_columns(ds).items()}
        chunk["drive_id"] = np.array([5, 6, 5], dtype=np.int64)
        with pytest.raises(OutOfOrderError, match="interleaves"):
            FeatureStore().ingest_columns(chunk)

    def test_unsorted_run_rejected(self, serve_trace):
        ds = serve_trace.records
        rows = np.flatnonzero(
            np.asarray(ds["drive_id"]) == ds["drive_id"][0]
        )[:3]
        pick = rows[::-1]
        chunk = {k: v[pick] for k, v in _all_columns(ds).items()}
        with pytest.raises(OutOfOrderError, match="age-sorted"):
            FeatureStore().ingest_columns(chunk)

    def test_chunk_rewinding_past_state_rejected(self, serve_trace):
        ds = serve_trace.records
        store = FeatureStore()
        store.ingest_columns(_all_columns(ds))
        head = {k: v[:4] for k, v in _all_columns(ds).items()}
        with pytest.raises(OutOfOrderError, match="rewinds"):
            store.ingest_columns(head)

    def test_empty_chunk_is_noop(self):
        store = FeatureStore()
        out = store.ingest_columns(
            {"drive_id": np.empty(0, dtype=np.int64), "age_days": np.empty(0)}
        )
        assert out.shape == (0, len(feature_names()))
        assert store.events_total == 0


class TestState:
    def test_drive_state_matches_manual_sums(self, serve_trace):
        ds = serve_trace.records
        store = FeatureStore()
        store.ingest_columns(_all_columns(ds))
        ids = np.asarray(ds["drive_id"])
        drive = int(ids[0])
        mask = ids == drive
        state = store.drive_state(drive)
        assert state["n_records"] == int(mask.sum())
        assert state["last_age_days"] == int(
            np.asarray(ds["age_days"])[mask].max()
        )
        assert state["cumulative"]["read_count"] == float(
            np.asarray(ds["read_count"])[mask].sum()
        )

    def test_unknown_drive_state_is_none(self):
        assert FeatureStore().drive_state(404) is None

    def test_capacity_growth(self, serve_trace):
        ds = serve_trace.records
        tiny = FeatureStore(capacity=1)
        big = FeatureStore()
        a = tiny.ingest_columns(_all_columns(ds))
        b = big.ingest_columns(_all_columns(ds))
        assert np.array_equal(a, b)
        assert tiny.n_drives == big.n_drives == len(tiny)


class TestSnapshot:
    def _full_store(self, ds):
        store = FeatureStore()
        store.ingest_columns(_all_columns(ds))
        return store

    def test_roundtrip_is_bit_identical(self, serve_trace, tmp_path):
        store = self._full_store(serve_trace.records)
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        store.snapshot(a)
        FeatureStore.restore(a).snapshot(b)
        assert a.read_bytes() == b.read_bytes()

    def test_restore_resumes_with_identical_features(
        self, serve_trace, tmp_path
    ):
        ds = serve_trace.records
        ff = build_features(ds)
        cut = len(ds) // 2
        cols = _all_columns(ds)
        store = FeatureStore()
        store.ingest_columns({k: v[:cut] for k, v in cols.items()})
        store.snapshot(tmp_path / "mid.npz")
        restored = FeatureStore.restore(tmp_path / "mid.npz")
        assert restored.events_total == cut
        tail = restored.ingest_columns({k: v[cut:] for k, v in cols.items()})
        assert np.array_equal(tail, ff.X[cut:])

    def test_schema_mismatch_refused(self, serve_trace, tmp_path):
        store = self._full_store(serve_trace.records)
        path = tmp_path / "snap.npz"
        store.snapshot(path)
        with np.load(path) as payload:
            arrays = {k: payload[k] for k in payload.files}
        arrays["schema_hash"] = np.frombuffer(
            (b"0" * 64), dtype=np.uint8
        ).copy()
        atomic_save_npz(path, **arrays)
        with pytest.raises(SchemaMismatchError, match="feature schema"):
            FeatureStore.restore(path)

    def test_missing_arrays_detected(self, tmp_path):
        path = tmp_path / "partial.npz"
        atomic_save_npz(path, drive_id=np.arange(3, dtype=np.int64))
        with pytest.raises(FeatureStoreError, match="missing arrays"):
            FeatureStore.restore(path)

    def test_truncated_snapshot_detected(self, serve_trace, tmp_path):
        store = self._full_store(serve_trace.records)
        path = tmp_path / "snap.npz"
        store.snapshot(path)
        truncate_file(path, keep_fraction=0.4)
        with pytest.raises(FeatureStoreError, match="unreadable"):
            FeatureStore.restore(path)

    def test_garbage_file_detected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_text("not a zip archive")
        with pytest.raises(FeatureStoreError, match="unreadable"):
            FeatureStore.restore(path)


class TestConcurrentSnapshot:
    def test_snapshots_during_ingest_are_consistent(
        self, serve_trace, tmp_path
    ):
        # An ingesting thread races a snapshotting thread; the lock must
        # make every snapshot a consistent prefix of the event stream —
        # loadable, schema-clean, with events_total matching the number
        # of absorbed rows at some chunk boundary.
        ds = serve_trace.records
        store = FeatureStore()
        chunk_edges = {0}
        done = threading.Event()

        def ingest():
            seen = 0
            for chunk in iter_drive_day_chunks(ds, chunk_rows=128):
                store.ingest_columns(chunk)
                seen += len(chunk["drive_id"])
                chunk_edges.add(seen)
            done.set()

        worker = threading.Thread(target=ingest)
        worker.start()
        snapshots = []
        i = 0
        while not done.is_set() or not snapshots:
            path = tmp_path / f"snap_{i}.npz"
            store.snapshot(path)
            snapshots.append(path)
            i += 1
        worker.join()
        final = tmp_path / "final.npz"
        store.snapshot(final)
        for path in snapshots:
            restored = FeatureStore.restore(path)
            assert restored.events_total in chunk_edges
        # The final snapshot equals a clean single-pass store's, byte
        # for byte.
        clean = FeatureStore()
        clean.ingest_columns(_all_columns(ds))
        clean_path = tmp_path / "clean.npz"
        clean.snapshot(clean_path)
        assert final.read_bytes() == clean_path.read_bytes()
