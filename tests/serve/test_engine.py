"""Scoring engine: online/offline parity, batching, crash recovery.

The acceptance gates of the serving layer live here:

- replay parity, serial and ``workers=2``, bit-for-bit;
- the micro-batched request path scores identically to batch;
- snapshot -> SIGKILL -> restore resumes with identical subsequent
  scores (a real subprocess killed with ``SIGKILL``, nothing staged);
- replay under ``$REPRO_CHAOS`` worker faults stays bit-identical.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.data.io import iter_drive_days, save_dataset_npz
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.resilience import ENV_CHAOS, ENV_CHAOS_SEED, SupervisionLog, SupervisorPolicy
from repro.data.dataset import DriveDayDataset
from repro.serve import (
    AdmissionGuard,
    BatchPolicy,
    FeatureStore,
    QueuePolicy,
    ScoringEngine,
    SchemaMismatchError,
)
from .test_batching import FakeClock

SRC = str(Path(__file__).resolve().parents[2] / "src")

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="chaos injection rides the fork start method",
)


class TestReplayParity:
    def test_serial_replay_matches_offline(
        self, serve_trace, predictor, offline_probs
    ):
        result = ScoringEngine(predictor).replay(
            serve_trace.records, chunk_rows=512
        )
        assert result.n_events == len(offline_probs)
        assert np.array_equal(result.probability, offline_probs)

    def test_parallel_backfill_matches_offline(
        self, serve_trace, predictor, offline_probs
    ):
        engine = ScoringEngine(predictor, workers=2)
        result = engine.replay(serve_trace.records, chunk_rows=4096)
        assert np.array_equal(result.probability, offline_probs)

    @pytest.mark.parametrize("chunk_rows", [333, 1024, 100_000])
    def test_chunk_size_is_a_pure_throughput_knob(
        self, serve_trace, predictor, offline_probs, chunk_rows
    ):
        result = ScoringEngine(predictor).replay(
            serve_trace.records, chunk_rows=chunk_rows
        )
        assert np.array_equal(result.probability, offline_probs)

    def test_replay_from_npz_path(
        self, serve_trace, predictor, offline_probs, tmp_path
    ):
        path = tmp_path / "records.npz"
        save_dataset_npz(serve_trace.records, path)
        result = ScoringEngine(predictor).replay(path, chunk_rows=777)
        assert np.array_equal(result.probability, offline_probs)
        assert result.accepted_index is None  # unguarded: 1:1 with rows


class TestGuardedReplay:
    """Guarded replays report which source rows their scores cover."""

    def test_accepted_index_maps_scores_to_source_rows(
        self, serve_trace, predictor
    ):
        cols = {
            k: np.array(v, copy=True) for k, v in serve_trace.records.items()
        }
        n = len(cols["drive_id"])
        rng = np.random.default_rng(0)
        bad = np.sort(rng.choice(n, size=25, replace=False))
        cols["write_count"][bad] = -1  # schema fault: the guard diverts
        store = FeatureStore()
        engine = ScoringEngine(
            predictor, store=store, guard=AdmissionGuard(store)
        )
        result = engine.replay(DriveDayDataset(cols), chunk_rows=512)

        good = np.setdiff1d(np.arange(n), bad)
        assert result.n_diverted == len(bad)
        assert np.array_equal(result.accepted_index, good)
        # Each probability is the score of *its* source row: the whole
        # result matches an unguarded replay of the accepted subset.
        subset = DriveDayDataset(
            {k: np.asarray(v)[good] for k, v in serve_trace.records.items()}
        )
        offline = ScoringEngine(predictor).replay(subset)
        assert np.array_equal(result.probability, offline.probability)

    def test_clean_guarded_replay_indexes_every_row(
        self, serve_trace, predictor, offline_probs
    ):
        store = FeatureStore()
        engine = ScoringEngine(
            predictor, store=store, guard=AdmissionGuard(store)
        )
        result = engine.replay(serve_trace.records, chunk_rows=777)
        assert np.array_equal(
            result.accepted_index, np.arange(result.n_events)
        )
        assert np.array_equal(result.probability, offline_probs)

    def test_shed_policy_requires_guard(self, predictor):
        with pytest.raises(ValueError, match="shed"):
            ScoringEngine(
                predictor,
                queue_policy=QueuePolicy(max_depth=4, on_full="shed"),
            )


class TestRequestPath:
    def test_submit_drain_matches_offline(
        self, serve_trace, predictor, offline_probs
    ):
        engine = ScoringEngine(
            predictor,
            batch_policy=BatchPolicy(max_batch_size=64, max_wait_seconds=60),
        )
        events = []
        for record in iter_drive_days(serve_trace.records):
            events.extend(engine.submit(record))
        events.extend(engine.drain())
        assert len(events) == len(offline_probs)
        assert np.array_equal(
            np.array([e.probability for e in events]), offline_probs
        )
        ids = np.asarray(serve_trace.records["drive_id"])
        assert [e.drive_id for e in events] == ids.tolist()

    def test_unbatched_submit_matches_offline(
        self, serve_trace, predictor, offline_probs
    ):
        engine = ScoringEngine(
            predictor,
            batch_policy=BatchPolicy(max_batch_size=1),
        )
        probs = []
        for _, record in zip(range(200), iter_drive_days(serve_trace.records)):
            flushed = engine.submit(record)
            assert len(flushed) == 1
            probs.append(flushed[0].probability)
        assert np.array_equal(np.array(probs), offline_probs[:200])

    def test_poll_flushes_by_wait(self, serve_trace, predictor):
        clock = FakeClock()
        engine = ScoringEngine(
            predictor,
            batch_policy=BatchPolicy(max_batch_size=1000, max_wait_seconds=1.0),
            clock=clock,
        )
        records = iter_drive_days(serve_trace.records)
        for _, record in zip(range(5), records):
            assert engine.submit(record) == []
        assert engine.poll() == []
        clock.advance(1.0)
        assert len(engine.poll()) == 5
        assert engine.poll() == []


class TestSchemaGate:
    def test_unfitted_predictor_rejected(self):
        from repro.core import FailurePredictor

        with pytest.raises(ValueError, match="fitted"):
            ScoringEngine(FailurePredictor())

    def test_feature_layout_mismatch_rejected(self, predictor):
        import copy

        stale = copy.deepcopy(predictor)
        stale._feature_names = tuple(reversed(predictor.feature_names))
        with pytest.raises(SchemaMismatchError, match="feature layout"):
            ScoringEngine(stale)


class TestInstrumentation:
    def test_spans_and_metrics_emitted(self, serve_trace, predictor):
        tracer = obs_tracing.Tracer()
        registry = obs_metrics.MetricsRegistry()
        with obs_tracing.activate(tracer), obs_metrics.activate(registry):
            ScoringEngine(predictor).replay(serve_trace.records, chunk_rows=512)
        names = {span.name for span in tracer.finished()}
        assert "repro.serve.replay" in names
        assert "repro.serve.score_batch" in names
        rendered = registry.render_prometheus()
        assert "repro_serve_events_total" in rendered
        assert "repro_serve_batches_total" in rendered
        assert "repro_serve_batch_size" in rendered
        assert "repro_serve_store_drives" in rendered


class TestCrashRecovery:
    def test_snapshot_restore_resumes_identically(
        self, serve_trace, predictor, offline_probs, tmp_path
    ):
        cut_target = len(serve_trace.records) // 2
        store = FeatureStore()
        engine = ScoringEngine(predictor, store=store)
        engine.replay(
            serve_trace.records,
            chunk_rows=cut_target,
            snapshot_every=cut_target,
            snapshot_path=tmp_path / "snap.npz",
        )
        # Restore the FIRST snapshot by re-ingesting to the same edge.
        restored_store = FeatureStore()
        head = {
            k: v[:cut_target]
            for k, v in (
                (name, serve_trace.records[name])
                for name in serve_trace.records.column_names
            )
        }
        restored_store.ingest_columns(head)
        restored_store.snapshot(tmp_path / "mid.npz")
        resumed = FeatureStore.restore(tmp_path / "mid.npz")
        result = ScoringEngine(predictor, store=resumed).replay(
            serve_trace.records,
            chunk_rows=999,
            start_row=resumed.events_total,
        )
        assert np.array_equal(
            result.probability, offline_probs[cut_target:]
        )

    def test_sigkill_then_restore_scores_identically(
        self, serve_trace, predictor, offline_probs, tmp_path
    ):
        # A real replay process is SIGKILLed mid-stream (it kills itself
        # at a deterministic event count, so no timing races); the parent
        # restores the last snapshot and resumes.  The resumed scores
        # must equal the offline pipeline's tail bit-for-bit.
        records_path = tmp_path / "records.npz"
        model_path = tmp_path / "model.pkl"
        snap_path = tmp_path / "store.npz"
        save_dataset_npz(serve_trace.records, records_path)
        with open(model_path, "wb") as fh:
            pickle.dump(predictor, fh)
        kill_at = len(serve_trace.records) // 2
        script = textwrap.dedent(
            f"""
            import os, pickle, signal, sys
            sys.path.insert(0, {SRC!r})
            from repro.serve import ScoringEngine

            with open({str(model_path)!r}, "rb") as fh:
                predictor = pickle.load(fh)

            def boom(n_events):
                if n_events >= {kill_at}:
                    os.kill(os.getpid(), signal.SIGKILL)

            ScoringEngine(predictor).replay(
                {str(records_path)!r},
                chunk_rows=500,
                snapshot_every=1000,
                snapshot_path={str(snap_path)!r},
                progress=boom,
            )
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        assert snap_path.exists(), "no snapshot survived the SIGKILL"
        restored = FeatureStore.restore(snap_path)
        start = restored.events_total  # replay advances the counter
        assert 0 < start <= kill_at
        result = ScoringEngine(predictor, store=restored).replay(
            records_path,
            chunk_rows=713,
            start_row=start,
        )
        assert np.array_equal(result.probability, offline_probs[start:])


@fork_only
class TestChaos:
    def test_replay_bit_identical_under_worker_faults(
        self, serve_trace, predictor, offline_probs, monkeypatch
    ):
        # Every supervised scoring task errors on its first attempt
        # (error=1.0) and is retried; the replayed scores must still be
        # byte-identical and the supervision log must show the retries.
        monkeypatch.setenv(ENV_CHAOS, "error=1.0")
        monkeypatch.setenv(ENV_CHAOS_SEED, "0")
        supervision = SupervisionLog()
        engine = ScoringEngine(
            predictor,
            workers=2,
            policy=SupervisorPolicy(max_retries=3),
            supervision=supervision,
        )
        result = engine.replay(serve_trace.records, chunk_rows=4096)
        assert np.array_equal(result.probability, offline_probs)
        assert supervision.events, "chaos produced no supervision events"
