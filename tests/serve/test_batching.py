"""Micro-batcher: flush bounds, ordering, policy validation."""

from __future__ import annotations

import pytest

from repro.serve import BatchPolicy, MicroBatcher


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestBatchPolicy:
    def test_defaults(self):
        policy = BatchPolicy()
        assert policy.max_batch_size == 256
        assert policy.max_wait_seconds == 0.005

    @pytest.mark.parametrize(
        "kwargs", [{"max_batch_size": 0}, {"max_wait_seconds": -1.0}]
    )
    def test_rejects_bad_bounds(self, kwargs):
        with pytest.raises(ValueError):
            BatchPolicy(**kwargs)


class TestMicroBatcher:
    def test_size_bound_flushes(self):
        clock = FakeClock()
        mb = MicroBatcher(BatchPolicy(max_batch_size=3, max_wait_seconds=60), clock)
        assert mb.add("a") is None
        assert mb.add("b") is None
        assert mb.add("c") == ["a", "b", "c"]
        assert len(mb) == 0

    def test_wait_bound_flushes_on_add(self):
        clock = FakeClock()
        mb = MicroBatcher(BatchPolicy(max_batch_size=100, max_wait_seconds=1.0), clock)
        assert mb.add("a") is None
        clock.advance(2.0)
        assert mb.add("b") == ["a", "b"]

    def test_poll_flushes_by_wait_only(self):
        clock = FakeClock()
        mb = MicroBatcher(BatchPolicy(max_batch_size=100, max_wait_seconds=1.0), clock)
        mb.add("a")
        assert mb.poll() is None
        clock.advance(1.0)
        assert mb.poll() == ["a"]
        assert mb.poll() is None

    def test_zero_wait_disables_batching(self):
        clock = FakeClock()
        mb = MicroBatcher(BatchPolicy(max_batch_size=100, max_wait_seconds=0.0), clock)
        assert mb.add("a") == ["a"]
        assert mb.add("b") == ["b"]

    def test_flush_preserves_arrival_order(self):
        clock = FakeClock()
        mb = MicroBatcher(BatchPolicy(max_batch_size=100, max_wait_seconds=60), clock)
        for item in range(5):
            mb.add(item)
        assert mb.flush() == [0, 1, 2, 3, 4]
        assert mb.flush() == []

    def test_oldest_wait_tracks_head(self):
        clock = FakeClock()
        mb = MicroBatcher(BatchPolicy(max_batch_size=100, max_wait_seconds=60), clock)
        assert mb.oldest_wait == 0.0
        mb.add("a")
        clock.advance(3.0)
        mb.add("b")
        assert mb.oldest_wait == 3.0
