"""Snapshot rotation: keep-last-K retention that never eats the last copy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import (
    FeatureStore,
    ScoringEngine,
    latest_snapshot,
    list_generations,
    prune_generations,
    write_rotated,
)
from repro.serve.snapshots import generation_path


def touch(path):
    path.write_text("x")


class TestGenerationPaths:
    def test_naming(self, tmp_path):
        base = tmp_path / "store.npz"
        assert generation_path(base, 1).name == "store-g000001.npz"
        assert generation_path(base, 123456).name == "store-g123456.npz"

    def test_negative_generation_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            generation_path(tmp_path / "store.npz", -1)

    def test_list_orders_numerically(self, tmp_path):
        base = tmp_path / "store.npz"
        for g in (3, 1, 10):
            touch(generation_path(base, g))
        # A different stem and a different suffix must not match.
        touch(tmp_path / "other-g000002.npz")
        touch(tmp_path / "store-g000004.json")
        assert [g for g, _ in list_generations(base)] == [1, 3, 10]

    def test_list_of_empty_dir(self, tmp_path):
        assert list_generations(tmp_path / "missing" / "store.npz") == []


class TestLatestSnapshot:
    def test_exact_file_wins(self, tmp_path):
        base = tmp_path / "store.npz"
        touch(base)
        touch(generation_path(base, 5))
        assert latest_snapshot(base) == base

    def test_resolves_newest_generation(self, tmp_path):
        base = tmp_path / "store.npz"
        touch(generation_path(base, 1))
        touch(generation_path(base, 2))
        assert latest_snapshot(base) == generation_path(base, 2)

    def test_nothing_there(self, tmp_path):
        assert latest_snapshot(tmp_path / "store.npz") is None


class TestRetention:
    def test_write_rotated_increments_and_prunes(self, tmp_path):
        base = tmp_path / "store.npz"
        written = [write_rotated(base, touch, keep=2) for _ in range(4)]
        assert [p.name for p in written] == [
            f"store-g{g:06d}.npz" for g in (1, 2, 3, 4)
        ]
        assert [g for g, _ in list_generations(base)] == [3, 4]

    def test_prune_keeps_newest(self, tmp_path):
        base = tmp_path / "store.npz"
        for g in range(1, 6):
            touch(generation_path(base, g))
        doomed = prune_generations(base, keep=2)
        assert [p.name for p in doomed] == [
            f"store-g{g:06d}.npz" for g in (1, 2, 3)
        ]
        assert [g for g, _ in list_generations(base)] == [4, 5]

    def test_prune_under_threshold_is_noop(self, tmp_path):
        base = tmp_path / "store.npz"
        touch(generation_path(base, 1))
        assert prune_generations(base, keep=2) == []

    def test_keep_zero_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            prune_generations(tmp_path / "store.npz", keep=0)

    def test_prune_runs_only_after_save_succeeds(self, tmp_path):
        # A save that dies mid-write must leave old generations alone:
        # pruning is ordered strictly after a durable new generation.
        base = tmp_path / "store.npz"
        touch(generation_path(base, 1))

        def exploding_save(path):
            raise OSError("disk full")

        with pytest.raises(OSError):
            write_rotated(base, exploding_save, keep=1)
        assert [g for g, _ in list_generations(base)] == [1]


class TestReplayRotation:
    def test_replay_rotates_and_restores_identically(
        self, tmp_path, serve_trace, predictor, offline_probs
    ):
        base = tmp_path / "snap.npz"
        result = ScoringEngine(predictor).replay(
            serve_trace.records,
            chunk_rows=512,
            snapshot_every=1000,
            snapshot_path=base,
            snapshot_keep=2,
        )
        assert np.array_equal(result.probability, offline_probs)
        gens = list_generations(base)
        assert len(gens) == 2  # pruned down to K
        newest = latest_snapshot(base)
        assert newest == gens[-1][1]
        # The newest generation restores to a working store whose
        # resumed scores match: restore, skip what it saw, replay rest.
        store = FeatureStore.restore(newest)
        seen = store.events_total
        resumed = ScoringEngine(predictor, store=store).replay(
            serve_trace.records, chunk_rows=512, start_row=seen
        )
        assert np.array_equal(resumed.probability, offline_probs[seen:])
