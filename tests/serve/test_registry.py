"""Model registry: versioning, activation gating, corruption recovery."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import FailurePredictor
from repro.core.features import feature_schema_hash
from repro.obs.manifest import file_digest
from repro.reliability import truncate_file
from repro.serve import ModelRegistry, RegistryError
from repro.serve.registry import SchemaMismatchError


@pytest.fixture()
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


def _tamper_meta(registry, version, **updates):
    path = registry.versions_dir / version / "meta.json"
    meta = json.loads(path.read_text())
    meta.update(updates)
    path.write_text(json.dumps(meta))


class TestPublish:
    def test_versions_are_sequential(self, registry, predictor):
        assert registry.versions() == []
        assert registry.publish(predictor) == "v0001"
        assert registry.publish(predictor) == "v0002"
        assert registry.versions() == ["v0001", "v0002"]
        assert registry.active_version() is None

    def test_meta_records_provenance(self, registry, predictor, tmp_path):
        manifest = tmp_path / "train_manifest.json"
        manifest.write_text("{}")
        version = registry.publish(predictor, training_manifest=manifest)
        meta = registry.meta(version)
        assert meta["feature_schema_hash"] == feature_schema_hash()
        assert meta["feature_names"] == list(predictor.feature_names)
        assert meta["model_digest"] == file_digest(
            registry.versions_dir / version / "model.pkl"
        )
        assert meta["config"]["lookahead"] == predictor.lookahead
        assert meta["training_manifest_digest"] == file_digest(manifest)
        assert len(meta["config_digest"]) == 64

    def test_unfitted_predictor_refused(self, registry):
        with pytest.raises(RegistryError, match="unfitted"):
            registry.publish(FailurePredictor())

    def test_publish_with_activate(self, registry, predictor):
        version = registry.publish(predictor, activate=True)
        assert registry.active_version() == version


class TestActivate:
    def test_missing_version_refused(self, registry, predictor):
        registry.publish(predictor)
        with pytest.raises(RegistryError, match="no version 'v9999'"):
            registry.activate("v9999")

    def test_empty_registry_refused(self, registry):
        with pytest.raises(RegistryError, match="no version"):
            registry.activate("v0001")

    def test_schema_hash_mismatch_refused(self, registry, predictor):
        version = registry.publish(predictor)
        _tamper_meta(registry, version, feature_schema_hash="0" * 64)
        with pytest.raises(SchemaMismatchError, match="refusing to activate"):
            registry.activate(version)
        assert registry.active_version() is None


class TestLoad:
    def test_roundtrip_scores_identically(
        self, registry, predictor, serve_trace, offline_probs
    ):
        registry.publish(predictor, activate=True)
        loaded = registry.load()
        assert np.array_equal(
            loaded.predict_proba_records(serve_trace.records), offline_probs
        )

    def test_explicit_version(self, registry, predictor):
        registry.publish(predictor)
        assert registry.load("v0001").lookahead == predictor.lookahead

    def test_no_active_version(self, registry, predictor):
        registry.publish(predictor)
        with pytest.raises(RegistryError, match="no active version"):
            registry.load()

    def test_corrupt_artifact_detected_before_unpickle(
        self, registry, predictor
    ):
        version = registry.publish(predictor, activate=True)
        truncate_file(
            registry.versions_dir / version / "model.pkl", keep_fraction=0.5
        )
        with pytest.raises(RegistryError, match="corrupt"):
            registry.load()

    def test_missing_artifact_detected(self, registry, predictor):
        version = registry.publish(predictor, activate=True)
        (registry.versions_dir / version / "model.pkl").unlink()
        with pytest.raises(RegistryError, match="missing"):
            registry.load()


class TestRollback:
    def test_rollback_after_corrupt_artifact(
        self, registry, predictor, serve_trace, offline_probs
    ):
        # The operational story: v2 goes live, its artifact corrupts on
        # disk, load() refuses, rollback() restores v1 and serving
        # continues with identical scores.
        registry.publish(predictor, activate=True)
        v2 = registry.publish(predictor, activate=True)
        truncate_file(
            registry.versions_dir / v2 / "model.pkl", keep_fraction=0.3
        )
        with pytest.raises(RegistryError, match="roll back"):
            registry.load()
        assert registry.rollback() == "v0001"
        assert registry.active_version() == "v0001"
        loaded = registry.load()
        assert np.array_equal(
            loaded.predict_proba_records(serve_trace.records), offline_probs
        )

    def test_rollback_needs_history(self, registry, predictor):
        with pytest.raises(RegistryError, match="nothing to roll back"):
            registry.rollback()
        registry.publish(predictor, activate=True)
        with pytest.raises(RegistryError, match="nothing to roll back"):
            registry.rollback()

    def test_consecutive_rollbacks_walk_the_stack(self, registry, predictor):
        for _ in range(3):
            registry.publish(predictor, activate=True)
        assert registry.active_version() == "v0003"
        assert registry.rollback() == "v0002"
        assert registry.rollback() == "v0001"
        with pytest.raises(RegistryError, match="nothing to roll back"):
            registry.rollback()

    def test_rollback_rechecks_schema(self, registry, predictor):
        registry.publish(predictor, activate=True)
        registry.publish(predictor, activate=True)
        _tamper_meta(registry, "v0001", feature_schema_hash="f" * 64)
        with pytest.raises(SchemaMismatchError, match="refusing rollback"):
            registry.rollback()
        # The failed rollback must not have changed the active version.
        assert registry.active_version() == "v0002"


class TestStateFile:
    def test_unreadable_state_is_clean_error(self, registry, predictor):
        registry.publish(predictor, activate=True)
        (registry.root / "registry.json").write_text("{not json")
        with pytest.raises(RegistryError, match="unreadable"):
            registry.active_version()

    def test_fresh_registry_state(self, registry):
        assert registry.versions() == []
        assert registry.active_version() is None
