"""Dead-letter queue, journal, canonical events, and the heal planner."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve import (
    HEALABLE_FAULTS,
    REFETCHABLE_FAULTS,
    DeadLetterEntry,
    DeadLetterError,
    DeadLetterQueue,
    EventJournal,
    build_heal_plan,
    canonical_event,
    event_digest,
)

from .test_guard import make_event


class TestCanonicalEvent:
    def test_numpy_scalars_become_python_scalars(self):
        ev = make_event(1, 2)
        ev["correctable_error"] = np.int64(14)
        ev["pe_cycles"] = np.float64(2.0)
        out = canonical_event(ev)
        assert type(out["correctable_error"]) is int
        assert type(out["pe_cycles"]) is float

    def test_round_trip_through_json_is_exact(self):
        ev = canonical_event(make_event(3, 7, pe_cycles=0.1 + 0.2))
        back = json.loads(json.dumps(ev))
        assert canonical_event(back) == ev

    def test_unknown_keys_preserved_after_registry_fields(self):
        ev = make_event(1, 0)
        ev["site"] = "dc-7"
        out = canonical_event(ev)
        assert out["site"] == "dc-7"
        assert list(out)[-1] == "site"

    def test_nan_in_integer_field_kept_verbatim(self):
        out = canonical_event(make_event(1, 0, correctable_error=float("nan")))
        assert isinstance(out["correctable_error"], float)
        assert np.isnan(out["correctable_error"])

    def test_fractional_value_in_integer_field_not_truncated(self):
        out = canonical_event(make_event(1, 0, correctable_error=7.5))
        assert out["correctable_error"] == 7.5

    def test_string_in_numeric_field_kept_verbatim(self):
        out = canonical_event(make_event(1, 0, read_count="sick"))
        assert out["read_count"] == "sick"


class TestEventDigest:
    def test_equal_payloads_equal_digests(self):
        a = make_event(2, 9)
        b = {k: np.int64(v) if isinstance(v, int) else v for k, v in a.items()}
        assert event_digest(a) == event_digest(b)

    def test_any_field_change_changes_digest(self):
        base = make_event(2, 9)
        assert event_digest(base) != event_digest(
            dict(base, write_count=base["write_count"] + 1)
        )

    def test_key_order_irrelevant(self):
        ev = make_event(5, 1)
        reordered = dict(reversed(list(ev.items())))
        assert event_digest(ev) == event_digest(reordered)


class TestQueueAndJournal:
    def test_divert_read_round_trip(self, tmp_path):
        path = tmp_path / "dlq.jsonl"
        with DeadLetterQueue(path) as dlq:
            dlq.divert(
                "late",
                "3d behind",
                event=make_event(1, 4),
                drive_id=1,
                age_days=4,
                watermark=7,
            )
            dlq.divert("malformed", "not json", raw="{broken")
        entries = DeadLetterQueue.read(path)
        assert [e.seq for e in entries] == [0, 1]
        first, second = entries
        assert (first.fault, first.drive_id, first.watermark) == ("late", 1, 7)
        assert first.event == canonical_event(make_event(1, 4))
        assert second.raw == "{broken"
        assert second.event is None
        assert dlq.by_fault == {"late": 1, "malformed": 1}

    def test_unknown_fault_class_rejected(self, tmp_path):
        with DeadLetterQueue(tmp_path / "d.jsonl") as dlq:
            with pytest.raises(DeadLetterError, match="unknown fault class"):
                dlq.divert("mystery", "?")

    def test_lazy_open_no_file_until_first_append(self, tmp_path):
        path = tmp_path / "never.jsonl"
        with DeadLetterQueue(path):
            pass
        assert not path.exists()

    def test_reopened_dlq_resumes_seq(self, tmp_path):
        # A second run over the same path must not restart seq at 0 —
        # colliding seqs would make the heal ordering (drive, age, seq)
        # arbitrary across the merged runs.
        path = tmp_path / "dlq.jsonl"
        with DeadLetterQueue(path) as dlq:
            dlq.divert("late", "a", drive_id=1, age_days=1)
            dlq.divert("late", "b", drive_id=1, age_days=2)
        with DeadLetterQueue(path) as dlq:
            dlq.divert("shed", "c", drive_id=2, age_days=1)
        assert [e.seq for e in DeadLetterQueue.read(path)] == [0, 1, 2]

    def test_reopened_journal_resumes_seq(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with EventJournal(path) as journal:
            journal.record(make_event(1, 0))
        with EventJournal(path) as journal:
            journal.record(make_event(1, 1))
        assert [r["seq"] for r in EventJournal.read(path)] == [0, 1]

    def test_read_missing_file_raises(self, tmp_path):
        with pytest.raises(DeadLetterError, match="does not exist"):
            DeadLetterQueue.read(tmp_path / "gone.jsonl")
        with pytest.raises(DeadLetterError, match="does not exist"):
            EventJournal.read(tmp_path / "gone.jsonl")

    def test_read_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "dlq.jsonl"
        path.write_text('{"seq": 0, "fault": "late", "reason": ""}\n{oops\n')
        with pytest.raises(DeadLetterError, match="line 2"):
            DeadLetterQueue.read(path)

    def test_journal_round_trip_preserves_order(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        events = [make_event(d, a) for d in (3, 1) for a in (0, 1)]
        with EventJournal(path) as journal:
            for ev in events:
                journal.record(ev)
        rows = EventJournal.read(path)
        assert [r["seq"] for r in rows] == [0, 1, 2, 3]
        assert [r["event"] for r in rows] == [canonical_event(e) for e in events]

    def test_fault_class_partition(self):
        # heal semantics rely on the two sets being disjoint
        assert not HEALABLE_FAULTS & REFETCHABLE_FAULTS
        assert "malformed" not in HEALABLE_FAULTS | REFETCHABLE_FAULTS


class TestBuildHealPlan:
    def _journal(self, events):
        return [{"seq": i, "event": canonical_event(e)} for i, e in enumerate(events)]

    def test_late_entry_restored_in_drive_order(self):
        accepted = [make_event(1, 0), make_event(1, 2), make_event(2, 0)]
        late = DeadLetterEntry(
            seq=0,
            fault="late",
            reason="",
            drive_id=1,
            age_days=1,
            watermark=2,
            event=canonical_event(make_event(1, 1)),
        )
        plan = build_heal_plan(self._journal(accepted), [late])
        assert plan.healed_by_fault == {"late": 1}
        assert not plan.unhealable
        ages = [(e["drive_id"], e["age_days"]) for e in plan.events]
        assert ages == [(1, 0), (1, 1), (1, 2), (2, 0)]

    def test_exact_duplicates_collapse_to_earliest(self):
        ev = make_event(4, 3)
        dup = DeadLetterEntry(
            seq=0, fault="shed", reason="", drive_id=4, age_days=3,
            event=canonical_event(ev),
        )
        plan = build_heal_plan(self._journal([ev]), [dup])
        assert plan.duplicates_dropped == 1
        assert len(plan.events) == 1
        # still accounted as healed: the drive-day needs no further action
        assert plan.healed_by_fault == {"shed": 1}

    def test_schema_fault_without_refetch_is_unhealable(self):
        entry = DeadLetterEntry(
            seq=0, fault="schema", reason="negative", drive_id=2, age_days=5,
            event=canonical_event(make_event(2, 5, read_count=-1)),
        )
        plan = build_heal_plan([], [entry])
        assert plan.unhealable == [entry]
        assert plan.n_healed == 0

    def test_schema_fault_heals_from_refetch(self):
        entry = DeadLetterEntry(
            seq=0, fault="schema", reason="negative", drive_id=2, age_days=5,
        )
        truth = make_event(2, 5)
        plan = build_heal_plan([], [entry], refetch={(2, 5): truth})
        assert plan.healed_by_fault == {"schema": 1}
        assert plan.events == [canonical_event(truth)]

    def test_conflict_prefers_refetched_truth(self):
        garbled = make_event(7, 1, read_count=999999)
        truth = make_event(7, 1)
        entry = DeadLetterEntry(
            seq=0, fault="conflict", reason="", drive_id=7, age_days=1,
            event=canonical_event(truth),
        )
        plan = build_heal_plan(
            self._journal([garbled]), [entry], refetch={(7, 1): truth}
        )
        assert plan.conflicts_resolved == 1
        assert plan.events == [canonical_event(truth)]

    def test_conflict_without_refetch_keeps_journal_side(self):
        journal_ev = make_event(7, 1)
        other = make_event(7, 1, write_count=42)
        entry = DeadLetterEntry(
            seq=0, fault="late", reason="", drive_id=7, age_days=1,
            event=canonical_event(other),
        )
        plan = build_heal_plan(self._journal([journal_ev]), [entry])
        assert plan.conflicts_resolved == 1
        assert plan.events == [canonical_event(journal_ev)]

    def test_malformed_always_unhealable(self):
        entry = DeadLetterEntry(seq=0, fault="malformed", reason="", raw="{x")
        plan = build_heal_plan([], [entry], refetch={})
        assert plan.unhealable == [entry]

    def test_refetch_with_nonfinite_truth_stays_dead(self):
        entry = DeadLetterEntry(
            seq=0, fault="schema", reason="", drive_id=1, age_days=1,
        )
        sick = make_event(1, 1, pe_cycles=float("nan"))
        plan = build_heal_plan([], [entry], refetch={(1, 1): sick})
        assert plan.unhealable == [entry]

    def test_plan_order_is_trace_order(self):
        # journal in arrival order, interleaved across drives
        events = [
            make_event(2, 0), make_event(1, 0), make_event(2, 1),
            make_event(1, 1),
        ]
        plan = build_heal_plan(self._journal(events), [])
        keys = [(e["drive_id"], e["age_days"]) for e in plan.events]
        assert keys == [(1, 0), (1, 1), (2, 0), (2, 1)]
