"""End-to-end tests of the ``serve`` CLI family."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.obs import load_manifest, validate_manifest


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """simulate -> train -> publish: the fixture every command needs."""
    root = tmp_path_factory.mktemp("served")
    fleet = root / "fleet"
    model = root / "model.pkl"
    registry = root / "registry"
    assert (
        main(
            [
                "simulate",
                "--out",
                str(fleet),
                "--drives",
                "8",
                "--days",
                "200",
                "--deploy-spread",
                "100",
                "--seed",
                "5",
                "--quiet",
            ]
        )
        == 0
    )
    assert (
        main(
            [
                "train",
                "--trace",
                str(fleet),
                "--model",
                str(model),
                "--lookahead",
                "7",
                "--seed",
                "3",
            ]
        )
        == 0
    )
    assert (
        main(
            [
                "serve",
                "publish",
                "--model",
                str(model),
                "--registry",
                str(registry),
                "--training-manifest",
                str(model) + ".manifest.json",
                "--activate",
            ]
        )
        == 0
    )
    return {"fleet": fleet, "model": model, "registry": registry}


class TestParser:
    def test_serve_subcommands_registered(self):
        parser = build_parser()
        argvs = {
            "replay": ["serve", "replay", "--trace", "x", "--model", "m"],
            "publish": ["serve", "publish", "--model", "m", "--registry", "r"],
            "bench": ["serve", "bench"],
            "run": ["serve", "run", "--model", "m"],
        }
        for subcommand, argv in argvs.items():
            assert parser.parse_args(argv).serve_command == subcommand

    def test_model_and_registry_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "replay", "--trace", "x", "--model", "m", "--registry", "r"]
            )

    def test_execution_flags_shared_across_commands(self):
        parser = build_parser()
        for argv in (
            ["simulate", "--out", "x"],
            ["train", "--trace", "t", "--model", "m"],
            ["score", "--trace", "t", "--model", "m"],
            ["serve", "replay", "--trace", "t", "--model", "m"],
            ["serve", "bench"],
        ):
            args = parser.parse_args(argv + ["-j", "2", "--max-retries", "5"])
            assert args.workers == 2
            assert args.max_retries == 5
            assert args.on_poison == "fail"


class TestPublish:
    def test_registry_layout(self, served):
        registry = served["registry"]
        assert (registry / "registry.json").exists()
        meta = json.loads(
            (registry / "versions" / "v0001" / "meta.json").read_text()
        )
        assert "training_manifest_digest" in meta
        assert (registry / "publish_manifest.json").exists()

    def test_publish_manifest_validates(self, served):
        data = load_manifest(served["registry"] / "publish_manifest.json")
        assert validate_manifest(data) == []
        assert data["command"] == "serve.publish"


class TestReplay:
    def test_replay_from_registry_verifies_parity(
        self, served, tmp_path, capsys
    ):
        out = tmp_path / "scores.jsonl"
        code = main(
            [
                "serve",
                "replay",
                "--trace",
                str(served["fleet"]),
                "--registry",
                str(served["registry"]),
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert "bit-for-bit" in capsys.readouterr().out
        lines = [json.loads(s) for s in out.read_text().splitlines()]
        assert lines and set(lines[0]) == {
            "drive_id",
            "age_days",
            "probability",
        }

    def test_replay_from_model_with_workers(self, served, capsys):
        code = main(
            [
                "serve",
                "replay",
                "--trace",
                str(served["fleet"]),
                "--model",
                str(served["model"]),
                "-j",
                "2",
            ]
        )
        assert code == 0

    def test_replay_manifest_validates(self, served):
        main(
            [
                "serve",
                "replay",
                "--trace",
                str(served["fleet"]),
                "--registry",
                str(served["registry"]),
            ]
        )
        data = load_manifest(served["fleet"] / "serve_replay_manifest.json")
        assert validate_manifest(data) == []
        assert data["command"] == "serve.replay"
        assert data["results"]["diverged"] == 0
        assert data["results"]["events_per_second"] > 0

    def test_divergence_exits_one(self, served, monkeypatch, capsys):
        # Fabricate a divergence: perturb one online score after replay.
        from repro import cli as cli_mod
        from repro.serve import ScoringEngine

        original = ScoringEngine.replay

        def skewed(self, *args, **kwargs):
            result = original(self, *args, **kwargs)
            result.probability[0] += 0.5
            return result

        monkeypatch.setattr(cli_mod.ScoringEngine, "replay", skewed)
        code = main(
            [
                "serve",
                "replay",
                "--trace",
                str(served["fleet"]),
                "--registry",
                str(served["registry"]),
                "--no-manifest",
            ]
        )
        assert code == 1
        assert "DIVERGED" in capsys.readouterr().err

    def test_snapshot_then_resume(self, served, tmp_path, capsys):
        snap = tmp_path / "store.npz"
        assert (
            main(
                [
                    "serve",
                    "replay",
                    "--trace",
                    str(served["fleet"]),
                    "--registry",
                    str(served["registry"]),
                    "--snapshot",
                    str(snap),
                    "--snapshot-every",
                    "500",
                    "--no-manifest",
                ]
            )
            == 0
        )
        assert snap.exists()
        code = main(
            [
                "serve",
                "replay",
                "--trace",
                str(served["fleet"]),
                "--registry",
                str(served["registry"]),
                "--restore",
                str(snap),
                "--no-manifest",
            ]
        )
        assert code == 0
        assert "resumed past" in capsys.readouterr().out

    def test_missing_trace_dir_exits_two(self, served, tmp_path, capsys):
        code = main(
            [
                "serve",
                "replay",
                "--trace",
                str(tmp_path / "absent"),
                "--model",
                str(served["model"]),
            ]
        )
        assert code == 2

    def test_tampered_registry_exits_two(self, served, tmp_path, capsys):
        meta_path = (
            served["registry"] / "versions" / "v0001" / "meta.json"
        )
        original = meta_path.read_text()
        meta = json.loads(original)
        meta["model_digest"] = "0" * 64
        meta_path.write_text(json.dumps(meta))
        try:
            code = main(
                [
                    "serve",
                    "replay",
                    "--trace",
                    str(served["fleet"]),
                    "--registry",
                    str(served["registry"]),
                ]
            )
        finally:
            meta_path.write_text(original)
        assert code == 2
        assert "corrupt" in capsys.readouterr().err


class TestRun:
    def _events(self, fleet, n=400):
        import itertools

        from repro.data.io import iter_drive_days, load_dataset_npz

        ds = load_dataset_npz(fleet / "records.npz")
        return [
            {k: v.item() for k, v in record.items()}
            for record in itertools.islice(iter_drive_days(ds), n)
        ]

    def test_stdin_stdout_jsonl_roundtrip(self, served, monkeypatch, capsys):
        events = self._events(served["fleet"])
        payload = "\n".join(json.dumps(e) for e in events) + "\n\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(payload))
        code = main(["serve", "run", "--registry", str(served["registry"])])
        captured = capsys.readouterr()
        assert code == 0
        scored = [json.loads(s) for s in captured.out.splitlines()]
        assert len(scored) == len(events)
        # Online transport order matches arrival order.
        assert [s["drive_id"] for s in scored] == [
            e["drive_id"] for e in events
        ]
        # And the scores equal the offline pipeline over the same rows.
        import pickle

        from repro.data.io import load_dataset_npz

        with open(served["model"], "rb") as fh:
            predictor = pickle.load(fh)
        ds = load_dataset_npz(served["fleet"] / "records.npz")
        offline = predictor.predict_proba_records(ds)[: len(events)]
        assert np.array_equal(
            np.array([s["probability"] for s in scored]), offline
        )

    def test_snapshot_on_stream_end(self, served, monkeypatch, tmp_path, capsys):
        events = self._events(served["fleet"], n=50)
        payload = "\n".join(json.dumps(e) for e in events)
        snap = tmp_path / "run_store.npz"
        monkeypatch.setattr("sys.stdin", io.StringIO(payload))
        code = main(
            [
                "serve",
                "run",
                "--registry",
                str(served["registry"]),
                "--snapshot",
                str(snap),
            ]
        )
        assert code == 0
        from repro.serve import FeatureStore

        assert FeatureStore.restore(snap).events_total == len(events)

    def test_bad_json_exits_two(self, served, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO("{not json}\n"))
        code = main(["serve", "run", "--registry", str(served["registry"])])
        assert code == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_missing_field_exits_two(self, served, monkeypatch, capsys):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO('{"drive_id": 1, "age_days": 3}\n')
        )
        code = main(["serve", "run", "--registry", str(served["registry"])])
        assert code == 2
        assert "missing field" in capsys.readouterr().err


class TestBench:
    def test_bench_writes_artifact_and_verifies_parity(
        self, tmp_path, capsys
    ):
        out = tmp_path / "BENCH_serve.json"
        code = main(
            [
                "serve",
                "bench",
                "--drives",
                "8",
                "--days",
                "200",
                "--seed",
                "5",
                "--latency-events",
                "64",
                "--json-out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["parity"] is True
        assert payload["events_per_second"] > 0
        assert payload["latency_p50_us"] <= payload["latency_p99_us"]
        data = load_manifest(str(out) + ".manifest.json")
        assert validate_manifest(data) == []
        assert data["command"] == "serve.bench"
