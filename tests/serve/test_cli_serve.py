"""End-to-end tests of the ``serve`` CLI family."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.obs import load_manifest, validate_manifest


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """simulate -> train -> publish: the fixture every command needs."""
    root = tmp_path_factory.mktemp("served")
    fleet = root / "fleet"
    model = root / "model.pkl"
    registry = root / "registry"
    assert (
        main(
            [
                "simulate",
                "--out",
                str(fleet),
                "--drives",
                "8",
                "--days",
                "200",
                "--deploy-spread",
                "100",
                "--seed",
                "5",
                "--quiet",
            ]
        )
        == 0
    )
    assert (
        main(
            [
                "train",
                "--trace",
                str(fleet),
                "--model",
                str(model),
                "--lookahead",
                "7",
                "--seed",
                "3",
            ]
        )
        == 0
    )
    assert (
        main(
            [
                "serve",
                "publish",
                "--model",
                str(model),
                "--registry",
                str(registry),
                "--training-manifest",
                str(model) + ".manifest.json",
                "--activate",
            ]
        )
        == 0
    )
    return {"fleet": fleet, "model": model, "registry": registry}


class TestParser:
    def test_serve_subcommands_registered(self):
        parser = build_parser()
        argvs = {
            "replay": ["serve", "replay", "--trace", "x", "--model", "m"],
            "publish": ["serve", "publish", "--model", "m", "--registry", "r"],
            "bench": ["serve", "bench"],
            "run": ["serve", "run", "--model", "m"],
            "heal": ["serve", "heal", "--model", "m", "--journal", "j"],
        }
        for subcommand, argv in argvs.items():
            assert parser.parse_args(argv).serve_command == subcommand

    def test_model_and_registry_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "replay", "--trace", "x", "--model", "m", "--registry", "r"]
            )

    def test_execution_flags_shared_across_commands(self):
        parser = build_parser()
        for argv in (
            ["simulate", "--out", "x"],
            ["train", "--trace", "t", "--model", "m"],
            ["score", "--trace", "t", "--model", "m"],
            ["serve", "replay", "--trace", "t", "--model", "m"],
            ["serve", "bench"],
        ):
            args = parser.parse_args(argv + ["-j", "2", "--max-retries", "5"])
            assert args.workers == 2
            assert args.max_retries == 5
            assert args.on_poison == "fail"


class TestPublish:
    def test_registry_layout(self, served):
        registry = served["registry"]
        assert (registry / "registry.json").exists()
        meta = json.loads(
            (registry / "versions" / "v0001" / "meta.json").read_text()
        )
        assert "training_manifest_digest" in meta
        assert (registry / "publish_manifest.json").exists()

    def test_publish_manifest_validates(self, served):
        data = load_manifest(served["registry"] / "publish_manifest.json")
        assert validate_manifest(data) == []
        assert data["command"] == "serve.publish"


class TestReplay:
    def test_replay_from_registry_verifies_parity(
        self, served, tmp_path, capsys
    ):
        out = tmp_path / "scores.jsonl"
        code = main(
            [
                "serve",
                "replay",
                "--trace",
                str(served["fleet"]),
                "--registry",
                str(served["registry"]),
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert "bit-for-bit" in capsys.readouterr().out
        lines = [json.loads(s) for s in out.read_text().splitlines()]
        assert lines and set(lines[0]) == {
            "drive_id",
            "age_days",
            "probability",
        }

    def test_replay_from_model_with_workers(self, served, capsys):
        code = main(
            [
                "serve",
                "replay",
                "--trace",
                str(served["fleet"]),
                "--model",
                str(served["model"]),
                "-j",
                "2",
            ]
        )
        assert code == 0

    def test_replay_manifest_validates(self, served):
        main(
            [
                "serve",
                "replay",
                "--trace",
                str(served["fleet"]),
                "--registry",
                str(served["registry"]),
            ]
        )
        data = load_manifest(served["fleet"] / "serve_replay_manifest.json")
        assert validate_manifest(data) == []
        assert data["command"] == "serve.replay"
        assert data["results"]["diverged"] == 0
        assert data["results"]["events_per_second"] > 0

    def test_divergence_exits_one(self, served, monkeypatch, capsys):
        # Fabricate a divergence: perturb one online score after replay.
        from repro import cli as cli_mod
        from repro.serve import ScoringEngine

        original = ScoringEngine.replay

        def skewed(self, *args, **kwargs):
            result = original(self, *args, **kwargs)
            result.probability[0] += 0.5
            return result

        monkeypatch.setattr(cli_mod.ScoringEngine, "replay", skewed)
        code = main(
            [
                "serve",
                "replay",
                "--trace",
                str(served["fleet"]),
                "--registry",
                str(served["registry"]),
                "--no-manifest",
            ]
        )
        assert code == 1
        assert "DIVERGED" in capsys.readouterr().err

    def test_snapshot_then_resume(self, served, tmp_path, capsys):
        snap = tmp_path / "store.npz"
        assert (
            main(
                [
                    "serve",
                    "replay",
                    "--trace",
                    str(served["fleet"]),
                    "--registry",
                    str(served["registry"]),
                    "--snapshot",
                    str(snap),
                    "--snapshot-every",
                    "500",
                    "--no-manifest",
                ]
            )
            == 0
        )
        assert snap.exists()
        code = main(
            [
                "serve",
                "replay",
                "--trace",
                str(served["fleet"]),
                "--registry",
                str(served["registry"]),
                "--restore",
                str(snap),
                "--no-manifest",
            ]
        )
        assert code == 0
        assert "resumed past" in capsys.readouterr().out

    def test_guarded_replay_out_aligns_accepted_rows(
        self, served, tmp_path, capsys
    ):
        # A guarded replay over a sick trace diverts rows; --out must
        # attribute each score to its accepted source row, not zip the
        # shortened probability array against the full trace.
        from repro.data.dataset import DriveDayDataset
        from repro.data.io import load_dataset_npz, save_dataset_npz
        from repro.serve import DeadLetterQueue

        records = load_dataset_npz(served["fleet"] / "records.npz")
        cols = {k: np.array(v, copy=True) for k, v in records.items()}
        n = len(cols["drive_id"])
        rng = np.random.default_rng(7)
        bad = np.sort(rng.choice(n, size=9, replace=False))
        cols["write_count"][bad] = -1  # schema fault: diverted
        corrupted = tmp_path / "corrupted"
        corrupted.mkdir()
        save_dataset_npz(DriveDayDataset(cols), corrupted / "records.npz")

        dlq = tmp_path / "dlq.jsonl"
        out = tmp_path / "scores.jsonl"
        code = main(
            [
                "serve",
                "replay",
                "--trace",
                str(corrupted),
                "--model",
                str(served["model"]),
                "--dlq",
                str(dlq),
                "--out",
                str(out),
                "--no-manifest",
            ]
        )
        assert code == 0
        assert "9 diverted" in capsys.readouterr().out
        assert len(DeadLetterQueue.read(dlq)) == 9
        lines = [json.loads(s) for s in out.read_text().splitlines()]
        good = np.setdiff1d(np.arange(n), bad)
        assert len(lines) == len(good)
        assert [l["drive_id"] for l in lines] == cols["drive_id"][good].tolist()
        assert [l["age_days"] for l in lines] == cols["age_days"][good].tolist()

    def test_missing_trace_dir_exits_two(self, served, tmp_path, capsys):
        code = main(
            [
                "serve",
                "replay",
                "--trace",
                str(tmp_path / "absent"),
                "--model",
                str(served["model"]),
            ]
        )
        assert code == 2

    def test_tampered_registry_exits_two(self, served, tmp_path, capsys):
        meta_path = (
            served["registry"] / "versions" / "v0001" / "meta.json"
        )
        original = meta_path.read_text()
        meta = json.loads(original)
        meta["model_digest"] = "0" * 64
        meta_path.write_text(json.dumps(meta))
        try:
            code = main(
                [
                    "serve",
                    "replay",
                    "--trace",
                    str(served["fleet"]),
                    "--registry",
                    str(served["registry"]),
                ]
            )
        finally:
            meta_path.write_text(original)
        assert code == 2
        assert "corrupt" in capsys.readouterr().err


class TestRun:
    def _events(self, fleet, n=400):
        import itertools

        from repro.data.io import iter_drive_days, load_dataset_npz

        ds = load_dataset_npz(fleet / "records.npz")
        return [
            {k: v.item() for k, v in record.items()}
            for record in itertools.islice(iter_drive_days(ds), n)
        ]

    def test_stdin_stdout_jsonl_roundtrip(self, served, monkeypatch, capsys):
        events = self._events(served["fleet"])
        payload = "\n".join(json.dumps(e) for e in events) + "\n\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(payload))
        code = main(["serve", "run", "--registry", str(served["registry"])])
        captured = capsys.readouterr()
        assert code == 0
        records = [json.loads(s) for s in captured.out.splitlines()]
        # Score records carry no "type" key; status/error records do.
        scored = [r for r in records if "type" not in r]
        statuses = [r for r in records if r.get("type") == "status"]
        assert len(scored) == len(events)
        # The drain at stream end is announced as a status record.
        assert statuses and statuses[-1]["health"] == "draining"
        # Online transport order matches arrival order.
        assert [s["drive_id"] for s in scored] == [
            e["drive_id"] for e in events
        ]
        # And the scores equal the offline pipeline over the same rows.
        import pickle

        from repro.data.io import load_dataset_npz

        with open(served["model"], "rb") as fh:
            predictor = pickle.load(fh)
        ds = load_dataset_npz(served["fleet"] / "records.npz")
        offline = predictor.predict_proba_records(ds)[: len(events)]
        assert np.array_equal(
            np.array([s["probability"] for s in scored]), offline
        )

    def test_snapshot_on_stream_end(self, served, monkeypatch, tmp_path, capsys):
        events = self._events(served["fleet"], n=50)
        payload = "\n".join(json.dumps(e) for e in events)
        snap = tmp_path / "run_store.npz"
        monkeypatch.setattr("sys.stdin", io.StringIO(payload))
        code = main(
            [
                "serve",
                "run",
                "--registry",
                str(served["registry"]),
                "--snapshot",
                str(snap),
            ]
        )
        assert code == 0
        from repro.serve import FeatureStore

        assert FeatureStore.restore(snap).events_total == len(events)

    def test_bad_json_dead_letters_and_exits_one(
        self, served, monkeypatch, tmp_path, capsys
    ):
        # Malformed transport lines no longer kill the service: they are
        # reported as structured error records (and dead-lettered when a
        # DLQ is configured), and the run exits 1 to flag the diversion.
        events = self._events(served["fleet"], n=3)
        dlq = tmp_path / "dlq.jsonl"
        payload = (
            json.dumps(events[0])
            + "\n{not json}\n"
            + "\n".join(json.dumps(e) for e in events[1:])
            + "\n"
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(payload))
        code = main(
            [
                "serve",
                "run",
                "--registry",
                str(served["registry"]),
                "--dlq",
                str(dlq),
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        records = [json.loads(s) for s in captured.out.splitlines()]
        errors = [r for r in records if r.get("type") == "error"]
        scored = [r for r in records if "type" not in r]
        assert len(scored) == len(events)  # every good event still scored
        assert len(errors) == 1
        assert errors[0]["fault"] == "malformed"
        assert errors[0]["line"] == 2
        assert "not valid JSON" in errors[0]["reason"]
        from repro.serve import DeadLetterQueue

        entries = DeadLetterQueue.read(dlq)
        assert len(entries) == 1
        assert entries[0].fault == "malformed"
        assert entries[0].raw == "{not json}"
        assert entries[0].source == "transport"

    def test_missing_field_dead_letters_and_exits_one(
        self, served, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO('{"drive_id": 1, "age_days": 3}\n')
        )
        code = main(["serve", "run", "--registry", str(served["registry"])])
        captured = capsys.readouterr()
        assert code == 1
        records = [json.loads(s) for s in captured.out.splitlines()]
        errors = [r for r in records if r.get("type") == "error"]
        assert len(errors) == 1
        assert errors[0]["fault"] == "malformed"
        assert "missing field" in errors[0]["reason"]

    def test_late_event_diverted_not_fatal(
        self, served, monkeypatch, tmp_path, capsys
    ):
        events = self._events(served["fleet"], n=5)
        dlq = tmp_path / "dlq.jsonl"
        stream = events + [events[1]]  # re-deliver an old drive-day
        payload = "\n".join(json.dumps(e) for e in stream) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(payload))
        code = main(
            [
                "serve",
                "run",
                "--registry",
                str(served["registry"]),
                "--dlq",
                str(dlq),
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        errors = [
            json.loads(s)
            for s in captured.out.splitlines()
            if json.loads(s).get("type") == "error"
        ]
        assert len(errors) == 1
        assert errors[0]["fault"] == "late"
        assert errors[0]["drive_id"] == events[1]["drive_id"]
        assert errors[0]["watermark"] == events[-1]["age_days"]

    def test_duplicate_redelivery_is_benign(self, served, monkeypatch, capsys):
        events = self._events(served["fleet"], n=4)
        stream = events + [dict(events[-1])]  # exact duplicate of the tail
        payload = "\n".join(json.dumps(e) for e in stream) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(payload))
        code = main(["serve", "run", "--registry", str(served["registry"])])
        captured = capsys.readouterr()
        assert code == 0  # idempotent re-delivery is not an error
        records = [json.loads(s) for s in captured.out.splitlines()]
        assert not [r for r in records if r.get("type") == "error"]
        assert len([r for r in records if "type" not in r]) == len(events)
        assert "1 duplicate(s) dropped" in captured.err

    def test_shed_overflow_dead_letters(
        self, served, monkeypatch, tmp_path, capsys
    ):
        events = self._events(served["fleet"], n=12)
        dlq = tmp_path / "dlq.jsonl"
        payload = "\n".join(json.dumps(e) for e in events) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(payload))
        code = main(
            [
                "serve",
                "run",
                "--registry",
                str(served["registry"]),
                "--max-queue",
                "4",
                "--overflow",
                "shed",
                "--batch-size",
                "64",
                "--max-wait",
                "100",
                "--dlq",
                str(dlq),
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        from repro.serve import DeadLetterQueue

        entries = DeadLetterQueue.read(dlq)
        assert len(entries) == 8  # 12 submitted, queue bound 4
        assert all(e.fault == "shed" for e in entries)
        scored = [
            json.loads(s)
            for s in captured.out.splitlines()
            if "type" not in json.loads(s)
        ]
        assert len(scored) == 4  # the queued events still score at drain


class TestHeal:
    def test_heal_rebuilds_bit_identical_scores(self, served, tmp_path, capsys):
        clean = tmp_path / "clean.jsonl"
        assert (
            main(
                [
                    "serve",
                    "replay",
                    "--trace",
                    str(served["fleet"]),
                    "--registry",
                    str(served["registry"]),
                    "--out",
                    str(clean),
                    "--no-manifest",
                ]
            )
            == 0
        )
        journal = tmp_path / "journal.jsonl"
        dlq = tmp_path / "dlq.jsonl"
        healed = tmp_path / "healed.jsonl"
        # A guarded replay over the clean trace journals every event and
        # diverts none.
        assert (
            main(
                [
                    "serve",
                    "replay",
                    "--trace",
                    str(served["fleet"]),
                    "--registry",
                    str(served["registry"]),
                    "--journal",
                    str(journal),
                    "--dlq",
                    str(dlq),
                    "--no-manifest",
                ]
            )
            == 0
        )
        assert not dlq.exists()  # lazy appender: no faults, no file
        code = main(
            [
                "serve",
                "heal",
                "--registry",
                str(served["registry"]),
                "--journal",
                str(journal),
                "--out",
                str(healed),
                "--expect",
                str(clean),
            ]
        )
        assert code == 0
        assert healed.read_bytes() == clean.read_bytes()
        assert "parity ok" in capsys.readouterr().err

    def test_heal_missing_journal_exits_two(self, served, tmp_path, capsys):
        code = main(
            [
                "serve",
                "heal",
                "--registry",
                str(served["registry"]),
                "--journal",
                str(tmp_path / "nope.jsonl"),
            ]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_heal_unhealable_without_refetch_exits_one(
        self, served, tmp_path, capsys
    ):
        import itertools

        from repro.data.io import iter_drive_days

        events = [
            {k: v.item() for k, v in record.items()}
            for record in itertools.islice(
                iter_drive_days(served["fleet"] / "records.npz"), 6
            )
        ]
        bad = dict(events[3], read_count=-5)  # schema fault: negative count
        journal = tmp_path / "journal.jsonl"
        dlq = tmp_path / "dlq.jsonl"
        from repro.serve import (
            AdmissionGuard,
            DeadLetterQueue,
            EventJournal,
            FeatureStore,
        )

        with DeadLetterQueue(dlq) as d, EventJournal(journal) as j:
            guard = AdmissionGuard(FeatureStore(), dlq=d, journal=j)
            for ev in events[:3] + [bad] + events[4:]:
                guard.admit(ev)
        code = main(
            [
                "serve",
                "heal",
                "--registry",
                str(served["registry"]),
                "--journal",
                str(journal),
                "--dlq",
                str(dlq),
            ]
        )
        captured = capsys.readouterr()
        assert code == 1  # schema faults need --refetch to heal
        assert "1 unhealable" in captured.err

        # With --refetch the upstream payload heals it: exit 0.
        code = main(
            [
                "serve",
                "heal",
                "--registry",
                str(served["registry"]),
                "--journal",
                str(journal),
                "--dlq",
                str(dlq),
                "--refetch",
                str(served["fleet"]),
            ]
        )
        assert code == 0
        assert "0 unhealable" in capsys.readouterr().err


class TestStatus:
    def _write_status(self, tmp_path, **over):
        body = {
            "schema_version": 1,
            "health": "ready",
            "events_seen": 100,
            "requests_total": 100,
            "batches_total": 2,
            "stale_scores": 0,
            "queue_depth": 0,
            "watermark": 42,
            "heartbeats": 3,
        }
        body.update(over)
        path = tmp_path / "status.json"
        path.write_text(json.dumps(body))
        return path

    def test_healthy_exits_zero(self, tmp_path, capsys):
        path = self._write_status(tmp_path)
        assert main(["serve", "status", str(path)]) == 0
        out = capsys.readouterr().out
        assert "ready" in out

    def test_degraded_exits_one(self, tmp_path, capsys):
        path = self._write_status(tmp_path, health="degraded")
        assert main(["serve", "status", str(path)]) == 1
        assert "degraded" in capsys.readouterr().out

    def test_slo_breach_exits_two_even_when_healthy(self, tmp_path, capsys):
        path = self._write_status(
            tmp_path, slo={"state": "breach", "objectives": []}
        )
        assert main(["serve", "status", str(path)]) == 2
        assert "breach" in capsys.readouterr().out

    def test_missing_status_file_exits_two(self, tmp_path, capsys):
        assert main(["serve", "status", str(tmp_path / "nope.json")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_json_flag_echoes_raw_payload(self, tmp_path, capsys):
        path = self._write_status(tmp_path)
        assert main(["serve", "status", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events_seen"] == 100


class TestReplayTelemetry:
    def test_replay_emits_full_telemetry_plane(
        self, served, tmp_path, capsys
    ):
        status = tmp_path / "status.json"
        timeline = tmp_path / "timeline.jsonl"
        events = tmp_path / "events.jsonl"
        spec = tmp_path / "slo.json"
        spec.write_text(
            json.dumps(
                {
                    "objectives": [
                        {
                            "name": "throughput",
                            "metric": "window.events",
                            "threshold": 1,
                            "op": ">=",
                        }
                    ]
                }
            )
        )
        code = main(
            [
                "serve",
                "replay",
                "--trace",
                str(served["fleet"]),
                "--registry",
                str(served["registry"]),
                "--status-out",
                str(status),
                "--status-every",
                "400",
                "--timeline-out",
                str(timeline),
                "--tick-every",
                "256",
                "--eventlog",
                str(events),
                "--slo-spec",
                str(spec),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        # Parity still holds with every telemetry sink attached.
        assert "bit-for-bit" in captured.out
        assert "slo ok" in captured.err
        # Each downstream command accepts the artifacts it produced.
        assert main(["serve", "status", str(status)]) == 0
        assert (
            main(
                [
                    "obs",
                    "slo",
                    "--spec",
                    str(spec),
                    "--timeline",
                    str(timeline),
                ]
            )
            == 0
        )
        assert main(["obs", "tail", str(events), "--last", "3"]) == 0
        # The manifest records the SLO verdict and the new artifacts.
        data = load_manifest(served["fleet"] / "serve_replay_manifest.json")
        assert validate_manifest(data) == []
        assert data["slo"]["state"] == "ok"
        assert "status.json" in data["outputs"]
        assert "timeline.jsonl" in data["outputs"]

    def test_bad_slo_spec_exits_two(self, served, tmp_path, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps({"objectives": "nope"}))
        code = main(
            [
                "serve",
                "replay",
                "--trace",
                str(served["fleet"]),
                "--registry",
                str(served["registry"]),
                "--slo-spec",
                str(spec),
            ]
        )
        assert code == 2
        assert "bad SLO spec" in capsys.readouterr().err


class TestBench:
    def test_bench_writes_artifact_and_verifies_parity(
        self, tmp_path, capsys
    ):
        out = tmp_path / "BENCH_serve.json"
        code = main(
            [
                "serve",
                "bench",
                "--drives",
                "8",
                "--days",
                "200",
                "--seed",
                "5",
                "--latency-events",
                "64",
                "--json-out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["parity"] is True
        assert payload["events_per_second"] > 0
        assert payload["latency_p50_us"] <= payload["latency_p99_us"]
        data = load_manifest(str(out) + ".manifest.json")
        assert validate_manifest(data) == []
        assert data["command"] == "serve.bench"


class TestShardCLI:
    def test_shard_out_is_byte_identical_to_replay_out(
        self, served, tmp_path, capsys
    ):
        serial = tmp_path / "serial.jsonl"
        assert (
            main(
                [
                    "serve",
                    "replay",
                    "--trace",
                    str(served["fleet"]),
                    "--model",
                    str(served["model"]),
                    "--out",
                    str(serial),
                ]
            )
            == 0
        )
        sharded = tmp_path / "sharded.jsonl"
        code = main(
            [
                "serve",
                "shard",
                "--trace",
                str(served["fleet"]),
                "--model",
                str(served["model"]),
                "--shards",
                "3",
                "--plane",
                str(tmp_path / "plane"),
                "--chunk-rows",
                "512",
                "--out",
                str(sharded),
            ]
        )
        assert code == 0
        assert "bit-for-bit" in capsys.readouterr().out
        # The acceptance gate, at the artifact level: the sharded plane
        # writes the same bytes the serial replay does.
        assert sharded.read_bytes() == serial.read_bytes()

    def test_shard_manifest_validates(self, served, tmp_path):
        plane = tmp_path / "plane"
        assert (
            main(
                [
                    "serve",
                    "shard",
                    "--trace",
                    str(served["fleet"]),
                    "--model",
                    str(served["model"]),
                    "--shards",
                    "2",
                    "--plane",
                    str(plane),
                ]
            )
            == 0
        )
        data = load_manifest(plane / "serve_shard_manifest.json")
        assert validate_manifest(data) == []
        assert data["command"] == "serve.shard"
        assert data["counts"]["shards"] == 2
        assert data["results"]["parity_checked"] is True
        assert data["results"]["diverged"] == 0

    def test_status_sharded_rolls_up_plane(self, served, tmp_path, capsys):
        plane = tmp_path / "plane"
        assert (
            main(
                [
                    "serve",
                    "shard",
                    "--trace",
                    str(served["fleet"]),
                    "--model",
                    str(served["model"]),
                    "--shards",
                    "2",
                    "--plane",
                    str(plane),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["serve", "status", str(plane), "--sharded"]) == 0
        out = capsys.readouterr().out
        assert "2 shard(s)" in out
        assert "shard-00" in out and "shard-01" in out

    def test_reshard_matches_old_plane(self, served, tmp_path, capsys):
        old = tmp_path / "old"
        assert (
            main(
                [
                    "serve",
                    "shard",
                    "--trace",
                    str(served["fleet"]),
                    "--model",
                    str(served["model"]),
                    "--shards",
                    "2",
                    "--plane",
                    str(old),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "serve",
                "shard",
                "--model",
                str(served["model"]),
                "--reshard-from",
                str(old),
                "--shards",
                "4",
                "--plane",
                str(tmp_path / "new"),
            ]
        )
        assert code == 0
        assert "bit-for-bit" in capsys.readouterr().out

    def test_shard_without_source_exits_two(self, served, tmp_path, capsys):
        code = main(
            [
                "serve",
                "shard",
                "--model",
                str(served["model"]),
                "--shards",
                "2",
                "--plane",
                str(tmp_path / "plane"),
            ]
        )
        assert code == 2
        assert "--trace" in capsys.readouterr().err

    def test_bench_sharded_payload(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serve_sharded.json"
        code = main(
            [
                "serve",
                "bench",
                "--drives",
                "8",
                "--days",
                "200",
                "--seed",
                "5",
                "--latency-events",
                "64",
                "--shards",
                "2",
                "--arrival",
                "log_normal",
                "--arrival-mean",
                "512",
                "--arrival-variance",
                "65536",
                "--json-out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["parity"] is True
        assert payload["shards"] == 2
        assert payload["arrival"]["distribution"] == "log_normal"
        assert payload["events_per_second"] > 0


class TestSnapshotRetention:
    def test_replay_snapshot_keep_rotates_and_restores(
        self, served, tmp_path, capsys
    ):
        base = tmp_path / "snap.npz"
        code = main(
            [
                "serve",
                "replay",
                "--trace",
                str(served["fleet"]),
                "--model",
                str(served["model"]),
                "--snapshot-every",
                "400",
                "--snapshot",
                str(base),
                "--snapshot-keep",
                "2",
            ]
        )
        assert code == 0
        gens = sorted(p.name for p in tmp_path.glob("snap-g*.npz"))
        assert len(gens) == 2  # older generations pruned
        capsys.readouterr()
        # --restore accepts the rotation base and resolves the newest
        # generation; the resumed replay still verifies parity.
        code = main(
            [
                "serve",
                "replay",
                "--trace",
                str(served["fleet"]),
                "--model",
                str(served["model"]),
                "--restore",
                str(base),
            ]
        )
        assert code == 0
        assert "bit-for-bit" in capsys.readouterr().out
