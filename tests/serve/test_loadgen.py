"""The synthetic-traffic generator: validation, determinism, coverage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.loadgen import (
    Distribution,
    LoadProfile,
    RVConfig,
    arrival_sizes,
    burst_chunks,
    burst_slices,
)


class TestRVConfig:
    def test_rejects_non_numeric_mean(self):
        with pytest.raises(ValueError, match="number"):
            RVConfig(mean="many")

    def test_rejects_bool_mean(self):
        # bool is an int subclass; a config of mean=True is a bug.
        with pytest.raises(ValueError, match="number"):
            RVConfig(mean=True)

    @pytest.mark.parametrize("mean", [0, -3, float("inf"), float("nan")])
    def test_rejects_non_positive_mean(self, mean):
        with pytest.raises(ValueError, match="positive"):
            RVConfig(mean=mean)

    def test_rejects_unknown_distribution(self):
        with pytest.raises(ValueError):
            RVConfig(mean=8, distribution="Poisson")  # case-sensitive

    def test_variance_rejected_for_one_param_distributions(self):
        with pytest.raises(ValueError, match="variance"):
            RVConfig(mean=8, distribution=Distribution.POISSON, variance=2.0)

    def test_variance_defaults_to_mean_for_two_param(self):
        cfg = RVConfig(mean=8, distribution=Distribution.LOG_NORMAL)
        assert cfg.variance == 8.0

    @pytest.mark.parametrize("d", list(Distribution))
    def test_samples_are_positive_ints(self, d):
        variance = 4.0 if d in (Distribution.NORMAL, Distribution.LOG_NORMAL) else None
        cfg = RVConfig(mean=5, distribution=d, variance=variance)
        draws = cfg.sample(np.random.default_rng(0), 500)
        assert draws.dtype == np.int64
        assert draws.min() >= 1

    def test_log_normal_hits_requested_mean(self):
        cfg = RVConfig(mean=100, distribution=Distribution.LOG_NORMAL, variance=900)
        draws = cfg.sample(np.random.default_rng(1), 20_000)
        assert abs(draws.mean() - 100) < 5


class TestLoadProfile:
    def test_dict_round_trip(self):
        profile = LoadProfile(
            RVConfig(mean=64, distribution=Distribution.LOG_NORMAL, variance=100),
            seed=7,
        )
        assert LoadProfile.from_dict(profile.to_dict()) == profile

    def test_dict_round_trip_one_param(self):
        profile = LoadProfile(RVConfig(mean=32), seed=3)
        assert LoadProfile.from_dict(profile.to_dict()) == profile


class TestArrivalSizes:
    def test_sizes_cover_exactly(self):
        profile = LoadProfile(RVConfig(mean=37), seed=5)
        sizes = arrival_sizes(10_000, profile)
        assert int(sizes.sum()) == 10_000
        assert sizes.min() >= 1

    def test_deterministic_in_profile(self):
        profile = LoadProfile(RVConfig(mean=37), seed=5)
        np.testing.assert_array_equal(
            arrival_sizes(5000, profile), arrival_sizes(5000, profile)
        )

    def test_seed_changes_schedule(self):
        a = arrival_sizes(5000, LoadProfile(RVConfig(mean=37), seed=5))
        b = arrival_sizes(5000, LoadProfile(RVConfig(mean=37), seed=6))
        assert not np.array_equal(a, b)

    def test_zero_events(self):
        assert len(arrival_sizes(0, LoadProfile(RVConfig(mean=8)))) == 0

    def test_slices_tile_the_stream(self):
        profile = LoadProfile(RVConfig(mean=11), seed=2)
        slices = list(burst_slices(1000, profile))
        assert slices[0][0] == 0
        assert slices[-1][1] == 1000
        for (_, stop), (start, _) in zip(slices, slices[1:]):
            assert stop == start


class TestBurstChunks:
    def _chunks(self, n, size):
        ids = np.arange(n, dtype=np.int64)
        for lo in range(0, n, size):
            yield {"drive_id": ids[lo : lo + size], "x": ids[lo : lo + size] * 2}

    def test_rechunks_preserving_order(self):
        profile = LoadProfile(RVConfig(mean=13), seed=4)
        out = list(burst_chunks(self._chunks(1000, 128), 1000, profile))
        sizes = arrival_sizes(1000, profile)
        assert [len(c["drive_id"]) for c in out] == sizes.tolist()
        np.testing.assert_array_equal(
            np.concatenate([c["drive_id"] for c in out]), np.arange(1000)
        )
        np.testing.assert_array_equal(
            np.concatenate([c["x"] for c in out]), np.arange(1000) * 2
        )

    def test_short_stream_raises(self):
        profile = LoadProfile(RVConfig(mean=13), seed=4)
        with pytest.raises(ValueError, match="short"):
            list(burst_chunks(self._chunks(500, 128), 1000, profile))
