"""The scored-event tap (``on_scored``): the fleet autopilot's feed.

The tap must see exactly the events the engine scored — same order,
same probabilities as the offline batch pipeline — in both the chunked
replay path and the event-wise guarded path, or the decision plane
would act on different numbers than the serving plane reported.
"""

from __future__ import annotations

import numpy as np

from repro.data import iter_drive_days
from repro.serve import AdmissionGuard, FeatureStore, ScoringEngine


class Tap:
    def __init__(self):
        self.ids: list[np.ndarray] = []
        self.ages: list[np.ndarray] = []
        self.cals: list[np.ndarray] = []
        self.probs: list[np.ndarray] = []

    def __call__(self, ids, ages, cals, probs):
        assert len(ids) == len(ages) == len(cals) == len(probs)
        self.ids.append(np.asarray(ids))
        self.ages.append(np.asarray(ages))
        self.cals.append(np.asarray(cals))
        self.probs.append(np.asarray(probs))

    def concat(self, parts):
        return np.concatenate(parts) if parts else np.empty(0)


class TestReplayTap:
    def test_unguarded_replay_tap_matches_offline(
        self, serve_trace, predictor, offline_probs
    ):
        tap = Tap()
        engine = ScoringEngine(predictor, on_scored=tap)
        result = engine.replay(serve_trace.records, chunk_rows=512)
        records = serve_trace.records
        np.testing.assert_array_equal(
            tap.concat(tap.probs), result.probability
        )
        np.testing.assert_array_equal(tap.concat(tap.probs), offline_probs)
        np.testing.assert_array_equal(
            tap.concat(tap.ids), np.asarray(records["drive_id"])
        )
        np.testing.assert_array_equal(
            tap.concat(tap.cals), np.asarray(records["calendar_day"])
        )

    def test_guarded_replay_tap_covers_accepted_rows(
        self, serve_trace, predictor, offline_probs
    ):
        tap = Tap()
        store = FeatureStore()
        engine = ScoringEngine(
            predictor,
            store=store,
            guard=AdmissionGuard(store),
            on_scored=tap,
        )
        result = engine.replay(serve_trace.records, chunk_rows=512)
        assert result.accepted_index is not None
        np.testing.assert_array_equal(
            tap.concat(tap.probs), offline_probs[result.accepted_index]
        )
        np.testing.assert_array_equal(
            tap.concat(tap.ids),
            np.asarray(serve_trace.records["drive_id"])[result.accepted_index],
        )


class TestEventTap:
    def test_score_stream_feeds_tap_and_stamps_calendar_day(
        self, serve_trace, predictor
    ):
        tap = Tap()
        store = FeatureStore()
        engine = ScoringEngine(
            predictor,
            store=store,
            guard=AdmissionGuard(store),
            on_scored=tap,
        )
        events = list(iter_drive_days(serve_trace.records, chunk_rows=256))
        scored = list(engine.score_stream(events[:500]))
        assert scored
        assert all(ev.calendar_day >= 0 for ev in scored)
        np.testing.assert_array_equal(
            tap.concat(tap.probs),
            np.asarray([ev.probability for ev in scored]),
        )
        np.testing.assert_array_equal(
            tap.concat(tap.cals),
            np.asarray([ev.calendar_day for ev in scored]),
        )
