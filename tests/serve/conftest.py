"""Shared fixtures for the serving tests: one fleet, one fitted model.

Session-scoped so the (comparatively slow) simulate + fit runs once for
the whole ``tests/serve`` directory; every test that mutates state
builds its own :class:`FeatureStore`/:class:`ScoringEngine` on top.
"""

from __future__ import annotations

import pytest

from repro.core import FailurePredictor
from repro.simulator import FleetConfig, simulate_fleet


@pytest.fixture(scope="session")
def serve_trace():
    """~30 drives over ~10 months: big enough for multi-chunk replays."""
    return simulate_fleet(
        FleetConfig(
            n_drives_per_model=10,
            horizon_days=300,
            deploy_spread_days=150,
            seed=11,
        )
    )


@pytest.fixture(scope="session")
def predictor(serve_trace):
    return FailurePredictor(lookahead=7, seed=3).fit(serve_trace)


@pytest.fixture(scope="session")
def offline_probs(serve_trace, predictor):
    """The batch pipeline's scores — the parity baseline everywhere."""
    return predictor.predict_proba_records(serve_trace.records)
