"""Circuit breaker, health states, and staleness tagging."""

from __future__ import annotations

import pytest

from repro.serve import (
    AdmissionGuard,
    FeatureStore,
    HealthState,
    ScoringEngine,
    ServeBreaker,
    StalenessPolicy,
)
from repro.serve.batching import BatchPolicy

from .test_guard import make_event, make_stream


class TestServeBreaker:
    def test_initial_state_ready(self):
        assert ServeBreaker().state == HealthState.READY

    def test_trips_after_threshold_consecutive_faults(self):
        b = ServeBreaker(fault_threshold=3, recovery_threshold=2)
        assert b.record_fault() == HealthState.READY
        assert b.record_fault() == HealthState.READY
        assert b.record_fault() == HealthState.DEGRADED
        assert b.trips == 1

    def test_ok_resets_fault_streak(self):
        b = ServeBreaker(fault_threshold=3)
        b.record_fault()
        b.record_fault()
        b.record_ok()
        b.record_fault()
        b.record_fault()
        assert b.state == HealthState.READY  # never 3 in a row

    def test_recovers_after_sustained_success(self):
        b = ServeBreaker(fault_threshold=1, recovery_threshold=3)
        b.record_fault()
        assert b.state == HealthState.DEGRADED
        b.record_ok()
        b.record_ok()
        assert b.state == HealthState.DEGRADED
        b.record_ok()
        assert b.state == HealthState.READY
        assert b.recoveries == 1

    def test_fault_during_recovery_resets_ok_streak(self):
        b = ServeBreaker(fault_threshold=1, recovery_threshold=2)
        b.record_fault()
        b.record_ok()
        b.record_fault()
        b.record_ok()
        assert b.state == HealthState.DEGRADED

    def test_draining_is_terminal(self):
        b = ServeBreaker(fault_threshold=1)
        assert b.begin_drain() == HealthState.DRAINING
        b.record_ok()
        b.record_fault()
        assert b.state == HealthState.DRAINING

    @pytest.mark.parametrize("kwargs", [
        {"fault_threshold": 0},
        {"recovery_threshold": 0},
        {"fault_threshold": -2},
    ])
    def test_thresholds_validated(self, kwargs):
        with pytest.raises(ValueError):
            ServeBreaker(**kwargs)

    def test_to_dict_is_manifest_shaped(self):
        b = ServeBreaker(fault_threshold=2, recovery_threshold=5)
        b.record_fault()
        b.record_fault()
        d = b.to_dict()
        assert d == {
            "state": "degraded",
            "trips": 1,
            "recoveries": 0,
            "fault_threshold": 2,
            "recovery_threshold": 5,
        }


class TestStalenessPolicy:
    def test_negative_lag_rejected(self):
        with pytest.raises(ValueError, match="max_lag_days"):
            StalenessPolicy(max_lag_days=-1)

    def test_engine_tags_scores_past_watermark_lag(self, predictor):
        store = FeatureStore()
        engine = ScoringEngine(
            predictor,
            store=store,
            batch_policy=BatchPolicy(max_batch_size=1),
            guard=AdmissionGuard(store),
            staleness=StalenessPolicy(max_lag_days=3),
        )
        # Advance the fleet watermark to calendar day 120 with one drive,
        # then score another drive whose telemetry stopped at day 105.
        out = []
        out += engine.submit(make_event(1, 20))          # calendar 120
        out += engine.submit(make_event(2, 5))           # calendar 105
        out += engine.drain()
        fresh, stale = out
        assert not fresh.stale
        assert stale.stale
        assert stale.staleness_days == 15
        assert engine.stale_scores == 1

    def test_stale_scores_can_trip_breaker(self, predictor):
        store = FeatureStore()
        breaker = ServeBreaker(fault_threshold=2, recovery_threshold=4)
        engine = ScoringEngine(
            predictor,
            store=store,
            batch_policy=BatchPolicy(max_batch_size=4),
            guard=AdmissionGuard(store, breaker=breaker),
            staleness=StalenessPolicy(max_lag_days=2, count_as_fault=True),
        )
        engine.submit(make_event(1, 50))                 # watermark 150
        engine.submit(make_event(2, 5))                  # 45d stale
        engine.submit(make_event(2, 6))                  # 44d stale
        flushed = engine.submit(make_event(1, 51))       # fills the batch
        assert len(flushed) == 4
        # Two consecutive stale scores inside the flush trip the breaker.
        assert engine.health_state == HealthState.DEGRADED
        assert breaker.trips == 1
        assert engine.stale_scores == 2

    def test_health_state_without_breaker_is_ready(self, predictor):
        store = FeatureStore()
        engine = ScoringEngine(
            predictor, store=store, guard=AdmissionGuard(store)
        )
        assert engine.health_state == HealthState.READY

    def test_drain_moves_breaker_to_draining(self, predictor):
        store = FeatureStore()
        engine = ScoringEngine(
            predictor,
            store=store,
            guard=AdmissionGuard(store, breaker=ServeBreaker()),
        )
        for ev in make_stream(n_drives=2, n_ages=2):
            engine.submit(ev)
        engine.drain()
        assert engine.health_state == HealthState.DRAINING
