"""Tests for the workload generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator import WorkloadParams, generate_workload, sample_workload_latents
from repro.simulator.workload import intensity_profile


class TestIntensityProfile:
    def test_ramp_rises_from_floor(self):
        p = WorkloadParams()
        prof = intensity_profile(p, np.array([0.0, p.ramp_days / 2, p.ramp_days]))
        assert prof[0] == pytest.approx(p.ramp_floor)
        assert prof[0] < prof[1] < prof[2]
        assert prof[2] == pytest.approx(1.0)

    def test_plateau_then_decay(self):
        p = WorkloadParams()
        plateau = intensity_profile(p, np.array([p.ramp_days + 10.0]))[0]
        old = intensity_profile(p, np.array([2190.0]))[0]
        assert plateau == pytest.approx(1.0)
        assert p.decay_floor <= old < 1.0

    def test_monotone_on_ramp(self):
        p = WorkloadParams()
        ages = np.arange(0, p.ramp_days)
        prof = intensity_profile(p, ages)
        assert (np.diff(prof) >= 0).all()


class TestGenerateWorkload:
    def test_shapes_and_nonnegativity(self, rng):
        p = WorkloadParams()
        lat = sample_workload_latents(p, rng)
        w = generate_workload(p, lat, np.arange(200), rng)
        for arr in (w.read_count, w.write_count, w.erase_count, w.pe_increment):
            assert arr.shape == (200,)
            assert (arr >= 0).all()

    def test_erases_track_writes(self, rng):
        p = WorkloadParams()
        lat = sample_workload_latents(p, rng)
        w = generate_workload(p, lat, np.arange(500, 700), rng)
        busy = w.write_count > 0
        ratio = w.erase_count[busy] / w.write_count[busy]
        assert np.allclose(ratio, 1.0 / p.pages_per_block, rtol=0.01)

    def test_pe_increment_consistent_with_erases(self, rng):
        p = WorkloadParams()
        lat = sample_workload_latents(p, rng)
        w = generate_workload(p, lat, np.arange(100), rng)
        # pe_increment derives from the *unrounded* erase rate, so allow
        # rounding slack.
        assert np.allclose(
            w.pe_increment * p.blocks_per_drive, w.erase_count, atol=1.0
        )

    def test_idle_days_occur_and_are_zero(self, rng):
        p = WorkloadParams(idle_day_prob=0.2)
        lat = sample_workload_latents(p, rng)
        w = generate_workload(p, lat, np.arange(2000), rng)
        idle = w.write_count == 0
        assert 0.1 < idle.mean() < 0.3
        assert (w.read_count[idle] == 0).all()

    def test_young_drives_write_less_on_median(self, rng):
        """Figure 7: no burn-in — infancy sees *fewer* writes."""
        p = WorkloadParams()
        young_meds, old_meds = [], []
        for _ in range(40):
            lat = sample_workload_latents(p, rng)
            wy = generate_workload(p, lat, np.arange(0, 30), rng)
            wo = generate_workload(p, lat, np.arange(400, 430), rng)
            young_meds.append(np.median(wy.write_count))
            old_meds.append(np.median(wo.write_count))
        assert np.median(young_meds) < 0.6 * np.median(old_meds)

    def test_activity_scale_shifts_whole_drive(self, rng):
        p = WorkloadParams(daily_sigma=0.01, idle_day_prob=0.0)
        from repro.simulator.workload import WorkloadLatents

        lo = WorkloadLatents(activity_scale=0.5, read_ratio=2.0)
        hi = WorkloadLatents(activity_scale=2.0, read_ratio=2.0)
        ages = np.arange(400, 500)
        w_lo = generate_workload(p, lo, ages, rng)
        w_hi = generate_workload(p, hi, ages, rng)
        assert w_hi.write_count.mean() > 3.0 * w_lo.write_count.mean()
