"""Tests for the swap/repair pipeline distributions."""

from __future__ import annotations

import numpy as np

from repro.simulator import (
    RepairParams,
    sample_inactive_stretch,
    sample_nonoperational_days,
    sample_repair,
)


class TestNonOperationalPeriod:
    def test_distribution_landmarks(self, rng):
        p = RepairParams()
        days = np.array([sample_nonoperational_days(p, rng) for _ in range(8000)])
        assert (days >= 0).all()
        # Figure 4 shape: ~20% within a day, ~80% within a week, heavy tail.
        assert 0.10 < (days <= 1).mean() < 0.35
        assert 0.6 < (days <= 7).mean() < 0.9
        assert 0.03 < (days > 100).mean() < 0.15

    def test_forgotten_component_off(self, rng):
        p = RepairParams(nonop_forgotten_prob=0.0)
        days = np.array([sample_nonoperational_days(p, rng) for _ in range(4000)])
        assert (days > 150).mean() < 0.01


class TestRepair:
    def test_return_probability(self, rng):
        p = RepairParams(return_prob=0.6)
        outcomes = [sample_repair(p, rng) for _ in range(5000)]
        returned = np.mean([o.duration_days is not None for o in outcomes])
        assert abs(returned - 0.6) < 0.03

    def test_durations_positive(self, rng):
        p = RepairParams()
        for _ in range(500):
            o = sample_repair(p, rng)
            if o.duration_days is not None:
                assert o.duration_days >= 1

    def test_fast_vs_slow_components(self, rng):
        p = RepairParams(return_prob=1.0, fast_repair_prob=0.5)
        durations = np.array(
            [sample_repair(p, rng).duration_days for _ in range(6000)], dtype=float
        )
        # Bimodal: a fast mode around days and a slow mode around a year+.
        assert 0.35 < (durations <= 60).mean() < 0.65
        assert np.median(durations[durations > 60]) > 200

    def test_never_returns_mode(self, rng):
        p = RepairParams(return_prob=0.0)
        assert all(
            sample_repair(p, rng).duration_days is None for _ in range(100)
        )


class TestInactiveStretch:
    def test_rate_and_bounds(self, rng):
        p = RepairParams(inactive_records_prob=0.36)
        lens = np.array(
            [sample_inactive_stretch(p, rng, max_days=10) for _ in range(5000)]
        )
        assert abs((lens > 0).mean() - 0.36) < 0.05
        assert lens.max() <= 10

    def test_zero_budget(self, rng):
        p = RepairParams(inactive_records_prob=1.0)
        assert sample_inactive_stretch(p, rng, max_days=0) == 0
