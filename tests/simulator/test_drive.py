"""Tests for the single-drive simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator import MLC_B, simulate_drive
from repro.simulator.config import DriveModelSpec, LifetimeParams, RepairParams


def _run(rng, spec=None, deploy=0, horizon=1000, drive_id=7, model=1):
    return simulate_drive(
        drive_id=drive_id,
        model_index=model,
        spec=spec or MLC_B,
        deploy_day=deploy,
        horizon_days=horizon,
        rng=rng,
    )


def _failing_spec(**lifetime_over) -> DriveModelSpec:
    from dataclasses import replace

    lt = LifetimeParams(defect_prob=0.0, mature_hazard_per_day=2e-3, **lifetime_over)
    return replace(MLC_B, lifetime=lt)


class TestSimulateDrive:
    def test_deploy_beyond_horizon_rejected(self, rng):
        with pytest.raises(ValueError):
            _run(rng, deploy=1000, horizon=1000)

    def test_records_sorted_and_within_window(self, rng):
        res = _run(rng, horizon=800)
        ages = res.records["age_days"]
        assert (np.diff(ages) > 0).all()
        assert ages.min() >= 0
        assert ages.max() < 800

    def test_record_columns_aligned(self, rng):
        res = _run(rng)
        n = res.records["age_days"].shape[0]
        for name, arr in res.records.items():
            assert arr.shape[0] == n, name

    def test_pe_cycles_monotone(self, rng):
        res = _run(rng)
        pe = res.records["pe_cycles"]
        assert (np.diff(pe) >= -1e-9).all()

    def test_grown_bad_blocks_monotone(self, rng):
        res = _run(rng)
        bb = res.records["grown_bad_blocks"]
        assert (np.diff(bb) >= 0).all()

    def test_factory_bad_blocks_constant(self, rng):
        res = _run(rng)
        fb = res.records["factory_bad_blocks"]
        assert len(np.unique(fb)) == 1

    def test_swap_events_ordered_and_consistent(self, rng):
        spec = _failing_spec()
        for seed in range(30):
            res = _run(np.random.default_rng(seed), spec=spec, horizon=1500)
            for ev in res.swaps:
                assert ev.swap_age >= ev.failure_age
                assert ev.operational_start_age <= ev.failure_age
                if not np.isnan(ev.reentry_age):
                    assert ev.reentry_age > ev.swap_age

    def test_multiple_failures_possible(self):
        spec = _failing_spec()
        from dataclasses import replace

        spec = replace(
            spec,
            repair=replace(
                spec.repair,
                return_prob=1.0,
                fast_repair_prob=1.0,
                fast_repair_median=5.0,
            ),
        )
        counts = []
        for seed in range(40):
            res = _run(np.random.default_rng(seed), spec=spec, horizon=2000)
            counts.append(len(res.swaps))
        assert max(counts) >= 2

    def test_no_operational_records_between_failure_and_swap(self):
        """Rows strictly between failure and swap must be zero-activity."""
        spec = _failing_spec()
        for seed in range(40):
            res = _run(np.random.default_rng(seed), spec=spec, horizon=1500)
            ages = res.records["age_days"]
            reads = res.records["read_count"]
            for ev in res.swaps:
                limbo = (ages > ev.failure_age) & (ages <= ev.swap_age)
                assert (reads[limbo] == 0).all()

    def test_no_records_during_repair_shop(self):
        spec = _failing_spec()
        for seed in range(40):
            res = _run(np.random.default_rng(seed), spec=spec, horizon=1500)
            ages = res.records["age_days"]
            for ev in res.swaps:
                if not np.isnan(ev.reentry_age):
                    in_shop = (ages > ev.swap_age) & (ages < ev.reentry_age)
                    assert in_shop.sum() == 0

    def test_end_of_observation_age(self, rng):
        res = _run(rng, deploy=300, horizon=1000)
        assert res.end_of_observation_age == 700

    def test_thinning_reduces_record_count(self, rng):
        res = _run(rng, horizon=900)
        # Record probability is Beta(6.5, 3.5) ~ 0.65 on average; the count
        # must be well below the full number of days.
        assert res.records["age_days"].shape[0] < 900

    def test_deterministic_given_rng_seed(self):
        a = _run(np.random.default_rng(5))
        b = _run(np.random.default_rng(5))
        assert np.array_equal(a.records["age_days"], b.records["age_days"])
        assert np.array_equal(
            a.records["uncorrectable_error"], b.records["uncorrectable_error"]
        )
        assert len(a.swaps) == len(b.swaps)
