"""Tests for simulator configuration."""

from __future__ import annotations

import pytest

from repro.simulator import (
    MLC_A,
    MLC_B,
    MLC_D,
    FleetConfig,
    default_models,
    paper_scale_config,
    small_fleet_config,
)


class TestFleetConfig:
    def test_defaults_valid(self):
        cfg = FleetConfig()
        assert cfg.n_drives_per_model >= 1
        assert cfg.deploy_spread_days < cfg.horizon_days

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(n_drives_per_model=0)
        with pytest.raises(ValueError):
            FleetConfig(horizon_days=10)
        with pytest.raises(ValueError):
            FleetConfig(horizon_days=100, deploy_spread_days=100)

    def test_presets(self):
        small = small_fleet_config(seed=3)
        assert small.seed == 3
        assert small.n_drives_per_model < 1000
        paper = paper_scale_config()
        assert paper.n_drives_per_model == 10000
        assert paper.horizon_days == 2190


class TestModelSpecs:
    def test_three_models_in_order(self):
        models = default_models()
        assert [m.name for m in models] == ["MLC-A", "MLC-B", "MLC-D"]

    def test_shared_platform_constants(self):
        for spec in (MLC_A, MLC_B, MLC_D):
            assert spec.capacity_gb == 480
            assert spec.pe_cycle_limit == 3000

    def test_mlc_b_has_elevated_write_errors(self):
        # Table 1: MLC-B write-error incidence is ~10x the other models.
        assert MLC_B.errors.write_error_base_prob > 5 * MLC_A.errors.write_error_base_prob

    def test_failure_incidence_ordering(self):
        # Table 3: MLC-B > MLC-D > MLC-A in failure rate; reflected in the
        # generative knobs.
        assert MLC_B.lifetime.defect_prob > MLC_A.lifetime.defect_prob
        assert MLC_B.lifetime.mature_hazard_per_day > MLC_A.lifetime.mature_hazard_per_day
        assert MLC_D.lifetime.mature_hazard_per_day > MLC_A.lifetime.mature_hazard_per_day

    def test_specs_frozen(self):
        with pytest.raises(Exception):
            MLC_A.capacity_gb = 960  # type: ignore[misc]
