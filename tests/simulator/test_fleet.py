"""Tests for fleet-level simulation invariants."""

from __future__ import annotations

import numpy as np

from repro.data import MODEL_NAMES
from repro.simulator import FleetConfig, simulate_fleet


class TestFleetTrace:
    def test_drive_counts(self, small_trace):
        cfg = small_trace.config
        assert len(small_trace.drives) == cfg.n_drives_per_model * 3
        for i in range(3):
            assert small_trace.drives.n_drives(i) == cfg.n_drives_per_model

    def test_records_sorted_by_drive_then_age(self, small_trace):
        ids = small_trace.records["drive_id"]
        ages = small_trace.records["age_days"]
        same = ids[1:] == ids[:-1]
        assert ((ids[1:] > ids[:-1]) | (same & (ages[1:] > ages[:-1]))).all()

    def test_calendar_day_consistency(self, small_trace):
        """calendar_day = deploy_day + age_days for every record."""
        deploy = dict(
            zip(
                small_trace.drives.drive_id.tolist(),
                small_trace.drives.deploy_day.tolist(),
            )
        )
        ids = small_trace.records["drive_id"]
        expected = np.array([deploy[int(d)] for d in ids[:5000]])
        got = (
            small_trace.records["calendar_day"][:5000]
            - small_trace.records["age_days"][:5000]
        )
        assert np.array_equal(got, expected)

    def test_model_column_matches_drive_table(self, small_trace):
        model_of = dict(
            zip(
                small_trace.drives.drive_id.tolist(),
                small_trace.drives.model.tolist(),
            )
        )
        ids = small_trace.records["drive_id"][:5000]
        models = small_trace.records["model"][:5000]
        assert all(model_of[int(d)] == int(m) for d, m in zip(ids, models))

    def test_swap_drives_exist(self, small_trace):
        drive_ids = set(small_trace.drives.drive_id.tolist())
        assert set(small_trace.swaps.drive_id.tolist()).issubset(drive_ids)

    def test_failure_incidence_in_sane_band(self, medium_trace):
        failed = len(np.unique(medium_trace.swaps.drive_id))
        frac = failed / len(medium_trace.drives)
        # Not calibrated to 6 years here, but must be in a plausible band.
        assert 0.02 < frac < 0.30

    def test_reproducibility(self):
        cfg = FleetConfig(n_drives_per_model=20, horizon_days=400, deploy_spread_days=100, seed=9)
        a = simulate_fleet(cfg)
        b = simulate_fleet(cfg)
        assert len(a.records) == len(b.records)
        assert np.array_equal(
            a.records["uncorrectable_error"], b.records["uncorrectable_error"]
        )
        assert np.array_equal(a.swaps.failure_age, b.swaps.failure_age)

    def test_different_seeds_differ(self):
        a = simulate_fleet(FleetConfig(n_drives_per_model=20, horizon_days=400, deploy_spread_days=100, seed=1))
        b = simulate_fleet(FleetConfig(n_drives_per_model=20, horizon_days=400, deploy_spread_days=100, seed=2))
        assert len(a.records) != len(b.records) or not np.array_equal(
            a.records["read_count"], b.records["read_count"]
        )

    def test_summary_mentions_scale(self, small_trace):
        text = small_trace.summary()
        assert "drives" in text and "swap" in text

    def test_model_names_alignment(self):
        assert MODEL_NAMES == ("MLC-A", "MLC-B", "MLC-D")
