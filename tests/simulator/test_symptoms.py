"""Tests for the pre-failure symptom planner."""

from __future__ import annotations

import numpy as np

from repro.simulator import FailureMode, FailureSymptomParams, plan_symptoms
from repro.simulator.symptoms import SymptomPlan


def _plans(params, mode, rng, n=2000, period_len=300):
    return [plan_symptoms(params, mode, period_len, rng) for _ in range(n)]


class TestPlanSymptoms:
    def test_none_mode_has_no_symptoms(self, rng):
        plan = plan_symptoms(FailureSymptomParams(), FailureMode.NONE, 100, rng)
        assert not plan.symptomatic
        assert plan.burst_offsets.size == 0
        assert plan.decline_days == 0
        assert not plan.dead_flag

    def test_symptomatic_rate_young(self, rng):
        p = FailureSymptomParams(young_symptomatic_prob=0.32)
        plans = _plans(p, FailureMode.DEFECT, rng)
        rate = np.mean([pl.symptomatic for pl in plans])
        assert abs(rate - 0.32) < 0.04

    def test_symptomatic_rate_old(self, rng):
        p = FailureSymptomParams(old_symptomatic_prob=0.30)
        plans = _plans(p, FailureMode.WEAR, rng)
        rate = np.mean([pl.symptomatic for pl in plans])
        assert abs(rate - 0.30) < 0.04

    def test_burst_offsets_inside_window(self, rng):
        p = FailureSymptomParams()
        for pl in _plans(p, FailureMode.DEFECT, rng, n=300):
            if pl.burst_offsets.size:
                assert pl.burst_offsets.max() < p.burst_window_days
                assert pl.burst_offsets.min() >= 0

    def test_burst_probability_decays_with_offset(self, rng):
        p = FailureSymptomParams()
        counts = np.zeros(p.burst_window_days)
        plans = _plans(p, FailureMode.WEAR, rng, n=6000)
        for pl in plans:
            counts[pl.burst_offsets] += 1
        sympt = sum(pl.symptomatic for pl in plans)
        # Day-0 burst rate near the configured peak; decayed by day 5.
        assert counts[0] / sympt > 0.8 * p.burst_peak_prob_old
        assert counts[5] < counts[0] * 0.3

    def test_young_symptomatic_gets_lifelong_boost(self, rng):
        p = FailureSymptomParams()
        for pl in _plans(p, FailureMode.DEFECT, rng, n=300):
            if pl.symptomatic:
                assert pl.lifelong_boost == p.young_lifelong_error_boost
            else:
                assert pl.lifelong_boost == 1.0

    def test_old_failures_never_boosted(self, rng):
        for pl in _plans(FailureSymptomParams(), FailureMode.WEAR, rng, n=300):
            assert pl.lifelong_boost == 1.0

    def test_bad_block_only_channel_fires_for_silent(self, rng):
        p = FailureSymptomParams(old_symptomatic_prob=0.0, bad_block_only_prob=0.5)
        plans = _plans(p, FailureMode.WEAR, rng)
        with_bb = np.mean([pl.bad_block_offsets.size > 0 for pl in plans])
        assert 0.3 < with_bb < 0.55  # 0.5 minus the chance of zero fires

    def test_decline_days_bounded_by_period(self, rng):
        p = FailureSymptomParams(
            activity_decline_prob_symptomatic=1.0,
            activity_decline_prob_silent=1.0,
        )
        for pl in _plans(p, FailureMode.WEAR, rng, n=300, period_len=3):
            assert pl.decline_days <= 3

    def test_dead_flag_rate(self, rng):
        p = FailureSymptomParams(dead_flag_prob=0.5)
        plans = _plans(p, FailureMode.WEAR, rng)
        rate = np.mean([pl.dead_flag for pl in plans])
        assert abs(rate - 0.5) < 0.05

    def test_none_constructor(self):
        plan = SymptomPlan.none()
        assert plan.read_only_from_offset is None
        assert plan.bad_block_offsets.size == 0
