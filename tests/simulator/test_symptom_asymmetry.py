"""Tests for the infant/mature symptom asymmetry (drives Figure 15)."""

from __future__ import annotations

import numpy as np

from repro.simulator import FailureMode, FailureSymptomParams, plan_symptoms


class TestDeclineAsymmetry:
    def test_old_failures_drained_less_often(self, rng):
        p = FailureSymptomParams()
        young_declines = 0
        old_declines = 0
        n = 4000
        for _ in range(n):
            if plan_symptoms(p, FailureMode.DEFECT, 300, rng).decline_days > 0:
                young_declines += 1
            if plan_symptoms(p, FailureMode.WEAR, 300, rng).decline_days > 0:
                old_declines += 1
        # The configured scale (< 1) must show up as a real gap.
        assert young_declines > old_declines * 1.15

    def test_scale_one_removes_asymmetry(self, rng):
        p = FailureSymptomParams(old_decline_prob_scale=1.0)
        young = np.mean(
            [
                plan_symptoms(p, FailureMode.DEFECT, 300, rng).decline_days > 0
                for _ in range(3000)
            ]
        )
        old = np.mean(
            [
                plan_symptoms(p, FailureMode.WEAR, 300, rng).decline_days > 0
                for _ in range(3000)
            ]
        )
        assert abs(young - old) < 0.05
