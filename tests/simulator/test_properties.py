"""Property-based tests: simulator invariants under random configurations.

Hypothesis draws random (small) fleet configurations and drive seeds; every
draw must satisfy the structural invariants the rest of the stack relies
on — sorted records, monotone cumulative counters, consistent event
ordering, no telemetry from inside the repair shop.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import MLC_B, FleetConfig, simulate_drive, simulate_fleet


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    deploy=st.integers(0, 300),
    horizon=st.integers(330, 1200),
)
def test_single_drive_invariants(seed, deploy, horizon):
    rng = np.random.default_rng(seed)
    res = simulate_drive(
        drive_id=1,
        model_index=1,
        spec=MLC_B,
        deploy_day=deploy,
        horizon_days=horizon,
        rng=rng,
    )
    ages = res.records["age_days"]
    max_age = horizon - deploy
    # Ages strictly increasing and inside the observation window.
    assert (np.diff(ages) > 0).all()
    if ages.size:
        assert ages.min() >= 0 and ages.max() < max_age
    # Cumulative counters never decrease.
    assert (np.diff(res.records["pe_cycles"]) >= -1e-9).all()
    assert (np.diff(res.records["grown_bad_blocks"]) >= 0).all()
    # Every daily quantity non-negative.
    for name, arr in res.records.items():
        assert (np.asarray(arr, dtype=np.float64) >= 0).all(), name
    # Swap-event ordering.
    prev_end = -1.0
    for ev in res.swaps:
        assert ev.operational_start_age <= ev.failure_age <= ev.swap_age
        assert ev.swap_age < max_age
        assert ev.operational_start_age > prev_end or prev_end < 0
        if not np.isnan(ev.reentry_age):
            assert ev.reentry_age > ev.swap_age
            prev_end = ev.reentry_age
        # No telemetry between swap and re-entry (the repair shop).
        if not np.isnan(ev.reentry_age):
            in_shop = (ages > ev.swap_age) & (ages < ev.reentry_age)
            assert in_shop.sum() == 0


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 1000),
    n=st.integers(5, 25),
    horizon=st.integers(200, 600),
)
def test_fleet_invariants(seed, n, horizon):
    cfg = FleetConfig(
        n_drives_per_model=n,
        horizon_days=horizon,
        deploy_spread_days=horizon // 3,
        seed=seed,
    )
    trace = simulate_fleet(cfg)
    # Drive table covers all three models evenly.
    assert len(trace.drives) == 3 * n
    # Records sorted by (drive, age).
    ids = trace.records["drive_id"]
    ages = trace.records["age_days"]
    same = ids[1:] == ids[:-1]
    assert ((ids[1:] > ids[:-1]) | (same & (ages[1:] > ages[:-1]))).all()
    # Swap log refers only to existing drives and valid ages.
    drive_ids = set(trace.drives.drive_id.tolist())
    for i in range(len(trace.swaps)):
        assert int(trace.swaps.drive_id[i]) in drive_ids
        assert trace.swaps.failure_age[i] >= 1
    # Simulation is deterministic in the config.
    again = simulate_fleet(cfg)
    assert len(again.records) == len(trace.records)
    assert np.array_equal(
        again.records["uncorrectable_error"], trace.records["uncorrectable_error"]
    )
