"""Tests for the bathtub failure process."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator import FailureMode, LifetimeParams, sample_failure


def _many(params, rng, n=4000, start=0, max_age=2190, post_repair=False, prone=0.0):
    draws = [
        sample_failure(params, rng, start, max_age, post_repair, proneness=prone)
        for _ in range(n)
    ]
    ages = np.array([d.age for d in draws if d.age is not None], dtype=float)
    modes = [d.mode for d in draws if d.age is not None]
    return draws, ages, modes


class TestSampleFailure:
    def test_censored_when_window_empty(self, rng):
        d = sample_failure(LifetimeParams(), rng, 100, 100, False)
        assert d.age is None and d.mode == FailureMode.NONE

    def test_failure_age_strictly_inside_period(self, rng):
        params = LifetimeParams(defect_prob=0.5, mature_hazard_per_day=1e-3)
        for _ in range(500):
            d = sample_failure(params, rng, 10, 50, False)
            if d.age is not None:
                assert 10 < d.age < 50

    def test_no_hazard_no_failures(self, rng):
        params = LifetimeParams(defect_prob=0.0, mature_hazard_per_day=0.0)
        draws, ages, _ = _many(params, rng, n=200)
        assert len(ages) == 0

    def test_defect_failures_concentrate_in_infancy(self, rng):
        params = LifetimeParams(defect_prob=1.0, mature_hazard_per_day=0.0)
        _, ages, modes = _many(params, rng, n=1000)
        assert all(m == FailureMode.DEFECT for m in modes)
        assert np.median(ages) < 90
        assert (ages <= 90).mean() > 0.7

    def test_constant_hazard_is_exponential(self, rng):
        lam = 1e-3
        params = LifetimeParams(defect_prob=0.0, mature_hazard_per_day=lam)
        _, ages, modes = _many(params, rng, n=4000, max_age=100_000)
        assert all(m == FailureMode.WEAR for m in modes)
        assert ages.mean() == pytest.approx(1 / lam, rel=0.1)

    def test_proneness_raises_hazard(self, rng):
        params = LifetimeParams(defect_prob=0.0, mature_hazard_per_day=5e-5)
        _, clean, _ = _many(params, rng, n=3000, prone=0.0)
        _, prone, _ = _many(params, rng, n=3000, prone=2.0)
        assert len(prone) > 1.5 * len(clean)

    def test_post_repair_multiplier(self, rng):
        params = LifetimeParams(
            defect_prob=0.0,
            post_repair_defect_prob=0.0,
            mature_hazard_per_day=5e-5,
            post_repair_hazard_mult=8.0,
        )
        _, fresh, _ = _many(params, rng, n=2000, post_repair=False)
        _, repaired, _ = _many(params, rng, n=2000, post_repair=True)
        assert len(repaired) > 2 * len(fresh)

    def test_failure_rate_flat_after_infancy(self, rng):
        """Observation 7: old drives fail no more often than mature ones."""
        params = LifetimeParams()
        _, ages, _ = _many(params, rng, n=30_000)
        mature = ages[ages > 90]
        # Exposure-normalized monthly rate in year 2 vs year 5 should agree.
        y2 = ((mature >= 365) & (mature < 730)).sum()
        y5 = ((mature >= 1460) & (mature < 1825)).sum()
        # Identical exposure (max_age fixed): counts should be similar.
        assert 0.5 < (y5 + 1) / (y2 + 1) < 2.0
