"""Tests for the error generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator import (
    ErrorParams,
    FailureSymptomParams,
    SymptomPlan,
    generate_errors,
    sample_error_latents,
)
from repro.simulator.errors import ErrorLatents


def _gen(rng, n=3000, latents=None, plan=None, params=None, reads_scale=2.5e8):
    params = params or ErrorParams()
    latents = latents or ErrorLatents(
        error_proneness=1.0,
        glitch_factor=1.0,
        correctable_factor=1.0,
        factory_bad_blocks=5,
    )
    plan = plan or SymptomPlan.none()
    ages = np.arange(n, dtype=np.int64)
    reads = np.full(n, reads_scale)
    writes = np.full(n, 1e8)
    erases = writes / 512
    pe = np.cumsum(np.full(n, 0.8))
    return generate_errors(
        params,
        FailureSymptomParams(),
        latents,
        plan,
        ages=ages,
        reads=reads,
        writes=writes,
        erases=erases,
        pe_cycles=pe,
        pe_limit=3000,
        rng=rng,
    )


class TestLatents:
    def test_clean_drive_fraction(self, rng):
        params = ErrorParams(error_prone_prob=0.2)
        lat = [sample_error_latents(params, rng) for _ in range(3000)]
        clean = sum(1 for l in lat if l.error_proneness == 0.0)
        assert 0.15 < 1 - clean / 3000 < 0.25

    def test_factory_bad_blocks_nonnegative(self, rng):
        lat = [sample_error_latents(ErrorParams(), rng) for _ in range(200)]
        assert all(l.factory_bad_blocks >= 0 for l in lat)


class TestBackgroundErrors:
    def test_clean_drive_no_nontransparent(self, rng):
        lat = ErrorLatents(0.0, 1.0, 1.0, 3)
        out = _gen(rng, latents=lat)
        assert out.uncorrectable_error.sum() == 0
        assert out.final_write_error.sum() == 0
        assert out.meta_error.sum() == 0

    def test_prone_drive_has_ue_days(self, rng):
        out = _gen(rng)
        frac = (out.uncorrectable_error > 0).mean()
        p = ErrorParams()
        assert frac == pytest.approx(p.ue_daily_prob, rel=0.5)

    def test_final_read_coupled_to_ue(self, rng):
        out = _gen(rng, n=20_000)
        fr_days = out.final_read_error > 0
        ue_days = out.uncorrectable_error > 0
        # Nearly all final-read days are UE days (stray rate is tiny).
        overlap = (fr_days & ue_days).sum() / max(fr_days.sum(), 1)
        assert overlap > 0.8
        # And final reads never exceed UEs by more than the stray events.
        assert (out.final_read_error <= out.uncorrectable_error + 1).all()

    def test_idle_days_produce_no_errors(self, rng):
        params = ErrorParams()
        lat = ErrorLatents(2.0, 1.0, 1.0, 3)
        n = 1000
        ages = np.arange(n, dtype=np.int64)
        reads = np.zeros(n)
        writes = np.zeros(n)
        out = generate_errors(
            params,
            FailureSymptomParams(),
            lat,
            SymptomPlan.none(),
            ages=ages,
            reads=reads,
            writes=writes,
            erases=np.zeros(n),
            pe_cycles=np.zeros(n),
            pe_limit=3000,
            rng=rng,
        )
        assert out.uncorrectable_error.sum() == 0
        assert out.correctable_error.sum() == 0
        assert out.erase_error.sum() == 0

    def test_correctable_scales_with_reads(self, rng):
        lo = _gen(rng, reads_scale=1e7)
        hi = _gen(rng, reads_scale=1e9)
        assert hi.correctable_error.mean() > 10 * lo.correctable_error.mean()

    def test_correctable_zero_day_fraction(self, rng):
        params = ErrorParams(correctable_zero_prob=0.2)
        out = _gen(rng, params=params)
        assert (out.correctable_error == 0).mean() == pytest.approx(0.2, abs=0.05)

    def test_erase_errors_increase_with_wear(self, rng):
        params = ErrorParams()
        lat = ErrorLatents(0.0, 1.0, 1.0, 3)
        n = 4000
        low_pe = np.full(n, 100.0)
        high_pe = np.full(n, 2900.0)
        common = dict(
            ages=np.arange(n, dtype=np.int64),
            reads=np.full(n, 1e8),
            writes=np.full(n, 1e8),
            erases=np.full(n, 2e5),
            pe_limit=3000,
        )
        lo = generate_errors(
            params, FailureSymptomParams(), lat, SymptomPlan.none(),
            pe_cycles=low_pe, rng=rng, **common,
        )
        hi = generate_errors(
            params, FailureSymptomParams(), lat, SymptomPlan.none(),
            pe_cycles=high_pe, rng=rng, **common,
        )
        assert (hi.erase_error > 0).sum() > 2 * (lo.erase_error > 0).sum()

    def test_timeout_response_share_glitch_days(self, rng):
        params = ErrorParams(glitch_daily_prob=5e-3)
        out = _gen(rng, n=50_000, params=params)
        to = out.timeout_error > 0
        resp = out.response_error > 0
        if resp.sum() and to.sum():
            # P(timeout | response-day) far above the marginal rate.
            p_joint = (to & resp).sum() / resp.sum()
            assert p_joint > 3 * to.mean()


class TestSymptomInjection:
    def _plan(self, offsets, young=True, boost=30.0):
        return SymptomPlan(
            symptomatic=True,
            young=young,
            burst_offsets=np.asarray(offsets, dtype=np.int64),
            bad_block_offsets=np.asarray(offsets, dtype=np.int64),
            lifelong_boost=boost if young else 1.0,
            read_only_from_offset=None,
            dead_flag=False,
            decline_days=0,
            decline_factor=1.0,
        )

    def test_burst_days_have_large_ue(self, rng):
        plan = self._plan([0, 1, 3])
        out = _gen(rng, n=500, plan=plan, latents=ErrorLatents(0.0, 1, 1, 3))
        n = 500
        # Bursts land at the end of the period (offsets from the last day).
        assert out.uncorrectable_error[n - 1] >= 1
        assert out.uncorrectable_error[n - 2] >= 1
        assert out.uncorrectable_error[n - 4] >= 1

    def test_lifelong_boost_elevates_clean_drive(self, rng):
        lat = ErrorLatents(0.0, 1.0, 1.0, 3)
        base = _gen(rng, n=2000, latents=lat)
        boosted = _gen(rng, n=2000, latents=lat, plan=self._plan([], young=True))
        assert boosted.uncorrectable_error.sum() > base.uncorrectable_error.sum()

    def test_bad_blocks_grow_on_burst_days(self, rng):
        plan = self._plan([0], young=True)
        out = _gen(rng, n=100, plan=plan, latents=ErrorLatents(0.0, 1, 1, 3))
        assert out.grown_bad_block_increment[-1] >= 1

    def test_young_bursts_bigger_than_old(self, rng):
        young_tot, old_tot = 0, 0
        for _ in range(30):
            y = _gen(rng, n=50, plan=self._plan([0], young=True),
                     latents=ErrorLatents(0.0, 1, 1, 3))
            o = _gen(rng, n=50, plan=self._plan([0], young=False),
                     latents=ErrorLatents(0.0, 1, 1, 3))
            young_tot += y.uncorrectable_error[-1]
            old_tot += o.uncorrectable_error[-1]
        assert young_tot > 5 * old_tot
