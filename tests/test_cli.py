"""End-to-end tests of the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("fleet")
    code = main(
        [
            "simulate",
            "--out",
            str(out),
            "--drives",
            "50",
            "--days",
            "600",
            "--deploy-spread",
            "200",
            "--seed",
            "4",
        ]
    )
    assert code == 0
    return out


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["simulate", "--out", "x"])
        assert args.command == "simulate"
        with pytest.raises(SystemExit):
            parser.parse_args(["bogus"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_simulate_writes_files(self, trace_dir):
        for name in ("records.npz", "drives.npz", "swaps.npz"):
            assert (trace_dir / name).exists()

    def test_report(self, trace_dir, capsys):
        assert main(["report", "--trace", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Figure 6" in out

    def test_audit(self, trace_dir, capsys):
        code = main(["audit", "--trace", str(trace_dir)])
        out = capsys.readouterr().out
        assert "Obs  1" in out
        assert code in (0, 1)  # tiny fleets may fail marginal observations

    def test_train_then_score(self, trace_dir, tmp_path, capsys):
        model = tmp_path / "model.pkl"
        assert (
            main(
                [
                    "train",
                    "--trace",
                    str(trace_dir),
                    "--model",
                    str(model),
                    "--lookahead",
                    "3",
                ]
            )
            == 0
        )
        assert model.exists()
        assert (
            main(
                [
                    "score",
                    "--trace",
                    str(trace_dir),
                    "--model",
                    str(model),
                    "--top",
                    "5",
                    "--threshold",
                    "0.99",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "P(fail" in out
        assert "alpha=0.99" in out


class TestErrorHandling:
    """Missing/corrupt inputs exit with code 2 and a one-line error."""

    def test_report_missing_trace(self, tmp_path, capsys):
        assert main(["report", "--trace", str(tmp_path / "nope")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "simulate" in err

    def test_audit_missing_trace(self, tmp_path, capsys):
        assert main(["audit", "--trace", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_train_missing_trace(self, tmp_path, capsys):
        assert (
            main(
                ["train", "--trace", str(tmp_path / "nope"),
                 "--model", str(tmp_path / "m.pkl")]
            )
            == 2
        )
        assert "error:" in capsys.readouterr().err

    def test_score_missing_model(self, trace_dir, tmp_path, capsys):
        code = main(
            ["score", "--trace", str(trace_dir), "--model", str(tmp_path / "no.pkl")]
        )
        assert code == 2
        assert "train one with" in capsys.readouterr().err

    def test_score_unreadable_model(self, trace_dir, tmp_path, capsys):
        bad = tmp_path / "bad.pkl"
        bad.write_bytes(b"not a pickle")
        code = main(["score", "--trace", str(trace_dir), "--model", str(bad)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_truncated_trace_exits_2(self, trace_dir, tmp_path, capsys):
        from repro.reliability import truncate_file
        import shutil

        dirty = tmp_path / "dirty"
        shutil.copytree(trace_dir, dirty)
        truncate_file(dirty / "records.npz", keep_fraction=0.4)
        assert main(["report", "--trace", str(dirty)]) == 2
        assert "corrupt or truncated" in capsys.readouterr().err

    def test_strict_policy_rejects_corrupt_trace(self, trace_dir, tmp_path, capsys):
        assert (
            main(
                ["inject", "--trace", str(trace_dir), "--out",
                 str(tmp_path / "dirty"), "--faults", "value_spikes", "--seed", "5"]
            )
            == 0
        )
        code = main(["report", "--trace", str(tmp_path / "dirty"),
                     "--policy", "strict"])
        assert code == 2
        err = capsys.readouterr().err
        assert "strict policy" in err and "values." in err


class TestReliabilityCommands:
    def test_inject_unknown_fault(self, trace_dir, tmp_path, capsys):
        code = main(
            ["inject", "--trace", str(trace_dir), "--out", str(tmp_path / "d"),
             "--faults", "cosmic_rays"]
        )
        assert code == 2
        assert "unknown fault class" in capsys.readouterr().err

    def test_inject_then_repair_report(self, trace_dir, tmp_path, capsys):
        dirty = tmp_path / "dirty"
        assert (
            main(
                ["inject", "--trace", str(trace_dir), "--out", str(dirty),
                 "--faults", "duplicate_rows,value_spikes", "--seed", "5"]
            )
            == 0
        )
        assert "Injected" in capsys.readouterr().out
        assert main(["report", "--trace", str(dirty), "--policy", "repair"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_audit_deep_clean_trace(self, trace_dir, capsys):
        code = main(["audit", "--trace", str(trace_dir), "--deep"])
        out = capsys.readouterr().out
        assert "Telemetry validation" in out
        assert "Result: OK" in out
        assert code in (0, 1)

    def test_audit_deep_corrupt_trace(self, trace_dir, tmp_path, capsys):
        dirty = tmp_path / "dirty"
        main(["inject", "--trace", str(trace_dir), "--out", str(dirty),
              "--faults", "duplicate_rows", "--seed", "6"])
        code = main(["audit", "--trace", str(dirty), "--deep"])
        out = capsys.readouterr().out
        assert code == 1
        assert "skipping observation checks" in out

    def test_simulate_resume_flag_completes(self, trace_dir, tmp_path):
        out = tmp_path / "fleet"
        argv = ["simulate", "--out", str(out), "--drives", "10", "--days", "120",
                "--deploy-spread", "30", "--seed", "9", "--checkpoint-every", "16"]
        assert main(argv) == 0
        assert main(argv + ["--resume"]) == 0
        assert (out / "records.npz").exists()
        assert not (out / ".checkpoints").exists()

    def test_inject_corrupt_records_exits_2(self, trace_dir, tmp_path, capsys):
        """Satellite: inject on a corrupt trace is exit 2, not a traceback."""
        import shutil

        broken = tmp_path / "broken"
        shutil.copytree(trace_dir, broken)
        (broken / "records.npz").write_bytes(b"\x00garbage")
        code = main(["inject", "--trace", str(broken), "--out",
                     str(tmp_path / "d"), "--faults", "value_spikes"])
        assert code == 2
        assert "corrupt or truncated" in capsys.readouterr().err

    def test_inject_missing_trace_exits_2(self, tmp_path, capsys):
        code = main(["inject", "--trace", str(tmp_path / "nope"), "--out",
                     str(tmp_path / "d"), "--faults", "value_spikes"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_audit_deep_garbage_records_exits_2(self, trace_dir, tmp_path, capsys):
        import shutil

        broken = tmp_path / "broken"
        shutil.copytree(trace_dir, broken)
        (broken / "records.npz").write_bytes(b"\x00garbage")
        assert main(["audit", "--trace", str(broken), "--deep"]) == 2
        assert "corrupt or truncated" in capsys.readouterr().err


def _simulate(out, seed=4, extra=()):
    argv = ["simulate", "--out", str(out), "--drives", "8", "--days", "120",
            "--deploy-spread", "30", "--seed", str(seed), "--quiet", *extra]
    return main(argv)


class TestParallelCLI:
    """`--workers` on the CLI: manifests, obs parity, and crash surfacing."""

    def test_workers_recorded_in_manifest_with_chunk_timings(self, tmp_path,
                                                             capsys):
        from repro.obs import load_manifest, validate_manifest

        out = tmp_path / "fleet"
        code = _simulate(out, extra=["--workers", "2", "--checkpoint-every", "8"])
        capsys.readouterr()
        assert code == 0
        body = load_manifest(out / "run_manifest.json")
        assert validate_manifest(body) == []
        assert body["results"]["workers"] == 2
        timings = body["results"]["chunk_timings"]
        assert len(timings) == 3  # 24 drives / 8 per chunk
        assert [t["chunk"] for t in timings] == [0, 1, 2]
        for t in timings:
            assert t["cached"] is False and t["seconds"] >= 0.0

    def test_parallel_trace_and_manifest_match_serial(self, tmp_path, capsys):
        a, b = tmp_path / "serial", tmp_path / "parallel"
        assert _simulate(a) == 0
        assert _simulate(b, extra=["--workers", "2"]) == 0
        for name in ("records.npz", "drives.npz", "swaps.npz"):
            assert (a / name).read_bytes() == (b / name).read_bytes()
        code = main(["obs", "diff", str(a / "run_manifest.json"),
                     str(b / "run_manifest.json")])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 drift item(s)" in out and "COMPARABLE" in out

    def test_workers_env_var_applies(self, tmp_path, monkeypatch, capsys):
        from repro.obs import load_manifest
        from repro.parallel import ENV_WORKERS

        monkeypatch.setenv(ENV_WORKERS, "2")
        out = tmp_path / "fleet"
        assert _simulate(out) == 0
        capsys.readouterr()
        assert load_manifest(out / "run_manifest.json")["results"]["workers"] == 2

    def test_bad_workers_value_exits_2(self, tmp_path, capsys):
        code = _simulate(tmp_path / "fleet", extra=["--workers", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    @pytest.mark.skipif(
        "fork" not in __import__("multiprocessing").get_all_start_methods(),
        reason="patch must be inherited by forked workers",
    )
    def test_worker_crash_exits_2_not_hang(self, tmp_path, monkeypatch, capsys):
        import repro.reliability.runner as runner_mod

        def _boom(*args, **kwargs):
            raise RuntimeError("injected worker failure")

        monkeypatch.setattr(runner_mod, "simulate_drive", _boom)
        code = _simulate(
            tmp_path / "fleet",
            extra=["--workers", "2", "--checkpoint-every", "8"],
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err
        assert "injected worker failure" in err


class TestObservability:
    """Manifests, tracing flags, and the `obs` subcommand."""

    def test_simulate_writes_valid_manifest(self, trace_dir):
        from repro.obs import load_manifest, validate_manifest

        body = load_manifest(trace_dir / "run_manifest.json")
        assert validate_manifest(body) == []
        assert body["command"] == "simulate"
        assert body["seeds"] == {"seed": 4}
        assert set(body["outputs"]) == {"records.npz", "drives.npz", "swaps.npz"}
        assert body["counts"]["drives"] == 150  # --drives is per model (x3)
        stage_names = {s["name"] for s in body["stages"]}
        assert "repro.simulator.chunk" in stage_names
        assert "repro.data.save_records" in stage_names

    def test_simulate_quiet_prints_one_summary_line(self, tmp_path, capsys):
        assert _simulate(tmp_path / "fleet") == 0
        out = capsys.readouterr().out
        (line,) = out.strip().splitlines()
        assert line.startswith("simulate ok: ")
        assert "days" in line and "swaps" in line and "elapsed" in line
        assert "manifest" in line

    def test_trace_flag_includes_spans(self, tmp_path):
        from repro.obs import load_manifest

        out = tmp_path / "fleet"
        assert _simulate(out, extra=["--trace"]) == 0
        body = load_manifest(out / "run_manifest.json")
        assert body["spans"], "expected full span tree with --trace"
        assert any(s["name"] == "repro.simulator.assemble" for s in body["spans"])

    def test_no_manifest_flag(self, tmp_path, capsys):
        out = tmp_path / "fleet"
        assert _simulate(out, extra=["--no-manifest"]) == 0
        capsys.readouterr()
        assert not (out / "run_manifest.json").exists()

    def test_metrics_out_writes_prometheus_text(self, tmp_path, capsys):
        out = tmp_path / "fleet"
        prom = tmp_path / "metrics.prom"
        assert _simulate(out, extra=["--metrics-out", str(prom)]) == 0
        capsys.readouterr()
        text = prom.read_text()
        assert "# TYPE repro_chunks_total counter" in text
        assert "repro_rows_total" in text

    def test_train_writes_manifest_with_input_digests(self, trace_dir, tmp_path,
                                                      capsys):
        from repro.obs import load_manifest, validate_manifest

        model = tmp_path / "model.pkl"
        assert main(["train", "--trace", str(trace_dir), "--model", str(model),
                     "--lookahead", "3", "--cv", "0"]) == 0
        capsys.readouterr()
        body = load_manifest(str(model) + ".manifest.json")
        assert validate_manifest(body) == []
        assert body["command"] == "train"
        # Train's input digests match simulate's output digests: provenance.
        sim = load_manifest(trace_dir / "run_manifest.json")
        assert body["inputs"]["records.npz"] == sim["outputs"]["records.npz"]
        assert "model.pkl" in body["outputs"]

    def test_score_writes_manifest(self, trace_dir, tmp_path, capsys):
        from repro.obs import load_manifest, validate_manifest

        model = tmp_path / "model.pkl"
        assert main(["train", "--trace", str(trace_dir), "--model", str(model),
                     "--lookahead", "3", "--cv", "0"]) == 0
        assert main(["score", "--trace", str(trace_dir), "--model", str(model),
                     "--threshold", "0.99"]) == 0
        capsys.readouterr()
        body = load_manifest(str(model) + ".score-manifest.json")
        assert validate_manifest(body) == []
        assert body["command"] == "score"
        assert "n_flagged" in body["results"]
        assert "model.pkl" in body["inputs"] and "records.npz" in body["inputs"]

    def test_obs_show(self, trace_dir, capsys):
        assert main(["obs", "show", str(trace_dir / "run_manifest.json")]) == 0
        out = capsys.readouterr().out
        assert "Run manifest" in out and "repro.simulator.chunk" in out

    def test_obs_show_missing_manifest_exits_2(self, tmp_path, capsys):
        assert main(["obs", "show", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_obs_diff_same_seed_runs_clean(self, tmp_path, capsys):
        a, b = tmp_path / "a", tmp_path / "b"
        assert _simulate(a) == 0 and _simulate(b) == 0
        code = main(["obs", "diff", str(a / "run_manifest.json"),
                     str(b / "run_manifest.json")])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 drift item(s)" in out and "COMPARABLE" in out

    def test_obs_diff_seed_perturbed_reports_drift(self, tmp_path, capsys):
        a, b = tmp_path / "a", tmp_path / "b"
        assert _simulate(a, seed=4) == 0 and _simulate(b, seed=5) == 0
        code = main(["obs", "diff", str(a / "run_manifest.json"),
                     str(b / "run_manifest.json")])
        out = capsys.readouterr().out
        assert code == 1
        assert "DRIFT [seed] seeds.seed" in out
        assert "NOT COMPARABLE" in out


class TestResilienceCLI:
    """Supervision flags, interrupt exit codes, and env validation."""

    def test_non_integer_workers_env_exits_2_one_line(self, tmp_path,
                                                      monkeypatch, capsys):
        from repro.parallel import ENV_WORKERS

        monkeypatch.setenv(ENV_WORKERS, "two")
        code = _simulate(tmp_path / "fleet")
        err = capsys.readouterr().err
        assert code == 2
        assert "REPRO_WORKERS must be an integer" in err
        assert "'two'" in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_bad_max_retries_exits_2(self, tmp_path, capsys):
        code = _simulate(tmp_path / "fleet", extra=["--max-retries", "-1"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_task_timeout_exits_2(self, tmp_path, capsys):
        code = _simulate(tmp_path / "fleet", extra=["--task-timeout", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_on_poison_rejected_by_parser(self, tmp_path):
        with pytest.raises(SystemExit):
            _simulate(tmp_path / "fleet", extra=["--on-poison", "explode"])

    def test_interrupt_during_simulate_exits_130(self, tmp_path, monkeypatch,
                                                 capsys):
        import repro.cli as cli_mod

        def _interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_mod, "simulate_fleet_resumable", _interrupt)
        code = _simulate(tmp_path / "fleet", extra=["--workers", "2"])
        err = capsys.readouterr().err
        assert code == 130
        assert "interrupted (SIGINT)" in err
        assert "rerun with --resume" in err

    def test_sigterm_message_names_signal(self, tmp_path, monkeypatch,
                                          capsys):
        import signal as signal_mod

        import repro.cli as cli_mod
        from repro.resilience import ShutdownRequested

        def _interrupt(*args, **kwargs):
            raise ShutdownRequested(signal_mod.SIGTERM)

        monkeypatch.setattr(cli_mod, "simulate_fleet_resumable", _interrupt)
        code = _simulate(tmp_path / "fleet")
        err = capsys.readouterr().err
        assert code == 130
        assert "interrupted (SIGTERM)" in err

    def test_interrupt_during_train_exits_130(self, trace_dir, tmp_path,
                                              monkeypatch, capsys):
        import repro.cli as cli_mod

        class _Interrupting:
            def __init__(self, *args, **kwargs):
                raise KeyboardInterrupt

        monkeypatch.setattr(cli_mod, "FailurePredictor", _Interrupting)
        code = main(["train", "--trace", str(trace_dir), "--model",
                     str(tmp_path / "model.pkl"), "--workers", "2"])
        err = capsys.readouterr().err
        assert code == 130
        assert "interrupted (SIGINT)" in err

    @pytest.mark.skipif(
        "fork" not in __import__("multiprocessing").get_all_start_methods(),
        reason="chaos injection rides the fork start method",
    )
    def test_supervision_summary_printed_on_retries(self, tmp_path,
                                                    monkeypatch, capsys):
        from repro.resilience import ENV_CHAOS

        monkeypatch.setenv(ENV_CHAOS, "error=1.0")
        out = tmp_path / "fleet"
        code = main(["simulate", "--out", str(out), "--drives", "8", "--days",
                     "120", "--deploy-spread", "30", "--seed", "4",
                     "--checkpoint-every", "5", "--workers", "2",
                     "--max-retries", "2"])
        stdout = capsys.readouterr().out
        assert code == 0
        assert "supervision: 5 retries" in stdout

    @pytest.mark.skipif(
        "fork" not in __import__("multiprocessing").get_all_start_methods(),
        reason="chaos injection rides the fork start method",
    )
    def test_quiet_run_omits_summary_but_manifest_records_it(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.obs import load_manifest
        from repro.resilience import ENV_CHAOS

        monkeypatch.setenv(ENV_CHAOS, "error=1.0")
        out = tmp_path / "fleet"
        code = _simulate(out, extra=["--workers", "2", "--max-retries", "2",
                                     "--checkpoint-every", "5"])
        stdout = capsys.readouterr().out
        assert code == 0
        assert "supervision:" not in stdout
        assert load_manifest(out / "run_manifest.json")["resilience"]["retries"] == 5
