"""End-to-end tests of the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def trace_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("fleet")
    code = main(
        [
            "simulate",
            "--out",
            str(out),
            "--drives",
            "50",
            "--days",
            "600",
            "--deploy-spread",
            "200",
            "--seed",
            "4",
        ]
    )
    assert code == 0
    return out


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["simulate", "--out", "x"])
        assert args.command == "simulate"
        with pytest.raises(SystemExit):
            parser.parse_args(["bogus"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_simulate_writes_files(self, trace_dir):
        for name in ("records.npz", "drives.npz", "swaps.npz"):
            assert (trace_dir / name).exists()

    def test_report(self, trace_dir, capsys):
        assert main(["report", "--trace", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Figure 6" in out

    def test_audit(self, trace_dir, capsys):
        code = main(["audit", "--trace", str(trace_dir)])
        out = capsys.readouterr().out
        assert "Obs  1" in out
        assert code in (0, 1)  # tiny fleets may fail marginal observations

    def test_train_then_score(self, trace_dir, tmp_path, capsys):
        model = tmp_path / "model.pkl"
        assert (
            main(
                [
                    "train",
                    "--trace",
                    str(trace_dir),
                    "--model",
                    str(model),
                    "--lookahead",
                    "3",
                ]
            )
            == 0
        )
        assert model.exists()
        assert (
            main(
                [
                    "score",
                    "--trace",
                    str(trace_dir),
                    "--model",
                    str(model),
                    "--top",
                    "5",
                    "--threshold",
                    "0.99",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "P(fail" in out
        assert "alpha=0.99" in out
