"""Tests for grouped cross-validation and grid search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import (
    LogisticRegression,
    cross_validate_auc,
    grid_search,
    parameter_grid,
)


def _grouped_problem(rng, n_drives=60, days=30):
    """Rows grouped by synthetic drive; drive-level signal + noise."""
    groups = np.repeat(np.arange(n_drives), days)
    n = n_drives * days
    drive_risk = rng.normal(size=n_drives)
    X = np.column_stack(
        (
            drive_risk[groups] + rng.normal(scale=0.5, size=n),
            rng.normal(size=n),
        )
    )
    p = 1 / (1 + np.exp(-(drive_risk[groups])))
    y = (rng.random(n) < p * 0.3).astype(int)
    if y.sum() == 0:
        y[0] = 1
    return X, y, groups


class TestCrossValidate:
    def test_returns_k_fold_aucs(self, rng):
        X, y, g = _grouped_problem(rng)
        res = cross_validate_auc(
            lambda: LogisticRegression(), X, y, g, n_splits=4, scale=True, seed=0
        )
        assert len(res.fold_aucs) <= 4
        assert 0.0 <= res.mean_auc <= 1.0
        assert res.std_auc >= 0.0

    def test_oof_predictions_cover_test_rows(self, rng):
        X, y, g = _grouped_problem(rng)
        res = cross_validate_auc(
            lambda: LogisticRegression(), X, y, g, n_splits=4, seed=0
        )
        # Each scored row index appears exactly once.
        assert len(np.unique(res.oof_index)) == len(res.oof_index)
        assert np.array_equal(res.oof_true, y[res.oof_index])

    def test_no_downsampling_option(self, rng):
        X, y, g = _grouped_problem(rng)
        res = cross_validate_auc(
            lambda: LogisticRegression(),
            X,
            y,
            g,
            n_splits=3,
            downsample_ratio=None,
            seed=0,
        )
        assert np.isfinite(res.mean_auc)

    def test_deterministic_given_seed(self, rng):
        X, y, g = _grouped_problem(rng)
        r1 = cross_validate_auc(lambda: LogisticRegression(), X, y, g, seed=3)
        r2 = cross_validate_auc(lambda: LogisticRegression(), X, y, g, seed=3)
        assert np.allclose(r1.fold_aucs, r2.fold_aucs)

    def test_grouped_cv_scores_below_leaky_cv(self):
        """Drive-level leakage must inflate naive CV (paper Section 5.1).

        We emulate leakage by giving every row of a drive the same label
        and a drive-unique 'fingerprint' feature that carries no
        cross-drive information.  With row-wise splits the fingerprint is
        memorizable; with grouped splits it is useless.
        """
        rng = np.random.default_rng(0)
        n_drives, days = 120, 20
        groups = np.repeat(np.arange(n_drives), days)
        # Widely spaced fingerprints: same-drive rows are far closer to
        # each other than to any other drive.
        fingerprint = (10.0 * rng.normal(size=n_drives))[groups]
        noise = rng.normal(size=n_drives * days)
        X = np.column_stack((fingerprint, noise))
        y_drive = rng.integers(0, 2, size=n_drives)
        y = y_drive[groups]

        # A 1-NN memorizes the fingerprint exactly, so leakage is blatant.
        from repro.ml import KNeighborsClassifier

        grouped = cross_validate_auc(
            lambda: KNeighborsClassifier(1), X, y, groups, n_splits=4, seed=0
        )
        # Leaky: treat each row as its own group (row-wise split).
        leaky = cross_validate_auc(
            lambda: KNeighborsClassifier(1),
            X,
            y,
            np.arange(len(y)),
            n_splits=4,
            seed=0,
        )
        assert leaky.mean_auc > grouped.mean_auc + 0.2

    def test_all_negative_folds_raise(self):
        X = np.random.default_rng(0).normal(size=(40, 2))
        y = np.zeros(40, dtype=int)
        y[0] = 1  # one positive; most folds will lack positives
        g = np.repeat(np.arange(10), 4)
        with pytest.raises(ValueError):
            # Every test fold w/o positives is skipped; training also fails
            # when the positive is in the test fold -> no scoreable folds
            # in at least some configurations.
            for seed in range(20):
                cross_validate_auc(
                    lambda: LogisticRegression(), X, y, g, n_splits=5, seed=seed
                )
            raise ValueError("no configuration failed")  # pragma: no cover


class TestParameterGrid:
    def test_cartesian_product(self):
        grid = list(parameter_grid({"a": [1, 2], "b": ["x", "y", "z"]}))
        assert len(grid) == 6
        assert {"a": 1, "b": "x"} in grid

    def test_sorted_keys_stable_order(self):
        grid = list(parameter_grid({"b": [1], "a": [2]}))
        assert list(grid[0].keys()) == ["a", "b"]


class TestGridSearch:
    def test_finds_best_by_auc(self, rng):
        X, y, g = _grouped_problem(rng)
        result = grid_search(
            LogisticRegression,
            {"l2": [0.01, 1.0, 100.0]},
            X,
            y,
            g,
            n_splits=3,
            scale=True,
            seed=0,
        )
        assert result.best_params["l2"] in (0.01, 1.0, 100.0)
        best = max(r.mean_auc for _, r in result.all_results)
        assert result.best_result.mean_auc == best
        assert len(result.all_results) == 3

    def test_table_renders(self, rng):
        X, y, g = _grouped_problem(rng)
        result = grid_search(
            LogisticRegression, {"l2": [0.1, 10.0]}, X, y, g, n_splits=3, seed=0
        )
        text = result.table()
        assert "l2" in text and "AUC" in text
