"""Tests for the random forest ensemble."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier, RandomForestClassifier, roc_auc_score


def _noisy_nonlinear(rng, n=800):
    X = rng.normal(size=(n, 5))
    logit = 2.0 * ((X[:, 0] > 0) & (X[:, 1] > 0)) + X[:, 2]
    p = 1 / (1 + np.exp(-logit + 0.5))
    y = (rng.random(n) < p).astype(int)
    return X, y


class TestForest:
    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict_proba(np.zeros((1, 2)))

    def test_proba_bounds_and_shape(self, rng):
        X, y = _noisy_nonlinear(rng)
        rf = RandomForestClassifier(20, max_depth=5, random_state=0).fit(X, y)
        p = rf.predict_proba(X[:100])
        assert p.shape == (100,)
        assert ((p >= 0) & (p <= 1)).all()

    def test_deterministic_given_seed(self, rng):
        X, y = _noisy_nonlinear(rng, n=300)
        a = RandomForestClassifier(10, max_depth=4, random_state=7).fit(X, y)
        b = RandomForestClassifier(10, max_depth=4, random_state=7).fit(X, y)
        assert np.allclose(a.predict_proba(X), b.predict_proba(X))

    def test_seeds_differ(self, rng):
        X, y = _noisy_nonlinear(rng, n=300)
        a = RandomForestClassifier(10, max_depth=4, random_state=1).fit(X, y)
        b = RandomForestClassifier(10, max_depth=4, random_state=2).fit(X, y)
        assert not np.allclose(a.predict_proba(X), b.predict_proba(X))

    def test_beats_single_tree_generalization(self, rng):
        Xtr, ytr = _noisy_nonlinear(rng, n=600)
        Xte, yte = _noisy_nonlinear(rng, n=600)
        tree = DecisionTreeClassifier(max_depth=None, random_state=0).fit(Xtr, ytr)
        rf = RandomForestClassifier(60, max_depth=None, random_state=0).fit(Xtr, ytr)
        auc_tree = roc_auc_score(yte, tree.predict_proba(Xte))
        auc_rf = roc_auc_score(yte, rf.predict_proba(Xte))
        assert auc_rf >= auc_tree - 0.01  # typically strictly better

    def test_ensemble_average_of_trees(self, rng):
        X, y = _noisy_nonlinear(rng, n=200)
        rf = RandomForestClassifier(8, max_depth=3, random_state=0).fit(X, y)
        manual = np.mean([t.predict_proba(X[:20]) for t in rf.trees_], axis=0)
        assert np.allclose(rf.predict_proba(X[:20]), manual)

    def test_importances_normalized_and_informative(self, rng):
        X = rng.normal(size=(600, 6))
        y = (X[:, 3] > 0).astype(int)
        rf = RandomForestClassifier(40, max_depth=4, random_state=0).fit(X, y)
        assert rf.feature_importances_.sum() == pytest.approx(1.0)
        assert np.argmax(rf.feature_importances_) == 3

    def test_no_bootstrap_mode(self, rng):
        X, y = _noisy_nonlinear(rng, n=200)
        rf = RandomForestClassifier(
            5, max_depth=3, bootstrap=False, random_state=0
        ).fit(X, y)
        assert len(rf.trees_) == 5

    def test_tiny_training_set_with_degenerate_resamples(self):
        # 3 samples: bootstrap will often draw single-class resamples; the
        # fallback must keep the ensemble valid.
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 1, 1])
        rf = RandomForestClassifier(30, random_state=0).fit(X, y)
        p = rf.predict_proba(X)
        assert ((p >= 0) & (p <= 1)).all()
