"""Tests for calibration diagnostics and precision-recall analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import (
    average_precision_score,
    brier_score,
    expected_calibration_error,
    precision_recall_curve,
    reliability_curve,
)


class TestReliabilityCurve:
    def test_perfectly_calibrated_forecaster(self, rng):
        p = rng.uniform(0, 1, size=50_000)
        y = (rng.random(50_000) < p).astype(int)
        curve = reliability_curve(y, p, n_bins=10)
        assert curve.max_gap() < 0.03
        assert expected_calibration_error(y, p) < 0.02

    def test_overconfident_forecaster_detected(self, rng):
        true_p = np.full(20_000, 0.5)
        y = (rng.random(20_000) < true_p).astype(int)
        overconfident = np.where(rng.random(20_000) < 0.5, 0.95, 0.05)
        assert expected_calibration_error(y, overconfident) > 0.3

    def test_counts_sum(self, rng):
        p = rng.uniform(0, 1, size=500)
        y = rng.integers(0, 2, size=500)
        curve = reliability_curve(y, p, n_bins=7)
        assert curve.counts.sum() == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            reliability_curve(np.array([0, 1]), np.array([0.5, 1.5]))
        with pytest.raises(ValueError):
            reliability_curve(np.array([0, 2]), np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            reliability_curve(np.array([0, 1]), np.array([0.1, 0.9]), n_bins=0)


class TestBrier:
    def test_perfect_and_worst(self):
        y = np.array([0, 1, 1, 0])
        assert brier_score(y, y.astype(float)) == 0.0
        assert brier_score(y, 1.0 - y) == 1.0

    def test_constant_prior_forecast(self, rng):
        y = (rng.random(10_000) < 0.2).astype(int)
        score = brier_score(y, np.full(10_000, 0.2))
        assert score == pytest.approx(0.2 * 0.8, abs=0.01)


class TestPrecisionRecall:
    def test_perfect_ranking(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        p, r, _ = precision_recall_curve(y, s)
        assert average_precision_score(y, s) == pytest.approx(1.0)
        assert p.max() == 1.0 and r.max() == 1.0

    def test_random_scores_ap_near_prevalence(self, rng):
        y = (rng.random(20_000) < 0.05).astype(int)
        s = rng.random(20_000)
        ap = average_precision_score(y, s)
        assert ap == pytest.approx(0.05, abs=0.02)

    def test_curve_endpoints(self, rng):
        y = rng.integers(0, 2, size=300)
        y[:2] = [0, 1]
        s = rng.random(300)
        p, r, thr = precision_recall_curve(y, s)
        assert r[0] == 1.0  # loosest threshold: flag everything
        assert r[-1] == 0.0  # anchor
        assert p[-1] == 1.0
        assert len(thr) == len(p) - 1

    def test_precision_at_full_recall_is_prevalence(self, rng):
        y = (rng.random(1000) < 0.3).astype(int)
        if y.sum() == 0:
            y[0] = 1
        s = rng.random(1000)
        p, r, _ = precision_recall_curve(y, s)
        assert p[0] == pytest.approx(y.mean())

    def test_needs_positives(self):
        with pytest.raises(ValueError):
            precision_recall_curve(np.zeros(5), np.random.rand(5))
