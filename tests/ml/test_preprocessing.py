"""Tests for preprocessing transforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import Log1pTransformer, StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        X = rng.normal(3.0, 5.0, size=(500, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_no_nan(self):
        X = np.column_stack((np.ones(10), np.arange(10.0)))
        Z = StandardScaler().fit_transform(X)
        assert np.isfinite(Z).all()
        assert np.allclose(Z[:, 0], 0.0)

    def test_transform_uses_training_stats(self, rng):
        X = rng.normal(size=(100, 2))
        scaler = StandardScaler().fit(X)
        Q = rng.normal(10.0, 1.0, size=(50, 2))
        Z = scaler.transform(Q)
        # The shifted test set must NOT be re-centred to zero.
        assert Z.mean() > 5.0

    def test_before_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_feature_mismatch(self, rng):
        scaler = StandardScaler().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError):
            scaler.transform(np.zeros((2, 4)))


class TestLog1p:
    def test_compresses_positive_tails(self):
        X = np.array([[0.0], [1.0], [1e6]])
        Z = Log1pTransformer().fit_transform(X)
        assert Z[0, 0] == 0.0
        assert Z[2, 0] == pytest.approx(np.log1p(1e6))

    def test_odd_symmetry(self, rng):
        X = rng.normal(size=(50, 2)) * 100
        t = Log1pTransformer()
        assert np.allclose(t.transform(X), -t.transform(-X))

    def test_monotone(self, rng):
        x = np.sort(rng.normal(size=100) * 50)
        z = Log1pTransformer().transform(x[:, None]).ravel()
        assert (np.diff(z) >= 0).all()
