"""Tests for ROC analysis and confusion metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    confusion_at_threshold,
    f1_score,
    false_positive_rate,
    precision_score,
    roc_auc_score,
    roc_curve,
    true_positive_rate,
)


class TestRocAuc:
    def test_perfect_classifier(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc_score(y, s) == 1.0

    def test_inverted_classifier(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc_score(y, s) == 0.0

    def test_random_scores_near_half(self, rng):
        y = rng.integers(0, 2, size=5000)
        if y.min() == y.max():
            y[0] = 1 - y[0]
        s = rng.random(5000)
        assert roc_auc_score(y, s) == pytest.approx(0.5, abs=0.03)

    def test_ties_count_half(self):
        y = np.array([0, 1])
        s = np.array([0.5, 0.5])
        assert roc_auc_score(y, s) == 0.5

    def test_hand_computed(self):
        # positives at scores {3, 1}, negatives at {2, 0}:
        # pairs: (3>2),(3>0),(1<2),(1>0) -> 3/4.
        y = np.array([1, 0, 1, 0])
        s = np.array([3.0, 2.0, 1.0, 0.0])
        assert roc_auc_score(y, s) == 0.75

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.zeros(5), np.random.rand(5))

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.array([0, 2]), np.array([0.1, 0.2]))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 60), st.integers(0, 10_000))
    def test_property_matches_pairwise_definition(self, n, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=n)
        if y.min() == y.max():
            y[0] = 1 - y[0]
        s = np.round(rng.random(n), 1)  # coarse scores force ties
        pos = s[y == 1]
        neg = s[y == 0]
        wins = (pos[:, None] > neg[None, :]).sum()
        ties = (pos[:, None] == neg[None, :]).sum()
        expected = (wins + 0.5 * ties) / (len(pos) * len(neg))
        assert roc_auc_score(y, s) == pytest.approx(expected)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(3, 50), st.integers(0, 10_000))
    def test_property_invariant_under_monotone_transform(self, n, seed):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=n)
        if y.min() == y.max():
            y[0] = 1 - y[0]
        s = rng.normal(size=n)
        assert roc_auc_score(y, s) == pytest.approx(
            roc_auc_score(y, np.exp(s) + 3)
        )


class TestRocCurve:
    def test_endpoints(self, rng):
        y = rng.integers(0, 2, size=100)
        y[:2] = [0, 1]
        s = rng.random(100)
        fpr, tpr, thr = roc_curve(y, s)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert thr[0] == np.inf

    def test_monotone(self, rng):
        y = rng.integers(0, 2, size=200)
        y[:2] = [0, 1]
        s = rng.random(200)
        fpr, tpr, _ = roc_curve(y, s)
        assert (np.diff(fpr) >= 0).all()
        assert (np.diff(tpr) >= 0).all()

    def test_trapezoid_area_equals_auc(self, rng):
        y = rng.integers(0, 2, size=500)
        y[:2] = [0, 1]
        s = np.round(rng.random(500), 2)
        fpr, tpr, _ = roc_curve(y, s)
        area = np.trapezoid(tpr, fpr)
        assert area == pytest.approx(roc_auc_score(y, s), abs=1e-10)

    def test_perfect_curve_shape(self):
        y = np.array([1, 1, 0, 0])
        s = np.array([0.9, 0.8, 0.2, 0.1])
        fpr, tpr, _ = roc_curve(y, s)
        # Must pass through (0, 1).
        assert any((f == 0.0 and t == 1.0) for f, t in zip(fpr, tpr))


class TestConfusion:
    def test_counts(self):
        y = np.array([1, 1, 0, 0, 1])
        s = np.array([0.9, 0.3, 0.8, 0.1, 0.6])
        c = confusion_at_threshold(y, s, 0.5)
        assert (c.tp, c.fp, c.tn, c.fn) == (2, 1, 1, 1)
        assert c.tpr == pytest.approx(2 / 3)
        assert c.fpr == pytest.approx(1 / 2)
        assert c.fnr == pytest.approx(1 / 3)
        assert c.precision == pytest.approx(2 / 3)

    def test_threshold_one_flags_nothing_below(self):
        y = np.array([1, 0])
        s = np.array([0.99, 0.5])
        c = confusion_at_threshold(y, s, 1.0)
        assert c.tp == 0 and c.fp == 0

    def test_helper_wrappers(self):
        y = np.array([1, 0, 1, 0])
        s = np.array([0.9, 0.6, 0.4, 0.1])
        assert true_positive_rate(y, s, 0.5) == 0.5
        assert false_positive_rate(y, s, 0.5) == 0.5
        assert precision_score(y, s, 0.5) == 0.5
        assert f1_score(y, s, 0.5) == pytest.approx(0.5)

    def test_f1_undefined_when_no_predictions(self):
        y = np.array([1, 0])
        s = np.array([0.2, 0.1])
        assert np.isnan(f1_score(y, s, 0.9))
