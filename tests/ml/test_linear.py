"""Tests for logistic regression and the sigmoid helper."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import LogisticRegression, roc_auc_score, sigmoid


class TestSigmoid:
    def test_known_values(self):
        assert sigmoid(np.array([0.0]))[0] == 0.5
        assert sigmoid(np.array([100.0]))[0] == pytest.approx(1.0)
        assert sigmoid(np.array([-100.0]))[0] == pytest.approx(0.0)

    def test_no_overflow_extremes(self):
        out = sigmoid(np.array([-1e4, 1e4]))
        assert np.isfinite(out).all()

    @settings(max_examples=50, deadline=None)
    @given(st.floats(-50, 50))
    def test_property_symmetry(self, z):
        arr = np.array([z])
        assert sigmoid(arr)[0] + sigmoid(-arr)[0] == pytest.approx(1.0)


class TestLogisticRegression:
    def test_recovers_separating_direction(self, rng):
        n = 2000
        X = rng.normal(size=(n, 2))
        true_w = np.array([2.0, -1.0])
        p = sigmoid(X @ true_w + 0.5)
        y = (rng.random(n) < p).astype(int)
        model = LogisticRegression(l2=1e-6).fit(X, y)
        # Up to sampling noise the MLE should be near the truth.
        assert model.coef_[0] == pytest.approx(2.0, abs=0.4)
        assert model.coef_[1] == pytest.approx(-1.0, abs=0.4)
        assert model.intercept_ == pytest.approx(0.5, abs=0.3)

    def test_ridge_shrinks_weights(self, rng):
        X = rng.normal(size=(300, 3))
        y = (X[:, 0] > 0).astype(int)
        loose = LogisticRegression(l2=1e-6).fit(X, y)
        tight = LogisticRegression(l2=100.0).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_intercept_not_penalized(self, rng):
        # Strong ridge with imbalanced classes: intercept must still move
        # to match the base rate.
        X = rng.normal(size=(2000, 2))
        y = (rng.random(2000) < 0.9).astype(int)
        model = LogisticRegression(l2=1e4).fit(X, y)
        base = sigmoid(np.array([model.intercept_]))[0]
        assert base == pytest.approx(0.9, abs=0.05)

    def test_separable_data_converges(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = np.array([0, 0, 1, 1])
        model = LogisticRegression(l2=1e-3).fit(X, y)
        p = model.predict_proba(X)
        assert p[0] < 0.5 < p[-1]

    def test_auc_on_learnable_problem(self, rng):
        X = rng.normal(size=(1000, 4))
        y = (X @ np.array([1.0, -1.0, 0.5, 0.0]) + rng.normal(scale=0.5, size=1000) > 0).astype(int)
        model = LogisticRegression().fit(X[:700], y[:700])
        auc = roc_auc_score(y[700:], model.predict_proba(X[700:]))
        assert auc > 0.9

    def test_negative_l2_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict_proba(np.zeros((2, 2)))

    def test_feature_mismatch(self, rng):
        model = LogisticRegression().fit(rng.normal(size=(50, 3)), rng.integers(0, 2, 50))
        with pytest.raises(ValueError):
            model.predict_proba(np.zeros((2, 4)))

    def test_predict_threshold(self, rng):
        X = rng.normal(size=(200, 2))
        y = (X[:, 0] > 0).astype(int)
        model = LogisticRegression().fit(X, y)
        strict = model.predict(X, threshold=0.99).sum()
        loose = model.predict(X, threshold=0.01).sum()
        assert strict <= loose
        with pytest.raises(ValueError):
            model.predict(X, threshold=1.5)

    def test_clone_resets_state(self, rng):
        X = rng.normal(size=(60, 2))
        y = (X[:, 0] > 0).astype(int)
        model = LogisticRegression(l2=2.5).fit(X, y)
        fresh = model.clone()
        assert fresh.l2 == 2.5
        with pytest.raises(RuntimeError):
            fresh.predict_proba(X)

    def test_repr_contains_params(self):
        assert "l2=3.0" in repr(LogisticRegression(l2=3.0))
