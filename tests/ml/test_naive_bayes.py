"""Tests for Gaussian Naive Bayes and permutation importance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import (
    GaussianNB,
    RandomForestClassifier,
    permutation_importance,
    roc_auc_score,
)


class TestGaussianNB:
    def test_separable_gaussians(self, rng):
        X = np.vstack(
            (rng.normal(0, 1, size=(400, 3)), rng.normal(3, 1, size=(400, 3)))
        )
        y = np.concatenate((np.zeros(400, int), np.ones(400, int)))
        nb = GaussianNB().fit(X[::2], y[::2])
        assert roc_auc_score(y[1::2], nb.predict_proba(X[1::2])) > 0.99

    def test_class_means_recovered(self, rng):
        X = np.vstack(
            (rng.normal(-1, 1, size=(2000, 2)), rng.normal(2, 1, size=(2000, 2)))
        )
        y = np.concatenate((np.zeros(2000, int), np.ones(2000, int)))
        nb = GaussianNB().fit(X, y)
        assert nb.theta_[0] == pytest.approx([-1, -1], abs=0.15)
        assert nb.theta_[1] == pytest.approx([2, 2], abs=0.15)

    def test_prior_reflected_in_probabilities(self, rng):
        # Uninformative features: predicted probability = class prior.
        X = rng.normal(size=(4000, 2))
        y = (rng.random(4000) < 0.1).astype(int)
        nb = GaussianNB().fit(X, y)
        assert nb.predict_proba(X).mean() == pytest.approx(0.1, abs=0.05)

    def test_constant_feature_stable(self, rng):
        X = np.column_stack((np.ones(100), rng.normal(size=100)))
        y = (X[:, 1] > 0).astype(int)
        nb = GaussianNB().fit(X, y)
        assert np.isfinite(nb.predict_proba(X)).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianNB(var_smoothing=-1.0)
        with pytest.raises(RuntimeError):
            GaussianNB().predict_proba(np.zeros((1, 2)))

    def test_feature_mismatch(self, rng):
        X = rng.normal(size=(50, 2))
        nb = GaussianNB().fit(X, (X[:, 0] > 0).astype(int))
        with pytest.raises(ValueError):
            nb.predict_proba(np.zeros((2, 5)))


class TestPermutationImportance:
    def test_informative_feature_ranked_first(self, rng):
        X = rng.normal(size=(1500, 4))
        y = (X[:, 2] + 0.3 * rng.normal(size=1500) > 0).astype(int)
        rf = RandomForestClassifier(25, max_depth=6, random_state=0).fit(
            X[:1000], y[:1000]
        )
        imp = permutation_importance(rf, X[1000:], y[1000:], n_repeats=3, seed=0)
        assert imp.argmax() == 2
        assert imp[2] > 0.1

    def test_useless_features_near_zero(self, rng):
        X = rng.normal(size=(1500, 4))
        y = (X[:, 0] > 0).astype(int)
        rf = RandomForestClassifier(25, max_depth=5, random_state=0).fit(
            X[:1000], y[:1000]
        )
        imp = permutation_importance(rf, X[1000:], y[1000:], n_repeats=3, seed=0)
        assert np.abs(imp[1:]).max() < 0.05

    def test_row_cap_keeps_positives(self, rng):
        X = rng.normal(size=(5000, 3))
        y = np.zeros(5000, dtype=int)
        y[:40] = 1
        rf = RandomForestClassifier(10, max_depth=4, random_state=0).fit(X, y)
        # Must not raise even with a cap below the dataset size.
        imp = permutation_importance(rf, X, y, n_repeats=2, max_rows=500, seed=0)
        assert imp.shape == (3,)

    def test_validation(self, rng):
        X = rng.normal(size=(50, 2))
        y = (X[:, 0] > 0).astype(int)
        rf = RandomForestClassifier(5, max_depth=3, random_state=0).fit(X, y)
        with pytest.raises(ValueError):
            permutation_importance(rf, X, y, n_repeats=0)
