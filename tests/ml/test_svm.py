"""Tests for the Pegasos SVMs and the random Fourier feature map."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import KernelSVM, LinearSVM, RBFSampler, roc_auc_score


class TestLinearSVM:
    def test_separates_linear_problem(self, rng):
        X = rng.normal(size=(600, 3))
        y = (X @ np.array([1.5, -2.0, 0.0]) > 0.2).astype(int)
        svm = LinearSVM(random_state=0).fit(X[:400], y[:400])
        auc = roc_auc_score(y[400:], svm.predict_proba(X[400:]))
        assert auc > 0.95

    def test_decision_sign_matches_labels(self, rng):
        X = rng.normal(size=(300, 2))
        y = (X[:, 0] > 0).astype(int)
        svm = LinearSVM(random_state=0).fit(X, y)
        d = svm.decision_function(X)
        agreement = ((d > 0).astype(int) == y).mean()
        assert agreement > 0.9

    def test_platt_probabilities_monotone_in_margin(self, rng):
        X = rng.normal(size=(200, 2))
        y = (X[:, 0] > 0).astype(int)
        svm = LinearSVM(random_state=0).fit(X, y)
        d = svm.decision_function(X)
        p = svm.predict_proba(X)
        order = np.argsort(d)
        assert (np.diff(p[order]) >= -1e-12).all()

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            LinearSVM(lam=0.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LinearSVM().predict_proba(np.zeros((2, 2)))

    def test_deterministic_given_seed(self, rng):
        X = rng.normal(size=(150, 2))
        y = (X[:, 0] > 0).astype(int)
        a = LinearSVM(random_state=3).fit(X, y).predict_proba(X)
        b = LinearSVM(random_state=3).fit(X, y).predict_proba(X)
        assert np.allclose(a, b)


class TestRBFSampler:
    def test_kernel_approximation(self, rng):
        X = rng.normal(size=(40, 3))
        sampler = RBFSampler(gamma=0.5, n_components=4000, random_state=0).fit(X)
        Z = sampler.transform(X)
        approx = Z @ Z.T
        d2 = ((X[:, None, :] - X[None, :, :]) ** 2).sum(-1)
        exact = np.exp(-0.5 * d2)
        assert np.abs(approx - exact).max() < 0.12

    def test_validation(self):
        with pytest.raises(ValueError):
            RBFSampler(gamma=0.0)
        with pytest.raises(ValueError):
            RBFSampler(n_components=0)
        with pytest.raises(RuntimeError):
            RBFSampler().transform(np.zeros((2, 2)))

    def test_transform_shape(self, rng):
        X = rng.normal(size=(10, 5))
        Z = RBFSampler(n_components=64, random_state=0).fit_transform(X)
        assert Z.shape == (10, 64)


class TestKernelSVM:
    def test_solves_nonlinear_problem(self, rng):
        # Concentric circles: not linearly separable.
        n = 800
        r = np.concatenate((rng.uniform(0, 1, n // 2), rng.uniform(2, 3, n // 2)))
        theta = rng.uniform(0, 2 * np.pi, n)
        X = np.column_stack((r * np.cos(theta), r * np.sin(theta)))
        y = (r > 1.5).astype(int)
        lin = LinearSVM(random_state=0).fit(X[::2], y[::2])
        ker = KernelSVM(gamma=1.0, n_components=300, random_state=0).fit(X[::2], y[::2])
        auc_lin = roc_auc_score(y[1::2], lin.predict_proba(X[1::2]))
        auc_ker = roc_auc_score(y[1::2], ker.predict_proba(X[1::2]))
        assert auc_ker > 0.95
        assert auc_ker > auc_lin + 0.2

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KernelSVM().predict_proba(np.zeros((2, 2)))

    def test_probability_range(self, rng):
        X = rng.normal(size=(200, 3))
        y = (X[:, 0] > 0).astype(int)
        p = KernelSVM(random_state=0).fit(X, y).predict_proba(X)
        assert ((p >= 0) & (p <= 1)).all()
