"""Tests for the MLP classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import MLPClassifier, roc_auc_score


class TestMLP:
    def test_learns_linear_problem(self, rng):
        X = rng.normal(size=(600, 3))
        y = (X[:, 0] - X[:, 1] > 0).astype(int)
        mlp = MLPClassifier((16,), n_epochs=40, random_state=0).fit(X[:400], y[:400])
        auc = roc_auc_score(y[400:], mlp.predict_proba(X[400:]))
        assert auc > 0.95

    def test_learns_xor(self, rng):
        X = rng.uniform(-1, 1, size=(1200, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        mlp = MLPClassifier((32, 16), n_epochs=120, lr=5e-3, random_state=0).fit(
            X[:800], y[:800]
        )
        auc = roc_auc_score(y[800:], mlp.predict_proba(X[800:]))
        assert auc > 0.9

    def test_loss_decreases(self, rng):
        X = rng.normal(size=(300, 4))
        y = (X[:, 0] > 0).astype(int)
        mlp = MLPClassifier((8,), n_epochs=30, random_state=0).fit(X, y)
        assert mlp.loss_curve_[-1] < mlp.loss_curve_[0]

    def test_deterministic_given_seed(self, rng):
        X = rng.normal(size=(200, 3))
        y = (X[:, 0] > 0).astype(int)
        a = MLPClassifier((8,), n_epochs=10, random_state=5).fit(X, y).predict_proba(X)
        b = MLPClassifier((8,), n_epochs=10, random_state=5).fit(X, y).predict_proba(X)
        assert np.allclose(a, b)

    def test_probability_range(self, rng):
        X = rng.normal(size=(150, 2))
        y = (X[:, 0] > 0).astype(int)
        p = MLPClassifier((8,), n_epochs=5, random_state=0).fit(X, y).predict_proba(X)
        assert ((p >= 0) & (p <= 1)).all()

    def test_l2_shrinks_weights(self, rng):
        X = rng.normal(size=(300, 3))
        y = (X[:, 0] > 0).astype(int)
        loose = MLPClassifier((8,), l2=0.0, n_epochs=40, random_state=0).fit(X, y)
        tight = MLPClassifier((8,), l2=1.0, n_epochs=40, random_state=0).fit(X, y)
        norm = lambda m: sum(float(np.linalg.norm(w)) for w in m._weights)
        assert norm(tight) < norm(loose)

    def test_invalid_hidden_sizes(self):
        with pytest.raises(ValueError):
            MLPClassifier((0,))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            MLPClassifier().predict_proba(np.zeros((2, 2)))

    def test_feature_mismatch(self, rng):
        X = rng.normal(size=(60, 3))
        y = (X[:, 0] > 0).astype(int)
        mlp = MLPClassifier((4,), n_epochs=2, random_state=0).fit(X, y)
        with pytest.raises(ValueError):
            mlp.predict_proba(np.zeros((2, 5)))
