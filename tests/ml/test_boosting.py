"""Tests for gradient boosting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import (
    DecisionTreeClassifier,
    GradientBoostingClassifier,
    roc_auc_score,
)


def _problem(rng, n=1500):
    X = rng.normal(size=(n, 5))
    logit = X[:, 0] - 0.8 * X[:, 1] + 1.5 * ((X[:, 2] > 0) & (X[:, 3] > 0))
    y = (rng.random(n) < 1 / (1 + np.exp(-logit))).astype(int)
    return X, y


class TestGradientBoosting:
    def test_validation(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingClassifier(subsample=1.5)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GradientBoostingClassifier().predict_proba(np.zeros((1, 2)))

    def test_training_loss_decreases(self, rng):
        X, y = _problem(rng)
        gb = GradientBoostingClassifier(60, random_state=0).fit(X, y)
        assert gb.train_loss_[-1] < gb.train_loss_[0]
        # Mostly monotone decline (stochastic wobbles allowed).
        drops = sum(
            1 for a, b in zip(gb.train_loss_, gb.train_loss_[1:]) if b <= a + 1e-9
        )
        assert drops > 0.9 * (len(gb.train_loss_) - 1)

    def test_generalizes_close_to_bayes_optimum(self, rng):
        X, y = _problem(rng, n=2400)
        gb = GradientBoostingClassifier(120, random_state=0).fit(X[:1600], y[:1600])
        auc = roc_auc_score(y[1600:], gb.predict_proba(X[1600:]))
        # The label noise caps achievable AUC around 0.81 on this problem;
        # the booster must land within a few points of that ceiling.
        assert auc > 0.74

    def test_beats_single_shallow_tree(self, rng):
        X, y = _problem(rng, n=2400)
        tree = DecisionTreeClassifier(max_depth=3).fit(X[:1600], y[:1600])
        gb = GradientBoostingClassifier(
            120, max_depth=3, random_state=0
        ).fit(X[:1600], y[:1600])
        auc_tree = roc_auc_score(y[1600:], tree.predict_proba(X[1600:]))
        auc_gb = roc_auc_score(y[1600:], gb.predict_proba(X[1600:]))
        assert auc_gb > auc_tree + 0.02

    def test_more_rounds_fit_training_data_better(self, rng):
        X, y = _problem(rng)
        short = GradientBoostingClassifier(10, random_state=0).fit(X, y)
        long = GradientBoostingClassifier(150, random_state=0).fit(X, y)
        assert long.train_loss_[-1] < short.train_loss_[-1]

    def test_subsampling_still_learns(self, rng):
        X, y = _problem(rng, n=2400)
        gb = GradientBoostingClassifier(
            100, subsample=0.5, random_state=0
        ).fit(X[:1600], y[:1600])
        auc = roc_auc_score(y[1600:], gb.predict_proba(X[1600:]))
        assert auc > 0.75

    def test_deterministic_given_seed(self, rng):
        X, y = _problem(rng, n=600)
        a = GradientBoostingClassifier(30, random_state=4).fit(X, y).predict_proba(X)
        b = GradientBoostingClassifier(30, random_state=4).fit(X, y).predict_proba(X)
        assert np.allclose(a, b)

    def test_importances_normalized_and_sensible(self, rng):
        X = rng.normal(size=(1200, 6))
        y = (X[:, 4] > 0).astype(int)
        gb = GradientBoostingClassifier(40, random_state=0).fit(X, y)
        assert gb.feature_importances_.sum() == pytest.approx(1.0)
        assert np.argmax(gb.feature_importances_) == 4

    def test_probability_range(self, rng):
        X, y = _problem(rng, n=400)
        p = GradientBoostingClassifier(20, random_state=0).fit(X, y).predict_proba(X)
        assert ((p >= 0) & (p <= 1)).all()

    def test_base_rate_initialization(self, rng):
        # With zero trees' worth of signal (constant features), predictions
        # should sit near the class prior.
        X = np.ones((200, 2))
        y = (rng.random(200) < 0.25).astype(int)
        gb = GradientBoostingClassifier(5, random_state=0).fit(X, y)
        p = gb.predict_proba(X)
        assert np.allclose(p, y.mean(), atol=0.05)
