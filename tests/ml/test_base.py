"""Tests for the shared estimator base and input validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier, LogisticRegression, check_X, check_Xy


class TestCheckX:
    def test_casts_to_float64(self):
        X = check_X(np.ones((3, 2), dtype=np.int32))
        assert X.dtype == np.float64
        assert X.flags["C_CONTIGUOUS"]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            check_X(np.ones(5))

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            check_X(np.array([[np.nan]]))
        with pytest.raises(ValueError):
            check_X(np.array([[np.inf]]))


class TestCheckXy:
    def test_valid_pair(self):
        X, y = check_Xy(np.ones((4, 2)), np.array([0, 1, 0, 1]))
        assert y.dtype == np.float64

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            check_Xy(np.ones((4, 2)), np.array([0, 1]))

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            check_Xy(np.ones((3, 1)), np.array([0, 1, 2]))

    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            check_Xy(np.ones((3, 1)), np.zeros(3))


class TestBaseBehaviour:
    def test_get_params_roundtrip(self):
        model = DecisionTreeClassifier(max_depth=4, min_samples_leaf=2)
        params = model.get_params()
        assert params["max_depth"] == 4
        clone = model.clone(max_depth=7)
        assert clone.max_depth == 7
        assert clone.min_samples_leaf == 2

    def test_predict_uses_threshold(self, rng):
        X = rng.normal(size=(200, 2))
        y = (X[:, 0] > 0).astype(int)
        model = LogisticRegression().fit(X, y)
        p = model.predict_proba(X)
        assert np.array_equal(model.predict(X, 0.5), (p >= 0.5).astype(int))

    def test_repr_roundtrippable_params(self):
        text = repr(DecisionTreeClassifier(max_depth=3))
        assert "DecisionTreeClassifier" in text and "max_depth=3" in text
