"""Tests for k-nearest neighbours."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import KNeighborsClassifier, roc_auc_score


class TestKNN:
    def test_k1_memorizes_training_data(self, rng):
        X = rng.normal(size=(50, 3))
        y = rng.integers(0, 2, size=50)
        y[:2] = [0, 1]
        knn = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert np.array_equal(knn.predict_proba(X), y.astype(float))

    def test_vote_share(self):
        X = np.array([[0.0], [0.1], [0.2], [10.0]])
        y = np.array([1, 1, 0, 0])
        knn = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        # Query at 0: neighbours {0, 0.1, 0.2} -> 2/3 positive.
        assert knn.predict_proba(np.array([[0.0]]))[0] == pytest.approx(2 / 3)

    def test_distance_weighting_prefers_closer(self):
        X = np.array([[0.0], [1.0], [1.1]])
        y = np.array([1, 0, 0])
        uni = KNeighborsClassifier(3, weights="uniform").fit(X, y)
        dist = KNeighborsClassifier(3, weights="distance").fit(X, y)
        q = np.array([[0.05]])
        assert dist.predict_proba(q)[0] > uni.predict_proba(q)[0]

    def test_chunking_consistency(self, rng):
        X = rng.normal(size=(200, 4))
        y = rng.integers(0, 2, 200)
        y[:2] = [0, 1]
        big = KNeighborsClassifier(7, chunk_size=10_000).fit(X, y)
        small = KNeighborsClassifier(7, chunk_size=17).fit(X, y)
        Q = rng.normal(size=(333, 4))
        assert np.allclose(big.predict_proba(Q), small.predict_proba(Q))

    def test_k_larger_than_train_rejected(self, rng):
        X = rng.normal(size=(5, 2))
        y = np.array([0, 1, 0, 1, 0])
        with pytest.raises(ValueError):
            KNeighborsClassifier(6).fit(X, y)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(0)
        with pytest.raises(ValueError):
            KNeighborsClassifier(3, weights="cosine")

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KNeighborsClassifier().predict_proba(np.zeros((1, 2)))

    def test_learns_locality(self, rng):
        # Two well-separated Gaussian blobs.
        n = 400
        X = np.vstack(
            (rng.normal(0, 1, size=(n // 2, 2)), rng.normal(5, 1, size=(n // 2, 2)))
        )
        y = np.concatenate((np.zeros(n // 2, int), np.ones(n // 2, int)))
        knn = KNeighborsClassifier(9).fit(X[::2], y[::2])
        auc = roc_auc_score(y[1::2], knn.predict_proba(X[1::2]))
        assert auc > 0.99
