"""Tests for the CART decision tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import DecisionTreeClassifier, roc_auc_score


def _axis_separable(rng, n=400):
    X = rng.normal(size=(n, 3))
    y = (X[:, 1] > 0.3).astype(int)
    return X, y


class TestFitBasics:
    def test_single_threshold_recovered(self, rng):
        X, y = _axis_separable(rng)
        tree = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert tree.n_nodes == 3
        root_feat = tree.feature_[0]
        assert root_feat == 1
        assert tree.threshold_[0] == pytest.approx(0.3, abs=0.15)
        assert np.array_equal(tree.predict(X), y)

    def test_pure_node_stops(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        # One split fully separates: 3 nodes.
        assert tree.n_nodes == 3
        assert tree.n_leaves == 2

    def test_xor_solved_by_deeper_tree(self, rng):
        # Greedy CART gets no first-split gain on XOR, so it needs a few
        # extra levels of noise-splits before the quadrants separate.
        X = rng.uniform(-1, 1, size=(800, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        shallow = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=6).fit(X, y)
        auc_shallow = roc_auc_score(y, shallow.predict_proba(X))
        auc_deep = roc_auc_score(y, deep.predict_proba(X))
        assert auc_deep > 0.95
        assert auc_deep > auc_shallow + 0.2

    def test_max_depth_respected(self, rng):
        X = rng.normal(size=(500, 5))
        y = (X.sum(axis=1) > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.max_depth_ <= 3

    def test_min_samples_leaf(self, rng):
        X = rng.normal(size=(200, 2))
        y = (X[:, 0] > 0).astype(int)
        tree = DecisionTreeClassifier(min_samples_leaf=30).fit(X, y)
        # Count samples reaching each leaf.
        proba = tree.predict_proba(X)
        # every leaf should have >= 30 training samples; verify indirectly:
        # the number of leaves is bounded by n / min_samples_leaf.
        assert tree.n_leaves <= 200 // 30 + 1

    def test_requires_both_classes(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(X, np.zeros(10))

    def test_nan_rejected(self):
        X = np.array([[np.nan], [1.0]])
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(X, np.array([0, 1]))

    def test_duplicate_feature_values_handled(self):
        X = np.array([[1.0], [1.0], [1.0], [2.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        p = tree.predict_proba(np.array([[1.0], [2.0]]))
        assert p[1] == 1.0
        assert p[0] == pytest.approx(1 / 3)


class TestPredict:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict_proba(np.zeros((1, 2)))

    def test_feature_count_mismatch(self, rng):
        X, y = _axis_separable(rng)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        with pytest.raises(ValueError):
            tree.predict_proba(np.zeros((3, 5)))

    def test_proba_in_unit_interval(self, rng):
        X = rng.normal(size=(300, 4))
        y = (X[:, 0] + rng.normal(scale=0.5, size=300) > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
        p = tree.predict_proba(rng.normal(size=(100, 4)))
        assert ((p >= 0) & (p <= 1)).all()

    def test_vectorized_predict_matches_manual_walk(self, rng):
        X = rng.normal(size=(200, 3))
        y = (X[:, 0] * X[:, 1] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        Q = rng.normal(size=(50, 3))
        got = tree.predict_proba(Q)
        for i in range(50):
            node = 0
            while tree.feature_[node] != -1:
                f = tree.feature_[node]
                node = (
                    tree.left_[node]
                    if Q[i, f] <= tree.threshold_[node]
                    else tree.right_[node]
                )
            assert got[i] == tree.value_[node]


class TestImportances:
    def test_sum_to_one(self, rng):
        X, y = _axis_separable(rng)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_informative_feature_dominates(self, rng):
        X, y = _axis_separable(rng)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert np.argmax(tree.feature_importances_) == 1

    def test_irrelevant_features_near_zero(self, rng):
        X = rng.normal(size=(600, 4))
        y = (X[:, 2] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        imp = tree.feature_importances_
        assert imp[2] > 0.9


class TestRandomization:
    def test_max_features_limits_candidates(self, rng):
        X, y = _axis_separable(rng, n=300)
        # With only 1 random candidate feature per split, the root may pick
        # a useless feature; over many seeds behaviour must stay valid.
        for seed in range(5):
            tree = DecisionTreeClassifier(
                max_depth=3, max_features=1, random_state=seed
            ).fit(X, y)
            p = tree.predict_proba(X)
            assert ((p >= 0) & (p <= 1)).all()

    def test_invalid_max_features(self, rng):
        X, y = _axis_separable(rng, n=50)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features="bogus").fit(X, y)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features=0).fit(X, y)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_features=1.5).fit(X, y)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 1000))
    def test_property_training_fit_beats_chance(self, seed):
        """On separable data any seeded tree must fit training labels."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(120, 3))
        y = (X[:, 0] > 0.2).astype(int)
        if y.min() == y.max():
            return
        tree = DecisionTreeClassifier(max_depth=4, random_state=seed).fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.95
