"""Tests for the exposure-normalized hazard estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats import binned_failure_rate, exposure_from_intervals


class TestExposure:
    def test_simple_interval(self):
        edges = np.array([0.0, 10.0, 20.0, 30.0])
        exp = exposure_from_intervals(np.array([0.0]), np.array([15.0]), edges)
        assert exp.tolist() == [1, 1, 0]

    def test_interval_covering_everything(self):
        edges = np.array([0.0, 10.0, 20.0])
        exp = exposure_from_intervals(np.array([0.0]), np.array([100.0]), edges)
        assert exp.tolist() == [1, 1]

    def test_degenerate_interval_counts_once(self):
        edges = np.array([0.0, 10.0, 20.0])
        exp = exposure_from_intervals(np.array([5.0]), np.array([5.0]), edges)
        assert exp.tolist() == [1, 0]

    def test_interval_above_range(self):
        edges = np.array([0.0, 10.0])
        exp = exposure_from_intervals(np.array([50.0]), np.array([60.0]), edges)
        assert exp.tolist() == [0]

    def test_multiple_units_accumulate(self):
        edges = np.array([0.0, 10.0, 20.0, 30.0])
        start = np.zeros(3)
        stop = np.array([5.0, 15.0, 25.0])
        exp = exposure_from_intervals(start, stop, edges)
        assert exp.tolist() == [3, 2, 1]

    def test_stop_before_start_rejected(self):
        with pytest.raises(ValueError):
            exposure_from_intervals(np.array([5.0]), np.array([1.0]), np.array([0.0, 10.0]))

    def test_matches_bruteforce(self, rng):
        """Vectorized result equals a per-unit loop using the documented
        convention: a unit exposes the bins from bin(start) through the
        (edge-exclusive) bin of stop."""
        edges = np.linspace(0, 100, 11)
        start = rng.uniform(-10, 60, size=60)
        stop = start + rng.uniform(0, 70, size=60)
        got = exposure_from_intervals(start, stop, edges)
        k = len(edges) - 1
        expected = np.zeros(k, dtype=int)
        for s, e in zip(start, stop):
            if e <= edges[0] or s >= edges[-1]:
                continue
            lo = int(np.clip(np.searchsorted(edges, s, side="right") - 1, 0, k - 1))
            hi = int(np.searchsorted(edges, e, side="left") - 1)
            if hi < 0:
                continue
            hi = int(np.clip(hi, 0, k - 1))
            expected[lo : max(hi, lo) + 1] += 1
        assert got.tolist() == expected.tolist()


class TestBinnedFailureRate:
    def test_constant_hazard_estimate(self, rng):
        # 100 units exposed over [0, 100); failures uniform within.
        edges = np.linspace(0, 100, 11)
        n = 400
        start = np.zeros(n)
        stop = np.full(n, 100.0)
        failures = rng.uniform(0, 100, size=120)
        res = binned_failure_rate(failures, start, stop, edges)
        assert res.failures.sum() == 120
        assert (res.exposure == n).all()
        # Rate per bin ~ 120/10/400 = 0.03.
        assert np.allclose(res.rate.mean(), 0.03, atol=0.02)

    def test_zero_exposure_gives_nan(self):
        edges = np.array([0.0, 10.0, 20.0])
        res = binned_failure_rate(
            np.array([15.0]), np.array([0.0]), np.array([5.0]), edges
        )
        assert res.exposure[1] == 0
        assert np.isnan(res.rate[1])

    def test_bad_edges_rejected(self):
        with pytest.raises(ValueError):
            binned_failure_rate(np.array([1.0]), np.zeros(1), np.ones(1), np.array([3.0, 1.0]))

    def test_centers(self):
        edges = np.array([0.0, 2.0, 4.0])
        res = binned_failure_rate(np.array([1.0]), np.zeros(1), np.full(1, 4.0), edges)
        assert res.centers.tolist() == [1.0, 3.0]

    def test_unbiased_vs_naive_under_staggered_exposure(self, rng):
        """The estimator must undo the age-representation bias (Fig 6)."""
        edges = np.linspace(0, 100, 11)
        # Half the units observed only to t=50: raw failure counts drop in
        # late bins even though the true hazard is constant.
        n = 2000
        stop = np.where(rng.random(n) < 0.5, 50.0, 100.0)
        start = np.zeros(n)
        hazard = 0.004
        fail_times = rng.exponential(1 / hazard, size=n)
        observed = fail_times[fail_times < stop]
        res = binned_failure_rate(observed, start, stop, edges)
        early = np.nanmean(res.rate[:5])
        late = np.nanmean(res.rate[5:])
        # Normalized rates agree within noise despite halved late exposure.
        assert late == pytest.approx(early, rel=0.5)
