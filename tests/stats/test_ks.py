"""Tests for the two-sample KS test against scipy and closed forms."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.stats

from repro.stats import ks_two_sample


class TestKSTwoSample:
    def test_identical_samples(self, rng):
        x = rng.normal(size=500)
        res = ks_two_sample(x, x)
        assert res.statistic == 0.0
        assert res.pvalue == pytest.approx(1.0)

    def test_same_distribution_not_significant(self, rng):
        a = rng.normal(size=2000)
        b = rng.normal(size=2000)
        res = ks_two_sample(a, b)
        assert not res.significant(alpha=1e-4)

    def test_shifted_distribution_detected(self, rng):
        a = rng.normal(0, 1, size=2000)
        b = rng.normal(0.5, 1, size=2000)
        res = ks_two_sample(a, b)
        assert res.significant(alpha=1e-4)
        assert res.statistic > 0.1

    def test_statistic_matches_scipy(self, rng):
        for _ in range(5):
            a = rng.exponential(size=rng.integers(20, 300))
            b = rng.normal(size=rng.integers(20, 300))
            ours = ks_two_sample(a, b)
            theirs = scipy.stats.ks_2samp(a, b)
            assert ours.statistic == pytest.approx(theirs.statistic, abs=1e-12)

    def test_pvalue_close_to_scipy_asymptotic(self, rng):
        a = rng.normal(0, 1, size=800)
        b = rng.normal(0.15, 1, size=900)
        ours = ks_two_sample(a, b)
        theirs = scipy.stats.ks_2samp(a, b, method="asymp")
        assert ours.pvalue == pytest.approx(theirs.pvalue, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            ks_two_sample(np.array([]), np.array([1.0]))
        with pytest.raises(ValueError):
            ks_two_sample(np.array([np.nan]), np.array([1.0]))

    def test_pvalue_uniform_under_null(self):
        """Under H0 the p-value should not be systematically tiny."""
        master = np.random.default_rng(0)
        pvals = []
        for _ in range(50):
            a = master.normal(size=150)
            b = master.normal(size=150)
            pvals.append(ks_two_sample(a, b).pvalue)
        assert np.mean(np.asarray(pvals) < 0.05) < 0.25
