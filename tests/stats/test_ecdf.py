"""Tests for ECDF and censored ECDF."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.stats import censored_ecdf, ecdf

finite = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False)


class TestECDF:
    def test_basic_evaluation(self):
        f = ecdf(np.array([1.0, 2.0, 2.0, 4.0]))
        assert f(0.5) == 0.0
        assert f(1.0) == 0.25
        assert f(2.0) == 0.75
        assert f(3.0) == 0.75
        assert f(4.0) == 1.0
        assert f(100.0) == 1.0

    def test_vectorized_evaluation(self):
        f = ecdf(np.array([1.0, 3.0]))
        out = f(np.array([0.0, 1.0, 2.0, 3.0]))
        assert out.tolist() == [0.0, 0.5, 0.5, 1.0]

    def test_quantile_inverse(self):
        f = ecdf(np.array([10.0, 20.0, 30.0, 40.0]))
        assert f.quantile(0.25) == 10.0
        assert f.quantile(0.5) == 20.0
        assert f.quantile(1.0) == 40.0

    def test_quantile_bounds(self):
        f = ecdf(np.array([1.0]))
        with pytest.raises(ValueError):
            f.quantile(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ecdf(np.array([]))

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            ecdf(np.array([1.0, np.nan]))

    @settings(max_examples=50, deadline=None)
    @given(hnp.arrays(np.float64, st.integers(1, 300), elements=finite))
    def test_property_monotone_and_bounded(self, x):
        f = ecdf(x)
        assert (np.diff(f.y) >= 0).all()
        assert f.y[-1] == pytest.approx(1.0)
        assert f(np.min(x) - 1) == 0.0
        assert f(np.max(x)) == pytest.approx(1.0)

    @settings(max_examples=50, deadline=None)
    @given(
        hnp.arrays(np.float64, st.integers(2, 200), elements=finite),
        st.floats(0.01, 0.99),
    )
    def test_property_quantile_consistency(self, x, p):
        """P(X <= quantile(p)) >= p, and quantile is a sample value."""
        f = ecdf(x)
        q = f.quantile(p)
        assert f(q) >= p - 1e-12
        assert q in x


class TestCensoredECDF:
    def test_censored_mass(self):
        f = censored_ecdf(np.array([1.0, 2.0, np.nan, np.inf]))
        assert f.censored_mass == pytest.approx(0.5)
        assert f(2.0) == pytest.approx(0.5)
        assert f(100.0) == pytest.approx(0.5)  # plateaus below 1

    def test_all_censored(self):
        f = censored_ecdf(np.array([np.nan, np.nan]))
        assert f.censored_mass == 1.0
        assert f.n_finite == 0

    def test_no_censoring_matches_ecdf(self, rng):
        x = rng.exponential(size=100)
        f1 = censored_ecdf(x)
        f2 = ecdf(x)
        q = rng.exponential(size=20)
        assert np.allclose(f1(q), f2(q))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            censored_ecdf(np.array([]))
