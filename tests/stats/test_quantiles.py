"""Tests for binned quantile bands."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats import binned_quantiles


class TestBinnedQuantiles:
    def test_matches_numpy_per_bin(self, rng):
        cov = rng.uniform(0, 10, size=500)
        val = rng.normal(size=500)
        edges = np.linspace(0, 10, 6)
        bands = binned_quantiles(cov, val, edges, levels=(0.25, 0.5, 0.75))
        for b in range(5):
            lo, hi = edges[b], edges[b + 1]
            m = (cov >= lo) & (cov < hi) if b < 4 else (cov >= lo) & (cov <= hi)
            if m.sum():
                expected = np.quantile(val[m], [0.25, 0.5, 0.75])
                assert np.allclose(bands.values[b], expected)
                assert bands.counts[b] == m.sum()

    def test_empty_bin_is_nan(self):
        bands = binned_quantiles(
            np.array([0.5, 2.5]), np.array([1.0, 2.0]), np.array([0.0, 1.0, 2.0, 3.0])
        )
        assert np.isnan(bands.values[1]).all()
        assert bands.counts[1] == 0

    def test_out_of_range_ignored(self):
        bands = binned_quantiles(
            np.array([-5.0, 0.5, 99.0]),
            np.array([1.0, 2.0, 3.0]),
            np.array([0.0, 1.0]),
        )
        assert bands.counts.tolist() == [1]
        assert bands.values[0, 1] == 2.0  # median of the single in-range value

    def test_right_edge_inclusive(self):
        bands = binned_quantiles(
            np.array([2.0]), np.array([7.0]), np.array([0.0, 1.0, 2.0])
        )
        assert bands.counts.tolist() == [0, 1]

    def test_level_accessor(self, rng):
        bands = binned_quantiles(
            rng.uniform(0, 1, 50), rng.normal(size=50), np.array([0.0, 1.0])
        )
        assert bands.level(0.5).shape == (1,)
        with pytest.raises(KeyError):
            bands.level(0.99)

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            binned_quantiles(np.zeros(3), np.zeros(4), np.array([0.0, 1.0]))

    def test_bad_levels_rejected(self):
        with pytest.raises(ValueError):
            binned_quantiles(
                np.zeros(3), np.zeros(3), np.array([0.0, 1.0]), levels=(1.5,)
            )

    def test_centers(self):
        bands = binned_quantiles(
            np.array([0.5]), np.array([1.0]), np.array([0.0, 1.0, 2.0])
        )
        assert bands.centers.tolist() == [0.5, 1.5]
