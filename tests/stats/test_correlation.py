"""Tests for rank statistics against scipy references and closed forms."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.stats import rankdata, spearman, spearman_matrix

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestRankdata:
    def test_simple(self):
        assert rankdata(np.array([30, 10, 20])).tolist() == [3, 1, 2]

    def test_ties_averaged(self):
        assert rankdata(np.array([1, 2, 2, 3])).tolist() == [1, 2.5, 2.5, 4]

    def test_all_equal(self):
        out = rankdata(np.full(5, 7.0))
        assert np.allclose(out, 3.0)

    def test_empty(self):
        assert rankdata(np.array([])).shape == (0,)

    @settings(max_examples=60, deadline=None)
    @given(hnp.arrays(np.float64, st.integers(1, 200), elements=finite_floats))
    def test_matches_scipy(self, x):
        assert np.allclose(rankdata(x), scipy.stats.rankdata(x, method="average"))


class TestSpearman:
    def test_perfect_monotone(self):
        x = np.arange(10.0)
        assert spearman(x, x**3) == pytest.approx(1.0)
        assert spearman(x, -np.exp(x / 3)) == pytest.approx(-1.0)

    def test_constant_input_gives_nan(self):
        assert np.isnan(spearman(np.ones(5), np.arange(5)))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman(np.arange(3), np.arange(4))

    def test_too_short(self):
        with pytest.raises(ValueError):
            spearman(np.array([1.0]), np.array([2.0]))

    @settings(max_examples=60, deadline=None)
    @given(
        hnp.arrays(np.float64, st.integers(3, 120), elements=finite_floats),
        st.integers(0, 2**31 - 1),
    )
    def test_matches_scipy(self, x, seed):
        y = np.random.default_rng(seed).permutation(x) + 0.5
        ours = spearman(x, y)
        theirs = scipy.stats.spearmanr(x, y).statistic
        if np.isnan(theirs):
            assert np.isnan(ours)
        else:
            assert ours == pytest.approx(theirs, abs=1e-9)

    def test_invariant_under_monotone_transform(self, rng):
        x = rng.normal(size=100)
        y = rng.normal(size=100)
        base = spearman(x, y)
        assert spearman(np.exp(x), y) == pytest.approx(base)
        assert spearman(x, 3 * y + 7) == pytest.approx(base)


class TestSpearmanMatrix:
    def test_matches_pairwise(self, rng):
        cols = {
            "a": rng.normal(size=80),
            "b": rng.exponential(size=80),
            "c": rng.integers(0, 3, size=80).astype(float),
        }
        names, rho = spearman_matrix(cols)
        for i, ni in enumerate(names):
            for j, nj in enumerate(names):
                if i == j:
                    assert rho[i, j] == pytest.approx(1.0)
                else:
                    assert rho[i, j] == pytest.approx(
                        spearman(cols[ni], cols[nj]), abs=1e-9
                    )

    def test_symmetry(self, rng):
        cols = {f"c{i}": rng.normal(size=50) for i in range(4)}
        _, rho = spearman_matrix(cols)
        assert np.allclose(rho, rho.T)

    def test_constant_column_nan(self, rng):
        cols = {"a": rng.normal(size=20), "b": np.ones(20)}
        names, rho = spearman_matrix(cols)
        i, j = names.index("a"), names.index("b")
        assert np.isnan(rho[i, j])

    def test_empty(self):
        names, rho = spearman_matrix({})
        assert names == [] and rho.shape == (0, 0)

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            spearman_matrix({"a": np.arange(5), "b": np.arange(6)})
