"""Tests for the Kaplan-Meier estimator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import kaplan_meier


class TestKaplanMeier:
    def test_no_censoring_matches_ecdf(self, rng):
        x = rng.exponential(10.0, size=300)
        km = kaplan_meier(x, np.ones(300, dtype=bool))
        from repro.stats import ecdf

        f = ecdf(x)
        q = rng.exponential(10.0, size=30)
        assert np.allclose(km.cdf(q), f(q), atol=1e-12)

    def test_textbook_example(self):
        # Classic toy: times 1,2+,3,4+ (plus = censored).
        km = kaplan_meier(
            np.array([1.0, 2.0, 3.0, 4.0]),
            np.array([True, False, True, False]),
        )
        # S(1) = 3/4; S(3) = 3/4 * 1/2 = 3/8.
        assert km(1.0) == pytest.approx(0.75)
        assert km(3.5) == pytest.approx(0.375)
        assert km(0.5) == 1.0

    def test_heavy_censoring_flattens_curve(self, rng):
        x = rng.exponential(10.0, size=500)
        obs = rng.random(500) < 0.2
        km = kaplan_meier(x, obs)
        # With 80% censoring the estimated failure CDF at the median
        # duration is far below the uncensored ECDF value.
        assert km.cdf(float(np.median(x))) < 0.5

    def test_unbiased_under_random_censoring(self):
        """KM recovers the true distribution despite censoring; the naive
        censored ECDF underestimates it (the motivation for KM)."""
        rng = np.random.default_rng(1)
        n = 20_000
        true_t = rng.exponential(100.0, size=n)
        censor_t = rng.uniform(0, 300.0, size=n)
        obs = true_t <= censor_t
        dur = np.minimum(true_t, censor_t)
        km = kaplan_meier(dur, obs)
        truth = 1.0 - np.exp(-150.0 / 100.0)
        assert km.cdf(150.0) == pytest.approx(truth, abs=0.03)
        naive = np.mean(obs & (dur <= 150.0))
        assert naive < truth - 0.05

    def test_median(self, rng):
        x = rng.exponential(10.0, size=4000)
        km = kaplan_meier(x, np.ones(4000, dtype=bool))
        assert km.median() == pytest.approx(10.0 * np.log(2), rel=0.15)

    def test_median_inf_when_censored_early(self):
        km = kaplan_meier(np.array([5.0, 6.0]), np.array([False, False]))
        assert km.median() == float("inf")

    def test_greenwood_variance_positive(self, rng):
        x = rng.exponential(size=100)
        obs = rng.random(100) < 0.7
        if not obs.any():
            obs[0] = True
        km = kaplan_meier(x, obs)
        assert km.greenwood_variance(float(np.median(x))) >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            kaplan_meier(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            kaplan_meier(np.array([1.0, 2.0]), np.array([True]))
        with pytest.raises(ValueError):
            kaplan_meier(np.array([-1.0]), np.array([True]))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 200), st.integers(0, 10_000))
    def test_property_monotone_decreasing_in_unit_interval(self, n, seed):
        rng = np.random.default_rng(seed)
        dur = rng.exponential(5.0, size=n)
        obs = rng.random(n) < 0.6
        km = kaplan_meier(dur, obs)
        if km.times.size:
            assert (np.diff(km.survival) <= 1e-12).all()
            assert (km.survival >= 0).all() and (km.survival <= 1).all()
