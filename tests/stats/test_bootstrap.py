"""Tests for bootstrap confidence intervals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats import bootstrap_ci


class TestBootstrapCI:
    def test_point_estimate_matches_statistic(self, rng):
        x = rng.normal(5.0, 1.0, size=200)
        res = bootstrap_ci(x, np.mean, n_resamples=200, seed=0)
        assert res.estimate == pytest.approx(x.mean())

    def test_interval_contains_estimate_for_mean(self, rng):
        x = rng.normal(size=300)
        res = bootstrap_ci(x, np.mean, n_resamples=300, seed=1)
        assert res.low <= res.estimate <= res.high

    def test_interval_width_shrinks_with_sample_size(self, rng):
        small = bootstrap_ci(rng.normal(size=30), np.mean, 400, seed=2)
        large = bootstrap_ci(rng.normal(size=3000), np.mean, 400, seed=2)
        assert (large.high - large.low) < (small.high - small.low)

    def test_deterministic_given_seed(self, rng):
        x = rng.exponential(size=100)
        a = bootstrap_ci(x, np.median, 100, seed=7)
        b = bootstrap_ci(x, np.median, 100, seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_coverage_roughly_nominal(self):
        """~95% of 95% CIs for the mean should contain the true mean."""
        hits = 0
        trials = 60
        master = np.random.default_rng(0)
        for t in range(trials):
            x = master.normal(0.0, 1.0, size=80)
            res = bootstrap_ci(x, np.mean, n_resamples=200, level=0.95, seed=t)
            hits += res.low <= 0.0 <= res.high
        assert hits / trials > 0.80  # generous: small resample count

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]), np.mean)
        with pytest.raises(ValueError):
            bootstrap_ci(np.ones(3), np.mean, level=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci(np.ones(3), np.mean, n_resamples=0)
