"""End-to-end integration tests across the whole stack."""

from __future__ import annotations

import numpy as np

import repro
from repro.core import FailurePredictor, build_prediction_dataset
from repro.data import load_dataset_npz, load_swaplog_npz, save_dataset_npz, save_swaplog_npz


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports(self):
        assert callable(repro.simulate_fleet)
        assert repro.FailurePredictor is FailurePredictor


class TestEndToEnd:
    def test_simulate_persist_reload_train_predict(self, tmp_path, medium_trace):
        """The full user journey: simulate -> save -> load -> train -> score."""
        save_dataset_npz(medium_trace.records, tmp_path / "records.npz")
        save_swaplog_npz(medium_trace.swaps, tmp_path / "swaps.npz")
        records = load_dataset_npz(tmp_path / "records.npz")
        swaps = load_swaplog_npz(tmp_path / "swaps.npz")

        predictor = FailurePredictor(lookahead=2, seed=0).fit((records, swaps))
        report = predictor.risk_report(records)
        assert len(report.drive_id) == records.n_drives()

        # Drives that are about to fail should concentrate at the top of
        # the in-sample risk ranking.
        ds = build_prediction_dataset((records, swaps), lookahead=2)
        scores = predictor.predict_proba_dataset(ds)
        pos_rank = scores[ds.y == 1].mean()
        neg_rank = scores[ds.y == 0].mean()
        assert pos_rank > neg_rank

    def test_characterization_pipeline_runs_on_loaded_trace(
        self, tmp_path, small_trace
    ):
        from repro.analysis import figure6, table3

        save_dataset_npz(small_trace.records, tmp_path / "r.npz")
        records = load_dataset_npz(tmp_path / "r.npz")
        assert np.array_equal(
            records["age_days"], small_trace.records["age_days"]
        )
        t3 = table3(small_trace)
        f6 = figure6(small_trace)
        assert t3.n_failures["All"] == len(small_trace.swaps)
        assert 0 <= f6.infant_share_90d <= 1
