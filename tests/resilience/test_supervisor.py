"""Unit tests for the supervision layer (repro.resilience.supervisor).

Worker functions live at module level so they can cross the process
boundary; controlled faults come from the deterministic chaos hooks
(``$REPRO_CHAOS``), which forked workers inherit from the test's
monkeypatched environment.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.obs import metrics, tracing
from repro.parallel import ObsDelta, WorkerCrash, iter_tasks, merge_obs
from repro.resilience import (
    ENV_CHAOS,
    ENV_CHAOS_HANG,
    ENV_CHAOS_SEED,
    FailureReport,
    PoisonTask,
    SupervisionLog,
    SupervisorPolicy,
    TaskFailure,
    TaskTimeout,
    force_fail,
    supervised_iter_tasks,
)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

fork_only = pytest.mark.skipif(
    not HAVE_FORK, reason="supervised pool tests rely on the fork start method"
)


# ---------------------------------------------------------------- worker fns


def _square(x):
    return x * x


def _always_raises(x):
    raise ValueError(f"bad task {x}")


_FLAKY_CALLS: dict[int, int] = {}


def _flaky_twice(x):
    """Fails the first two in-process calls per task (serial path only)."""
    _FLAKY_CALLS[x] = _FLAKY_CALLS.get(x, 0) + 1
    if _FLAKY_CALLS[x] <= 2:
        raise RuntimeError(f"transient {x}")
    return x * 10


_INIT_BOX: list[int] = []


def _install_box(value):
    _INIT_BOX.clear()
    _INIT_BOX.append(value)


def _needs_init(x):
    return x + _INIT_BOX[0]


# ---------------------------------------------------------------- policy


class TestSupervisorPolicy:
    def test_defaults(self):
        pol = SupervisorPolicy()
        assert pol.task_timeout is None
        assert pol.max_retries == 2
        assert pol.on_poison == "fail"

    def test_backoff_is_capped_exponential(self):
        pol = SupervisorPolicy(backoff_base=0.1, backoff_cap=0.35)
        assert pol.backoff(1) == pytest.approx(0.1)
        assert pol.backoff(2) == pytest.approx(0.2)
        assert pol.backoff(3) == pytest.approx(0.35)  # capped
        assert pol.backoff(10) == pytest.approx(0.35)

    def test_backoff_is_deterministic(self):
        pol = SupervisorPolicy()
        assert [pol.backoff(k) for k in (1, 2, 3)] == [
            pol.backoff(k) for k in (1, 2, 3)
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"task_timeout": 0.0},
            {"task_timeout": -1.0},
            {"max_retries": -1},
            {"on_poison": "explode"},
            {"pool_crash_threshold": 0},
            {"backoff_base": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorPolicy(**kwargs)

    def test_force_fail(self):
        pol = SupervisorPolicy(on_poison="quarantine", max_retries=7)
        forced = force_fail(pol)
        assert forced.on_poison == "fail" and forced.max_retries == 7
        assert force_fail(None) is None
        fail = SupervisorPolicy(on_poison="fail")
        assert force_fail(fail) is fail


# ---------------------------------------------------------------- log/report


class TestSupervisionLog:
    def test_events_property(self):
        log = SupervisionLog()
        assert not log.events
        log.retries = 1
        assert log.events

    def test_to_dict_matches_manifest_schema(self):
        from repro.obs.manifest import MANIFEST_SCHEMA, validate_manifest

        log = SupervisionLog(retries=2, timeouts=1, crashes=0)
        log.quarantined.append(
            FailureReport(
                task_index=3,
                label="test",
                attempts=3,
                quarantined=True,
                errors=[TaskFailure(attempt=1, kind="timeout", message="slow")],
            )
        )
        errors = validate_manifest(
            log.to_dict(), MANIFEST_SCHEMA["properties"]["resilience"], "$"
        )
        assert errors == []

    def test_summary_mentions_breaker(self):
        log = SupervisionLog(breaker_tripped=True)
        assert "breaker" in log.summary()


# ---------------------------------------------------------------- serial path


class TestSerialSupervised:
    def test_clean_run_yields_in_order(self):
        out = list(supervised_iter_tasks(_square, [1, 2, 3], workers=1))
        assert out == [(0, 1), (1, 4), (2, 9)]

    def test_retries_then_succeeds(self):
        _FLAKY_CALLS.clear()
        log = SupervisionLog()
        pol = SupervisorPolicy(max_retries=2, backoff_base=0.001)
        out = list(
            supervised_iter_tasks(
                _flaky_twice, [5], workers=1, policy=pol, supervision=log
            )
        )
        assert out == [(0, 50)]
        assert log.retries == 2 and not log.quarantined

    def test_poison_raises_with_traceback(self):
        pol = SupervisorPolicy(max_retries=1, backoff_base=0.001)
        with pytest.raises(PoisonTask) as exc_info:
            list(
                supervised_iter_tasks(
                    _always_raises, [7], workers=1, policy=pol
                )
            )
        exc = exc_info.value
        assert isinstance(exc, WorkerCrash)  # CLI exit-2 contract
        assert exc.report.attempts == 2
        assert "bad task 7" in (exc.worker_traceback or "")

    def test_quarantine_skips_slot_and_records_report(self):
        log = SupervisionLog()
        pol = SupervisorPolicy(
            max_retries=0, on_poison="quarantine", backoff_base=0.001
        )
        tasks = [1, "boom", 3]

        def fn(x):
            if x == "boom":
                raise RuntimeError("poison")
            return x

        out = list(
            supervised_iter_tasks(fn, tasks, workers=1, policy=pol, supervision=log)
        )
        assert out == [(0, 1), (2, 3)]
        assert len(log.quarantined) == 1
        report = log.quarantined[0]
        assert report.task_index == 1 and report.quarantined
        assert report.errors[0].kind == "error"

    def test_initializer_runs_in_process(self):
        out = list(
            supervised_iter_tasks(
                _needs_init,
                [1, 2],
                workers=1,
                initializer=_install_box,
                initargs=(100,),
            )
        )
        assert out == [(0, 101), (1, 102)]

    def test_empty_tasks(self):
        assert list(supervised_iter_tasks(_square, [], workers=4)) == []

    def test_unpicklable_falls_back_to_serial(self):
        calls = []

        def local_fn(x):  # not picklable by reference
            calls.append(x)
            return x

        out = list(supervised_iter_tasks(local_fn, [1, 2], workers=4))
        assert out == [(0, 1), (1, 2)] and calls == [1, 2]


# ---------------------------------------------------------------- pooled path


@fork_only
class TestPooledSupervised:
    def test_clean_run_matches_serial(self):
        serial = list(supervised_iter_tasks(_square, list(range(8)), workers=1))
        pooled = list(supervised_iter_tasks(_square, list(range(8)), workers=2))
        assert pooled == serial

    def test_chaos_error_retried_to_success(self, monkeypatch):
        monkeypatch.setenv(ENV_CHAOS, "error=1.0")
        log = SupervisionLog()
        pol = SupervisorPolicy(max_retries=1, backoff_base=0.001)
        out = list(
            supervised_iter_tasks(
                _square, list(range(4)), workers=2, policy=pol, supervision=log
            )
        )
        assert out == [(i, i * i) for i in range(4)]
        assert log.retries == 4  # every task failed exactly once

    def test_worker_crash_retried_to_success(self, monkeypatch):
        monkeypatch.setenv(ENV_CHAOS, "crash=1.0")
        log = SupervisionLog()
        pol = SupervisorPolicy(
            max_retries=1, backoff_base=0.001, pool_crash_threshold=100
        )
        out = list(
            supervised_iter_tasks(
                _square, list(range(3)), workers=2, policy=pol, supervision=log
            )
        )
        assert out == [(0, 0), (1, 1), (2, 4)]
        assert log.crashes == 3
        assert all(
            f.kind == "crash" for r in log.quarantined for f in r.errors
        )  # vacuous: nothing quarantined
        assert not log.quarantined

    def test_hang_becomes_timeout_then_retry(self, monkeypatch):
        monkeypatch.setenv(ENV_CHAOS, "hang=1.0")
        monkeypatch.setenv(ENV_CHAOS_HANG, "30")
        log = SupervisionLog()
        pol = SupervisorPolicy(
            task_timeout=0.5, max_retries=1, backoff_base=0.001
        )
        out = list(
            supervised_iter_tasks(
                _square, [2, 3], workers=2, policy=pol, supervision=log
            )
        )
        assert out == [(0, 4), (1, 9)]
        assert log.timeouts == 2 and log.retries == 2

    def test_all_timeouts_raise_tasktimeout(self, monkeypatch):
        monkeypatch.setenv(ENV_CHAOS, "error_always=0.0,hang=1.0")
        monkeypatch.setenv(ENV_CHAOS_HANG, "30")
        pol = SupervisorPolicy(task_timeout=0.4, max_retries=0)
        with pytest.raises(TaskTimeout) as exc_info:
            list(
                supervised_iter_tasks(_square, [1, 2], workers=2, policy=pol)
            )
        assert exc_info.value.report.errors[0].kind == "timeout"

    def test_timeouts_do_not_trip_breaker(self, monkeypatch):
        monkeypatch.setenv(ENV_CHAOS, "hang=1.0")
        monkeypatch.setenv(ENV_CHAOS_HANG, "30")
        log = SupervisionLog()
        pol = SupervisorPolicy(
            task_timeout=0.3,
            max_retries=1,
            backoff_base=0.001,
            pool_crash_threshold=1,
        )
        out = list(
            supervised_iter_tasks(
                _square, [1, 2], workers=2, policy=pol, supervision=log
            )
        )
        assert out == [(0, 1), (1, 4)]
        assert not log.breaker_tripped

    def test_poison_quarantine_completes_healthy_tasks(self, monkeypatch):
        monkeypatch.setenv(ENV_CHAOS, "error_always=0.4")
        monkeypatch.setenv(ENV_CHAOS_SEED, "9")
        from repro.resilience import parse_chaos_spec, planned_fault

        spec = parse_chaos_spec("error_always=0.4")
        poison = {
            i for i in range(8) if planned_fault(i, spec, 9) == "error_always"
        }
        assert poison and len(poison) < 8  # the drill needs both kinds
        log = SupervisionLog()
        pol = SupervisorPolicy(
            max_retries=1, backoff_base=0.001, on_poison="quarantine"
        )
        out = list(
            supervised_iter_tasks(
                _square, list(range(8)), workers=2, policy=pol, supervision=log
            )
        )
        assert [i for i, _ in out] == sorted(set(range(8)) - poison)
        assert all(v == i * i for i, v in out)
        assert {r.task_index for r in log.quarantined} == poison

    def test_breaker_trips_to_serial_and_completes(self, monkeypatch):
        monkeypatch.setenv(ENV_CHAOS, "crash=1.0")
        log = SupervisionLog()
        pol = SupervisorPolicy(
            max_retries=1, backoff_base=0.001, pool_crash_threshold=2
        )
        out = list(
            supervised_iter_tasks(
                _square, list(range(6)), workers=2, policy=pol, supervision=log
            )
        )
        assert out == [(i, i * i) for i in range(6)]
        assert log.breaker_tripped and log.crashes >= 2

    def test_breaker_serial_fallback_runs_initializer(self, monkeypatch):
        monkeypatch.setenv(ENV_CHAOS, "crash=1.0")
        _INIT_BOX.clear()
        pol = SupervisorPolicy(
            max_retries=1, backoff_base=0.001, pool_crash_threshold=1
        )
        out = list(
            supervised_iter_tasks(
                _needs_init,
                [1, 2, 3],
                workers=2,
                policy=pol,
                initializer=_install_box,
                initargs=(1000,),
            )
        )
        assert out == [(0, 1001), (1, 1002), (2, 1003)]

    def test_retry_counters_reach_metrics_registry(self, monkeypatch):
        monkeypatch.setenv(ENV_CHAOS, "error=1.0")
        registry = metrics.MetricsRegistry()
        pol = SupervisorPolicy(max_retries=1, backoff_base=0.001)
        with metrics.activate(registry):
            list(
                supervised_iter_tasks(
                    _square, list(range(3)), workers=2, policy=pol
                )
            )
        snap = {m["name"]: m for m in registry.snapshot()}
        assert snap["repro_task_retries_total"]["series"][0]["value"] == 3.0

    def test_retried_task_spans_carry_attempt_attr(self, monkeypatch):
        monkeypatch.setenv(ENV_CHAOS, "error=1.0")
        tracer = tracing.Tracer()
        pol = SupervisorPolicy(max_retries=1, backoff_base=0.001)
        with tracing.activate(tracer):
            list(
                supervised_iter_tasks(
                    _instrumented_task, [1, 2], workers=2, policy=pol
                )
            )
        spans = [s for s in tracer.finished() if s.name == "test.supervised"]
        assert spans and all(s.attrs.get("attempt") == 2 for s in spans)


def _instrumented_task(x):
    with tracing.span("test.supervised", n_items=1):
        pass
    return x


# ---------------------------------------------------------------- obs merge


class TestMergeObsExtraAttrs:
    def test_stamps_batch_roots_only(self):
        delta = ObsDelta(
            spans=[
                {
                    "span_id": 1,
                    "parent_id": None,
                    "name": "root",
                    "start": 0.0,
                    "duration": 0.1,
                    "attrs": {},
                },
                {
                    "span_id": 2,
                    "parent_id": 1,
                    "name": "child",
                    "start": 0.0,
                    "duration": 0.05,
                    "attrs": {},
                },
            ],
            elapsed=0.1,
        )
        tracer = tracing.Tracer()
        with tracing.activate(tracer):
            merge_obs(delta, extra_attrs={"attempt": 3})
        by_name = {s.name: s for s in tracer.finished()}
        assert by_name["root"].attrs.get("attempt") == 3
        assert "attempt" not in by_name["child"].attrs

    def test_delta_dicts_not_mutated(self):
        delta = ObsDelta(
            spans=[
                {
                    "span_id": 1,
                    "parent_id": None,
                    "name": "root",
                    "start": 0.0,
                    "duration": 0.1,
                    "attrs": {},
                }
            ],
            elapsed=0.1,
        )
        tracer = tracing.Tracer()
        with tracing.activate(tracer):
            merge_obs(delta, extra_attrs={"attempt": 2})
        assert delta.spans[0]["attrs"] == {}


# ---------------------------------------------------------------- integration


@fork_only
class TestIterTasksDelegation:
    def test_policy_routes_through_supervisor(self, monkeypatch):
        monkeypatch.setenv(ENV_CHAOS, "error=1.0")
        log = SupervisionLog()
        pol = SupervisorPolicy(max_retries=1, backoff_base=0.001)
        out = list(
            iter_tasks(
                _square,
                list(range(4)),
                workers=2,
                policy=pol,
                supervision=log,
            )
        )
        assert out == [(i, i * i) for i in range(4)]
        assert log.retries == 4

    def test_no_policy_ignores_chaos_env(self, monkeypatch):
        # Injection lives in the supervised worker loop only: the legacy
        # fail-fast pool (policy=None) is untouched by $REPRO_CHAOS.
        monkeypatch.setenv(ENV_CHAOS, "error=1.0")
        out = list(iter_tasks(_square, list(range(4)), workers=2))
        assert out == [(i, i * i) for i in range(4)]
