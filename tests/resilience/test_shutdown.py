"""Graceful-shutdown tests: signal mapping and pool draining."""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.resilience import (
    EXIT_INTERRUPTED,
    ShutdownRequested,
    SupervisionLog,
    SupervisorPolicy,
    graceful_shutdown,
    supervised_iter_tasks,
)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

fork_only = pytest.mark.skipif(
    not HAVE_FORK, reason="drain test needs the fork start method"
)


def _sleepy(x):
    time.sleep(1.0)
    return x * x


class TestGracefulShutdown:
    def test_exit_code_constant(self):
        assert EXIT_INTERRUPTED == 130  # 128 + SIGINT, the shell convention

    def test_subclasses_keyboard_interrupt(self):
        exc = ShutdownRequested(signal.SIGTERM)
        assert isinstance(exc, KeyboardInterrupt)
        assert exc.signal_name == "SIGTERM"
        assert ShutdownRequested(signal.SIGINT).signal_name == "SIGINT"

    def test_sigterm_raises_inside_block(self):
        with pytest.raises(ShutdownRequested) as exc_info:
            with graceful_shutdown():
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(5)  # pragma: no cover - signal preempts
        assert exc_info.value.signum == signal.SIGTERM

    def test_handlers_restored_after_block(self):
        before = signal.getsignal(signal.SIGTERM)
        with graceful_shutdown():
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before

    def test_handlers_restored_after_signal(self):
        before = signal.getsignal(signal.SIGTERM)
        with pytest.raises(ShutdownRequested):
            with graceful_shutdown():
                os.kill(os.getpid(), signal.SIGTERM)
        assert signal.getsignal(signal.SIGTERM) is before

    def test_noop_outside_main_thread(self):
        outcome: list[object] = []

        def body():
            before = signal.getsignal(signal.SIGTERM)
            try:
                with graceful_shutdown():
                    outcome.append(signal.getsignal(signal.SIGTERM) is before)
            except Exception as exc:  # pragma: no cover - the failure mode
                outcome.append(exc)

        t = threading.Thread(target=body)
        t.start()
        t.join()
        assert outcome == [True]  # ran unprotected, no handler touched


@fork_only
class TestPoolDrain:
    def test_sigterm_drains_in_flight_then_reraises(self):
        """SIGTERM mid-run: in-flight tasks finish, prefix is yielded,
        pending tasks are abandoned, and the signal re-raises."""
        log = SupervisionLog()
        pol = SupervisorPolicy(backoff_base=0.001, drain_grace=30.0)
        timer = threading.Timer(
            0.4, os.kill, args=(os.getpid(), signal.SIGTERM)
        )
        got: list[tuple[int, int]] = []
        with graceful_shutdown():
            timer.start()
            try:
                with pytest.raises(ShutdownRequested):
                    for item in supervised_iter_tasks(
                        _sleepy,
                        list(range(6)),
                        workers=2,
                        policy=pol,
                        supervision=log,
                    ):
                        got.append(item)
            finally:
                timer.cancel()
        # The drained prefix is in-order, correct, and strictly partial.
        assert got == [(i, i * i) for i in range(len(got))]
        assert 0 < len(got) < 6
