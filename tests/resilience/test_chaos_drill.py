"""The chaos drill: end-to-end CLI runs under injected faults.

The acceptance criterion of the resilience layer is *bit-identity under
chaos*: a run that survives injected crashes, hangs, and SIGKILLs must
produce byte-for-byte the NPZ outputs of a fault-free serial run.  The
fault plan is a pure function of ``(REPRO_CHAOS_SEED, task_index)``, so
each test states its plan up front and asserts the precondition it
relies on (at least one fault planned, at least one chunk clean).

Chunk geometry: ``--drives 8`` deploys 24 actual drives (3 models), so
``--checkpoint-every 5`` yields 5 chunks — task indices 0..4.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.cli import EXIT_QUARANTINE, main
from repro.obs import load_manifest, validate_manifest
from repro.resilience import (
    CHAOS_MODES,
    ENV_CHAOS,
    ENV_CHAOS_HANG,
    ENV_CHAOS_SEED,
    ChaosError,
    parse_chaos_spec,
    planned_fault,
)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

fork_only = pytest.mark.skipif(
    not HAVE_FORK, reason="chaos injection rides the fork start method"
)

N_CHUNKS = 5


def _simulate(out, seed=4, extra=()):
    argv = ["simulate", "--out", str(out), "--drives", "8", "--days", "120",
            "--deploy-spread", "30", "--seed", str(seed),
            "--checkpoint-every", "5", "--quiet", *extra]
    return main(argv)


def _npz_bytes(directory):
    return {
        name: (directory / name).read_bytes()
        for name in ("records.npz", "drives.npz", "swaps.npz")
    }


# ---------------------------------------------------------------- spec


class TestChaosSpec:
    def test_parse_roundtrip(self):
        assert parse_chaos_spec("crash=0.2, hang=0.1") == [
            ("crash", 0.2),
            ("hang", 0.1),
        ]

    def test_empty_spec(self):
        assert parse_chaos_spec("") == []

    @pytest.mark.parametrize(
        "spec",
        [
            "explode=0.5",  # unknown mode
            "crash=lots",  # not a number
            "crash=1.5",  # out of range
            "crash=-0.1",
            "crash=0.7,hang=0.7",  # rates sum past 1
        ],
    )
    def test_parse_rejects(self, spec):
        with pytest.raises(ChaosError):
            parse_chaos_spec(spec)

    def test_planned_fault_is_pure(self):
        spec = parse_chaos_spec("error=0.3,crash=0.3,hang=0.3")
        plan_a = [planned_fault(i, spec, 7) for i in range(32)]
        plan_b = [planned_fault(i, spec, 7) for i in range(32)]
        assert plan_a == plan_b
        assert any(m is not None for m in plan_a)
        for mode in plan_a:
            assert mode is None or mode in CHAOS_MODES

    def test_planned_fault_empty_spec_is_none(self):
        assert planned_fault(0, [], 0) is None

    def test_different_seeds_differ(self):
        spec = parse_chaos_spec("crash=0.5")
        plans = {
            tuple(planned_fault(i, spec, seed) for i in range(16))
            for seed in range(8)
        }
        assert len(plans) > 1


# ---------------------------------------------------------------- drills


@fork_only
class TestChaosDrill:
    def test_mixed_chaos_survives_bit_identical(self, tmp_path, monkeypatch,
                                                capsys):
        """Errors, crashes, and hangs in one run — survive, stay identical."""
        spec, chaos_seed = "error=0.2,crash=0.2,hang=0.2", 10
        plan = [
            planned_fault(i, parse_chaos_spec(spec), chaos_seed)
            for i in range(N_CHUNKS)
        ]
        assert {"error", "crash", "hang"} <= set(plan)  # all modes fire
        assert None in plan  # and at least one chunk is clean

        clean = tmp_path / "clean"
        assert _simulate(clean) == 0

        monkeypatch.setenv(ENV_CHAOS, spec)
        monkeypatch.setenv(ENV_CHAOS_SEED, str(chaos_seed))
        monkeypatch.setenv(ENV_CHAOS_HANG, "30")
        chaotic = tmp_path / "chaotic"
        code = _simulate(
            chaotic,
            extra=["--workers", "2", "--task-timeout", "5", "--max-retries", "3"],
        )
        capsys.readouterr()
        assert code == 0
        assert _npz_bytes(chaotic) == _npz_bytes(clean)

        body = load_manifest(chaotic / "run_manifest.json")
        assert validate_manifest(body) == []
        res = body["resilience"]
        n_faults = len([m for m in plan if m is not None])
        assert res["retries"] == n_faults
        assert res["crashes"] == plan.count("crash")
        assert res["timeouts"] == plan.count("hang")
        assert res["quarantined"] == []
        assert res["breaker_tripped"] is False
        # The fault-free manifest carries no resilience section at all.
        assert "resilience" not in load_manifest(clean / "run_manifest.json")

    def test_sigkilled_chunks_quarantine_then_resume_bit_identical(
        self, tmp_path, monkeypatch, capsys
    ):
        """Satellite: mid-chunk SIGKILL -> quarantine -> --resume heals.

        Two chunks die under ``kill=0.4`` with retries off; the run exits
        ``EXIT_QUARANTINE`` with the 3 healthy chunks checkpointed.  A
        ``--resume`` with chaos lifted redoes only the poison chunks and
        the final NPZs are byte-identical to a fault-free serial run.
        """
        spec, chaos_seed = "kill=0.4", 5
        plan = [
            planned_fault(i, parse_chaos_spec(spec), chaos_seed)
            for i in range(N_CHUNKS)
        ]
        killed = [i for i, m in enumerate(plan) if m == "kill"]
        assert killed and len(killed) < N_CHUNKS

        clean = tmp_path / "clean"
        assert _simulate(clean) == 0

        out = tmp_path / "healed"
        monkeypatch.setenv(ENV_CHAOS, spec)
        monkeypatch.setenv(ENV_CHAOS_SEED, str(chaos_seed))
        code = _simulate(
            out,
            extra=["--workers", "2", "--max-retries", "0",
                   "--on-poison", "quarantine"],
        )
        captured = capsys.readouterr()
        assert code == EXIT_QUARANTINE
        assert "rerun with --resume" in captured.err
        assert (
            f"{N_CHUNKS - len(killed)}/{N_CHUNKS} chunks checkpointed"
            in captured.out
        )
        assert not (out / "records.npz").exists()  # no partial outputs

        body = load_manifest(out / "run_manifest.json")
        assert validate_manifest(body) == []
        reports = body["resilience"]["quarantined"]
        assert [r["task_index"] for r in reports] == killed
        for r in reports:
            assert r["quarantined"] is True
            assert [e["kind"] for e in r["errors"]] == ["crash"]

        monkeypatch.delenv(ENV_CHAOS)
        code = _simulate(out, extra=["--workers", "2", "--resume"])
        capsys.readouterr()
        assert code == 0
        assert _npz_bytes(out) == _npz_bytes(clean)

    def test_poison_task_fails_run_by_default(self, tmp_path, monkeypatch,
                                              capsys):
        """``error_always`` + on_poison=fail -> exit 2 with the traceback."""
        monkeypatch.setenv(ENV_CHAOS, "error_always=0.3")
        monkeypatch.setenv(ENV_CHAOS_SEED, "9")
        plan = [
            planned_fault(i, parse_chaos_spec("error_always=0.3"), 9)
            for i in range(N_CHUNKS)
        ]
        assert "error_always" in plan
        code = _simulate(
            tmp_path / "fleet",
            extra=["--workers", "2", "--max-retries", "1"],
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "injected poison fault" in err
