"""Tests for the Observations 1-13 auditor."""

from __future__ import annotations

import pytest

from repro.analysis import check_observations
from repro.core.pipeline import ModelSpec
from repro.ml import RandomForestClassifier


@pytest.fixture(scope="module")
def report(medium_trace):
    return check_observations(medium_trace, include_ml=False)


class TestCheckObservations:
    def test_eleven_non_ml_observations(self, report):
        assert [r.number for r in report.results] == list(range(1, 12))

    def test_each_has_claim_and_evidence(self, report):
        for r in report.results:
            assert r.claim and r.evidence

    def test_simulated_fleet_exhibits_paper_phenomenology(self, report):
        # The simulator is calibrated to the paper; the audit is the
        # top-level check of that calibration.  Allow at most one marginal
        # failure on the mid-sized test fixture.
        assert len(report.failing()) <= 1, report.render()

    def test_render(self, report):
        text = report.render()
        assert "Obs  1" in text and ("PASS" in text or "FAIL" in text)

    def test_ml_observations_included_on_demand(self, medium_trace):
        spec = ModelSpec(
            "rf-small",
            lambda: RandomForestClassifier(
                n_estimators=15, max_depth=8, random_state=0
            ),
            scale=False,
            log1p=False,
        )
        rep = check_observations(
            medium_trace, include_ml=True, spec=spec, n_splits=3
        )
        assert [r.number for r in rep.results] == list(range(1, 14))
        obs13 = rep.results[-1]
        assert "AUC" in obs13.evidence
