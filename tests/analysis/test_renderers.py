"""Rendering smoke tests: every table/figure result prints coherently.

Renderers feed EXPERIMENTS.md and the benchmark output; a crash or an
empty string there is a real regression even if the numbers are right.
"""

from __future__ import annotations

import pytest

import repro.analysis as A


@pytest.mark.parametrize(
    "fn_name",
    ["table1", "table2", "table3", "table4", "table5"],
)
def test_table_renderers(small_trace, fn_name):
    res = getattr(A, fn_name)(small_trace)
    text = res.render()
    assert isinstance(text, str) and len(text) > 20
    assert "\n" in text


@pytest.mark.parametrize(
    "fn_name",
    [
        "figure1",
        "figure3",
        "figure4",
        "figure5",
        "figure6",
        "figure7",
        "figure8",
        "figure9",
        "figure10",
        "figure11",
    ],
)
def test_figure_renderers(small_trace, fn_name):
    res = getattr(A, fn_name)(small_trace)
    text = res.render()
    assert isinstance(text, str) and len(text) > 10


def test_paper_targets_importable():
    from repro.analysis import paper_targets

    assert paper_targets.TABLE3_PCT_FAILED["MLC-B"] == 14.3
    assert paper_targets.TABLE6_AUC["Random Forest"][1] == 0.905
    assert 0 < paper_targets.SILENT_FAILURE_FRACTION < 1
