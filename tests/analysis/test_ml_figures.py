"""Fast unit tests for the ML figures/tables using a cheap model spec.

The benchmarks run these analyses with the full forest; here a small tree
keeps runtime low while exercising the full code paths (dataset building,
CV plumbing, per-group splits, rendering).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import figure12, figure13, figure14, figure15, figure16, table6, table7, table8
from repro.core.pipeline import ModelSpec
from repro.ml import DecisionTreeClassifier, RandomForestClassifier

FAST_TREE = ModelSpec(
    "tree",
    lambda: DecisionTreeClassifier(max_depth=6, min_samples_leaf=2, random_state=0),
    scale=False,
    log1p=False,
)
SMALL_RF = ModelSpec(
    "rf",
    lambda: RandomForestClassifier(n_estimators=15, max_depth=8, random_state=0),
    scale=False,
    log1p=False,
)


class TestTable6:
    def test_structure(self, medium_trace):
        res = table6(
            medium_trace, lookaheads=(1, 3), specs=(FAST_TREE,), n_splits=3
        )
        assert res.lookaheads == (1, 3)
        assert set(res.auc_mean) == {"tree"}
        for n in (1, 3):
            assert 0.4 < res.auc_mean["tree"][n] <= 1.0
            assert res.auc_std["tree"][n] >= 0.0
        assert "tree" in res.render()
        assert res.best_model(1) == "tree"


class TestTable7:
    def test_matrix_finite_and_rendered(self, medium_trace):
        res = table7(medium_trace, spec=SMALL_RF, n_splits=3)
        assert res.auc.shape == (3, 4)
        assert np.isfinite(res.auc).all()
        assert "MLC-A" in res.render()


class TestTable8:
    def test_subset_of_targets(self, medium_trace):
        res = table8(
            medium_trace,
            spec=SMALL_RF,
            targets=("uncorrectable_error", "response_error"),
            n_splits=3,
        )
        assert set(res.auc) == {"uncorrectable_error", "response_error"}
        ue = res.auc["uncorrectable_error"]["combined"]
        assert np.isnan(ue) or 0.4 < ue <= 1.0
        assert "uncorrectable" in res.render()


class TestFigure12:
    def test_series_shape(self, medium_trace):
        res = figure12(medium_trace, lookaheads=(1, 7), spec=FAST_TREE, n_splits=3)
        assert res.lookaheads == (1, 7)
        assert res.auc_mean.shape == (2,)
        assert "N=1" in res.render()


class TestFigure13:
    def test_three_curves(self, medium_trace):
        res = figure13(medium_trace, spec=FAST_TREE, n_splits=3)
        assert set(res.curves) <= {"MLC-A", "MLC-B", "MLC-D"}
        for name, auc in res.auc.items():
            assert 0.3 < auc <= 1.0, name


class TestFigure14:
    def test_tpr_in_unit_interval(self, medium_trace):
        res = figure14(
            medium_trace, thresholds=(0.5, 0.9), spec=SMALL_RF, n_splits=3
        )
        for tpr in res.tpr_by_threshold.values():
            finite = tpr[np.isfinite(tpr)]
            assert ((finite >= 0) & (finite <= 1)).all()

    def test_higher_threshold_lower_recall(self, medium_trace):
        res = figure14(
            medium_trace, thresholds=(0.3, 0.95), spec=SMALL_RF, n_splits=3
        )
        lo = np.nanmean(res.tpr_by_threshold[0.3])
        hi = np.nanmean(res.tpr_by_threshold[0.95])
        assert hi <= lo + 1e-9


class TestFigure15:
    def test_groups_reported(self, medium_trace):
        res = figure15(medium_trace, spec=SMALL_RF, n_splits=3)
        assert set(res.pooled_auc) == {"young", "old"}
        assert set(res.partitioned_auc) == {"young", "old"}
        assert "pooled" in res.render()


class TestFigure16:
    def test_reports_for_both_groups(self, medium_trace):
        res = figure16(medium_trace, spec=SMALL_RF, seed=0)
        assert len(res.young.names) == len(res.old.names)
        assert res.young.importances.sum() == pytest.approx(1.0, abs=1e-6)
        assert "Young" in res.render()

    def test_spec_without_importances_rejected(self, medium_trace):
        from repro.ml import LogisticRegression

        bad = ModelSpec("lr", lambda: LogisticRegression(), False, False)
        with pytest.raises(AttributeError):
            figure16(medium_trace, spec=bad, seed=0)
