"""Tests for the post-re-entry analysis extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import analyze_reentry
from repro.simulator import FleetConfig, simulate_fleet
from repro.simulator.config import MLC_B, LifetimeParams, RepairParams


@pytest.fixture(scope="module")
def reentry_trace():
    """A fleet tuned so repairs complete quickly (many re-entries)."""
    from dataclasses import replace

    spec = replace(
        MLC_B,
        lifetime=LifetimeParams(
            defect_prob=0.02,
            mature_hazard_per_day=4e-4,
            post_repair_hazard_mult=6.0,
        ),
        repair=replace(
            RepairParams(),
            return_prob=0.9,
            fast_repair_prob=0.8,
            fast_repair_median=10.0,
        ),
    )
    return simulate_fleet(
        FleetConfig(
            n_drives_per_model=120,
            horizon_days=1200,
            deploy_spread_days=200,
            seed=5,
        ),
        models=(spec, spec, spec),
    )


class TestAnalyzeReentry:
    def test_counts_and_structure(self, reentry_trace):
        res = analyze_reentry(reentry_trace)
        assert res.n_reentries > 5
        assert set(res.refail_within) == {90, 365, 730}
        text = res.render()
        assert "re-entries observed" in text

    def test_refail_monotone_in_horizon(self, reentry_trace):
        res = analyze_reentry(reentry_trace)
        vals = [res.refail_within[h] for h in (90, 365, 730)]
        assert vals == sorted(vals)

    def test_repaired_drives_fail_faster(self, reentry_trace):
        """The post-repair hazard multiplier must show up in the KM curves."""
        res = analyze_reentry(reentry_trace)
        # One-year failure probability higher after re-entry than for the
        # first operational period.
        assert res.reentry_km.cdf(365.0) > res.first_km.cdf(365.0)

    def test_activity_ratio_defined(self, reentry_trace):
        res = analyze_reentry(reentry_trace)
        # Enough re-entries with telemetry on both sides to estimate it.
        assert np.isfinite(res.activity_ratio_median)
        assert 0.1 < res.activity_ratio_median < 10.0

    def test_no_reentries_degrades_gracefully(self, small_trace):
        # The small fixture may or may not contain re-entries; the analysis
        # must never crash and must report a coherent count.
        res = analyze_reentry(small_trace)
        assert res.n_reentries >= 0
