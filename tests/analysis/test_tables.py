"""Tests for the table-reproduction functions (characterization tables)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import table1, table2, table3, table4, table5
from repro.analysis.tables import TABLE1_ERRORS, TABLE2_MEASURES
from repro.data import MODEL_NAMES


class TestTable1:
    def test_structure(self, small_trace):
        res = table1(small_trace)
        assert set(res.proportions) == set(TABLE1_ERRORS)
        for err in TABLE1_ERRORS:
            for m in MODEL_NAMES:
                v = res.proportions[err][m]
                assert 0.0 <= v <= 1.0

    def test_correctable_dominates(self, small_trace):
        res = table1(small_trace)
        for m in MODEL_NAMES:
            assert res.proportions["correctable_error"][m] > 0.5
            assert res.proportions["meta_error"][m] < 0.01

    def test_render(self, small_trace):
        text = table1(small_trace).render()
        assert "MLC-A" in text and "uncorrectable" in text


class TestTable2:
    def test_matrix_properties(self, small_trace):
        res = table2(small_trace)
        assert res.names == list(TABLE2_MEASURES)
        k = len(res.names)
        assert res.rho.shape == (k, k)
        finite = np.isfinite(res.rho)
        assert np.allclose(res.rho[finite], np.clip(res.rho[finite], -1, 1))
        for i in range(k):
            if np.isfinite(res.rho[i, i]):
                assert res.rho[i, i] == pytest.approx(1.0)

    def test_ue_final_read_strongly_coupled(self, small_trace):
        res = table2(small_trace)
        assert res.value("uncorrectable_error", "final_read_error") > 0.7

    def test_age_pe_strongly_coupled(self, small_trace):
        res = table2(small_trace)
        assert res.value("drive_age", "pe_cycles") > 0.5

    def test_per_drive_units(self, small_trace):
        res = table2(small_trace, units="drives")
        assert res.rho.shape[0] == len(TABLE2_MEASURES)
        with pytest.raises(ValueError):
            table2(small_trace, units="bogus")


class TestTable3:
    def test_counts_consistent_with_swaplog(self, small_trace):
        res = table3(small_trace)
        assert res.n_failures["All"] == len(small_trace.swaps)
        assert res.n_failures["All"] == sum(
            res.n_failures[m] for m in MODEL_NAMES
        )
        for m in (*MODEL_NAMES, "All"):
            assert 0.0 <= res.pct_failed[m] <= 100.0

    def test_render(self, small_trace):
        assert "%Failed" in table3(small_trace).render()


class TestTable4:
    def test_distribution_sums(self, small_trace):
        res = table4(small_trace)
        assert res.counts.sum() == len(small_trace.drives)
        assert res.pct_of_drives.sum() == pytest.approx(100.0)
        if res.counts[1:].sum():
            assert res.pct_of_failed[1:].sum() == pytest.approx(100.0)

    def test_single_failures_dominate(self, small_trace):
        res = table4(small_trace)
        if len(res.counts) > 2 and res.counts[1:].sum() > 10:
            assert res.pct_of_failed[1] > 70.0


class TestTable5:
    def test_monotone_in_horizon(self, small_trace):
        res = table5(small_trace)
        for m in MODEL_NAMES:
            row = [res.pct_of_swapped[m][h] for h in res.horizons]
            vals = [v for v in row if not np.isnan(v)]
            assert vals == sorted(vals)

    def test_pct_of_all_below_pct_of_swapped(self, small_trace):
        res = table5(small_trace)
        for m in MODEL_NAMES:
            for h in res.horizons:
                sw = res.pct_of_swapped[m][h]
                al = res.pct_of_all[m][h]
                if not (np.isnan(sw) or np.isnan(al)):
                    assert al <= sw + 1e-9
