"""Tests for the figure-reproduction functions (characterization figures)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    operational_periods,
    value_at_failure,
)


class TestSupport:
    def test_operational_periods_cover_all_drives(self, small_trace):
        periods = operational_periods(small_trace.drives, small_trace.swaps)
        assert set(np.unique(periods.drive_id)) == set(
            small_trace.drives.drive_id.tolist()
        )
        # One failing period per swap plus at least one censored period per
        # never-failing drive.
        n_failing = np.count_nonzero(~np.isnan(periods.length))
        assert n_failing == len(small_trace.swaps)

    def test_period_lengths_nonnegative(self, small_trace):
        periods = operational_periods(small_trace.drives, small_trace.swaps)
        finite = periods.length[~np.isnan(periods.length)]
        assert (finite >= 0).all()

    def test_value_at_failure_uses_last_record_before(self, small_trace):
        records = small_trace.records
        pe = value_at_failure(records, small_trace.swaps, records["pe_cycles"])
        ok = ~np.isnan(pe)
        assert ok.mean() > 0.8  # failure days are anchored with p=0.95
        assert (pe[ok] >= 0).all()


class TestFigure1:
    def test_data_count_below_max_age(self, small_trace):
        res = figure1(small_trace)
        # Thinning: recorded days fewer than lived days at every quantile.
        for q in (0.25, 0.5, 0.75):
            assert res.data_count.quantile(q) <= res.max_age.quantile(q)


class TestFigure3:
    def test_censored_mass_dominates(self, small_trace):
        res = figure3(small_trace)
        # Most operational periods never end in failure (paper: >80%).
        assert res.never_failing_fraction > 0.6


class TestFigures4and5:
    def test_figure4_prompt_removal(self, small_trace):
        res = figure4(small_trace)
        assert res.cdf(7.0) > 0.5  # most drives swapped within a week

    def test_figure5_censoring(self, small_trace):
        res = figure5(small_trace)
        assert 0.2 < res.cdf.censored_mass < 0.8


class TestFigure6:
    def test_infant_mortality_shape(self, medium_trace):
        res = figure6(medium_trace)
        assert res.infant_share_90d > res.infant_share_30d > 0
        # Hazard in the first three months above the mature plateau.
        infant = np.nanmean(res.monthly_rate[:3])
        mature = np.nanmean(res.monthly_rate[3:24])
        assert infant > 2 * mature


class TestFigure7:
    def test_ramp_visible_in_medians(self, small_trace):
        res = figure7(small_trace, n_months=24)
        med = res.bands.level(0.5)
        assert med[0] < med[11]

    def test_quartile_ordering(self, small_trace):
        res = figure7(small_trace, n_months=12)
        q1, q3 = res.bands.level(0.25), res.bands.level(0.75)
        ok = ~(np.isnan(q1) | np.isnan(q3))
        assert (q1[ok] <= q3[ok]).all()


class TestFigures8and9:
    def test_failures_well_before_limit(self, medium_trace):
        res = figure8(medium_trace)
        assert res.share_below_half_limit > 0.8

    def test_young_failures_at_lower_pe(self, medium_trace):
        res = figure9(medium_trace)
        assert res.young.quantile(0.5) < res.old.quantile(0.5)


class TestFigure10:
    def test_failed_drives_heavier_error_tails(self, medium_trace):
        res = figure10(medium_trace)
        # Non-failed drives mostly have zero UEs; failed drives fewer zeros.
        z_not = res.zero_ue_fraction("not_failed")
        z_old = res.zero_ue_fraction("old")
        assert z_not > 0.6
        assert z_old < z_not


class TestFigure11:
    def test_error_probability_concentrated_near_failure(self, medium_trace):
        res = figure11(medium_trace)
        for grp in ("young", "old"):
            p = res.prob_within[grp]
            if np.isfinite(p).all() and p[-1] > 0:
                # Within-n probability is nondecreasing in n by construction.
                assert (np.diff(p) >= -1e-12).all()
        # Failed drives see UEs far above the healthy baseline.
        assert np.nanmax(
            [res.prob_within["young"][1], res.prob_within["old"][1]]
        ) > 3 * max(res.baseline[1], 1e-4)
