"""Shape-level calibration checks against the paper's published numbers.

These integration tests simulate the default (6-year) fleet once and verify
the *qualitative* claims the reproduction must preserve (DESIGN.md §5) —
orderings, crossovers, rough magnitudes — with generous tolerances, since
the substrate is a stochastic simulator, not Google's testbed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    figure4,
    figure5,
    figure6,
    figure8,
    figure10,
    paper_targets,
    table1,
    table3,
    table4,
)
from repro.simulator import FleetConfig, simulate_fleet


@pytest.fixture(scope="module")
def calib_trace():
    """Default-parameter fleet at the paper's 6-year horizon."""
    return simulate_fleet(FleetConfig(n_drives_per_model=500, seed=2024))


class TestFailureIncidence:
    def test_model_ordering_matches_table3(self, calib_trace):
        res = table3(calib_trace)
        # MLC-B and MLC-D fail roughly twice as often as MLC-A.
        assert res.pct_failed["MLC-B"] > res.pct_failed["MLC-A"]
        assert res.pct_failed["MLC-D"] > res.pct_failed["MLC-A"]

    def test_overall_incidence_band(self, calib_trace):
        res = table3(calib_trace)
        target = paper_targets.TABLE3_PCT_FAILED["All"]
        assert res.pct_failed["All"] == pytest.approx(target, rel=0.45)

    def test_single_failures_dominate_table4(self, calib_trace):
        res = table4(calib_trace)
        assert res.pct_of_failed[1] > 80.0


class TestErrorIncidence:
    def test_table1_orders_of_magnitude(self, calib_trace):
        res = table1(calib_trace)
        for err, targets in paper_targets.TABLE1_INCIDENCE.items():
            for model, target in targets.items():
                got = res.proportions[err][model]
                if target >= 1e-3:
                    # Common errors within a factor ~2.5.
                    assert got == pytest.approx(target, rel=1.5), (err, model)
                else:
                    # Rare errors within roughly an order of magnitude.
                    assert got < 30 * target + 1e-4, (err, model)


class TestInfantMortality:
    def test_infant_shares(self, calib_trace):
        res = figure6(calib_trace)
        assert res.infant_share_30d == pytest.approx(
            paper_targets.FIG6_FAILURES_UNDER_30D, abs=0.10
        )
        assert res.infant_share_90d == pytest.approx(
            paper_targets.FIG6_FAILURES_UNDER_90D, abs=0.12
        )

    def test_hazard_flattens_after_infancy(self, calib_trace):
        res = figure6(calib_trace)
        infant = np.nanmean(res.monthly_rate[:3])
        plateau = np.nanmean(res.monthly_rate[6:36])
        assert infant > 3 * plateau
        # Oldest drives fail no more often than the plateau (Obs. 7).
        old = np.nanmean(res.monthly_rate[36:60])
        assert old < 2.5 * plateau


class TestWear:
    def test_failures_below_half_pe_limit(self, calib_trace):
        res = figure8(calib_trace)
        assert res.share_below_half_limit > 0.85  # paper: 98%


class TestErrorVisibility:
    def test_zero_ue_shares(self, calib_trace):
        res = figure10(calib_trace)
        targets = paper_targets.FIG10_ZERO_UE
        assert res.zero_ue_fraction("not_failed") == pytest.approx(
            targets["not_failed"], abs=0.12
        )
        assert res.zero_ue_fraction("young") == pytest.approx(
            targets["young"], abs=0.15
        )
        assert res.zero_ue_fraction("old") == pytest.approx(
            targets["old"], abs=0.15
        )


class TestRepairPipeline:
    def test_swap_latency_shape(self, calib_trace):
        res = figure4(calib_trace)
        assert res.cdf(1.0) == pytest.approx(paper_targets.FIG4_WITHIN_1D, abs=0.12)
        assert res.cdf(7.0) == pytest.approx(paper_targets.FIG4_WITHIN_7D, abs=0.12)

    def test_half_never_repaired(self, calib_trace):
        res = figure5(calib_trace)
        assert res.cdf.censored_mass == pytest.approx(
            paper_targets.FIG5_NEVER_REPAIRED, abs=0.15
        )
