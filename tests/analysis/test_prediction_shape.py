"""Integration tests for the headline prediction claims (Section 5).

These run real cross-validated training, so they use a mid-sized fleet and
only the models needed for each claim.  Tolerances are deliberately loose:
the assertions encode the paper's *shape* — the forest wins, accuracy decays
with the lookahead window, infant failures are more predictable — not exact
AUC values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    build_prediction_dataset,
    default_model_zoo,
    evaluate_model,
)
from repro.ml import roc_auc_score
from repro.simulator import FleetConfig, simulate_fleet


@pytest.fixture(scope="module")
def ml_trace():
    return simulate_fleet(
        FleetConfig(
            n_drives_per_model=350,
            horizon_days=1460,
            deploy_spread_days=900,
            seed=11,
        )
    )


@pytest.fixture(scope="module")
def zoo():
    return {s.name: s for s in default_model_zoo(seed=0)}


class TestModelOrdering:
    def test_forest_beats_logistic_regression(self, ml_trace, zoo):
        ds = build_prediction_dataset(ml_trace, lookahead=1)
        rf = evaluate_model(ds, zoo["Random Forest"], n_splits=4, seed=0)
        lr = evaluate_model(ds, zoo["Logistic Reg."], n_splits=4, seed=0)
        assert rf.mean_auc > lr.mean_auc
        assert rf.mean_auc > 0.8  # paper: 0.905


class TestLookaheadDecay:
    def test_auc_declines_with_window(self, ml_trace, zoo):
        spec = zoo["Random Forest"]
        aucs = {}
        for n in (1, 7):
            ds = build_prediction_dataset(ml_trace, lookahead=n)
            aucs[n] = evaluate_model(ds, spec, n_splits=4, seed=0).mean_auc
        assert aucs[1] > aucs[7]  # paper: 0.905 -> 0.803


class TestAgePartitioning:
    def test_young_failures_more_predictable(self, ml_trace, zoo):
        spec = zoo["Random Forest"]
        ds = build_prediction_dataset(ml_trace, lookahead=1)
        res = evaluate_model(ds, spec, n_splits=4, seed=0)
        ages = ds.age_days[res.oof_index]
        young = ages <= 90
        auc_young = roc_auc_score(res.oof_true[young], res.oof_score[young])
        auc_old = roc_auc_score(res.oof_true[~young], res.oof_score[~young])
        assert auc_young > auc_old  # paper: 0.961 vs 0.894

    def test_age_among_top_young_features(self, ml_trace, zoo):
        from repro.analysis import figure16

        res = figure16(ml_trace, seed=0)
        young_top = [n for n, _ in res.young.top(12)]
        # Paper Fig 16 ranks drive age first for infants; at test fleet
        # sizes it reliably lands in the top tier rather than at #1.
        assert "drive_age" in young_top
