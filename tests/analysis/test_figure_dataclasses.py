"""Direct tests of the ML-figure result dataclasses (no training needed)."""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import (
    Figure12Result,
    Figure13Result,
    Figure14Result,
    Figure15Result,
)
from repro.analysis.tables import Table6Result


class TestTable6Result:
    def _result(self):
        return Table6Result(
            lookaheads=(1, 7),
            auc_mean={"A": {1: 0.9, 7: 0.8}, "B": {1: 0.85, 7: 0.82}},
            auc_std={"A": {1: 0.01, 7: 0.02}, "B": {1: 0.01, 7: 0.01}},
        )

    def test_best_model_per_lookahead(self):
        res = self._result()
        assert res.best_model(1) == "A"
        assert res.best_model(7) == "B"

    def test_render_contains_cells(self):
        text = self._result().render()
        assert "0.900" in text and "± 0.020" in text


class TestFigure12Result:
    def test_render(self):
        res = Figure12Result(
            lookaheads=(1, 30),
            auc_mean=np.array([0.9, 0.77]),
            auc_std=np.array([0.01, 0.02]),
        )
        assert "N=1" in res.render() and "N=30" in res.render()


class TestFigure13Result:
    def test_render(self):
        res = Figure13Result(
            curves={"MLC-A": (np.array([0.0, 1.0]), np.array([0.0, 1.0]))},
            auc={"MLC-A": 0.91},
        )
        assert "MLC-A" in res.render() and "0.910" in res.render()


class TestFigure14Result:
    def test_render_summary(self):
        res = Figure14Result(
            month_edges=np.arange(7) * 30.0,
            tpr_by_threshold={0.9: np.array([0.8, 0.7, 0.9, 0.4, 0.5, np.nan])},
        )
        text = res.render()
        assert "alpha=0.9" in text


class TestFigure15Result:
    def test_render(self):
        res = Figure15Result(
            curves={},
            pooled_auc={"young": 0.96, "old": 0.89},
            partitioned_auc={"young": (0.97, 0.01), "old": (0.89, 0.01)},
        )
        text = res.render()
        assert "young" in text and "0.970" in text
