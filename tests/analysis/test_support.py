"""Unit tests for the analysis support helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.support import drive_slices, operational_periods, value_at_failure
from repro.data import DriveDayDataset, DriveTable, SwapLog


def _records(ids, ages, pe):
    return DriveDayDataset(
        {
            "drive_id": np.asarray(ids, dtype=np.int32),
            "age_days": np.asarray(ages, dtype=np.int32),
            "pe_cycles": np.asarray(pe, dtype=np.float64),
        }
    )


def _swaps(ids, fails, swaps_at, reentry=None, start=None):
    n = len(ids)
    return SwapLog(
        drive_id=np.asarray(ids),
        model=np.zeros(n),
        failure_age=np.asarray(fails, dtype=float),
        swap_age=np.asarray(swaps_at, dtype=float),
        reentry_age=np.asarray(
            reentry if reentry is not None else [np.nan] * n, dtype=float
        ),
        operational_start_age=np.asarray(
            start if start is not None else [0.0] * n, dtype=float
        ),
    )


class TestDriveSlices:
    def test_slices(self):
        rec = _records([1, 1, 5], [0, 1, 0], [0, 1, 0])
        assert drive_slices(rec) == {1: (0, 2), 5: (2, 3)}


class TestValueAtFailure:
    def test_exact_day_match(self):
        rec = _records([1, 1, 1], [0, 5, 9], [0.0, 5.0, 9.0])
        sw = _swaps([1], [5], [6])
        out = value_at_failure(rec, sw, rec["pe_cycles"])
        assert out.tolist() == [5.0]

    def test_cumulative_falls_back_to_last_before(self):
        rec = _records([1, 1], [0, 3], [0.0, 3.0])
        sw = _swaps([1], [5], [6])  # failure day not recorded
        out = value_at_failure(rec, sw, rec["pe_cycles"], cumulative=True)
        assert out.tolist() == [3.0]

    def test_non_cumulative_requires_exact_day(self):
        rec = _records([1, 1], [0, 3], [0.0, 3.0])
        sw = _swaps([1], [5], [6])
        out = value_at_failure(rec, sw, rec["pe_cycles"], cumulative=False)
        assert np.isnan(out[0])

    def test_no_record_before_failure(self):
        rec = _records([1], [10], [10.0])
        sw = _swaps([1], [5], [6])
        out = value_at_failure(rec, sw, rec["pe_cycles"])
        assert np.isnan(out[0])

    def test_unknown_drive(self):
        rec = _records([1], [0], [0.0])
        sw = _swaps([9], [5], [6])
        out = value_at_failure(rec, sw, rec["pe_cycles"])
        assert np.isnan(out[0])

    def test_misaligned_values_rejected(self):
        rec = _records([1], [0], [0.0])
        sw = _swaps([1], [0], [1])
        with pytest.raises(ValueError):
            value_at_failure(rec, sw, np.zeros(5))


class TestOperationalPeriods:
    def test_failed_then_returned_then_censored(self):
        drives = DriveTable(
            drive_id=np.array([1]),
            model=np.array([0]),
            deploy_day=np.array([0]),
            end_of_observation_age=np.array([1000]),
        )
        sw = _swaps([1], [100], [110], reentry=[300.0], start=[0.0])
        periods = operational_periods(drives, sw)
        # One failing period (len 100) + one censored tail from 300.
        lengths = periods.length
        assert len(periods) == 2
        assert lengths[0] == 100.0
        assert np.isnan(lengths[1])
        assert periods.start_age.tolist() == [0.0, 300.0]

    def test_never_failing_drive_single_censored_period(self):
        drives = DriveTable(
            drive_id=np.array([7]),
            model=np.array([1]),
            deploy_day=np.array([10]),
            end_of_observation_age=np.array([500]),
        )
        sw = _swaps([], [], [])
        periods = operational_periods(drives, sw)
        assert len(periods) == 1
        assert np.isnan(periods.length[0])
        assert periods.censored_fraction == 1.0
