"""Tests for DriveTable and SwapLog event tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DriveTable, SwapLog, model_index


def _swaplog(**over):
    base = dict(
        drive_id=[1, 1, 2, 3],
        model=[0, 0, 1, 2],
        failure_age=[10.0, 50.0, 5.0, 100.0],
        swap_age=[12.0, 55.0, 5.0, 130.0],
        reentry_age=[30.0, np.nan, np.nan, 400.0],
        operational_start_age=[0.0, 30.0, 0.0, 0.0],
    )
    base.update(over)
    return SwapLog(**{k: np.asarray(v) for k, v in base.items()})


class TestModelIndex:
    def test_known_models(self):
        assert model_index("MLC-A") == 0
        assert model_index("MLC-B") == 1
        assert model_index("MLC-D") == 2

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            model_index("MLC-Z")


class TestDriveTable:
    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            DriveTable(
                drive_id=np.arange(3),
                model=np.zeros(2),
                deploy_day=np.zeros(3),
                end_of_observation_age=np.zeros(3),
            )

    def test_n_drives_per_model(self):
        t = DriveTable(
            drive_id=np.arange(4),
            model=np.array([0, 0, 1, 2]),
            deploy_day=np.zeros(4),
            end_of_observation_age=np.full(4, 100),
        )
        assert len(t) == 4
        assert t.n_drives() == 4
        assert t.n_drives(0) == 2
        assert t.n_drives(2) == 1


class TestSwapLog:
    def test_swap_before_failure_rejected(self):
        with pytest.raises(ValueError, match="swap_age"):
            _swaplog(swap_age=[5.0, 55.0, 5.0, 130.0])

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            _swaplog(model=[0, 0, 1])

    def test_for_model(self):
        log = _swaplog()
        assert len(log.for_model(0)) == 2
        assert len(log.for_model(1)) == 1

    def test_failures_per_drive(self):
        counts = _swaplog().failures_per_drive()
        assert counts == {1: 2, 2: 1, 3: 1}

    def test_non_operational_days(self):
        assert _swaplog().non_operational_days().tolist() == [2.0, 5.0, 0.0, 30.0]

    def test_time_to_repair_with_censoring(self):
        ttr = _swaplog().time_to_repair()
        assert ttr[0] == 18.0
        assert np.isnan(ttr[1]) and np.isnan(ttr[2])
        assert ttr[3] == 270.0

    def test_first_failure_age(self):
        ids, ages = _swaplog().first_failure_age()
        assert ids.tolist() == [1, 2, 3]
        assert ages.tolist() == [10.0, 5.0, 100.0]

    def test_default_failure_mode_is_unknown(self):
        log = _swaplog()
        assert (log.failure_mode == -1).all()

    def test_select_mask(self):
        log = _swaplog()
        sub = log.select(log.failure_age > 20)
        assert len(sub) == 2
