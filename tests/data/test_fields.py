"""Tests for the field registry."""

from __future__ import annotations

import numpy as np

from repro.data import (
    DAILY_FIELDS,
    ERROR_TYPES,
    FIELD_DOC,
    FIELD_DTYPES,
    NON_TRANSPARENT_ERRORS,
    TRANSPARENT_ERRORS,
    WORKLOAD_FIELDS,
)
from repro.data.fields import index_fields


class TestRegistry:
    def test_ten_error_types(self):
        assert len(ERROR_TYPES) == 10

    def test_transparency_partition(self):
        """Transparent + non-transparent = all error types (Section 2)."""
        both = set(TRANSPARENT_ERRORS) | set(NON_TRANSPARENT_ERRORS)
        assert both == set(ERROR_TYPES)
        assert not set(TRANSPARENT_ERRORS) & set(NON_TRANSPARENT_ERRORS)

    def test_paper_transparency_assignment(self):
        assert "correctable_error" in TRANSPARENT_ERRORS
        assert "uncorrectable_error" in NON_TRANSPARENT_ERRORS
        assert "final_read_error" in NON_TRANSPARENT_ERRORS
        assert "erase_error" in TRANSPARENT_ERRORS

    def test_every_field_documented_and_typed(self):
        for f in DAILY_FIELDS:
            assert f.name in FIELD_DTYPES
            assert FIELD_DOC[f.name]
            assert isinstance(f.dtype, np.dtype)

    def test_error_types_in_schema(self):
        names = {f.name for f in DAILY_FIELDS}
        assert set(ERROR_TYPES).issubset(names)
        assert set(WORKLOAD_FIELDS).issubset(names)

    def test_index_fields(self):
        assert "drive_id" in index_fields()
        assert "age_days" in index_fields()

    def test_cumulative_flags(self):
        cum = {f.name for f in DAILY_FIELDS if f.cumulative}
        assert "pe_cycles" in cum
        assert "grown_bad_blocks" in cum
        assert "read_count" not in cum
