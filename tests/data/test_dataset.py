"""Unit and property tests for the columnar DriveDayDataset."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import DriveDayDataset, concat_datasets


def _toy(ids, ages, **extra):
    cols = {
        "drive_id": np.asarray(ids, dtype=np.int32),
        "age_days": np.asarray(ages, dtype=np.int32),
    }
    cols.update({k: np.asarray(v) for k, v in extra.items()})
    return DriveDayDataset(cols)


class TestConstruction:
    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            DriveDayDataset({"drive_id": np.arange(3), "age_days": np.arange(4)})

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            DriveDayDataset({"drive_id": np.zeros((2, 2))})

    def test_registered_dtypes_applied(self):
        ds = _toy([1, 1], [0, 1], read_count=[1.5, 2.5])
        assert ds["drive_id"].dtype == np.int32
        assert ds["read_count"].dtype == np.float64

    def test_unsorted_input_gets_sorted(self):
        ds = _toy([2, 1, 1], [0, 5, 3])
        assert ds["drive_id"].tolist() == [1, 1, 2]
        assert ds["age_days"].tolist() == [3, 5, 0]

    def test_empty_has_full_schema(self):
        ds = DriveDayDataset.empty()
        assert len(ds) == 0
        assert "uncorrectable_error" in ds

    def test_len_and_contains(self):
        ds = _toy([1, 1, 2], [0, 1, 0])
        assert len(ds) == 3
        assert "drive_id" in ds and "nope" not in ds


class TestGrouping:
    def test_drive_groups_offsets(self):
        ds = _toy([1, 1, 2, 5, 5, 5], [0, 1, 0, 0, 1, 2])
        ids, offsets = ds.drive_groups()
        assert ids.tolist() == [1, 2, 5]
        assert offsets.tolist() == [0, 2, 3, 6]

    def test_iter_drives_partition(self):
        ds = _toy([1, 1, 2], [0, 1, 0])
        parts = dict(ds.iter_drives())
        assert set(parts) == {1, 2}
        assert len(parts[1]) == 2 and len(parts[2]) == 1

    def test_grouped_cumsum_restarts_per_drive(self):
        ds = _toy([1, 1, 1, 2, 2], [0, 1, 2, 0, 1], read_count=[1, 2, 3, 10, 20])
        out = ds.grouped_cumsum("read_count")
        assert out.tolist() == [1, 3, 6, 10, 30]

    def test_grouped_last_sum_max_count(self):
        ds = _toy([1, 1, 2], [0, 1, 0], read_count=[4, 6, 9])
        assert ds.grouped_last("read_count").tolist() == [6, 9]
        assert ds.grouped_sum("read_count").tolist() == [10, 9]
        assert ds.grouped_max("read_count").tolist() == [6, 9]
        assert ds.grouped_count().tolist() == [2, 1]

    def test_single_drive_cumsum_equals_numpy(self, rng):
        vals = rng.integers(0, 100, size=50)
        ds = _toy(np.ones(50), np.arange(50), read_count=vals)
        assert np.allclose(ds.grouped_cumsum("read_count"), np.cumsum(vals))

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 1_000)),
            min_size=1,
            max_size=200,
        )
    )
    def test_grouped_cumsum_matches_per_group_reference(self, rows):
        """Property: segment cumsum == independent per-drive cumsum."""
        rows.sort()
        ids = np.array([r[0] for r in rows], dtype=np.int32)
        vals = np.array([r[1] for r in rows], dtype=np.float64)
        ds = DriveDayDataset(
            {
                "drive_id": ids,
                "age_days": np.arange(len(rows), dtype=np.int32),
                "read_count": vals,
            },
            check_sorted=False,
        )
        got = ds.grouped_cumsum("read_count")
        expected = np.empty_like(vals)
        for d in np.unique(ids):
            m = ids == d
            expected[m] = np.cumsum(vals[m])
        assert np.allclose(got, expected)


class TestSelection:
    def test_select_by_mask(self):
        ds = _toy([1, 1, 2], [0, 1, 0], read_count=[1, 2, 3])
        sub = ds.select(np.array([True, False, True]))
        assert sub["read_count"].tolist() == [1, 3]

    def test_with_columns_adds_and_validates(self):
        ds = _toy([1, 2], [0, 0])
        ds2 = ds.with_columns({"label": np.array([0, 1])})
        assert ds2["label"].tolist() == [0, 1]
        with pytest.raises(ValueError):
            ds.with_columns({"label": np.zeros(5)})

    def test_feature_matrix_order(self):
        ds = _toy([1, 2], [0, 3], read_count=[5, 6])
        X = ds.feature_matrix(["age_days", "read_count"])
        assert X.shape == (2, 2)
        assert X[:, 0].tolist() == [0, 3]
        assert X[:, 1].tolist() == [5, 6]


class TestConcat:
    def test_concat_roundtrip(self):
        a = _toy([1, 1], [0, 1], read_count=[1, 2])
        b = _toy([2], [0], read_count=[3])
        c = concat_datasets([a, b])
        assert len(c) == 3
        assert c["read_count"].tolist() == [1, 2, 3]

    def test_concat_rejects_mismatched_schemas(self):
        a = _toy([1], [0], read_count=[1])
        b = _toy([2], [0])
        with pytest.raises(ValueError):
            concat_datasets([a, b])

    def test_concat_empty_list(self):
        assert len(concat_datasets([])) == 0
