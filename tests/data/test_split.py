"""Tests for drive-grouped splitting (no drive may straddle folds)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import GroupKFold, grouped_train_test_split


class TestGroupKFold:
    def test_requires_two_splits(self):
        with pytest.raises(ValueError):
            GroupKFold(n_splits=1)

    def test_requires_enough_groups(self):
        groups = np.array([1, 1, 2, 2])
        with pytest.raises(ValueError, match="groups"):
            list(GroupKFold(n_splits=3).split(groups))

    def test_folds_partition_rows(self):
        groups = np.repeat(np.arange(10), 3)
        all_test = []
        for train, test in GroupKFold(n_splits=5, seed=0).split(groups):
            assert len(np.intersect1d(train, test)) == 0
            all_test.append(test)
        combined = np.sort(np.concatenate(all_test))
        assert combined.tolist() == list(range(30))

    def test_groups_never_straddle(self):
        rng = np.random.default_rng(0)
        groups = rng.integers(0, 20, size=200)
        for train, test in GroupKFold(n_splits=4, seed=1).split(groups):
            assert set(groups[train]).isdisjoint(set(groups[test]))

    def test_deterministic_given_seed(self):
        groups = np.repeat(np.arange(8), 2)
        a = [t.tolist() for _, t in GroupKFold(3, seed=5).split(groups)]
        b = [t.tolist() for _, t in GroupKFold(3, seed=5).split(groups)]
        assert a == b

    def test_shuffle_changes_assignment(self):
        groups = np.repeat(np.arange(50), 2)
        a = [t.tolist() for _, t in GroupKFold(5, seed=1).split(groups)]
        b = [t.tolist() for _, t in GroupKFold(5, seed=2).split(groups)]
        assert a != b

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 30), min_size=10, max_size=200),
        st.integers(2, 5),
    )
    def test_property_partition_and_disjoint(self, groups, k):
        groups = np.asarray(groups)
        if len(np.unique(groups)) < k:
            return
        seen = np.zeros(len(groups), dtype=int)
        for train, test in GroupKFold(k, seed=0).split(groups):
            seen[test] += 1
            assert set(groups[train]).isdisjoint(set(groups[test]))
        assert (seen == 1).all()


class TestGroupedTrainTestSplit:
    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            grouped_train_test_split(np.arange(10), test_fraction=0.0)
        with pytest.raises(ValueError):
            grouped_train_test_split(np.arange(10), test_fraction=1.0)

    def test_partition_and_group_disjointness(self):
        rng = np.random.default_rng(3)
        groups = rng.integers(0, 40, size=300)
        train, test = grouped_train_test_split(groups, 0.25, seed=9)
        assert len(np.intersect1d(train, test)) == 0
        assert len(train) + len(test) == 300
        assert set(groups[train]).isdisjoint(set(groups[test]))

    def test_test_fraction_respected_in_groups(self):
        groups = np.repeat(np.arange(100), 2)
        _, test = grouped_train_test_split(groups, 0.2, seed=0)
        assert len(np.unique(groups[test])) == 20
