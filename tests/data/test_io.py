"""Round-trip tests for NPZ/CSV persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    export_dataset_csv,
    load_dataset_npz,
    load_drivetable_npz,
    load_swaplog_npz,
    save_dataset_npz,
    save_drivetable_npz,
    save_swaplog_npz,
)


class TestDatasetIO:
    def test_npz_roundtrip(self, small_trace, tmp_path):
        path = tmp_path / "records.npz"
        save_dataset_npz(small_trace.records, path)
        loaded = load_dataset_npz(path)
        assert len(loaded) == len(small_trace.records)
        assert set(loaded.column_names) == set(small_trace.records.column_names)
        for name in ("drive_id", "age_days", "uncorrectable_error"):
            assert np.array_equal(loaded[name], small_trace.records[name])

    def test_csv_export_row_cap(self, small_trace, tmp_path):
        path = tmp_path / "sample.csv"
        n = export_dataset_csv(small_trace.records, path, max_rows=25)
        assert n == 25
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 26  # header + rows
        assert lines[0].split(",")[0] == "drive_id"


class TestEventTableIO:
    def test_swaplog_roundtrip(self, small_trace, tmp_path):
        path = tmp_path / "swaps.npz"
        save_swaplog_npz(small_trace.swaps, path)
        loaded = load_swaplog_npz(path)
        assert len(loaded) == len(small_trace.swaps)
        assert np.array_equal(loaded.drive_id, small_trace.swaps.drive_id)
        # NaN-aware comparison for censored re-entries.
        assert np.allclose(
            loaded.reentry_age, small_trace.swaps.reentry_age, equal_nan=True
        )

    def test_drivetable_roundtrip(self, small_trace, tmp_path):
        path = tmp_path / "drives.npz"
        save_drivetable_npz(small_trace.drives, path)
        loaded = load_drivetable_npz(path)
        assert len(loaded) == len(small_trace.drives)
        assert np.array_equal(loaded.deploy_day, small_trace.drives.deploy_day)


def _select_drives(drives, idx):
    import numpy as np

    from repro.data import DriveTable

    idx = np.asarray(idx, dtype=np.int64)
    return DriveTable(
        drive_id=drives.drive_id[idx],
        model=drives.model[idx],
        deploy_day=drives.deploy_day[idx],
        end_of_observation_age=drives.end_of_observation_age[idx],
    )


class TestEdgeCaseRoundTrips:
    """Empty and single-row tables survive save -> load unchanged."""

    def test_empty_dataset(self, tmp_path):
        from repro.data import DriveDayDataset

        path = tmp_path / "records.npz"
        save_dataset_npz(DriveDayDataset.empty(), path)
        loaded = load_dataset_npz(path)
        assert len(loaded) == 0
        assert "drive_id" in loaded

    def test_single_row_dataset(self, small_trace, tmp_path):
        one = small_trace.records.select(np.array([0]))
        path = tmp_path / "records.npz"
        save_dataset_npz(one, path)
        loaded = load_dataset_npz(path)
        assert len(loaded) == 1
        for name in loaded.column_names:
            assert np.array_equal(
                loaded[name], one[name], equal_nan=np.issubdtype(
                    np.asarray(one[name]).dtype, np.floating
                )
            )

    def test_empty_drivetable(self, small_trace, tmp_path):
        empty = _select_drives(small_trace.drives, [])
        path = tmp_path / "drives.npz"
        save_drivetable_npz(empty, path)
        assert len(load_drivetable_npz(path)) == 0

    def test_single_row_drivetable(self, small_trace, tmp_path):
        one = _select_drives(small_trace.drives, [3])
        path = tmp_path / "drives.npz"
        save_drivetable_npz(one, path)
        loaded = load_drivetable_npz(path)
        assert len(loaded) == 1
        assert loaded.drive_id[0] == small_trace.drives.drive_id[3]

    def test_empty_swaplog(self, small_trace, tmp_path):
        empty = small_trace.swaps.select(np.zeros(len(small_trace.swaps), dtype=bool))
        path = tmp_path / "swaps.npz"
        save_swaplog_npz(empty, path)
        assert len(load_swaplog_npz(path)) == 0

    def test_single_row_swaplog(self, small_trace, tmp_path):
        if not len(small_trace.swaps):
            return
        mask = np.zeros(len(small_trace.swaps), dtype=bool)
        mask[0] = True
        one = small_trace.swaps.select(mask)
        path = tmp_path / "swaps.npz"
        save_swaplog_npz(one, path)
        loaded = load_swaplog_npz(path)
        assert len(loaded) == 1
        assert loaded.drive_id[0] == small_trace.swaps.drive_id[0]


class TestIntegrityErrors:
    def test_truncated_records_detected(self, small_trace, tmp_path):
        from repro.data import TraceIntegrityError, load_dataset_checked
        from repro.reliability import truncate_file

        path = tmp_path / "records.npz"
        save_dataset_npz(small_trace.records, path)
        truncate_file(path, keep_fraction=0.5)
        with pytest.raises(TraceIntegrityError, match="corrupt or truncated"):
            load_dataset_checked(path, policy="repair")

    def test_missing_file_actionable(self, tmp_path):
        from repro.data import TraceIntegrityError

        with pytest.raises(TraceIntegrityError, match="does not exist"):
            load_dataset_npz(tmp_path / "absent.npz")

    def test_wrong_payload_detected(self, small_trace, tmp_path):
        from repro.data import TraceIntegrityError

        path = tmp_path / "swaps.npz"
        save_dataset_npz(small_trace.records, path)  # wrong table on purpose
        with pytest.raises(TraceIntegrityError, match="missing column"):
            load_swaplog_npz(path)

    def test_atomic_save_leaves_no_tmp_files(self, small_trace, tmp_path):
        save_dataset_npz(small_trace.records, tmp_path / "records.npz")
        save_drivetable_npz(small_trace.drives, tmp_path / "drives.npz")
        save_swaplog_npz(small_trace.swaps, tmp_path / "swaps.npz")
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["drives.npz", "records.npz", "swaps.npz"]


class TestStreamingIterators:
    """`iter_drive_days` / `iter_drive_day_chunks` vs the eager loader."""

    def test_iter_drive_days_matches_eager_loader(self, small_trace, tmp_path):
        from repro.data import iter_drive_days

        path = tmp_path / "records.npz"
        save_dataset_npz(small_trace.records, path)
        eager = load_dataset_npz(path)
        names = eager.column_names
        count = 0
        for i, record in enumerate(iter_drive_days(path)):
            assert set(record) == set(names)
            for name in names:
                eager_value = eager[name][i]
                assert record[name] == eager_value
                assert record[name].dtype == np.asarray(eager[name]).dtype
            count += 1
        assert count == len(eager)

    def test_iter_drive_days_from_dataset(self, small_trace):
        from repro.data import iter_drive_days

        ds = small_trace.records
        ids = [rec["drive_id"] for rec in iter_drive_days(ds)]
        assert np.array_equal(np.array(ids), np.asarray(ds["drive_id"]))

    def test_chunks_from_path_match_dataset(self, small_trace, tmp_path):
        from repro.data import iter_drive_day_chunks

        path = tmp_path / "records.npz"
        save_dataset_npz(small_trace.records, path)
        for name in small_trace.records.column_names:
            streamed = np.concatenate(
                [c[name] for c in iter_drive_day_chunks(path, chunk_rows=97)]
            )
            column = np.asarray(small_trace.records[name])
            assert streamed.dtype == column.dtype
            assert np.array_equal(streamed, column, equal_nan=np.issubdtype(
                column.dtype, np.floating
            ))

    def test_chunk_boundaries(self, small_trace):
        from repro.data import iter_drive_day_chunks

        n = len(small_trace.records)
        chunk_rows = 100
        sizes = [
            len(c["drive_id"])
            for c in iter_drive_day_chunks(small_trace.records, chunk_rows=chunk_rows)
        ]
        assert sum(sizes) == n
        assert all(s == chunk_rows for s in sizes[:-1])
        assert 0 < sizes[-1] <= chunk_rows

    def test_bad_chunk_rows_rejected(self, small_trace):
        from repro.data import iter_drive_day_chunks

        with pytest.raises(ValueError, match="chunk_rows"):
            next(iter_drive_day_chunks(small_trace.records, chunk_rows=0))

    def test_missing_file_actionable(self, tmp_path):
        from repro.data import TraceIntegrityError, iter_drive_day_chunks

        with pytest.raises(TraceIntegrityError, match="does not exist"):
            next(iter_drive_day_chunks(tmp_path / "absent.npz"))

    def test_truncated_file_detected(self, small_trace, tmp_path):
        from repro.data import TraceIntegrityError, iter_drive_day_chunks
        from repro.reliability import truncate_file

        path = tmp_path / "records.npz"
        save_dataset_npz(small_trace.records, path)
        truncate_file(path, keep_fraction=0.3)
        with pytest.raises(TraceIntegrityError):
            for _ in iter_drive_day_chunks(path, chunk_rows=64):
                pass
