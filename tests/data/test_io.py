"""Round-trip tests for NPZ/CSV persistence."""

from __future__ import annotations

import numpy as np

from repro.data import (
    export_dataset_csv,
    load_dataset_npz,
    load_drivetable_npz,
    load_swaplog_npz,
    save_dataset_npz,
    save_drivetable_npz,
    save_swaplog_npz,
)


class TestDatasetIO:
    def test_npz_roundtrip(self, small_trace, tmp_path):
        path = tmp_path / "records.npz"
        save_dataset_npz(small_trace.records, path)
        loaded = load_dataset_npz(path)
        assert len(loaded) == len(small_trace.records)
        assert set(loaded.column_names) == set(small_trace.records.column_names)
        for name in ("drive_id", "age_days", "uncorrectable_error"):
            assert np.array_equal(loaded[name], small_trace.records[name])

    def test_csv_export_row_cap(self, small_trace, tmp_path):
        path = tmp_path / "sample.csv"
        n = export_dataset_csv(small_trace.records, path, max_rows=25)
        assert n == 25
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 26  # header + rows
        assert lines[0].split(",")[0] == "drive_id"


class TestEventTableIO:
    def test_swaplog_roundtrip(self, small_trace, tmp_path):
        path = tmp_path / "swaps.npz"
        save_swaplog_npz(small_trace.swaps, path)
        loaded = load_swaplog_npz(path)
        assert len(loaded) == len(small_trace.swaps)
        assert np.array_equal(loaded.drive_id, small_trace.swaps.drive_id)
        # NaN-aware comparison for censored re-entries.
        assert np.allclose(
            loaded.reentry_age, small_trace.swaps.reentry_age, equal_nan=True
        )

    def test_drivetable_roundtrip(self, small_trace, tmp_path):
        path = tmp_path / "drives.npz"
        save_drivetable_npz(small_trace.drives, path)
        loaded = load_drivetable_npz(path)
        assert len(loaded) == len(small_trace.drives)
        assert np.array_equal(loaded.deploy_day, small_trace.drives.deploy_day)
