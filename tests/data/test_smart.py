"""Tests for the SMART export adapter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SMART_COLUMNS, export_smart_csv, to_smart_table


class TestToSmartTable:
    def test_all_columns_present_and_aligned(self, small_trace):
        table = to_smart_table(small_trace.records)
        assert set(table) == set(SMART_COLUMNS)
        n = len(small_trace.records)
        for name, col in table.items():
            assert col.shape[0] == n, name

    def test_power_on_hours(self, small_trace):
        table = to_smart_table(small_trace.records)
        assert np.array_equal(
            table["smart_9_raw"], small_trace.records["age_days"] * 24
        )

    def test_reallocated_sectors_monotone_per_drive(self, small_trace):
        table = to_smart_table(small_trace.records)
        ids = small_trace.records["drive_id"]
        s5 = table["smart_5_raw"]
        same = ids[1:] == ids[:-1]
        assert (s5[1:][same] >= s5[:-1][same]).all()

    def test_cumulative_ue_matches_groupwise_sum(self, small_trace):
        table = to_smart_table(small_trace.records)
        expected = small_trace.records.grouped_cumsum("uncorrectable_error")
        assert np.array_equal(table["smart_187_raw"], expected.astype(np.int64))

    def test_failure_labels_passthrough(self, small_trace):
        from repro.core import lookahead_labels

        y = lookahead_labels(small_trace.records, small_trace.swaps, 1)
        table = to_smart_table(small_trace.records, failure_labels=y)
        assert table["failure"].sum() == y.sum()

    def test_misaligned_labels_rejected(self, small_trace):
        with pytest.raises(ValueError):
            to_smart_table(small_trace.records, failure_labels=np.zeros(3))


class TestExportCsv:
    def test_roundtrip_header_and_rows(self, small_trace, tmp_path):
        path = tmp_path / "smart.csv"
        n = export_smart_csv(small_trace.records, path, max_rows=50)
        assert n == 50
        lines = path.read_text().strip().splitlines()
        assert lines[0] == ",".join(SMART_COLUMNS)
        assert len(lines) == 51
