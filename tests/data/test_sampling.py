"""Tests for majority-class downsampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import class_balance, downsample_majority


class TestDownsample:
    def test_one_to_one(self, rng):
        y = np.zeros(1000, dtype=int)
        y[:30] = 1
        idx = downsample_majority(y, ratio=1.0, rng=rng)
        sub = y[idx]
        assert sub.sum() == 30
        assert len(sub) == 60

    def test_keeps_every_positive(self, rng):
        y = np.array([0, 1, 0, 0, 1, 0, 0, 0])
        idx = downsample_majority(y, ratio=1.0, rng=rng)
        assert set(np.flatnonzero(y == 1)).issubset(set(idx.tolist()))

    def test_ratio_two(self, rng):
        y = np.zeros(500, dtype=int)
        y[:20] = 1
        idx = downsample_majority(y, ratio=2.0, rng=rng)
        assert (y[idx] == 0).sum() == 40

    def test_insufficient_negatives_keeps_all(self, rng):
        y = np.array([1, 1, 1, 0])
        idx = downsample_majority(y, ratio=5.0, rng=rng)
        assert len(idx) == 4

    def test_no_positives_raises(self, rng):
        with pytest.raises(ValueError, match="positive"):
            downsample_majority(np.zeros(10), rng=rng)

    def test_bad_ratio_raises(self, rng):
        with pytest.raises(ValueError):
            downsample_majority(np.array([0, 1]), ratio=0.0, rng=rng)

    def test_indices_sorted_and_unique(self, rng):
        y = np.zeros(200, dtype=int)
        y[::17] = 1
        idx = downsample_majority(y, ratio=1.5, rng=rng)
        assert (np.diff(idx) > 0).all()

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 50), st.integers(1, 500), st.floats(0.25, 4.0))
    def test_property_counts(self, n_pos, n_neg, ratio):
        y = np.concatenate((np.ones(n_pos, dtype=int), np.zeros(n_neg, dtype=int)))
        idx = downsample_majority(y, ratio=ratio, rng=np.random.default_rng(0))
        sub = y[idx]
        assert sub.sum() == n_pos
        assert (sub == 0).sum() == min(n_neg, int(round(ratio * n_pos)))


class TestClassBalance:
    def test_counts(self):
        n_pos, n_neg, ratio = class_balance(np.array([0, 0, 0, 1]))
        assert (n_pos, n_neg) == (1, 3)
        assert ratio == 3.0

    def test_no_positives_gives_inf(self):
        _, _, ratio = class_balance(np.zeros(5))
        assert ratio == float("inf")
