"""Columnar store: round-trips, dtype narrowing, zero-copy streaming.

The store's contract (DESIGN.md §16): whatever storage dtype a column is
persisted at, loading widens it back to the logical schema bit-for-bit,
so a ``.cst`` file is interchangeable with the ``.npz`` it was packed
from.  Streaming reads are read-only memmap views — no decompression, no
copies.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    TraceIntegrityError,
    is_store_file,
    iter_drive_day_chunks,
    load_dataset_npz,
    load_dataset_store,
    open_store_columns,
    save_dataset_npz,
    save_dataset_store,
)
from repro.data.fields import WORKLOAD_FIELDS
from repro.simulator import FleetConfig, simulate_fleet


@pytest.fixture()
def store_pair(small_trace, tmp_path):
    """(npz_path, cst_path) holding the same records."""
    npz = tmp_path / "records.npz"
    cst = tmp_path / "records.cst"
    save_dataset_npz(small_trace.records, npz)
    save_dataset_store(small_trace.records, cst)
    return npz, cst


class TestRoundTrip:
    def test_store_matches_npz_loader_bit_for_bit(self, store_pair):
        npz, cst = store_pair
        a = load_dataset_npz(npz)
        b = load_dataset_store(cst)
        assert set(a.column_names) == set(b.column_names)
        for name in a.column_names:
            assert b[name].dtype == a[name].dtype, name
            assert np.array_equal(b[name], a[name]), name

    def test_load_dataset_npz_sniffs_store_files(self, store_pair):
        # The NPZ loaders are store-aware: a .cst path loads transparently.
        npz, cst = store_pair
        a = load_dataset_npz(npz)
        b = load_dataset_npz(cst)
        for name in a.column_names:
            assert b[name].dtype == a[name].dtype
            assert np.array_equal(b[name], a[name])

    def test_is_store_file(self, store_pair):
        npz, cst = store_pair
        assert is_store_file(cst)
        assert not is_store_file(npz)
        assert not is_store_file(cst.parent / "missing.cst")

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_round_trip_property(self, seed, tmp_path_factory):
        # Property: for any simulated fleet, pack -> load is the identity
        # on every column (values and dtypes), narrowing notwithstanding.
        trace = simulate_fleet(
            FleetConfig(
                n_drives_per_model=2,
                horizon_days=60,
                deploy_spread_days=30,
                seed=seed,
            )
        )
        path = tmp_path_factory.mktemp("store") / "records.cst"
        save_dataset_store(trace.records, path)
        loaded = load_dataset_store(path)
        for name in trace.records.column_names:
            src = np.asarray(trace.records[name])
            assert loaded[name].dtype == src.dtype, name
            assert np.array_equal(loaded[name], src), name


class TestNarrowing:
    def test_declared_candidates_applied(self, store_pair):
        _, cst = store_pair
        raw = open_store_columns(cst, widen=False)
        for name in WORKLOAD_FIELDS:
            assert raw[name].dtype == np.uint32, name
        assert raw["uncorrectable_error"].dtype == np.int32
        # Columns without a candidate stay at their logical dtype.
        assert raw["pe_cycles"].dtype == np.float64
        assert raw["drive_id"].dtype == np.int32

    def test_fractional_value_falls_back_wide(self, small_trace, tmp_path):
        cols = {k: np.asarray(v).copy() for k, v in small_trace.records.items()}
        cols["read_count"][0] += 0.5  # not representable as uint32
        path = tmp_path / "frac.cst"
        save_dataset_store(cols, path)
        raw = open_store_columns(path, widen=False)
        assert raw["read_count"].dtype == np.float64
        assert np.array_equal(raw["read_count"], cols["read_count"])

    def test_overflow_falls_back_wide(self, small_trace, tmp_path):
        cols = {k: np.asarray(v).copy() for k, v in small_trace.records.items()}
        cols["write_count"][0] = float(2**40)  # exceeds uint32
        path = tmp_path / "wide.cst"
        save_dataset_store(cols, path)
        raw = open_store_columns(path, widen=False)
        assert raw["write_count"].dtype == np.float64
        assert np.array_equal(raw["write_count"], cols["write_count"])

    def test_widened_columns_are_read_only(self, store_pair):
        _, cst = store_pair
        cols = open_store_columns(cst, widen=True)
        for name, arr in cols.items():
            assert not arr.flags.writeable, name


class TestChunkStreaming:
    def test_store_chunks_match_npz_chunks(self, store_pair):
        npz, cst = store_pair
        eager = load_dataset_npz(npz)
        for name in eager.column_names:
            streamed = np.concatenate(
                [c[name] for c in iter_drive_day_chunks(cst, chunk_rows=97)]
            ).astype(np.asarray(eager[name]).dtype)
            assert np.array_equal(streamed, eager[name]), name

    def test_store_chunks_are_zero_copy_views(self, store_pair):
        _, cst = store_pair
        for chunk in iter_drive_day_chunks(cst, chunk_rows=64):
            for name, arr in chunk.items():
                assert not arr.flags.owndata, name
                assert not arr.flags.writeable, name

    def test_in_memory_chunks_are_read_only(self, small_trace):
        # Regression: chunk views over an in-memory dataset must not let a
        # consumer scribble on the source columns.
        for chunk in iter_drive_day_chunks(small_trace.records, chunk_rows=64):
            for name, arr in chunk.items():
                assert not arr.flags.writeable, name
            with pytest.raises(ValueError):
                chunk["read_count"][0] = 0.0
            break
        # The source dataset stays writable for its owner.
        assert np.asarray(small_trace.records["read_count"]).flags.writeable


class TestIntegrity:
    def test_truncated_store_rejected(self, store_pair):
        _, cst = store_pair
        data = cst.read_bytes()
        cst.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceIntegrityError, match="truncated"):
            open_store_columns(cst)

    def test_corrupt_header_rejected(self, store_pair):
        _, cst = store_pair
        data = bytearray(cst.read_bytes())
        data[16] = ord("!")  # first header byte: breaks the JSON parse
        cst.write_bytes(bytes(data))
        with pytest.raises(TraceIntegrityError, match="corrupt header"):
            open_store_columns(cst)

    def test_bad_magic_rejected(self, store_pair):
        _, cst = store_pair
        data = bytearray(cst.read_bytes())
        data[:8] = b"NOTASTOR"
        cst.write_bytes(bytes(data))
        with pytest.raises(TraceIntegrityError, match="bad magic"):
            open_store_columns(cst)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TraceIntegrityError, match="does not exist"):
            open_store_columns(tmp_path / "nope.cst")
