"""Tests for failure labelling and operational masking."""

from __future__ import annotations

import numpy as np

from repro.core import label_dataset, lookahead_labels, operational_mask
from repro.data import DriveDayDataset, SwapLog


def _records(ids, ages):
    return DriveDayDataset(
        {
            "drive_id": np.asarray(ids, dtype=np.int32),
            "age_days": np.asarray(ages, dtype=np.int32),
        }
    )


def _swaps(ids, fail, swap):
    n = len(ids)
    return SwapLog(
        drive_id=np.asarray(ids),
        model=np.zeros(n),
        failure_age=np.asarray(fail, dtype=float),
        swap_age=np.asarray(swap, dtype=float),
        reentry_age=np.full(n, np.nan),
        operational_start_age=np.zeros(n),
    )


class TestLookaheadLabels:
    def test_n1_labels_failure_day_only(self):
        rec = _records([1] * 6, [0, 1, 2, 3, 4, 5])
        sw = _swaps([1], [3], [5])
        y = lookahead_labels(rec, sw, 1)
        assert y.tolist() == [0, 0, 0, 1, 0, 0]

    def test_n3_window(self):
        rec = _records([1] * 6, [0, 1, 2, 3, 4, 5])
        sw = _swaps([1], [3], [5])
        y = lookahead_labels(rec, sw, 3)
        assert y.tolist() == [0, 1, 1, 1, 0, 0]

    def test_missing_days_skipped_not_shifted(self):
        # Ages 0, 2, 5 recorded; failure at 4 with N=2 labels ages 3..4.
        rec = _records([1] * 3, [0, 2, 5])
        sw = _swaps([1], [4], [6])
        y = lookahead_labels(rec, sw, 2)
        assert y.tolist() == [0, 0, 0]

    def test_multiple_failures_same_drive(self):
        rec = _records([1] * 10, list(range(10)))
        sw = _swaps([1, 1], [2, 8], [3, 9])
        y = lookahead_labels(rec, sw, 2)
        assert y.tolist() == [0, 1, 1, 0, 0, 0, 0, 1, 1, 0]

    def test_swap_for_unknown_drive_ignored(self):
        rec = _records([1], [0])
        sw = _swaps([99], [5], [6])
        assert lookahead_labels(rec, sw, 3).sum() == 0

    def test_invalid_n(self):
        rec = _records([1], [0])
        sw = _swaps([1], [0], [1])
        import pytest

        with pytest.raises(ValueError):
            lookahead_labels(rec, sw, 0)


class TestOperationalMask:
    def test_limbo_rows_excluded(self):
        rec = _records([1] * 6, [0, 1, 2, 3, 4, 5])
        sw = _swaps([1], [2], [4])
        keep = operational_mask(rec, sw)
        assert keep.tolist() == [True, True, True, False, False, True]

    def test_failure_day_kept(self):
        rec = _records([1] * 3, [0, 1, 2])
        sw = _swaps([1], [1], [2])
        keep = operational_mask(rec, sw)
        assert keep[1]  # failure day stays
        assert not keep[2]  # swap-day limbo row dropped

    def test_other_drives_untouched(self):
        rec = _records([1, 2, 2], [0, 0, 1])
        sw = _swaps([1], [0], [1])
        keep = operational_mask(rec, sw)
        assert keep.tolist() == [True, True, True]


class TestLabelDataset:
    def test_joint_output(self):
        rec = _records([1] * 5, [0, 1, 2, 3, 4])
        sw = _swaps([1], [2], [4])
        y, keep = label_dataset(rec, sw, 2)
        assert y.tolist() == [0, 1, 1, 0, 0]
        assert keep.tolist() == [True, True, True, False, False]

    def test_on_simulated_trace(self, small_trace):
        y, keep = label_dataset(small_trace.records, small_trace.swaps, 3)
        # Every failure with a recorded day inside its window produces
        # at least some positives (unless the window was never logged).
        assert y.sum() <= 3 * len(small_trace.swaps)
        # Masked rows are exactly the zero-activity limbo rows.
        reads = small_trace.records["read_count"]
        assert (reads[~keep] == 0).all()
