"""Tests for the extended (post-2019) model zoo."""

from __future__ import annotations

from repro.core import default_model_zoo, evaluate_model, extended_model_zoo
from repro.core.pipeline import build_prediction_dataset


class TestExtendedZoo:
    def test_superset_of_paper_zoo(self):
        base = [s.name for s in default_model_zoo(0)]
        ext = [s.name for s in extended_model_zoo(0)]
        assert ext[: len(base)] == base
        assert "Gradient Boosting" in ext
        assert "Naive Bayes" in ext

    def test_new_models_run_through_protocol(self, medium_trace):
        ds = build_prediction_dataset(medium_trace, lookahead=1)
        by_name = {s.name: s for s in extended_model_zoo(0)}
        gb = evaluate_model(ds, by_name["Gradient Boosting"], n_splits=3, seed=0)
        nb = evaluate_model(ds, by_name["Naive Bayes"], n_splits=3, seed=0)
        assert gb.mean_auc > 0.7  # a serious model
        assert 0.5 < nb.mean_auc <= 1.0  # a baseline, but above chance
