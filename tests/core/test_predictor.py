"""Tests for the high-level FailurePredictor API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FailurePredictor, build_prediction_dataset
from repro.core.pipeline import ModelSpec
from repro.ml import LogisticRegression


class TestFit:
    def test_fit_and_score_trace(self, medium_trace):
        pred = FailurePredictor(lookahead=1, seed=0).fit(medium_trace)
        probs = pred.predict_proba_records(medium_trace.records)
        assert probs.shape == (len(medium_trace.records),)
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_invalid_lookahead(self):
        with pytest.raises(ValueError):
            FailurePredictor(lookahead=0)

    def test_unfitted_raises(self, medium_trace):
        with pytest.raises(RuntimeError):
            FailurePredictor().predict_proba_records(medium_trace.records)

    def test_scaled_spec_rejected(self, medium_trace):
        spec = ModelSpec("LR", lambda: LogisticRegression(), scale=True, log1p=True)
        with pytest.raises(ValueError, match="raw-feature"):
            FailurePredictor(model_spec=spec).fit(medium_trace)

    def test_age_partitioned_fit(self, medium_trace):
        pred = FailurePredictor(lookahead=3, age_partitioned=True, seed=0).fit(
            medium_trace
        )
        probs = pred.predict_proba_records(medium_trace.records)
        assert np.isfinite(probs).all()
        # Both partitions produce importances.
        young = pred.feature_importances_for("young")
        old = pred.feature_importances_for("old")
        assert len(young) == len(old) > 0

    def test_unknown_partition(self, medium_trace):
        pred = FailurePredictor(lookahead=1, seed=0).fit(medium_trace)
        with pytest.raises(KeyError):
            pred.feature_importances_for("young")


class TestScores:
    def test_failure_days_score_above_background(self, medium_trace):
        """In-sample sanity: positives should get much higher scores."""
        pred = FailurePredictor(lookahead=1, seed=0).fit(medium_trace)
        ds = build_prediction_dataset(medium_trace, lookahead=1)
        probs = pred.predict_proba_dataset(ds)
        assert probs[ds.y == 1].mean() > probs[ds.y == 0].mean() + 0.3

    def test_risk_report_one_row_per_drive(self, medium_trace):
        pred = FailurePredictor(lookahead=1, seed=0).fit(medium_trace)
        report = pred.risk_report(medium_trace.records)
        assert len(report.drive_id) == medium_trace.records.n_drives()
        top = report.top(5)
        assert len(top.drive_id) == 5
        assert (np.diff(top.probability) <= 0).all()

    def test_flagged_threshold(self, medium_trace):
        pred = FailurePredictor(lookahead=1, seed=0).fit(medium_trace)
        report = pred.risk_report(medium_trace.records)
        strict = report.flagged(0.95)
        loose = report.flagged(0.05)
        assert len(strict) <= len(loose)

    def test_feature_importances_sorted(self, medium_trace):
        pred = FailurePredictor(lookahead=1, seed=0).fit(medium_trace)
        imps = pred.feature_importances()
        vals = [v for _, v in imps]
        assert vals == sorted(vals, reverse=True)
        assert abs(sum(vals) - 1.0) < 1e-6


class TestCrossValidate:
    def test_cv_returns_sane_auc(self, medium_trace):
        pred = FailurePredictor(lookahead=1, seed=0)
        res = pred.cross_validate(medium_trace, n_splits=4)
        assert 0.6 < res.mean_auc <= 1.0
