"""Tests for feature extraction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_features, feature_names
from repro.data import DriveDayDataset


def _mini_records():
    return DriveDayDataset(
        {
            "drive_id": np.array([1, 1, 1, 2, 2], dtype=np.int32),
            "model": np.zeros(5, dtype=np.int8),
            "age_days": np.array([0, 1, 2, 0, 1], dtype=np.int32),
            "calendar_day": np.array([10, 11, 12, 0, 1], dtype=np.int32),
            "read_count": np.array([100.0, 200.0, 0.0, 50.0, 60.0]),
            "write_count": np.array([10.0, 20.0, 0.0, 5.0, 6.0]),
            "erase_count": np.array([1.0, 2.0, 0.0, 1.0, 1.0]),
            "pe_cycles": np.array([0.1, 0.2, 0.2, 0.05, 0.1]),
            "status_dead": np.zeros(5, dtype=np.int8),
            "status_read_only": np.array([0, 0, 1, 0, 0], dtype=np.int8),
            "factory_bad_blocks": np.array([3, 3, 3, 7, 7], dtype=np.int32),
            "grown_bad_blocks": np.array([0, 2, 2, 0, 0], dtype=np.int32),
            "correctable_error": np.array([5, 0, 0, 2, 3], dtype=np.int64),
            "erase_error": np.zeros(5, dtype=np.int64),
            "final_read_error": np.array([0, 1, 0, 0, 0], dtype=np.int64),
            "final_write_error": np.zeros(5, dtype=np.int64),
            "meta_error": np.zeros(5, dtype=np.int64),
            "read_error": np.zeros(5, dtype=np.int64),
            "response_error": np.zeros(5, dtype=np.int64),
            "timeout_error": np.zeros(5, dtype=np.int64),
            "uncorrectable_error": np.array([0, 2, 0, 0, 0], dtype=np.int64),
            "write_error": np.zeros(5, dtype=np.int64),
        }
    )


class TestFeatureNames:
    def test_daily_and_cumulative_for_every_source(self):
        names = feature_names()
        assert "read_count" in names and "cum_read_count" in names
        assert "uncorrectable_error" in names and "cum_uncorrectable_error" in names
        for extra in (
            "drive_age",
            "pe_cycles",
            "cum_bad_block_count",
            "status_read_only",
            "status_dead",
            "corr_err_rate",
        ):
            assert extra in names

    def test_no_duplicates(self):
        names = feature_names()
        assert len(names) == len(set(names))


class TestBuildFeatures:
    def test_shape_and_alignment(self):
        frame = build_features(_mini_records())
        assert frame.X.shape == (5, len(feature_names()))
        assert frame.drive_id.tolist() == [1, 1, 1, 2, 2]
        assert frame.age_days.tolist() == [0, 1, 2, 0, 1]

    def test_cumulative_restarts_per_drive(self):
        frame = build_features(_mini_records())
        cum_reads = frame.column("cum_read_count")
        assert cum_reads.tolist() == [100.0, 300.0, 300.0, 50.0, 110.0]

    def test_bad_block_combined(self):
        frame = build_features(_mini_records())
        bb = frame.column("cum_bad_block_count")
        assert bb.tolist() == [3.0, 5.0, 5.0, 7.0, 7.0]

    def test_corr_err_rate(self):
        frame = build_features(_mini_records())
        rate = frame.column("corr_err_rate")
        assert rate[0] == pytest.approx(5 / 101)
        assert rate[2] == 0.0

    def test_drive_age_passthrough(self):
        frame = build_features(_mini_records())
        assert frame.column("drive_age").tolist() == [0, 1, 2, 0, 1]

    def test_select_rows(self):
        frame = build_features(_mini_records())
        sub = frame.select_rows(np.array([0, 3]))
        assert len(sub) == 2
        assert sub.drive_id.tolist() == [1, 2]

    def test_column_unknown_raises(self):
        frame = build_features(_mini_records())
        with pytest.raises(ValueError):
            frame.column("nope")

    def test_on_simulated_trace(self, small_trace):
        frame = build_features(small_trace.records)
        assert len(frame) == len(small_trace.records)
        assert np.isfinite(frame.X).all()
        # Cumulative counters never decrease within a drive.
        cum = frame.column("cum_write_count")
        ids = frame.drive_id
        same = ids[1:] == ids[:-1]
        assert (cum[1:][same] >= cum[:-1][same]).all()


class TestFusedKernelProperty:
    """The fused batched kernel is the per-row ``assemble_features`` fold.

    DESIGN.md §16: counters are integer-valued floats, so every float64
    running sum is exact and the fused cumsum-with-baseline-correction
    produces bit-identical results to folding one row at a time — the
    comparison is ``==``, not ``allclose``.
    """

    @staticmethod
    def _random_records(seed: int) -> DriveDayDataset:
        from repro.data.fields import ERROR_TYPES

        rng = np.random.default_rng(seed)
        n_drives = int(rng.integers(1, 6))
        lengths = rng.integers(1, 20, size=n_drives)
        n = int(lengths.sum())
        drive_id = np.repeat(np.arange(n_drives, dtype=np.int32), lengths)
        age = np.concatenate([np.arange(m, dtype=np.int32) for m in lengths])
        cols = {
            "drive_id": drive_id,
            "model": rng.integers(0, 3, size=n).astype(np.int8),
            "age_days": age,
            "calendar_day": age + 100,
            # Integer-valued float64 counters, including values far above
            # uint32 range: sums stay below 2**53 so float64 is exact.
            "read_count": rng.integers(0, 2**40, size=n).astype(np.float64),
            "write_count": rng.integers(0, 2**40, size=n).astype(np.float64),
            "erase_count": rng.integers(0, 10**6, size=n).astype(np.float64),
            "pe_cycles": rng.random(n),  # passthrough, fractional is fine
            "status_dead": rng.integers(0, 2, size=n).astype(np.int8),
            "status_read_only": rng.integers(0, 2, size=n).astype(np.int8),
            "factory_bad_blocks": rng.integers(0, 50, size=n).astype(np.int32),
            "grown_bad_blocks": rng.integers(0, 50, size=n).astype(np.int32),
        }
        for err in ERROR_TYPES:
            cols[err] = rng.integers(0, 100, size=n).astype(np.int64)
        return DriveDayDataset(cols)

    @staticmethod
    def _per_row_fold(ds: DriveDayDataset) -> np.ndarray:
        from repro.core.features import assemble_features, daily_matrix

        daily = daily_matrix(ds)
        ids = np.asarray(ds["drive_id"])
        bad = np.asarray(ds["factory_bad_blocks"]).astype(np.float64) + np.asarray(
            ds["grown_bad_blocks"]
        ).astype(np.float64)
        age = np.asarray(ds["age_days"], dtype=np.float64)
        pe = np.asarray(ds["pe_cycles"], dtype=np.float64)
        ro = np.asarray(ds["status_read_only"], dtype=np.float64)
        dead = np.asarray(ds["status_dead"], dtype=np.float64)
        carried: dict[int, np.ndarray] = {}
        rows = []
        for i in range(len(ds)):
            d = daily[i : i + 1]
            c = carried.get(int(ids[i]), np.zeros((1, d.shape[1]))) + d
            carried[int(ids[i])] = c
            rows.append(
                assemble_features(
                    d,
                    c,
                    age[i : i + 1],
                    pe[i : i + 1],
                    bad[i : i + 1],
                    ro[i : i + 1],
                    dead[i : i + 1],
                )
            )
        return np.vstack(rows)

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_fused_batch_equals_per_row_fold(self, seed):
        ds = self._random_records(seed)
        assert np.array_equal(build_features(ds).X, self._per_row_fold(ds))
