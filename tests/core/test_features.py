"""Tests for feature extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_features, feature_names
from repro.data import DriveDayDataset


def _mini_records():
    return DriveDayDataset(
        {
            "drive_id": np.array([1, 1, 1, 2, 2], dtype=np.int32),
            "model": np.zeros(5, dtype=np.int8),
            "age_days": np.array([0, 1, 2, 0, 1], dtype=np.int32),
            "calendar_day": np.array([10, 11, 12, 0, 1], dtype=np.int32),
            "read_count": np.array([100.0, 200.0, 0.0, 50.0, 60.0]),
            "write_count": np.array([10.0, 20.0, 0.0, 5.0, 6.0]),
            "erase_count": np.array([1.0, 2.0, 0.0, 1.0, 1.0]),
            "pe_cycles": np.array([0.1, 0.2, 0.2, 0.05, 0.1]),
            "status_dead": np.zeros(5, dtype=np.int8),
            "status_read_only": np.array([0, 0, 1, 0, 0], dtype=np.int8),
            "factory_bad_blocks": np.array([3, 3, 3, 7, 7], dtype=np.int32),
            "grown_bad_blocks": np.array([0, 2, 2, 0, 0], dtype=np.int32),
            "correctable_error": np.array([5, 0, 0, 2, 3], dtype=np.int64),
            "erase_error": np.zeros(5, dtype=np.int64),
            "final_read_error": np.array([0, 1, 0, 0, 0], dtype=np.int64),
            "final_write_error": np.zeros(5, dtype=np.int64),
            "meta_error": np.zeros(5, dtype=np.int64),
            "read_error": np.zeros(5, dtype=np.int64),
            "response_error": np.zeros(5, dtype=np.int64),
            "timeout_error": np.zeros(5, dtype=np.int64),
            "uncorrectable_error": np.array([0, 2, 0, 0, 0], dtype=np.int64),
            "write_error": np.zeros(5, dtype=np.int64),
        }
    )


class TestFeatureNames:
    def test_daily_and_cumulative_for_every_source(self):
        names = feature_names()
        assert "read_count" in names and "cum_read_count" in names
        assert "uncorrectable_error" in names and "cum_uncorrectable_error" in names
        for extra in (
            "drive_age",
            "pe_cycles",
            "cum_bad_block_count",
            "status_read_only",
            "status_dead",
            "corr_err_rate",
        ):
            assert extra in names

    def test_no_duplicates(self):
        names = feature_names()
        assert len(names) == len(set(names))


class TestBuildFeatures:
    def test_shape_and_alignment(self):
        frame = build_features(_mini_records())
        assert frame.X.shape == (5, len(feature_names()))
        assert frame.drive_id.tolist() == [1, 1, 1, 2, 2]
        assert frame.age_days.tolist() == [0, 1, 2, 0, 1]

    def test_cumulative_restarts_per_drive(self):
        frame = build_features(_mini_records())
        cum_reads = frame.column("cum_read_count")
        assert cum_reads.tolist() == [100.0, 300.0, 300.0, 50.0, 110.0]

    def test_bad_block_combined(self):
        frame = build_features(_mini_records())
        bb = frame.column("cum_bad_block_count")
        assert bb.tolist() == [3.0, 5.0, 5.0, 7.0, 7.0]

    def test_corr_err_rate(self):
        frame = build_features(_mini_records())
        rate = frame.column("corr_err_rate")
        assert rate[0] == pytest.approx(5 / 101)
        assert rate[2] == 0.0

    def test_drive_age_passthrough(self):
        frame = build_features(_mini_records())
        assert frame.column("drive_age").tolist() == [0, 1, 2, 0, 1]

    def test_select_rows(self):
        frame = build_features(_mini_records())
        sub = frame.select_rows(np.array([0, 3]))
        assert len(sub) == 2
        assert sub.drive_id.tolist() == [1, 2]

    def test_column_unknown_raises(self):
        frame = build_features(_mini_records())
        with pytest.raises(ValueError):
            frame.column("nope")

    def test_on_simulated_trace(self, small_trace):
        frame = build_features(small_trace.records)
        assert len(frame) == len(small_trace.records)
        assert np.isfinite(frame.X).all()
        # Cumulative counters never decrease within a drive.
        cum = frame.column("cum_write_count")
        ids = frame.drive_id
        same = ids[1:] == ids[:-1]
        assert (cum[1:][same] >= cum[:-1][same]).all()
