"""Tests for cost-aware threshold selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import expected_cost_curve, select_threshold


def _scores(rng, n=5000, prevalence=0.02, separation=2.0):
    y = (rng.random(n) < prevalence).astype(int)
    s = rng.normal(size=n) + separation * y
    # map to (0, 1)
    s = 1 / (1 + np.exp(-s))
    return y, s


class TestExpectedCostCurve:
    def test_cost_positive_and_finite(self, rng):
        y, s = _scores(rng)
        thr, costs = expected_cost_curve(y, s, miss_cost=100.0, false_alarm_cost=1.0)
        assert np.isfinite(costs).all()
        assert (costs >= 0).all()
        assert len(thr) == len(costs)

    def test_extreme_thresholds(self, rng):
        y, s = _scores(rng)
        _, costs = expected_cost_curve(y, s, 100.0, 1.0)
        pi = y.mean()
        # Flag-nothing end: cost = miss_cost * prevalence.
        assert costs[0] == pytest.approx(100.0 * pi)
        # Flag-everything end: cost = false_alarm_cost * (1 - prevalence).
        assert costs[-1] == pytest.approx(1.0 * (1 - pi))

    def test_invalid_costs(self, rng):
        y, s = _scores(rng)
        with pytest.raises(ValueError):
            expected_cost_curve(y, s, 0.0, 1.0)


class TestSelectThreshold:
    def test_beats_extremes(self, rng):
        y, s = _scores(rng, separation=3.0)
        choice = select_threshold(y, s, miss_cost=50.0, false_alarm_cost=1.0)
        pi = y.mean()
        assert choice.expected_cost_per_unit <= 50.0 * pi + 1e-12
        assert choice.expected_cost_per_unit <= (1 - pi) + 1e-12

    def test_expensive_misses_push_threshold_down(self, rng):
        y, s = _scores(rng, separation=2.0)
        cautious = select_threshold(y, s, miss_cost=1000.0, false_alarm_cost=1.0)
        frugal = select_threshold(y, s, miss_cost=2.0, false_alarm_cost=1.0)
        assert cautious.threshold <= frugal.threshold
        assert cautious.tpr >= frugal.tpr

    def test_max_fpr_cap_respected(self, rng):
        y, s = _scores(rng)
        choice = select_threshold(
            y, s, miss_cost=1e6, false_alarm_cost=1.0, max_fpr=0.01
        )
        assert choice.fpr <= 0.01 + 1e-12

    def test_max_fpr_validation(self, rng):
        y, s = _scores(rng)
        with pytest.raises(ValueError):
            select_threshold(y, s, 1.0, 1.0, max_fpr=0.0)

    def test_degenerate_flag_nothing_choice(self, rng):
        # Misses are nearly free: best policy flags (almost) nothing and
        # the returned threshold must be usable (finite).
        y, s = _scores(rng)
        choice = select_threshold(y, s, miss_cost=1e-6, false_alarm_cost=1.0)
        assert np.isfinite(choice.threshold)
        assert (s >= choice.threshold).mean() <= 0.01


class TestInputValidation:
    """Degenerate inputs must raise plain-language ValueErrors, not
    opaque numpy broadcasting/reduction errors (PR-10 satellite)."""

    @pytest.mark.parametrize("fn", [expected_cost_curve, select_threshold])
    def test_length_mismatch(self, fn):
        with pytest.raises(ValueError, match="align elementwise"):
            fn(np.ones(3), np.linspace(0.1, 0.9, 4), 10.0, 1.0)

    @pytest.mark.parametrize("fn", [expected_cost_curve, select_threshold])
    def test_empty(self, fn):
        with pytest.raises(ValueError, match="non-empty"):
            fn(np.empty(0), np.empty(0), 10.0, 1.0)

    @pytest.mark.parametrize("fn", [expected_cost_curve, select_threshold])
    def test_all_positive(self, fn):
        y = np.ones(8)
        s = np.linspace(0.1, 0.9, 8)
        with pytest.raises(ValueError, match="both classes"):
            fn(y, s, 10.0, 1.0)

    @pytest.mark.parametrize("fn", [expected_cost_curve, select_threshold])
    def test_all_negative(self, fn):
        y = np.zeros(8)
        s = np.linspace(0.1, 0.9, 8)
        with pytest.raises(ValueError, match="both classes"):
            fn(y, s, 10.0, 1.0)

    @pytest.mark.parametrize("fn", [expected_cost_curve, select_threshold])
    def test_single_sample(self, fn):
        # One sample is necessarily single-class: a clean error, not a
        # numpy index error from a degenerate sweep.
        with pytest.raises(ValueError):
            fn(np.array([1.0]), np.array([0.7]), 10.0, 1.0)

    def test_list_inputs_accepted(self):
        # The validators coerce sequences, so plain lists keep working.
        thr, costs = expected_cost_curve(
            [0, 1, 0, 1], [0.1, 0.9, 0.2, 0.8], 10.0, 1.0
        )
        assert len(thr) == len(costs)
