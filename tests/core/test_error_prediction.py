"""Tests for error-event labelling (Table 8 task)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ERROR_PREDICTION_TARGETS, error_event_labels
from repro.data import DriveDayDataset


def _records(ids, ages, ue=None, grown=None):
    n = len(ids)
    cols = {
        "drive_id": np.asarray(ids, dtype=np.int32),
        "age_days": np.asarray(ages, dtype=np.int32),
        "uncorrectable_error": np.asarray(ue if ue is not None else np.zeros(n), dtype=np.int64),
        "grown_bad_blocks": np.asarray(grown if grown is not None else np.zeros(n), dtype=np.int32),
    }
    return DriveDayDataset(cols)


class TestErrorEventLabels:
    def test_simple_next_day_event(self):
        rec = _records([1, 1, 1], [0, 1, 2], ue=[0, 5, 0])
        y = error_event_labels(rec, "uncorrectable_error", 1)
        assert y.tolist() == [1, 0, 0]

    def test_current_day_not_counted(self):
        rec = _records([1, 1], [0, 1], ue=[7, 0])
        y = error_event_labels(rec, "uncorrectable_error", 2)
        assert y.tolist() == [0, 0]

    def test_window_boundary(self):
        rec = _records([1, 1, 1], [0, 3, 4], ue=[0, 0, 2])
        # From age 0: next event at age 4 -> inside window iff N >= 4.
        assert error_event_labels(rec, "uncorrectable_error", 3).tolist() == [0, 1, 0]
        assert error_event_labels(rec, "uncorrectable_error", 4).tolist() == [1, 1, 0]

    def test_events_do_not_cross_drives(self):
        rec = _records([1, 2], [0, 1], ue=[0, 9])
        y = error_event_labels(rec, "uncorrectable_error", 5)
        assert y.tolist() == [0, 0]

    def test_bad_block_growth_events(self):
        rec = _records([1, 1, 1, 1], [0, 1, 2, 3], grown=[0, 0, 4, 4])
        y = error_event_labels(rec, "bad_block", 1)
        # Growth event on age-2 day; age-1 row sees it in the next day.
        assert y.tolist() == [0, 1, 0, 0]

    def test_first_row_never_an_event(self):
        rec = _records([1, 1, 2, 2], [0, 1, 0, 1], grown=[5, 5, 3, 3])
        y = error_event_labels(rec, "bad_block", 3)
        # Nonzero initial counters are carry-over, not growth events.
        assert y.sum() == 0

    def test_unknown_target(self):
        rec = _records([1], [0])
        with pytest.raises(KeyError):
            error_event_labels(rec, "bogus_error", 1)

    def test_invalid_window(self):
        rec = _records([1], [0])
        with pytest.raises(ValueError):
            error_event_labels(rec, "uncorrectable_error", 0)

    def test_targets_include_all_error_types(self):
        assert "bad_block" in ERROR_PREDICTION_TARGETS
        assert "uncorrectable_error" in ERROR_PREDICTION_TARGETS
        assert len(ERROR_PREDICTION_TARGETS) == 11

    def test_on_simulated_trace(self, small_trace):
        y = error_event_labels(small_trace.records, "uncorrectable_error", 2)
        ue_days = (small_trace.records["uncorrectable_error"] > 0).sum()
        # Each event day can label at most the 2 preceding recorded rows.
        assert 0 < y.sum() <= 2 * ue_days
