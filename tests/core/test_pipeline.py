"""Tests for the end-to-end prediction pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    INFANCY_DAYS,
    build_prediction_dataset,
    default_model_zoo,
    evaluate_model,
    evaluate_model_zoo,
)


class TestBuildPredictionDataset:
    def test_rows_exclude_limbo(self, small_trace):
        ds = build_prediction_dataset(small_trace, lookahead=1)
        assert len(ds) <= len(small_trace.records)
        assert ds.X.shape[0] == len(ds.y) == len(ds.groups)

    def test_positive_count_bounded_by_failures(self, small_trace):
        ds = build_prediction_dataset(small_trace, lookahead=1)
        assert 0 < ds.n_positive <= len(small_trace.swaps)

    def test_wider_lookahead_more_positives(self, small_trace):
        n1 = build_prediction_dataset(small_trace, lookahead=1).n_positive
        n7 = build_prediction_dataset(small_trace, lookahead=7).n_positive
        assert n7 > n1

    def test_partitions(self, small_trace):
        ds = build_prediction_dataset(small_trace, lookahead=1)
        young, old = ds.young(), ds.old()
        assert len(young) + len(old) == len(ds)
        assert (young.age_days <= INFANCY_DAYS).all()
        assert (old.age_days > INFANCY_DAYS).all()

    def test_for_model(self, small_trace):
        ds = build_prediction_dataset(small_trace, lookahead=1)
        total = sum(len(ds.for_model(i)) for i in range(3))
        assert total == len(ds)

    def test_accepts_tuple(self, small_trace):
        ds = build_prediction_dataset(
            (small_trace.records, small_trace.swaps), lookahead=1
        )
        assert len(ds) > 0


class TestModelZoo:
    def test_six_models_with_paper_names(self):
        zoo = default_model_zoo(0)
        names = [s.name for s in zoo]
        assert names == [
            "Logistic Reg.",
            "k-NN",
            "SVM",
            "Neural Network",
            "Decision Tree",
            "Random Forest",
        ]

    def test_trees_consume_raw_features(self):
        zoo = {s.name: s for s in default_model_zoo(0)}
        assert not zoo["Random Forest"].scale
        assert not zoo["Decision Tree"].log1p
        assert zoo["Logistic Reg."].scale


class TestEvaluate:
    def test_forest_beats_chance_strongly(self, medium_trace):
        ds = build_prediction_dataset(medium_trace, lookahead=1)
        spec = default_model_zoo(0)[-1]
        res = evaluate_model(ds, spec, n_splits=4, seed=0)
        assert res.mean_auc > 0.75

    def test_oof_index_maps_into_dataset(self, medium_trace):
        ds = build_prediction_dataset(medium_trace, lookahead=1)
        spec = default_model_zoo(0)[-2]  # decision tree (fast)
        res = evaluate_model(ds, spec, n_splits=4, seed=0)
        assert np.array_equal(res.oof_true, ds.y[res.oof_index])

    def test_zoo_runs_fast_models(self, medium_trace):
        ds = build_prediction_dataset(medium_trace, lookahead=2)
        fast = tuple(
            s for s in default_model_zoo(0) if s.name in ("Logistic Reg.", "Decision Tree")
        )
        results = evaluate_model_zoo(ds, fast, n_splits=3, seed=0)
        assert set(results) == {"Logistic Reg.", "Decision Tree"}
        for res in results.values():
            assert 0.5 < res.mean_auc <= 1.0
