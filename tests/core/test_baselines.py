"""Tests for the non-ML baseline predictors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DEFAULT_HEURISTIC_WEIGHTS,
    HeuristicRiskScore,
    SingleFeatureThreshold,
    build_prediction_dataset,
    default_model_zoo,
    evaluate_model,
)
from repro.core.pipeline import ModelSpec
from repro.ml import roc_auc_score


class TestSingleFeatureThreshold:
    def test_picks_informative_feature(self, rng):
        X = rng.normal(size=(500, 4))
        y = (X[:, 2] > 0.8).astype(int)
        if y.sum() == 0:
            y[0] = 1
        rule = SingleFeatureThreshold().fit(X, y)
        assert rule.chosen_index_ == 2
        assert roc_auc_score(y, rule.predict_proba(X)) > 0.95

    def test_negative_association_flipped(self, rng):
        X = rng.normal(size=(500, 2))
        y = (X[:, 1] < -0.5).astype(int)
        if y.sum() == 0:
            y[0] = 1
        rule = SingleFeatureThreshold().fit(X, y)
        assert rule.chosen_index_ == 1
        assert rule.sign_ == -1.0
        assert roc_auc_score(y, rule.predict_proba(X)) > 0.95

    def test_fixed_feature(self, rng):
        X = rng.normal(size=(200, 3))
        y = (X[:, 0] > 0).astype(int)
        rule = SingleFeatureThreshold(feature_index=2).fit(X, y)
        assert rule.chosen_index_ == 2

    def test_unfitted(self):
        with pytest.raises(RuntimeError):
            SingleFeatureThreshold().predict_proba(np.zeros((1, 2)))

    def test_scores_in_unit_interval(self, rng):
        X = rng.normal(size=(100, 2))
        y = (X[:, 0] > 0).astype(int)
        p = SingleFeatureThreshold().fit(X, y).predict_proba(rng.normal(size=(50, 2)))
        assert ((p >= 0) & (p <= 1)).all()


class TestHeuristicRiskScore:
    def test_weights_applied(self):
        names = ("uncorrectable_error", "read_count")
        X = np.array([[0.0, 5.0], [100.0, 5.0]])
        y = np.array([0, 1])
        model = HeuristicRiskScore(names).fit(X, y)
        p = model.predict_proba(X)
        assert p[1] > p[0]

    def test_unknown_weight_names_ignored(self):
        names = ("read_count",)
        model = HeuristicRiskScore(names, weights={"nope": 9.0, "read_count": 1.0})
        X = np.array([[1.0], [100.0]])
        model.fit(X, np.array([0, 1]))
        assert model.predict_proba(X)[1] > model.predict_proba(X)[0]

    def test_misaligned_names(self):
        with pytest.raises(ValueError):
            HeuristicRiskScore(("a",)).fit(np.zeros((2, 3)), np.array([0, 1]))

    def test_default_weights_reference_real_features(self):
        from repro.core import feature_names

        names = feature_names()
        for key in DEFAULT_HEURISTIC_WEIGHTS:
            assert key in names, key


class TestBaselinesVsForest:
    def test_forest_beats_baselines(self, medium_trace):
        """The paper's core claim: no single metric or fixed rule matches
        the learned models."""
        ds = build_prediction_dataset(medium_trace, lookahead=1)
        rf_spec = default_model_zoo(0)[-1]
        rf = evaluate_model(ds, rf_spec, n_splits=4, seed=0)

        thr_spec = ModelSpec(
            "threshold", lambda: SingleFeatureThreshold(), scale=False, log1p=False
        )
        thr = evaluate_model(ds, thr_spec, n_splits=4, seed=0)

        heur_spec = ModelSpec(
            "heuristic",
            lambda: HeuristicRiskScore(ds.feature_names),
            scale=False,
            log1p=False,
        )
        heur = evaluate_model(ds, heur_spec, n_splits=4, seed=0)

        # The best single-feature rule (it finds the pre-failure workload
        # drain) is respectable but the learned model still beats it; the
        # hand-tuned error-counter dashboard trails far behind — matching
        # the paper's "no deterministic decision rule" observation.
        assert rf.mean_auc > thr.mean_auc
        assert rf.mean_auc > heur.mean_auc + 0.05
