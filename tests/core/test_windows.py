"""Tests for rolling-window feature extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_windowed_features, rolling_window_sums
from repro.core.windows import WINDOWED_SOURCES
from repro.data import DriveDayDataset


def _records(ids, ages, ue):
    return DriveDayDataset(
        {
            "drive_id": np.asarray(ids, dtype=np.int32),
            "age_days": np.asarray(ages, dtype=np.int32),
            "uncorrectable_error": np.asarray(ue, dtype=np.int64),
        }
    )


class TestRollingWindowSums:
    def test_simple_window(self):
        rec = _records([1] * 5, range(5), [1, 2, 3, 4, 5])
        out = rolling_window_sums(rec, "uncorrectable_error", 2)
        assert out.tolist() == [1, 3, 5, 7, 9]

    def test_window_one_is_identity(self):
        rec = _records([1] * 4, range(4), [5, 0, 7, 2])
        out = rolling_window_sums(rec, "uncorrectable_error", 1)
        assert out.tolist() == [5, 0, 7, 2]

    def test_window_larger_than_history_is_cumsum(self):
        rec = _records([1] * 3, range(3), [1, 2, 3])
        out = rolling_window_sums(rec, "uncorrectable_error", 100)
        assert out.tolist() == [1, 3, 6]

    def test_restarts_at_drive_boundary(self):
        rec = _records([1, 1, 2, 2], [0, 1, 0, 1], [10, 1, 100, 1])
        out = rolling_window_sums(rec, "uncorrectable_error", 3)
        assert out.tolist() == [10, 11, 100, 101]

    def test_matches_bruteforce(self, rng):
        n = 300
        ids = np.sort(rng.integers(0, 12, size=n))
        rec = _records(ids, np.arange(n), rng.integers(0, 5, size=n))
        for w in (1, 3, 8):
            got = rolling_window_sums(rec, "uncorrectable_error", w)
            ue = rec["uncorrectable_error"]
            expected = np.empty(n)
            for i in range(n):
                j = i
                while j > 0 and ids[j - 1] == ids[i] and i - j < w - 1:
                    j -= 1
                expected[i] = ue[j : i + 1].sum()
            assert np.allclose(got, expected), w

    def test_invalid_window(self):
        rec = _records([1], [0], [1])
        with pytest.raises(ValueError):
            rolling_window_sums(rec, "uncorrectable_error", 0)


class TestBuildWindowedFeatures:
    def test_adds_expected_columns(self, small_trace):
        frame = build_windowed_features(small_trace.records, window=7)
        for src in WINDOWED_SOURCES:
            assert f"w7_{src}" in frame.names
        assert "w7_read_count_ratio" in frame.names
        assert "w7_write_count_ratio" in frame.names
        assert frame.X.shape[1] == len(frame.names)

    def test_ratio_near_one_for_steady_drives(self, small_trace):
        frame = build_windowed_features(small_trace.records, window=7)
        ratio = frame.column("w7_read_count_ratio")
        # Excluding young-ramp and pre-failure rows, most drives run
        # steady, so the bulk of ratios hover near 1.
        steady = frame.age_days > 400
        if steady.sum() > 100:
            assert 0.6 < np.median(ratio[steady]) < 1.6

    def test_unknown_source_rejected(self, small_trace):
        with pytest.raises(KeyError):
            build_windowed_features(
                small_trace.records, window=7, sources=("bogus",)
            )

    def test_window_sum_consistency_with_base_features(self, small_trace):
        frame = build_windowed_features(small_trace.records, window=10_000)
        # With an effectively infinite window, the trailing sum equals the
        # lifetime cumulative feature.
        assert np.allclose(
            frame.column("w10000_uncorrectable_error"),
            frame.column("cum_uncorrectable_error"),
        )
