"""Tests for the feature drift monitor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import feature_drift_report


class TestFeatureDrift:
    def test_no_drift_on_same_distribution(self, rng):
        X1 = rng.normal(size=(3000, 4))
        X2 = rng.normal(size=(3000, 4))
        report = feature_drift_report(X1, X2, ("a", "b", "c", "d"))
        assert not report.any_drift

    def test_shifted_feature_flagged(self, rng):
        X1 = rng.normal(size=(3000, 3))
        X2 = rng.normal(size=(3000, 3))
        X2[:, 1] += 1.0  # workload regime change on one feature
        report = feature_drift_report(X1, X2, ("a", "b", "c"))
        assert report.drifted_features == ["b"]

    def test_min_effect_suppresses_tiny_shifts(self, rng):
        X1 = rng.normal(size=(20_000, 1))
        X2 = rng.normal(0.03, 1, size=(20_000, 1))  # significant but tiny
        report = feature_drift_report(X1, X2, ("a",), min_effect=0.1)
        assert not report.any_drift

    def test_row_cap(self, rng):
        X1 = rng.normal(size=(100_000, 2))
        X2 = rng.normal(size=(50_000, 2))
        report = feature_drift_report(X1, X2, ("a", "b"), max_rows=5000)
        assert len(report.features) == 2

    def test_render(self, rng):
        X1 = rng.normal(size=(500, 2))
        X2 = rng.normal(2.0, 1, size=(500, 2))
        report = feature_drift_report(X1, X2, ("alpha", "beta"))
        text = report.render()
        assert "DRIFT" in text and "alpha" in text

    def test_validation(self, rng):
        X = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            feature_drift_report(X, rng.normal(size=(10, 3)), ("a", "b"))
        with pytest.raises(ValueError):
            feature_drift_report(X, X, ("a",))

    def test_on_simulated_age_shift(self, small_trace):
        """Young-fleet vs old-fleet telemetry must register drift (the
        paper's motivation for age-partitioned models)."""
        from repro.core import build_features

        frame = build_features(small_trace.records)
        young = frame.X[frame.age_days <= 90]
        old = frame.X[frame.age_days > 400]
        if len(young) > 200 and len(old) > 200:
            report = feature_drift_report(young, old, frame.names)
            assert report.any_drift
            # The cumulative counters obviously shift with age.
            assert any(
                name.startswith("cum_") or name in ("drive_age", "pe_cycles")
                for name in report.drifted_features
            )
