"""Tests for the interpretation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import compare_importances, importance_report


class TestImportanceReport:
    def test_sorted_descending(self):
        rep = importance_report(["a", "b", "c"], np.array([0.1, 0.7, 0.2]))
        assert rep.names == ("b", "c", "a")
        assert rep.importances.tolist() == [0.7, 0.2, 0.1]

    def test_top_k(self):
        rep = importance_report(["a", "b", "c"], np.array([0.1, 0.7, 0.2]))
        assert rep.top(2) == [("b", 0.7), ("c", 0.2)]

    def test_rank_of(self):
        rep = importance_report(["a", "b"], np.array([0.3, 0.7]))
        assert rep.rank_of("b") == 0
        assert rep.rank_of("a") == 1
        with pytest.raises(KeyError):
            rep.rank_of("z")

    def test_misaligned(self):
        with pytest.raises(ValueError):
            importance_report(["a"], np.array([0.1, 0.2]))

    def test_render_contains_bars(self):
        rep = importance_report(["alpha", "beta"], np.array([0.9, 0.1]))
        text = rep.render(k=2, title="Top")
        assert "alpha" in text and "#" in text and "Top" in text


class TestCompare:
    def test_side_by_side(self):
        young = importance_report(["age", "ue"], np.array([0.8, 0.2]))
        old = importance_report(["reads", "writes"], np.array([0.6, 0.4]))
        text = compare_importances(young, old, k=2)
        lines = text.splitlines()
        assert "Young" in lines[0] and "Old" in lines[0]
        assert "age" in lines[1] and "reads" in lines[1]
