"""Property-based tests for labelling invariants under random event logs."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import label_dataset, lookahead_labels, operational_mask
from repro.data import DriveDayDataset, SwapLog


@st.composite
def _records_and_swaps(draw):
    n_drives = draw(st.integers(1, 5))
    ids, ages = [], []
    swap_ids, fails, swaps_at = [], [], []
    for d in range(n_drives):
        n_days = draw(st.integers(1, 40))
        recorded = sorted(
            draw(
                st.sets(st.integers(0, 60), min_size=1, max_size=n_days)
            )
        )
        ids.extend([d] * len(recorded))
        ages.extend(recorded)
        if draw(st.booleans()):
            f = draw(st.integers(1, 55))
            s = f + draw(st.integers(0, 10))
            swap_ids.append(d)
            fails.append(float(f))
            swaps_at.append(float(s))
    records = DriveDayDataset(
        {
            "drive_id": np.asarray(ids, dtype=np.int32),
            "age_days": np.asarray(ages, dtype=np.int32),
        }
    )
    swaps = SwapLog(
        drive_id=np.asarray(swap_ids, dtype=np.int32),
        model=np.zeros(len(swap_ids), dtype=np.int8),
        failure_age=np.asarray(fails),
        swap_age=np.asarray(swaps_at),
        reentry_age=np.full(len(swap_ids), np.nan),
        operational_start_age=np.zeros(len(swap_ids)),
    )
    return records, swaps


class TestLabelingProperties:
    @settings(max_examples=60, deadline=None)
    @given(_records_and_swaps(), st.integers(1, 10))
    def test_labels_match_bruteforce(self, rs, n):
        records, swaps = rs
        y = lookahead_labels(records, swaps, n)
        ids = records["drive_id"]
        ages = records["age_days"]
        for i in range(len(records)):
            expected = 0
            for j in range(len(swaps)):
                if swaps.drive_id[j] == ids[i] and (
                    ages[i] <= swaps.failure_age[j] <= ages[i] + n - 1
                ):
                    expected = 1
            assert y[i] == expected

    @settings(max_examples=60, deadline=None)
    @given(_records_and_swaps())
    def test_mask_matches_bruteforce(self, rs):
        records, swaps = rs
        keep = operational_mask(records, swaps)
        ids = records["drive_id"]
        ages = records["age_days"]
        for i in range(len(records)):
            limbo = any(
                swaps.drive_id[j] == ids[i]
                and swaps.failure_age[j] < ages[i] <= swaps.swap_age[j]
                for j in range(len(swaps))
            )
            assert keep[i] == (not limbo)

    @settings(max_examples=40, deadline=None)
    @given(_records_and_swaps(), st.integers(1, 8))
    def test_positive_budget(self, rs, n):
        """Each swap can label at most n rows positive."""
        records, swaps = rs
        y, keep = label_dataset(records, swaps, n)
        assert y.sum() <= n * len(swaps)
        # Wider windows never lose positives.
        y2, _ = label_dataset(records, swaps, n + 3)
        assert y2.sum() >= y.sum()
