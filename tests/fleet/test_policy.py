"""Policy semantics: escalation ladder, hysteresis, budgets, specs."""

from __future__ import annotations

import json

import pytest

from repro.core.policy import ThresholdChoice
from repro.fleet import (
    ActionCosts,
    Actuator,
    FleetHealth,
    FleetState,
    PolicyError,
    ThresholdPolicy,
    TopKPolicy,
    load_policy,
    policy_from_spec,
)


def make_view(risks: dict[int, float], day: int = 10, score_day: int | None = None):
    """A one-observation-per-drive view: EWMA seeds, so risk == score."""
    health = FleetHealth()
    for drive, risk in risks.items():
        health.observe(drive, age_days=100, probability=risk, day=score_day or day)
    return health.view(day)


class TestActionCosts:
    def test_defaults_ordered(self):
        c = ActionCosts()
        assert c.miss > c.replace > c.quarantine > c.watch >= c.clear

    def test_negative_cost_rejected(self):
        with pytest.raises(PolicyError, match="finite"):
            ActionCosts(replace=-1.0)

    def test_zero_miss_rejected(self):
        with pytest.raises(PolicyError, match="miss"):
            ActionCosts(miss=0.0)

    def test_of_unknown_action(self):
        with pytest.raises(PolicyError, match="unknown action"):
            ActionCosts().of("explode")

    def test_roundtrip(self):
        c = ActionCosts(replace=9.0, miss=90.0)
        assert ActionCosts.from_dict(c.to_dict()) == c

    def test_from_dict_rejects_unknown_field(self):
        with pytest.raises(PolicyError, match="unknown cost"):
            ActionCosts.from_dict({"replace": 1.0, "upgrade": 2.0})


class TestThresholdPolicy:
    def test_replace_when_risk_crosses(self):
        policy = ThresholdPolicy(replace_at=0.9)
        view = make_view({1: 0.95, 2: 0.5})
        actions = policy.decide(view, FleetState(), 10)
        assert [(a.action, a.drive_id) for a in actions] == [("replace", 1)]
        assert actions[0].cost == policy.costs.replace
        assert actions[0].risk == pytest.approx(0.95)

    def test_ladder_escalates_to_highest_crossed_rung(self):
        policy = ThresholdPolicy(
            watch_at=0.3, quarantine_at=0.6, replace_at=0.9
        )
        view = make_view({1: 0.45, 2: 0.7, 3: 0.95, 4: 0.1})
        actions = policy.decide(view, FleetState(), 10)
        assert {(a.drive_id, a.action) for a in actions} == {
            (1, "watch"),
            (2, "quarantine"),
            (3, "replace"),
        }

    def test_only_escalates_upward(self):
        policy = ThresholdPolicy(quarantine_at=0.6, replace_at=0.9)
        state = FleetState(status={1: "quarantined"})
        view = make_view({1: 0.7})
        # Risk clears quarantine_at but the drive is already there.
        assert policy.decide(view, state, 10) == []

    def test_replaced_drives_never_reconsidered(self):
        policy = ThresholdPolicy(replace_at=0.5)
        state = FleetState(status={1: "replaced"})
        assert policy.decide(make_view({1: 0.99}), state, 10) == []

    def test_clear_deescalates_below_hysteresis_band(self):
        policy = ThresholdPolicy(
            watch_at=0.5, replace_at=0.9, clear_below=0.2
        )
        state = FleetState(status={1: "watched", 2: "quarantined"})
        view = make_view({1: 0.1, 2: 0.3})
        actions = policy.decide(view, state, 10)
        # Drive 2's risk (0.3) sits inside the band: neither clear nor act.
        assert [(a.action, a.drive_id) for a in actions] == [("clear", 1)]

    def test_cooldown_suppresses_escalation(self):
        policy = ThresholdPolicy(replace_at=0.9, cooldown_days=5)
        state = FleetState(status={1: "watched"}, last_action_day={1: 8})
        view = make_view({1: 0.99})
        assert policy.decide(view, state, 10) == []
        assert len(policy.decide(view, state, 13)) == 1

    def test_staleness_gates_both_directions(self):
        policy = ThresholdPolicy(
            replace_at=0.9, clear_below=0.2, max_staleness_days=3
        )
        # Scores are from day 10; deciding on day 20 they are 10d stale.
        view = make_view({1: 0.99, 2: 0.05}, day=20, score_day=10)
        state = FleetState(status={2: "watched"})
        assert policy.decide(view, state, 20) == []

    def test_needs_at_least_one_threshold(self):
        with pytest.raises(PolicyError, match="at least one"):
            ThresholdPolicy(replace_at=None)  # type: ignore[arg-type]

    def test_thresholds_must_be_monotone(self):
        with pytest.raises(PolicyError, match="ordered"):
            ThresholdPolicy(watch_at=0.8, quarantine_at=0.5, replace_at=0.9)

    def test_threshold_range_checked(self):
        with pytest.raises(PolicyError, match=r"\[0, 1\]"):
            ThresholdPolicy(replace_at=1.5)

    def test_clear_below_must_undercut_lowest_rung(self):
        with pytest.raises(PolicyError, match="hysteresis"):
            ThresholdPolicy(watch_at=0.5, replace_at=0.9, clear_below=0.5)

    def test_from_choice_lifts_threshold(self):
        choice = ThresholdChoice(
            threshold=0.87, tpr=0.5, fpr=0.01, expected_cost_per_unit=0.1
        )
        policy = ThresholdPolicy.from_choice(choice, cooldown_days=3)
        assert policy.replace_at == pytest.approx(0.87)
        assert policy.cooldown_days == 3

    def test_from_choice_clamps_flag_nothing_end(self):
        # The ROC sweep's "flag nothing" point sits above every score.
        choice = ThresholdChoice(
            threshold=1.99, tpr=0.0, fpr=0.0, expected_cost_per_unit=0.0
        )
        assert ThresholdPolicy.from_choice(choice).replace_at == 1.0


class TestTopKPolicy:
    def test_ranks_by_risk_then_drive_id(self):
        policy = TopKPolicy(budget=2, window_days=30, min_risk=0.5)
        view = make_view({1: 0.8, 2: 0.9, 3: 0.8, 4: 0.4})
        actions = policy.decide(view, FleetState(), 10)
        # Highest risk first; equal risks tie-break on drive_id.
        assert [a.drive_id for a in actions] == [2, 1]
        assert all(a.action == "replace" for a in actions)

    def test_min_risk_filters_candidates(self):
        policy = TopKPolicy(budget=5, min_risk=0.7)
        actions = policy.decide(make_view({1: 0.69, 2: 0.71}), FleetState(), 10)
        assert [a.drive_id for a in actions] == [2]

    def test_rolling_window_budget(self):
        policy = TopKPolicy(budget=2, window_days=10, min_risk=0.5)
        actuator = Actuator()
        view = make_view({1: 0.9, 2: 0.9, 3: 0.9})
        for action in policy.decide(view, actuator.state, 10):
            actuator.apply(action)
        assert actuator.state.spares_used == 2
        # Same window: budget exhausted.
        assert policy.decide(view, actuator.state, 15) == []
        # Window rolled past day 10: budget replenishes.
        later = policy.decide(view, actuator.state, 20)
        assert [a.drive_id for a in later] == [3]

    def test_validation(self):
        with pytest.raises(PolicyError, match="budget"):
            TopKPolicy(budget=0)
        with pytest.raises(PolicyError, match="window_days"):
            TopKPolicy(window_days=0)
        with pytest.raises(PolicyError, match="min_risk"):
            TopKPolicy(min_risk=1.5)


class TestSpecs:
    @pytest.mark.parametrize(
        "policy",
        [
            ThresholdPolicy(
                watch_at=0.3,
                quarantine_at=0.6,
                replace_at=0.9,
                clear_below=0.1,
                cooldown_days=2,
                max_staleness_days=5,
                costs=ActionCosts(replace=9.0, miss=99.0),
            ),
            TopKPolicy(budget=3, window_days=14, min_risk=0.6),
        ],
    )
    def test_spec_roundtrip(self, policy):
        assert policy_from_spec(policy.spec()) == policy

    def test_unknown_kind(self):
        with pytest.raises(PolicyError, match="unknown policy kind"):
            policy_from_spec({"kind": "oracle"})

    def test_unknown_field(self):
        with pytest.raises(PolicyError, match="unknown field"):
            policy_from_spec({"kind": "topk", "budget": 2, "frobnicate": 1})

    def test_load_policy_kind_name(self):
        assert load_policy("threshold") == ThresholdPolicy()
        assert load_policy("topk") == TopKPolicy()

    def test_load_policy_inline_json(self):
        policy = load_policy('{"kind": "threshold", "replace_at": 0.8}')
        assert isinstance(policy, ThresholdPolicy)
        assert policy.replace_at == 0.8

    def test_load_policy_file(self, tmp_path):
        spec = tmp_path / "policy.json"
        spec.write_text(json.dumps(TopKPolicy(budget=7).spec()))
        assert load_policy(str(spec)) == TopKPolicy(budget=7)

    def test_load_policy_bad_source(self, tmp_path):
        with pytest.raises(PolicyError, match="neither"):
            load_policy(str(tmp_path / "missing.json"))
        with pytest.raises(PolicyError, match="not JSON"):
            load_policy("{broken")
