"""Actuator semantics: typed transitions, reverts, exact reconstruction."""

from __future__ import annotations

import pytest

from repro.fleet import (
    Actuator,
    AuditJournal,
    FleetAction,
    FleetActionError,
    FleetState,
    replay_journal,
)


def act(action: str, drive: int, day: int = 10, cost: float = 1.0) -> FleetAction:
    return FleetAction(
        action=action, drive_id=drive, day=day, risk=0.9,
        reason="test", cost=cost,
    )


class TestTransitions:
    def test_full_escalation_ladder(self):
        actuator = Actuator()
        for action, status in (
            ("watch", "watched"),
            ("quarantine", "quarantined"),
            ("replace", "replaced"),
        ):
            actuator.apply(act(action, 1))
            assert actuator.state.status_of(1) == status
        assert actuator.state.spares_used == 1
        assert actuator.state.actions_total == 3

    def test_clear_returns_to_active(self):
        actuator = Actuator()
        actuator.apply(act("quarantine", 1))
        actuator.apply(act("clear", 1))
        assert actuator.state.status_of(1) == "active"
        # The drive still carries history (count() sees it).
        assert actuator.state.count("active") == 1

    def test_strict_illegal_transition_raises(self):
        actuator = Actuator()
        with pytest.raises(FleetActionError, match="cannot clear"):
            actuator.apply(act("clear", 1))  # active drives can't clear

    def test_nonstrict_counts_rejections(self):
        actuator = Actuator(strict=False)
        actuator.apply(act("replace", 1))
        assert actuator.apply(act("watch", 1)) is None
        assert actuator.rejected_total == 1
        assert actuator.state.actions_total == 1

    def test_cost_attribution(self):
        actuator = Actuator()
        actuator.apply(act("watch", 1, cost=0.5))
        actuator.apply(act("quarantine", 2, cost=5.0))
        assert actuator.state.cost_total == pytest.approx(5.5)
        assert actuator.state.by_action == {"watch": 1, "quarantine": 1}


class TestRevert:
    def test_revert_restores_previous_status_and_spare(self):
        actuator = Actuator()
        actuator.apply(act("watch", 1, day=5))
        entry = actuator.apply(act("replace", 1, day=7))
        assert actuator.state.spares_used == 1
        assert actuator.state.replacements_since(7) == 1
        revert = actuator.revert(entry.seq, reason="mistake")
        assert revert.kind == "revert"
        assert revert.day == 7  # the original action's day
        assert actuator.state.status_of(1) == "watched"
        assert actuator.state.spares_used == 0
        assert actuator.state.replacements_since(0) == 0
        assert actuator.state.reverts_total == 1

    def test_revert_unknown_seq(self):
        with pytest.raises(FleetActionError, match="no applied action"):
            Actuator().revert(3)

    def test_revert_refused_after_drive_moved_on(self):
        actuator = Actuator()
        entry = actuator.apply(act("watch", 1))
        actuator.apply(act("quarantine", 1))
        with pytest.raises(FleetActionError, match="moved"):
            actuator.revert(entry.seq)

    def test_revert_not_revertable_twice(self):
        actuator = Actuator()
        entry = actuator.apply(act("quarantine", 1))
        actuator.revert(entry.seq)
        with pytest.raises(FleetActionError, match="no applied action"):
            actuator.revert(entry.seq)


class TestFleetState:
    def test_status_of_defaults_active(self):
        assert FleetState().status_of(123) == "active"

    def test_count_rejects_unknown_status(self):
        with pytest.raises(FleetActionError, match="unknown status"):
            FleetState().count("exploded")

    def test_replacements_since_window(self):
        state = FleetState(replace_days=[3, 5, 5, 9])
        assert state.replacements_since(0) == 4
        assert state.replacements_since(5) == 3
        assert state.replacements_since(10) == 0

    def test_digest_is_order_insensitive(self):
        a = FleetState(status={1: "watched", 2: "quarantined"})
        b = FleetState(status={2: "quarantined", 1: "watched"})
        assert a.digest() == b.digest()


class TestReconstruction:
    def test_journal_replay_matches_live_state(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditJournal(path) as journal:
            actuator = Actuator(journal=journal)
            actuator.apply(act("watch", 1, day=3), ts=3.0)
            actuator.apply(act("quarantine", 1, day=4), ts=4.0)
            entry = actuator.apply(act("replace", 2, day=5), ts=5.0)
            actuator.revert(entry.seq, ts=6.0)
            actuator.apply(act("replace", 1, day=8), ts=8.0)
            live = actuator.state
        replayed = replay_journal(path)
        assert replayed.digest() == live.digest()
        assert replayed.to_dict() == live.to_dict()

    def test_replay_rejects_reordered_history(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditJournal(path) as journal:
            actuator = Actuator(journal=journal)
            actuator.apply(act("watch", 1), ts=1.0)
            actuator.apply(act("quarantine", 1), ts=2.0)
        lines = path.read_text().splitlines()
        (tmp_path / "reordered.jsonl").write_text(
            "\n".join(reversed(lines)) + "\n"
        )
        with pytest.raises(FleetActionError, match="expects drive"):
            replay_journal(tmp_path / "reordered.jsonl")
