"""FleetHealth: EWMA folding, views, deterministic snapshots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import FleetHealth, HealthError, RiskPolicy


class TestRiskPolicy:
    def test_alpha_range(self):
        with pytest.raises(ValueError, match="ewma_alpha"):
            RiskPolicy(ewma_alpha=0.0)
        with pytest.raises(ValueError, match="ewma_alpha"):
            RiskPolicy(ewma_alpha=1.1)
        RiskPolicy(ewma_alpha=1.0)  # "latest score wins" is legal

    def test_stale_after_nonnegative(self):
        with pytest.raises(ValueError, match="stale_after_days"):
            RiskPolicy(stale_after_days=-1)


class TestObserve:
    def test_first_score_seeds_ewma(self):
        health = FleetHealth(RiskPolicy(ewma_alpha=0.3))
        assert health.observe(1, 10, 0.8, day=5) == pytest.approx(0.8)

    def test_ewma_fold(self):
        alpha = 0.3
        health = FleetHealth(RiskPolicy(ewma_alpha=alpha))
        health.observe(1, 10, 0.8, day=5)
        risk = health.observe(1, 11, 0.2, day=6)
        assert risk == pytest.approx(alpha * 0.2 + (1 - alpha) * 0.8)

    def test_peak_and_last_probability(self):
        health = FleetHealth()
        health.observe(1, 10, 0.9, day=5)
        health.observe(1, 11, 0.1, day=6)
        view = health.view(6)
        assert view.peak[0] == pytest.approx(0.9)
        assert view.last_probability[0] == pytest.approx(0.1)

    def test_last_age_and_day_only_advance(self):
        health = FleetHealth()
        health.observe(1, 20, 0.5, day=8)
        health.observe(1, 15, 0.5, day=6)  # late arrival
        view = health.view(8)
        assert view.last_age[0] == 20
        assert view.last_day[0] == 8

    def test_observe_columns_length_check(self):
        health = FleetHealth()
        with pytest.raises(ValueError, match="same-length"):
            health.observe_columns(
                np.array([1, 2]), np.array([1]), np.array([1, 2]),
                np.array([0.5, 0.5]),
            )


class TestView:
    def test_sorted_by_drive_id(self):
        health = FleetHealth()
        for drive in (9, 3, 7):
            health.observe(drive, 10, 0.5, day=5)
        assert health.view(5).drive_id.tolist() == [3, 7, 9]

    def test_staleness_and_stale_flag(self):
        health = FleetHealth(RiskPolicy(stale_after_days=3))
        health.observe(1, 10, 0.5, day=10)
        health.observe(2, 10, 0.5, day=2)
        view = health.view(10)
        assert view.staleness_days.tolist() == [0, 8]
        assert view.stale.tolist() == [False, True]

    def test_default_day_is_watermark(self):
        health = FleetHealth()
        health.observe(1, 10, 0.5, day=42)
        assert health.view().day == 42


class TestSnapshots:
    def fill(self, health: FleetHealth) -> None:
        rng = np.random.default_rng(7)
        for _ in range(200):
            health.observe(
                int(rng.integers(0, 20)),
                int(rng.integers(0, 400)),
                float(rng.random()),
                day=int(rng.integers(0, 300)),
            )

    def test_restore_is_exact(self, tmp_path):
        health = FleetHealth(RiskPolicy(ewma_alpha=0.4, stale_after_days=5))
        self.fill(health)
        path = health.snapshot(tmp_path / "health.npz")
        restored = FleetHealth.restore(path)
        assert restored.state_digest() == health.state_digest()
        assert restored.events_total == health.events_total
        assert restored.watermark == health.watermark
        assert restored.policy == health.policy

    def test_identical_streams_identical_bytes(self, tmp_path):
        a, b = FleetHealth(), FleetHealth()
        self.fill(a)
        self.fill(b)
        pa = a.snapshot(tmp_path / "a.npz")
        pb = b.snapshot(tmp_path / "b.npz")
        assert pa.read_bytes() == pb.read_bytes()

    def test_restore_missing_file(self, tmp_path):
        with pytest.raises(HealthError, match="health snapshot"):
            FleetHealth.restore(tmp_path / "missing.npz")

    def test_restore_rejects_future_version(self, tmp_path):
        health = FleetHealth()
        self.fill(health)
        path = health.snapshot(tmp_path / "health.npz")
        with np.load(path) as npz:
            data = dict(npz)
        data["meta"] = np.array([99, 0, 0], dtype=np.int64)
        np.savez(tmp_path / "future.npz", **data)
        with pytest.raises(HealthError, match="version 99"):
            FleetHealth.restore(tmp_path / "future.npz")
