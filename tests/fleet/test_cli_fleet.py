"""End-to-end tests of the ``fleet`` CLI family."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import load_manifest, validate_manifest


@pytest.fixture(scope="module")
def staged(tmp_path_factory):
    """simulate -> train: the trace + model every fleet command needs."""
    root = tmp_path_factory.mktemp("fleet_cli")
    fleet = root / "fleet"
    model = root / "model.pkl"
    assert (
        main(
            [
                "simulate", "--out", str(fleet), "--drives", "8",
                "--days", "200", "--deploy-spread", "100", "--seed", "5",
                "--quiet",
            ]
        )
        == 0
    )
    assert (
        main(
            [
                "train", "--trace", str(fleet), "--model", str(model),
                "--lookahead", "7", "--seed", "3",
            ]
        )
        == 0
    )
    return {"root": root, "fleet": fleet, "model": model}


@pytest.fixture(scope="module")
def ran(staged):
    """One clean ``fleet run`` whose artifacts several tests inspect."""
    out = staged["root"] / "run"
    assert (
        main(
            [
                "fleet", "run", "--trace", str(staged["fleet"]),
                "--model", str(staged["model"]), "--policy", "threshold",
                "--out", str(out),
            ]
        )
        == 0
    )
    return out


class TestParser:
    def test_fleet_subcommands_registered(self):
        parser = build_parser()
        argvs = {
            "whatif": [
                "fleet", "whatif", "--trace", "t", "--model", "m",
                "--policy", "threshold",
            ],
            "run": [
                "fleet", "run", "--trace", "t", "--model", "m",
                "--policy", "threshold", "--out", "o",
            ],
            "decide": [
                "fleet", "decide", "--health", "h", "--policy", "threshold",
            ],
            "audit": ["fleet", "audit", "journal.jsonl"],
        }
        for subcommand, argv in argvs.items():
            assert parser.parse_args(argv).fleet_command == subcommand

    def test_policy_repeatable_on_whatif(self):
        args = build_parser().parse_args(
            [
                "fleet", "whatif", "--trace", "t", "--model", "m",
                "--policy", "threshold", "--policy", "topk",
            ]
        )
        assert args.policy == ["threshold", "topk"]


class TestWhatif:
    def test_compares_policies_and_writes_manifest(self, staged, capsys):
        json_out = staged["root"] / "reports.json"
        assert (
            main(
                [
                    "fleet", "whatif", "--trace", str(staged["fleet"]),
                    "--model", str(staged["model"]),
                    "--policy", "threshold", "--policy", "topk",
                    "--json-out", str(json_out),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 policies" in out
        assert "savings" in out
        reports = json.loads(json_out.read_text())
        assert len(reports) == 2
        for report in reports:
            assert report["caught"] + report["missed"] == report["n_failures"]
        manifest = load_manifest(
            staged["fleet"] / "fleet_whatif_manifest.json"
        )
        validate_manifest(manifest)
        assert manifest["command"] == "fleet.whatif"
        assert manifest["fleet"]["policy_kind"] in {"threshold", "topk"}

    def test_journal_out_requires_single_policy(self, staged):
        assert (
            main(
                [
                    "fleet", "whatif", "--trace", str(staged["fleet"]),
                    "--model", str(staged["model"]),
                    "--policy", "threshold", "--policy", "topk",
                    "--journal-out", str(staged["root"] / "j.jsonl"),
                    "--no-manifest",
                ]
            )
            == 2
        )

    def test_bad_policy_spec_exits_2(self, staged):
        assert (
            main(
                [
                    "fleet", "whatif", "--trace", str(staged["fleet"]),
                    "--model", str(staged["model"]),
                    "--policy", "oracle", "--no-manifest",
                ]
            )
            == 2
        )


class TestRun:
    def test_writes_artifacts_and_manifest(self, staged, ran):
        assert (ran / "audit.jsonl").exists()
        assert (ran / "health.npz").exists()
        state = json.loads((ran / "state.json").read_text())
        assert set(state) == {"chain", "policy", "state", "state_digest"}
        manifest = load_manifest(ran / "fleet_run_manifest.json")
        validate_manifest(manifest)
        assert manifest["command"] == "fleet.run"
        assert manifest["fleet"]["chain"] == state["chain"]
        assert manifest["fleet"]["state_digest"] == state["state_digest"]

    def test_refuses_to_overwrite_journal(self, staged, ran):
        assert (
            main(
                [
                    "fleet", "run", "--trace", str(staged["fleet"]),
                    "--model", str(staged["model"]),
                    "--policy", "threshold", "--out", str(ran),
                ]
            )
            == 2
        )

    def test_run_and_whatif_journals_are_byte_identical(self, staged, ran):
        whatif_journal = staged["root"] / "whatif.jsonl"
        assert (
            main(
                [
                    "fleet", "whatif", "--trace", str(staged["fleet"]),
                    "--model", str(staged["model"]),
                    "--policy", "threshold",
                    "--journal-out", str(whatif_journal),
                    "--no-manifest",
                ]
            )
            == 0
        )
        assert whatif_journal.read_bytes() == (ran / "audit.jsonl").read_bytes()


class TestDecide:
    def test_proposes_from_snapshot(self, staged, ran, capsys):
        assert (
            main(
                [
                    "fleet", "decide", "--health", str(ran / "health.npz"),
                    "--policy", '{"kind": "topk", "min_risk": 0.0, "budget": 2}',
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fleet decide" in out
        assert "action(s) proposed" in out

    def test_json_lines_and_journal_awareness(self, staged, ran, capsys):
        # Replaying the journal means already-replaced drives are not
        # proposed again, so the proposal set can only shrink.
        argv = [
            "fleet", "decide", "--health", str(ran / "health.npz"),
            "--policy", '{"kind": "topk", "min_risk": 0.0, "budget": 100}',
            "--json",
        ]
        assert main(argv) == 0
        bare = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert main(argv + ["--journal", str(ran / "audit.jsonl")]) == 0
        aware = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert len(aware) <= len(bare)
        for action in bare:
            assert set(action) == {
                "action", "drive_id", "day", "risk", "reason", "cost",
            }

    def test_missing_snapshot_exits_2(self, staged):
        assert (
            main(
                [
                    "fleet", "decide",
                    "--health", str(staged["root"] / "nope.npz"),
                    "--policy", "threshold",
                ]
            )
            == 2
        )


class TestAudit:
    def test_verify_ok_exit_0(self, ran, capsys):
        assert main(["fleet", "audit", str(ran / "audit.jsonl"), "--verify"]) == 0
        assert "fleet audit ok" in capsys.readouterr().out

    def test_verify_json_report(self, ran, capsys):
        assert (
            main(
                ["fleet", "audit", str(ran / "audit.jsonl"), "--verify", "--json"]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["n_entries"] > 0
        assert "state_digest" in report

    def test_tampered_journal_exit_1(self, ran, tmp_path, capsys):
        lines = (ran / "audit.jsonl").read_text().splitlines()
        body = json.loads(lines[0])
        body["cost"] = -1000.0
        lines[0] = json.dumps(body, sort_keys=True)
        tampered = tmp_path / "tampered.jsonl"
        tampered.write_text("\n".join(lines) + "\n")
        assert main(["fleet", "audit", str(tampered), "--verify"]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_missing_journal_exit_2(self, tmp_path):
        assert (
            main(["fleet", "audit", str(tmp_path / "gone.jsonl"), "--verify"])
            == 2
        )

    def test_summary_listing(self, ran, capsys):
        assert main(["fleet", "audit", str(ran / "audit.jsonl"), "--last", "3"]) == 0
        out = capsys.readouterr().out
        assert "fleet audit:" in out
        assert "actions:" in out


class TestChaosRun:
    def test_chaos_run_is_deterministic_and_verifies(self, staged, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "late=0.2,duplicate=0.1")
        monkeypatch.setenv("REPRO_CHAOS_SEED", "7")
        outs = [staged["root"] / "chaos_a", staged["root"] / "chaos_b"]
        for out in outs:
            assert (
                main(
                    [
                        "fleet", "run", "--trace", str(staged["fleet"]),
                        "--model", str(staged["model"]),
                        "--policy", "threshold", "--out", str(out),
                    ]
                )
                == 0
            )
        assert (outs[0] / "audit.jsonl").read_bytes() == (
            outs[1] / "audit.jsonl"
        ).read_bytes()
        assert (outs[0] / "dlq.jsonl").exists()
        assert main(["fleet", "audit", str(outs[0] / "audit.jsonl"), "--verify"]) == 0
        manifest = load_manifest(outs[0] / "fleet_run_manifest.json")
        validate_manifest(manifest)
        assert manifest["config"]["chaos"]
        assert manifest["serve"]["dead_lettered"] >= 0
