"""Shared fixtures for the fleet-autopilot tests: one fleet, one model.

Session-scoped like ``tests/serve/conftest.py`` so the simulate + fit
cost is paid once; tests that mutate state build their own
:class:`FleetHealth`/:class:`Actuator`/:class:`PolicyRunner` on top.
"""

from __future__ import annotations

import pytest

from repro.core import FailurePredictor
from repro.simulator import FleetConfig, simulate_fleet


@pytest.fixture(scope="session")
def fleet_trace():
    """~30 drives over ~10 months, same shape as the serving fixtures."""
    return simulate_fleet(
        FleetConfig(
            n_drives_per_model=10,
            horizon_days=300,
            deploy_spread_days=150,
            seed=11,
        )
    )


@pytest.fixture(scope="session")
def fleet_predictor(fleet_trace):
    return FailurePredictor(lookahead=7, seed=3).fit(fleet_trace)


@pytest.fixture(scope="session")
def fleet_probs(fleet_trace, fleet_predictor):
    """The batch scores every policy replay shares."""
    return fleet_predictor.predict_proba_records(fleet_trace.records)
