"""What-if replay: byte-determinism, ground truth, cost arithmetic."""

from __future__ import annotations

import random

import pytest

from repro.fleet import (
    Actuator,
    FleetAction,
    GroundTruth,
    PolicyRunner,
    ThresholdPolicy,
    TopKPolicy,
    evaluate_outcome,
    ground_truth,
    run_whatif,
)

POLICY = ThresholdPolicy(
    watch_at=0.5, quarantine_at=0.8, replace_at=0.95, clear_below=0.2
)


class TestDeterminism:
    def test_repeated_runs_byte_identical(self, tmp_path, fleet_trace, fleet_probs):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        digests = []
        for path in paths:
            report, outcome = run_whatif(
                fleet_trace, POLICY, probs=fleet_probs, journal_path=path
            )
            digests.append(outcome.state.digest())
        assert paths[0].read_bytes() == paths[1].read_bytes()
        assert digests[0] == digests[1]

    def test_worker_count_never_changes_the_journal(
        self, tmp_path, fleet_trace, fleet_predictor
    ):
        paths = [tmp_path / "w1.jsonl", tmp_path / "w2.jsonl"]
        for path, workers in zip(paths, (1, 2)):
            run_whatif(
                fleet_trace,
                POLICY,
                fleet_predictor,
                workers=workers,
                journal_path=path,
            )
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_feed_order_never_changes_decisions(self, fleet_trace, fleet_probs):
        records = fleet_trace.records
        events = list(
            zip(
                records["drive_id"].tolist(),
                records["age_days"].tolist(),
                records["calendar_day"].tolist(),
                fleet_probs.tolist(),
            )
        )
        outcomes = []
        for seed in (None, 1, 2):
            if seed is not None:
                random.Random(seed).shuffle(events)
            runner = PolicyRunner(POLICY)
            for drive, age, day, p in events:
                runner.feed_event(drive, age, day, p)
            outcomes.append(runner.finalize())
        base = outcomes[0]
        for other in outcomes[1:]:
            assert other.state.digest() == base.state.digest()
            assert other.health.state_digest() == base.health.state_digest()
            assert [e.to_dict() for e in other.entries] == [
                e.to_dict() for e in base.entries
            ]

    def test_journal_entries_use_logical_time(self, tmp_path, fleet_trace, fleet_probs):
        _, outcome = run_whatif(fleet_trace, POLICY, probs=fleet_probs)
        assert outcome.entries  # the fixture fleet does trigger actions
        assert all(e.ts == float(e.day) for e in outcome.entries)


class TestGroundTruth:
    def test_fail_days_match_swap_log(self, fleet_trace):
        truth = ground_truth(fleet_trace)
        drives = fleet_trace.drives
        deploy = {
            int(drives.drive_id[i]): int(drives.deploy_day[i])
            for i in range(len(drives.drive_id))
        }
        swaps = fleet_trace.swaps
        assert truth.n_failures == len(set(swaps.drive_id.tolist()))
        for i in range(len(swaps.drive_id)):
            drive = int(swaps.drive_id[i])
            day = deploy[drive] + int(swaps.failure_age[i])
            assert truth.fail_day[drive] <= day
        assert set(truth.deploy_day) >= set(truth.fail_day)


def outcome_from_actions(actions: list[FleetAction]):
    """Apply a scripted action list and wrap it as a RunOutcome."""
    from repro.fleet import FleetHealth, RunOutcome

    actuator = Actuator()
    entries = [actuator.apply(a, ts=float(a.day)) for a in actions]
    return RunOutcome(
        state=actuator.state,
        health=FleetHealth(),
        entries=entries,
        n_actions=len(entries),
    )


class TestEvaluateOutcome:
    TRUTH = GroundTruth(
        fail_day={1: 10, 2: 20},
        deploy_day={1: 0, 2: 0, 3: 0},
        end_day={1: 10, 2: 20, 3: 30},
    )

    def act(self, action, drive, day):
        return FleetAction(
            action=action, drive_id=drive, day=day, risk=0.9,
            reason="scripted", cost=POLICY.costs.of(action),
        )

    def test_cost_arithmetic(self):
        outcome = outcome_from_actions(
            [
                self.act("replace", 1, 5),   # caught (out of service by day 9)
                self.act("replace", 3, 7),   # false: drive 3 never fails
            ]
        )
        report = evaluate_outcome(outcome, self.TRUTH, POLICY)
        assert (report.caught, report.missed) == (1, 1)
        assert report.false_replacements == 1
        assert report.spares_used == 2
        costs = POLICY.costs
        assert report.action_cost == pytest.approx(2 * costs.replace)
        assert report.miss_cost == pytest.approx(costs.miss)
        assert report.baseline_cost == pytest.approx(2 * costs.miss)
        assert report.savings == pytest.approx(
            report.baseline_cost - report.total_cost
        )
        # Drive 1 was in service days 0..4 of its 0..9 pre-failure window;
        # drive 2 (missed) was in service for all 14 days of 6..19.
        assert report.drive_days_at_risk == 5 + 14

    def test_quarantine_counts_as_caught_and_accrues_days(self):
        outcome = outcome_from_actions([self.act("quarantine", 1, 4)])
        report = evaluate_outcome(outcome, self.TRUTH, POLICY)
        assert report.caught == 1
        # Quarantined from day 4 until the failure ends observation at 10.
        assert report.quarantine_drive_days == 6

    def test_same_day_replacement_is_too_late(self):
        outcome = outcome_from_actions([self.act("replace", 1, 10)])
        report = evaluate_outcome(outcome, self.TRUTH, POLICY)
        assert report.caught == 0
        assert report.missed == 2

    def test_at_risk_window_validation(self):
        outcome = outcome_from_actions([])
        with pytest.raises(ValueError, match="at_risk_window"):
            evaluate_outcome(outcome, self.TRUTH, POLICY, at_risk_window=0)


class TestRunWhatif:
    def test_report_is_consistent(self, fleet_trace, fleet_probs):
        report, outcome = run_whatif(fleet_trace, POLICY, probs=fleet_probs)
        assert report.caught + report.missed == report.n_failures
        assert report.total_cost == pytest.approx(
            report.action_cost + report.miss_cost
        )
        assert report.baseline_cost == pytest.approx(
            report.n_failures * POLICY.costs.miss
        )
        assert report.spares_used == outcome.state.spares_used
        assert report.by_action == dict(outcome.state.by_action)
        assert outcome.n_events == len(fleet_probs)
        assert outcome.chain == ""  # no journal requested

    def test_topk_respects_budget(self, fleet_trace, fleet_probs):
        policy = TopKPolicy(budget=1, window_days=10_000, min_risk=0.2)
        report, _ = run_whatif(fleet_trace, policy, probs=fleet_probs)
        assert report.spares_used <= 1

    def test_probs_length_checked(self, fleet_trace, fleet_probs):
        with pytest.raises(ValueError, match="probs"):
            run_whatif(fleet_trace, POLICY, probs=fleet_probs[:-1])

    def test_needs_scores(self, fleet_trace):
        with pytest.raises(ValueError, match="predictor or probs"):
            run_whatif(fleet_trace, POLICY)
