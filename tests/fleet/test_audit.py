"""Audit journal: hash chain, tamper evidence, crash-safe appends."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.fleet import (
    AuditEntry,
    AuditError,
    AuditJournal,
    FleetState,
    apply_entry,
    journal_summary,
    read_journal,
    replay_journal,
    verify_journal,
)
from repro.fleet.audit import GENESIS, chain_digest


def drill_entry(i: int) -> AuditEntry:
    """Deterministic legal entry i (each touches its own drive)."""
    return AuditEntry(
        seq=i,
        ts=float(i),
        day=i,
        kind="action",
        action="watch",
        drive_id=i,
        prev_status="active",
        new_status="watched",
        risk=0.5,
        reason="drill",
        cost=0.5,
    )


def write_reference(path, n: int) -> None:
    with AuditJournal(path) as journal:
        for i in range(n):
            journal.append(drill_entry(i))


class TestChain:
    def test_chain_links_entries(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        write_reference(path, 3)
        entries = read_journal(path)
        prev = GENESIS
        for entry in entries:
            assert entry.chain == chain_digest(prev, entry.body())
            prev = entry.chain

    def test_verify_ok(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        write_reference(path, 5)
        report = verify_journal(path)
        assert report.ok
        assert report.n_entries == 5
        assert report.state is not None
        assert report.state.count("watched") == 5

    def test_edited_entry_detected(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        write_reference(path, 4)
        lines = path.read_text().splitlines()
        body = json.loads(lines[2])
        body["cost"] = 0.0  # cook the books
        lines[2] = json.dumps(body, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        report = verify_journal(path)
        assert not report.ok
        assert any("chain mismatch" in p for p in report.problems)
        assert report.state is None

    def test_removed_line_detected(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        write_reference(path, 4)
        lines = path.read_text().splitlines()
        del lines[1]
        path.write_text("\n".join(lines) + "\n")
        report = verify_journal(path)
        assert not report.ok
        assert any("seq" in p for p in report.problems)

    def test_reordered_lines_detected(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        write_reference(path, 4)
        lines = path.read_text().splitlines()
        lines[1], lines[2] = lines[2], lines[1]
        path.write_text("\n".join(lines) + "\n")
        assert not verify_journal(path).ok


class TestResume:
    def test_seq_and_chain_resume(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        ref = tmp_path / "ref.jsonl"
        write_reference(ref, 6)
        with AuditJournal(path) as journal:
            for i in range(3):
                journal.append(drill_entry(i))
        journal = AuditJournal(path)
        assert journal.next_seq == 3
        with journal:
            for i in range(3, 6):
                journal.append(drill_entry(i))
        assert path.read_bytes() == ref.read_bytes()
        assert verify_journal(path).ok

    def test_resume_refuses_corrupt_tail(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        write_reference(path, 2)
        with open(path, "a") as fh:
            fh.write("not json\n")
        with pytest.raises(AuditError, match="cannot resume"):
            AuditJournal(path)


class TestReaders:
    def test_read_missing_journal(self, tmp_path):
        with pytest.raises(AuditError, match="does not exist"):
            read_journal(tmp_path / "missing.jsonl")

    def test_read_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{}\n")
        with pytest.raises(AuditError, match="malformed"):
            read_journal(path)

    def test_entry_roundtrip_with_ref(self):
        entry = AuditEntry(
            seq=1, ts=2.0, day=3, kind="revert", action="replace",
            drive_id=4, prev_status="replaced", new_status="active",
            risk=0.9, reason="undo", cost=0.0, ref=0, chain="ab",
        )
        assert AuditEntry.from_dict(entry.to_dict()) == entry

    def test_summary(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        write_reference(path, 4)
        summary = journal_summary(read_journal(path))
        assert summary["n_entries"] == 4
        assert summary["by_action"] == {"watch": 4}
        assert summary["drives_touched"] == 4
        assert (summary["first_day"], summary["last_day"]) == (0, 3)
        assert summary["cost_total"] == pytest.approx(2.0)


#: The drill child: append entries slowly so the parent can SIGKILL
#: mid-run.  Prints READY after the journal is open.
_DRILL_CHILD = """
import sys, time
from repro.fleet import AuditJournal
from tests.fleet.test_audit import drill_entry

path, n = sys.argv[1], int(sys.argv[2])
journal = AuditJournal(path)
print("READY", flush=True)
for i in range(n):
    journal.append(drill_entry(i))
    time.sleep(0.05)
"""


class TestSigkillDrill:
    N = 40

    def test_killed_run_leaves_exact_byte_prefix(self, tmp_path):
        """SIGKILL mid-run: the journal on disk is a whole-line byte
        prefix of the uninterrupted run, replays exactly, and a resumed
        run reproduces the uninterrupted journal byte-for-byte."""
        partial = tmp_path / "partial.jsonl"
        ref = tmp_path / "ref.jsonl"
        write_reference(ref, self.N)
        env = dict(os.environ)
        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(repo_root, "src"),
                repo_root,
                env.get("PYTHONPATH", ""),
            ) if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", _DRILL_CHILD, str(partial), str(self.N)],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert proc.stdout is not None
            assert proc.stdout.readline().strip() == "READY"
            # Let a few entries land, then kill without warning.
            deadline = time.time() + 30
            while time.time() < deadline:
                if partial.exists() and partial.read_text().count("\n") >= 3:
                    break
                time.sleep(0.01)
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=30)

        partial_bytes = partial.read_bytes()
        assert partial_bytes  # at least one entry landed
        assert partial_bytes.endswith(b"\n")  # no torn trailing line
        assert ref.read_bytes().startswith(partial_bytes)

        # The partial journal replays to exactly the fold of its prefix.
        entries = read_journal(partial)
        n_landed = len(entries)
        assert 3 <= n_landed < self.N  # killed mid-run, not after
        expected = FleetState()
        for chained in read_journal(ref)[:n_landed]:
            apply_entry(expected, chained)
        assert replay_journal(partial).digest() == expected.digest()
        assert verify_journal(partial).ok

        # Recovery: resume the journal and append what was lost — the
        # result is byte-identical to the run that never crashed.
        with AuditJournal(partial) as journal:
            assert journal.next_seq == n_landed
            for i in range(n_landed, self.N):
                journal.append(drill_entry(i))
        assert partial.read_bytes() == ref.read_bytes()
