"""SLO objectives: validation, burn-rate classification, spec loading."""

from __future__ import annotations

import json

import pytest

from repro.obs.slo import (
    Objective,
    SloSpec,
    evaluate_objective,
    evaluate_slos,
    load_slo_spec,
    slo_exit_code,
)
from repro.obs.timeline import TimelineWindow


def _window(i, counters=None, gauges=None, quantiles=None, events=10, watermark=-1):
    return TimelineWindow(
        index=i,
        start_events=i * events,
        end_events=(i + 1) * events,
        watermark=watermark,
        counters=counters or {},
        gauges=gauges or {},
        quantiles=quantiles or {},
    )


def _dlq_objective(**over):
    kwargs = dict(
        name="dlq",
        metric="counters.repro_dlq_total",
        threshold=1.0,
        short_windows=2,
        long_windows=4,
        warn_burn=0.5,
        breach_burn=1.0,
    )
    kwargs.update(over)
    return Objective(**kwargs)


class TestObjectiveValidation:
    @pytest.mark.parametrize(
        "over",
        [
            {"name": ""},
            {"op": "<"},
            {"metric": "nope.foo"},
            {"short_windows": 0},
            {"short_windows": 5, "long_windows": 3},
            {"warn_burn": 0.0},
            {"warn_burn": 0.9, "breach_burn": 0.5},
            {"breach_burn": 1.5},
            {"metric": "gauges.depth", "per_event": True},
        ],
    )
    def test_rejects_bad_fields(self, over):
        with pytest.raises(ValueError):
            _dlq_objective(**over)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown keys"):
            Objective.from_dict(
                {"name": "x", "metric": "window.events", "threshold": 1, "oops": 2}
            )

    def test_from_dict_missing_required(self):
        with pytest.raises(ValueError, match="missing required key"):
            Objective.from_dict({"name": "x"})

    def test_roundtrip(self):
        obj = _dlq_objective(per_event=True)
        assert Objective.from_dict(obj.to_dict()) == obj


class TestClassification:
    def test_all_clean_is_ok(self):
        windows = [_window(i) for i in range(6)]
        result = evaluate_objective(_dlq_objective(), windows)
        assert result.state == "ok"
        assert result.windows_evaluated == 4  # long lookback caps it
        assert result.violations == 0

    def test_sustained_violation_breaches(self):
        windows = [
            _window(i, counters={"repro_dlq_total": 5.0}) for i in range(6)
        ]
        result = evaluate_objective(_dlq_objective(), windows)
        assert result.state == "breach"
        assert result.short_fraction == 1.0
        assert result.long_fraction == 1.0
        assert result.last_value == 5.0

    def test_fresh_spike_warns(self):
        windows = [_window(i) for i in range(3)] + [
            _window(3, counters={"repro_dlq_total": 5.0})
        ]
        result = evaluate_objective(_dlq_objective(), windows)
        # Short fraction 1/2 hits warn_burn but long fraction 1/4 stays
        # under breach territory: a spike, not a sustained burn.
        assert result.state == "warn"

    def test_no_data_is_ok_with_zero_windows(self):
        result = evaluate_objective(
            Objective(name="g", metric="gauges.absent", threshold=1.0), []
        )
        assert result.state == "ok"
        assert result.windows_evaluated == 0
        assert result.last_value is None

    def test_per_event_divides_by_window_span(self):
        obj = _dlq_objective(per_event=True, threshold=0.3)
        windows = [
            _window(i, counters={"repro_dlq_total": 2.0}, events=10)
            for i in range(4)
        ]
        result = evaluate_objective(obj, windows)
        assert result.last_value == pytest.approx(0.2)
        assert result.state == "ok"

    def test_bare_counter_name_sums_labeled_series(self):
        obj = _dlq_objective(threshold=3.0)
        windows = [
            _window(
                i,
                counters={
                    'repro_dlq_total{fault="late"}': 2.0,
                    'repro_dlq_total{fault="malformed"}': 3.0,
                },
            )
            for i in range(4)
        ]
        result = evaluate_objective(obj, windows)
        assert result.last_value == 5.0
        assert result.state == "breach"

    def test_clamped_quantile_counts_against_le_objective(self):
        obj = Objective(
            name="lat",
            metric="quantiles.repro_lat_seconds.p99",
            threshold=10.0,
            short_windows=1,
            long_windows=2,
            warn_burn=0.5,
            breach_burn=1.0,
        )
        windows = [
            _window(
                i,
                quantiles={
                    "repro_lat_seconds": {"count": 4, "p99": 1.0, "clamped": True}
                },
            )
            for i in range(2)
        ]
        result = evaluate_objective(obj, windows)
        # p99 estimate 1.0 <= 10.0, but the clamp means the histogram
        # overflowed — the objective cannot be proven met.
        assert result.state == "breach"

    def test_ge_objective_on_window_events(self):
        obj = Objective(
            name="throughput",
            metric="window.events",
            threshold=5.0,
            op=">=",
            short_windows=1,
            long_windows=2,
            warn_burn=0.5,
            breach_burn=1.0,
        )
        ok = evaluate_objective(obj, [_window(0, events=10)])
        bad = evaluate_objective(obj, [_window(0, events=2)])
        assert ok.state == "ok" and bad.state == "breach"

    def test_unknown_window_field_raises(self):
        obj = Objective(name="w", metric="window.nope", threshold=1.0)
        with pytest.raises(ValueError, match="unknown window field"):
            evaluate_objective(obj, [_window(0)])


class TestSpecAndReport:
    def test_overall_state_is_worst_objective(self):
        spec = SloSpec(
            objectives=(
                _dlq_objective(),
                Objective(
                    name="throughput",
                    metric="window.events",
                    threshold=100.0,
                    op=">=",
                    short_windows=1,
                    long_windows=1,
                    warn_burn=0.5,
                    breach_burn=1.0,
                ),
            )
        )
        report = evaluate_slos(spec, [_window(0, events=10)])
        assert report.state == "breach"
        assert report.exit_code == 2
        assert {r.name: r.state for r in report.objectives} == {
            "dlq": "ok",
            "throughput": "breach",
        }

    def test_exit_codes(self):
        assert slo_exit_code("ok") == 0
        assert slo_exit_code("warn") == 1
        assert slo_exit_code("breach") == 2

    def test_spec_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            SloSpec.from_dict(
                {
                    "objectives": [
                        {"name": "a", "metric": "window.events", "threshold": 1},
                        {"name": "a", "metric": "window.events", "threshold": 2},
                    ]
                }
            )

    def test_spec_requires_objectives_list(self):
        with pytest.raises(ValueError, match="objectives"):
            SloSpec.from_dict({})

    def test_load_slo_spec_roundtrip(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(
            json.dumps(
                {
                    "objectives": [
                        {"name": "dlq", "metric": "counters.x", "threshold": 1}
                    ]
                }
            )
        )
        spec = load_slo_spec(path)
        assert spec.objectives[0].name == "dlq"

    def test_load_slo_spec_bad_json(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_slo_spec(path)
