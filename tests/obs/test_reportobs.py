"""Manifest diff (drift vs. warning classification) and rendering."""

from __future__ import annotations

import copy

from repro.obs.manifest import RunManifest
from repro.obs.reportobs import diff_manifests, render_manifest


def _manifest_dict(seed: int = 7, records_digest: str = "a" * 64) -> dict:
    manifest = RunManifest(
        command="simulate",
        config={"seed": seed, "n_drives": 10},
        seeds={"seed": seed},
    )
    manifest.counts["rows"] = 1000
    manifest.outputs["records.npz"] = records_digest
    manifest.stages = [
        {
            "name": "repro.simulator.model",
            "calls": 3,
            "total_seconds": 1.0,
            "min_seconds": 0.2,
            "max_seconds": 0.5,
            "rows_out": 1000,
        }
    ]
    return manifest.to_dict()


class TestDiff:
    def test_identical_manifests_are_comparable(self):
        a = _manifest_dict()
        diff = diff_manifests(a, copy.deepcopy(a))
        assert diff.ok
        assert diff.drift == [] and diff.warnings == []
        assert "COMPARABLE" in diff.render()

    def test_timing_differences_are_never_drift(self):
        a = _manifest_dict()
        b = copy.deepcopy(a)
        b["elapsed_seconds"] = a["elapsed_seconds"] + 100.0
        b["created_unix"] = a["created_unix"] + 3600.0
        b["stages"][0]["total_seconds"] = 1.04  # below regression floor
        assert diff_manifests(a, b).ok

    def test_stage_time_regression_is_a_warning(self):
        a = _manifest_dict()
        b = copy.deepcopy(a)
        b["stages"][0]["total_seconds"] = 2.0  # 2x slower, > 0.05s absolute
        diff = diff_manifests(a, b)
        assert diff.ok  # still comparable
        (warn,) = diff.warnings
        assert warn.kind == "stage-time"
        assert "repro.simulator.model" in warn.field

    def test_seed_perturbation_is_drift(self):
        diff = diff_manifests(
            _manifest_dict(seed=7), _manifest_dict(seed=8, records_digest="b" * 64)
        )
        assert not diff.ok
        kinds = {d.kind for d in diff.drift}
        # Seed drift shows up in the seeds, the config (and its digest),
        # and the output digests.
        assert {"seed", "config", "identity", "output"} <= kinds
        assert "NOT COMPARABLE" in diff.render()

    def test_row_count_change_is_drift(self):
        a = _manifest_dict()
        b = copy.deepcopy(a)
        b["stages"][0]["rows_out"] = 999
        diff = diff_manifests(a, b)
        (entry,) = diff.drift
        assert entry.kind == "rows"
        assert entry.field == "stages.repro.simulator.model.rows_out"

    def test_missing_stage_is_drift(self):
        a = _manifest_dict()
        b = copy.deepcopy(a)
        b["stages"] = []
        diff = diff_manifests(a, b)
        (entry,) = diff.drift
        assert entry.kind == "stage"
        assert (entry.a, entry.b) == ("present", "absent")

    def test_validation_tally_change_is_drift(self):
        a = _manifest_dict()
        b = copy.deepcopy(a)
        b["validation"]["n_quarantined"] = 5
        diff = diff_manifests(a, b)
        assert any(d.kind == "validation" for d in diff.drift)

    def test_command_mismatch_is_identity_drift(self):
        a = _manifest_dict()
        b = copy.deepcopy(a)
        b["command"] = "train"
        assert any(
            d.kind == "identity" and d.field == "command"
            for d in diff_manifests(a, b).drift
        )


class TestRender:
    def test_render_manifest_one_screen(self):
        text = render_manifest(_manifest_dict())
        assert "Run manifest" in text and "simulate" in text
        assert "repro.simulator.model" in text
        assert "rows=1000" in text  # counts line
        assert "records.npz" in text
        assert "0 error(s)" in text

    def test_render_handles_sparse_manifest(self):
        text = render_manifest({"command": "score"})
        assert "score" in text
        assert "stages" not in text  # no stage table without stages
