"""Run manifests: digests, schema validation, atomic round-trip."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.obs import metrics, tracing
from repro.obs.manifest import (
    MANIFEST_VERSION,
    ManifestError,
    RunManifest,
    config_digest,
    file_digest,
    load_manifest,
    validate_manifest,
)


class TestDigests:
    def test_file_digest_matches_hashlib(self, tmp_path):
        payload = b"ssd telemetry\n" * 1000
        path = tmp_path / "blob.bin"
        path.write_bytes(payload)
        assert file_digest(path) == hashlib.sha256(payload).hexdigest()

    def test_file_digest_streams_across_chunks(self, tmp_path):
        payload = b"x" * 300
        path = tmp_path / "blob.bin"
        path.write_bytes(payload)
        assert file_digest(path, chunk_size=64) == hashlib.sha256(payload).hexdigest()

    def test_config_digest_key_order_invariant(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})

    def test_config_digest_sensitive_to_values(self):
        assert config_digest({"seed": 7}) != config_digest({"seed": 8})


def _build_manifest() -> RunManifest:
    manifest = RunManifest(
        command="simulate", config={"seed": 7, "n": 10}, seeds={"seed": 7}
    )
    with tracing.activate() as tracer, metrics.activate() as registry:
        with tracing.span("repro.test.stage", rows_in=10) as sp:
            sp.set(rows_out=9)
        metrics.inc("repro_rows_total", 9)
    manifest.counts["rows"] = 9
    manifest.record_validation(n_warnings=1, n_quarantined=2)
    manifest.finish(tracer, registry)
    return manifest


class TestRoundTrip:
    def test_write_then_load_validates_clean(self, tmp_path):
        manifest = _build_manifest()
        path = manifest.write(tmp_path / "run_manifest.json")
        body = load_manifest(path)
        assert validate_manifest(body) == []
        assert body["command"] == "simulate"
        assert body["schema_version"] == MANIFEST_VERSION
        assert body["seeds"] == {"seed": 7}
        assert body["counts"] == {"rows": 9}
        assert body["validation"] == {
            "n_errors": 0,
            "n_warnings": 1,
            "n_quarantined": 2,
        }
        (stage,) = body["stages"]
        assert stage["name"] == "repro.test.stage"
        assert stage["calls"] == 1
        assert stage["rows_in"] == 10 and stage["rows_out"] == 9
        assert body["metrics"]["repro_rows_total"]["series"][0]["value"] == 9.0
        assert body["config_digest"] == config_digest({"seed": 7, "n": 10})

    def test_spans_included_on_request(self, tmp_path):
        manifest = RunManifest(command="train")
        with tracing.activate() as tracer:
            with tracing.span("repro.test.only"):
                pass
        manifest.finish(tracer, include_spans=True)
        body = load_manifest(manifest.write(tmp_path / "m.json"))
        assert validate_manifest(body) == []
        assert body["spans"][0]["name"] == "repro.test.only"

    def test_spans_omitted_by_default(self, tmp_path):
        manifest = _build_manifest()
        body = load_manifest(manifest.write(tmp_path / "m.json"))
        assert "spans" not in body

    def test_input_output_digests(self, tmp_path):
        blob = tmp_path / "records.npz"
        blob.write_bytes(b"pretend npz")
        manifest = _build_manifest()
        manifest.add_input(blob)
        manifest.add_output(blob)
        body = manifest.to_dict()
        expected = hashlib.sha256(b"pretend npz").hexdigest()
        assert body["inputs"] == {"records.npz": expected}
        assert body["outputs"] == {"records.npz": expected}

    def test_write_leaves_no_tmp_files(self, tmp_path):
        _build_manifest().write(tmp_path / "m.json")
        assert [p.name for p in tmp_path.iterdir()] == ["m.json"]


class TestSchemaValidation:
    def test_missing_required_key(self):
        body = _build_manifest().to_dict()
        del body["seeds"]
        errors = validate_manifest(body)
        assert any("missing required key 'seeds'" in e for e in errors)

    def test_wrong_type(self):
        body = _build_manifest().to_dict()
        body["elapsed_seconds"] = "fast"
        assert any("$.elapsed_seconds" in e for e in validate_manifest(body))

    def test_enum_violation(self):
        body = _build_manifest().to_dict()
        body["command"] = "frobnicate"
        assert any("not one of" in e for e in validate_manifest(body))

    def test_digest_length(self):
        body = _build_manifest().to_dict()
        body["config_digest"] = "abc"
        assert any("shorter than 64" in e for e in validate_manifest(body))

    def test_bad_stage_entry(self):
        body = _build_manifest().to_dict()
        body["stages"] = [{"name": "x"}]  # missing calls/total_seconds
        errors = validate_manifest(body)
        assert any("$.stages[0]" in e for e in errors)

    def test_extra_keys_allowed(self):
        body = _build_manifest().to_dict()
        body["custom_section"] = {"anything": True}
        assert validate_manifest(body) == []


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ManifestError, match="does not exist"):
            load_manifest(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ManifestError, match="unreadable"):
            load_manifest(path)

    def test_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text(json.dumps([1, 2]))
        with pytest.raises(ManifestError, match="not a JSON object"):
            load_manifest(path)


class TestReproEpoch:
    def test_created_unix_honors_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EPOCH", "1733000000.5")
        manifest = RunManifest(command="test", config={}, seeds={})
        assert manifest.created_unix == 1733000000.5

    def test_unparsable_epoch_falls_back_to_wall_clock(self, monkeypatch):
        monkeypatch.setenv("REPRO_EPOCH", "not-a-number")
        manifest = RunManifest(command="test", config={}, seeds={})
        assert manifest.created_unix > 1.6e9  # real clock, no crash


class TestRecordSlo:
    def _report(self):
        return {
            "state": "warn",
            "objectives": [
                {
                    "name": "dlq",
                    "metric": "counters.repro_dlq_total",
                    "state": "warn",
                    "threshold": 1.0,
                    "op": "<=",
                    "windows_evaluated": 4,
                    "violations": 2,
                    "short_fraction": 0.5,
                    "long_fraction": 0.5,
                    "last_value": 3.0,
                }
            ],
        }

    def test_valid_report_lands_in_manifest(self, tmp_path):
        manifest = RunManifest(command="serve.run", config={}, seeds={})
        manifest.record_slo(self._report())
        body = manifest.to_dict()
        assert body["slo"]["state"] == "warn"
        assert validate_manifest(body) == []

    def test_invalid_state_rejected(self):
        manifest = RunManifest(command="test", config={}, seeds={})
        bad = self._report()
        bad["state"] = "on-fire"
        with pytest.raises(ManifestError, match="invalid slo record"):
            manifest.record_slo(bad)

    def test_missing_objective_fields_rejected(self):
        manifest = RunManifest(command="test", config={}, seeds={})
        with pytest.raises(ManifestError, match="invalid slo record"):
            manifest.record_slo({"state": "ok", "objectives": [{"name": "x"}]})

    def test_null_last_value_allowed(self, tmp_path):
        manifest = RunManifest(command="serve.run", config={}, seeds={})
        report = self._report()
        report["objectives"][0]["last_value"] = None
        manifest.record_slo(report)
        assert validate_manifest(manifest.to_dict()) == []
