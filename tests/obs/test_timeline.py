"""Windowed timeline: tick policy, deltas, ring bounds, merge, export."""

from __future__ import annotations

import json

import pytest

from repro.obs import metrics, timeline
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import (
    TickPolicy,
    Timeline,
    TimelineWindow,
    load_timeline_jsonl,
)


class TestTickPolicy:
    def test_defaults(self):
        policy = TickPolicy()
        assert policy.every_events == 1024
        assert policy.on_watermark
        assert policy.quantiles == (0.5, 0.9, 0.99)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"every_events": 0},
            {"max_windows": 0},
            {"quantiles": (0.5, 1.5)},
            {"quantiles": (-0.1,)},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            TickPolicy(**kwargs)


class TestEventTicks:
    def test_windows_close_on_event_boundaries(self):
        tl = Timeline(TickPolicy(every_events=10), registry=MetricsRegistry())
        tl.record(25)
        windows = tl.windows()
        assert [w.events for w in windows] == [10, 10]
        assert [(w.start_events, w.end_events) for w in windows] == [
            (0, 10),
            (10, 20),
        ]
        assert all(w.reason == "events" for w in windows)
        tl.flush()
        last = tl.windows()[-1]
        assert last.reason == "flush" and last.events == 5

    def test_flush_on_empty_partial_is_noop(self):
        tl = Timeline(TickPolicy(every_events=5), registry=MetricsRegistry())
        tl.record(5)
        tl.flush()
        assert tl.windows_emitted == 1

    def test_watermark_advance_closes_window(self):
        tl = Timeline(TickPolicy(every_events=100), registry=MetricsRegistry())
        tl.record(7, watermark=3)
        tl.record(4, watermark=4)
        windows = tl.windows()
        assert len(windows) == 1
        assert windows[0].reason == "watermark"
        assert windows[0].events == 7
        assert windows[0].watermark == 3

    def test_watermark_ticks_disabled(self):
        tl = Timeline(
            TickPolicy(every_events=100, on_watermark=False),
            registry=MetricsRegistry(),
        )
        tl.record(7, watermark=3)
        tl.record(4, watermark=4)
        assert tl.windows_emitted == 0
        assert tl.watermark == 4

    def test_rejects_negative_events(self):
        tl = Timeline(registry=MetricsRegistry())
        with pytest.raises(ValueError):
            tl.record(-1)


class TestWindowContents:
    def test_counter_deltas_per_window(self):
        reg = MetricsRegistry()
        tl = Timeline(TickPolicy(every_events=5), registry=reg)
        c = reg.counter("repro_test_total", help="t").labels()
        c.inc(3)
        tl.record(5)
        c.inc(4)
        tl.record(5)
        w0, w1 = tl.windows()
        assert w0.counters == {"repro_test_total": 3.0}
        assert w1.counters == {"repro_test_total": 4.0}
        assert tl.summary()["counter_totals"] == {"repro_test_total": 7.0}

    def test_zero_delta_counters_omitted(self):
        reg = MetricsRegistry()
        tl = Timeline(TickPolicy(every_events=5), registry=reg)
        reg.counter("repro_test_total", help="t").labels().inc(2)
        tl.record(5)
        tl.record(5)
        w0, w1 = tl.windows()
        assert "repro_test_total" in w0.counters
        assert w1.counters == {}

    def test_gauges_report_level_not_delta(self):
        reg = MetricsRegistry()
        tl = Timeline(TickPolicy(every_events=5), registry=reg)
        g = reg.gauge("repro_test_depth", help="t").labels()
        g.set(8)
        tl.record(5)
        g.set(2)
        tl.record(5)
        w0, w1 = tl.windows()
        assert w0.gauges == {"repro_test_depth": 8.0}
        assert w1.gauges == {"repro_test_depth": 2.0}

    def test_quantiles_from_window_local_bucket_deltas(self):
        reg = MetricsRegistry()
        tl = Timeline(TickPolicy(every_events=4, quantiles=(0.5,)), registry=reg)
        h = reg.histogram(
            "repro_test_seconds", help="t", buckets=(1.0, 2.0, 4.0)
        ).labels()
        for v in (0.5, 0.5, 0.5, 0.5):
            h.observe(v)
        tl.record(4)
        for v in (3.0, 3.0, 3.0, 3.0):
            h.observe(v)
        tl.record(4)
        w0, w1 = tl.windows()
        # Each window sees only its own observations: the second window's
        # median comes from the 3.0s alone, not the cumulative stream.
        assert w0.quantiles["repro_test_seconds"]["p50"] <= 1.0
        assert w1.quantiles["repro_test_seconds"]["p50"] > 2.0
        assert w0.quantiles["repro_test_seconds"]["count"] == 4
        assert not w0.quantiles["repro_test_seconds"]["clamped"]

    def test_quantile_clamped_flag_on_overflow(self):
        reg = MetricsRegistry()
        tl = Timeline(TickPolicy(every_events=2, quantiles=(0.99,)), registry=reg)
        h = reg.histogram(
            "repro_test_seconds", help="t", buckets=(1.0,)
        ).labels()
        h.observe(50.0)
        h.observe(60.0)
        tl.record(2)
        entry = tl.windows()[0].quantiles["repro_test_seconds"]
        assert entry["clamped"] is True

    def test_labeled_series_keyed_prometheus_style(self):
        reg = MetricsRegistry()
        tl = Timeline(TickPolicy(every_events=1), registry=reg)
        fam = reg.counter("repro_test_total", help="t", labelnames=("fault",))
        fam.labels(fault="late").inc(2)
        tl.record(1)
        assert tl.windows()[0].counters == {'repro_test_total{fault="late"}': 2.0}


class TestRingBuffer:
    def test_old_windows_dropped_and_counted(self):
        reg = MetricsRegistry()
        tl = Timeline(TickPolicy(every_events=1, max_windows=3), registry=reg)
        c = reg.counter("repro_test_total", help="t").labels()
        for _ in range(5):
            c.inc()
            tl.record(1)
        assert tl.windows_emitted == 5
        assert tl.windows_dropped == 2
        assert [w.index for w in tl.windows()] == [2, 3, 4]
        # Totals survive the ring: summary is exact despite the drops.
        assert tl.summary()["counter_totals"] == {"repro_test_total": 5.0}


class TestAbsorb:
    def _worker_delta(self, n_events, inc):
        reg = MetricsRegistry()
        tl = Timeline(TickPolicy(every_events=4), registry=reg)
        reg.counter("repro_test_total", help="t").labels().inc(inc)
        tl.record(n_events)
        return tl.delta()

    def test_absorb_offsets_and_reindexes(self):
        parent = Timeline(
            TickPolicy(every_events=4), registry=MetricsRegistry()
        )
        parent.record(3)  # open partial window
        parent.absorb(self._worker_delta(6, inc=5))
        windows = parent.windows()
        # The parent's partial closed first, then the worker's two windows
        # spliced in with offsets shifted past the parent's 3 events.
        assert [w.reason for w in windows] == ["flush", "events", "flush"]
        assert [w.index for w in windows] == [0, 1, 2]
        assert windows[1].start_events == 3
        assert parent.events_total == 9
        assert parent.summary()["counter_totals"] == {"repro_test_total": 5.0}

    def test_merge_in_task_order_is_deterministic(self):
        def merged(deltas):
            parent = Timeline(
                TickPolicy(every_events=4), registry=MetricsRegistry()
            )
            for d in deltas:
                parent.absorb(d)
            return (
                [w.to_dict() for w in parent.windows()],
                parent.summary(),
            )

        deltas = [json.loads(json.dumps(self._worker_delta(5, inc=i + 1))) for i in range(3)]
        assert merged(deltas) == merged([dict(d) for d in deltas])


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        tl = Timeline(TickPolicy(every_events=3), registry=reg)
        c = reg.counter("repro_test_total", help="t").labels()
        c.inc(2)
        tl.record(7, watermark=12)
        tl.flush()
        path = tmp_path / "timeline.jsonl"
        assert tl.export_jsonl(path) == len(tl.windows())
        loaded = load_timeline_jsonl(path)
        assert [w.to_dict() for w in loaded] == [
            w.to_dict() for w in tl.windows()
        ]

    def test_bad_line_reports_lineno(self, tmp_path):
        path = tmp_path / "timeline.jsonl"
        path.write_text('{"index": 0, "start_events": 0, "end_events": 3}\nnope\n')
        with pytest.raises(ValueError, match=":2:"):
            load_timeline_jsonl(path)


class TestModuleHelpers:
    def test_record_noops_when_inactive(self):
        assert timeline.current() is None
        timeline.record(100)  # must not raise

    def test_activate_installs_and_restores(self):
        with timeline.activate() as tl:
            assert timeline.current() is tl
            timeline.record(2)
            assert tl.events_total == 2
        assert timeline.current() is None

    def test_default_registry_follows_active(self):
        reg = MetricsRegistry()
        tl = Timeline(TickPolicy(every_events=1))
        with metrics.activate(reg):
            reg.counter("repro_test_total", help="t").labels().inc(3)
            tl.record(1)
        assert tl.windows()[0].counters == {"repro_test_total": 3.0}

    def test_window_roundtrip_from_dict(self):
        w = TimelineWindow(
            index=4,
            start_events=10,
            end_events=20,
            watermark=7,
            reason="watermark",
            counters={"a": 1.0},
            gauges={"g": 2.0},
            quantiles={"h": {"count": 3, "p50": 0.1, "clamped": False}},
        )
        assert TimelineWindow.from_dict(w.to_dict()).to_dict() == w.to_dict()
