"""Metrics registry: counters/gauges/histograms, quantiles, exporters."""

from __future__ import annotations

import math
from pathlib import Path

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

GOLDEN = Path(__file__).parent / "golden_metrics.prom"


def _golden_registry() -> MetricsRegistry:
    """Deterministic registry whose rendering is pinned by the golden file."""
    reg = MetricsRegistry()
    rows = reg.counter(
        "repro_rows_total", help="Rows processed", labelnames=("stage",)
    )
    rows.labels(stage="data.load_records").inc(1200)
    rows.labels(stage="ml.fit").inc(640)
    reg.gauge("repro_fleet_drives", help="Drives in the simulated fleet").labels().set(
        600
    )
    hist = reg.histogram(
        "repro_stage_seconds",
        help="Stage wall-clock seconds",
        labelnames=("stage",),
        buckets=(0.1, 0.5, 1.0),
    )
    h = hist.labels(stage="simulate")
    for value in (0.05, 0.3, 0.75, 2.5):
        h.observe(value)
    return reg


class TestSeries:
    def test_counter_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only increase"):
            Counter().inc(-1)

    def test_gauge_set_and_inc(self):
        g = Gauge()
        g.set(10)
        g.inc(-3)
        assert g.value == 7.0


class TestHistogram:
    def test_bucket_math_uniform(self):
        # 1..100 uniformly into decade buckets: cumulative counts are exact.
        h = Histogram(buckets=tuple(float(b) for b in range(10, 101, 10)))
        for v in range(1, 101):
            h.observe(v)
        cum = h.cumulative()
        assert [c for _, c in cum] == [10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 100]
        assert cum[-1][0] == float("inf")
        assert h.count == 100
        assert h.sum == sum(range(1, 101))

    def test_known_quantiles_uniform(self):
        # On uniform 1..100 data with bucket width 10 the interpolated
        # quantiles are exact: q -> 100 * q.
        h = Histogram(buckets=tuple(float(b) for b in range(10, 101, 10)))
        for v in range(1, 101):
            h.observe(v)
        assert h.quantile(0.25) == pytest.approx(25.0)
        assert h.quantile(0.5) == pytest.approx(50.0)
        assert h.quantile(0.9) == pytest.approx(90.0)

    def test_quantile_overflow_clamps_to_top_bound(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(100.0)  # lands in +Inf bucket
        assert h.quantile(0.99) == 2.0

    def test_quantile_empty_is_nan(self):
        assert math.isnan(Histogram(buckets=(1.0,)).quantile(0.5))

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0,)).quantile(1.5)

    def test_boundary_value_counts_in_its_bucket(self):
        # Prometheus `le` semantics: an observation equal to a bound
        # belongs to that bound's bucket.
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.cumulative()[0] == (1.0, 1)

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))


class TestRegistry:
    def test_family_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labelnames=("stage",))
        b = reg.counter("x_total", labelnames=("stage",))
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("x_total")

    def test_labelnames_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("stage",))
        with pytest.raises(ValueError, match="already registered with labels"):
            reg.counter("x_total", labelnames=("model",))

    def test_labels_mismatch_raises(self):
        reg = MetricsRegistry()
        fam = reg.counter("x_total", labelnames=("stage",))
        with pytest.raises(ValueError, match="expects labels"):
            fam.labels(model="a")

    def test_to_dict_shape(self):
        reg = _golden_registry()
        snap = reg.to_dict()
        assert snap["repro_rows_total"]["kind"] == "counter"
        series = snap["repro_rows_total"]["series"]
        assert {"labels": {"stage": "data.load_records"}, "value": 1200.0} in series
        hist = snap["repro_stage_seconds"]["series"][0]
        assert hist["count"] == 4
        assert hist["buckets"][-1][0] == "+Inf"


class TestPrometheusExport:
    def test_matches_golden_file(self):
        rendered = _golden_registry().render_prometheus()
        assert rendered == GOLDEN.read_text()

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("p",)).labels(p='a"b\\c\nd').inc()
        line = reg.render_prometheus().splitlines()[-1]
        assert line == 'x_total{p="a\\"b\\\\c\\nd"} 1'

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestModuleHelpers:
    def test_helpers_noop_when_inactive(self):
        assert metrics.current() is None
        metrics.inc("x_total")
        metrics.set_gauge("y", 1.0)
        metrics.observe("z_seconds", 0.1)
        assert metrics.current() is None

    def test_helpers_record_when_active(self):
        with metrics.activate() as reg:
            metrics.inc("x_total", 2, stage="a")
            metrics.set_gauge("y", 5.0)
            metrics.observe("z_seconds", 0.3, buckets=(1.0,))
        assert metrics.current() is None
        snap = reg.to_dict()
        assert snap["x_total"]["series"][0]["value"] == 2.0
        assert snap["y"]["series"][0]["value"] == 5.0
        assert snap["z_seconds"]["series"][0]["count"] == 1


class TestQuantileInfo:
    def test_clamped_flag_surfaces_overflow(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(100.0)
        value, clamped = h.quantile_info(0.99)
        assert value == 2.0 and clamped is True

    def test_unclamped_when_within_bounds(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(0.5)
        value, clamped = h.quantile_info(0.5)
        assert value <= 1.0 and clamped is False

    def test_bucket_quantile_standalone_matches_histogram(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        expected = h.quantile_info(0.9)
        got = metrics.bucket_quantile(
            h.upper_bounds, list(h.bucket_counts), h.inf_count, 0.9
        )
        assert got == expected

    def test_to_dict_exposes_overflow_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("h_seconds", help="h", buckets=(1.0,)).labels()
        h.observe(0.5)
        h.observe(99.0)
        entry = reg.to_dict()["h_seconds"]["series"][0]
        assert entry["overflow"] == 1
        assert entry["count"] == 2


class TestMergeSnapshot:
    def test_mismatched_bucket_layout_rejected(self):
        a = MetricsRegistry()
        a.histogram("h_seconds", help="h", buckets=(0.1, 1.0)).labels().observe(0.2)
        b = MetricsRegistry()
        b.histogram("h_seconds", help="h", buckets=(0.5, 2.0)).labels().observe(0.2)
        with pytest.raises(ValueError, match="bucket layout mismatch"):
            a.merge_snapshot(b.snapshot())

    def test_mismatched_labelnames_rejected(self):
        a = MetricsRegistry()
        a.counter("jobs_total", help="j", labelnames=("stage",)).labels(
            stage="sim"
        ).inc()
        b = MetricsRegistry()
        b.counter("jobs_total", help="j", labelnames=("worker",)).labels(
            worker="w0"
        ).inc()
        with pytest.raises(ValueError, match="label"):
            a.merge_snapshot(b.snapshot())

    def test_disjoint_label_values_create_new_series(self):
        a = MetricsRegistry()
        a.counter("jobs_total", help="j", labelnames=("stage",)).labels(
            stage="sim"
        ).inc(2)
        b = MetricsRegistry()
        b.counter("jobs_total", help="j", labelnames=("stage",)).labels(
            stage="fit"
        ).inc(3)
        a.merge_snapshot(b.snapshot())
        rendered = a.render_prometheus()
        assert 'jobs_total{stage="sim"} 2' in rendered
        assert 'jobs_total{stage="fit"} 3' in rendered

    def test_unseen_family_created_on_merge(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        b.gauge("depth", help="queue depth").labels().set(4)
        a.merge_snapshot(b.snapshot())
        assert a.to_dict()["depth"]["series"][0]["value"] == 4.0
