"""Span tracer: nesting, timing monotonicity, aggregation, activation."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import tracing
from repro.obs.tracing import Span, Tracer


class TestSpanNesting:
    def test_parent_child_ids(self):
        tracer = Tracer()
        with tracer.span("repro.test.outer") as outer:
            with tracer.span("repro.test.inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.span_id != outer.span_id

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("repro.test.outer") as outer:
            with tracer.span("repro.test.a") as a:
                pass
            with tracer.span("repro.test.b") as b:
                pass
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id

    def test_finished_ordered_by_start(self):
        tracer = Tracer()
        with tracer.span("repro.test.outer"):
            with tracer.span("repro.test.inner"):
                pass
        names = [s.name for s in tracer.finished()]
        # The outer span starts first even though it finishes last.
        assert names == ["repro.test.outer", "repro.test.inner"]

    def test_stack_pops_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("repro.test.boom"):
                raise RuntimeError("boom")
        # The failed span still lands in the collector, closed.
        (sp,) = tracer.finished()
        assert sp.duration is not None
        # And a new span after the failure is a root again.
        with tracer.span("repro.test.after") as after:
            pass
        assert after.parent_id is None


class TestTimingMonotonicity:
    def test_durations_nonnegative_and_nested_within_parent(self):
        tracer = Tracer()
        with tracer.span("repro.test.outer") as outer:
            with tracer.span("repro.test.inner") as inner:
                time.sleep(0.01)
        assert inner.duration is not None and outer.duration is not None
        assert inner.duration >= 0.0
        assert outer.duration >= inner.duration
        assert inner.start >= outer.start

    def test_sequential_spans_have_nondecreasing_starts(self):
        tracer = Tracer()
        for i in range(5):
            with tracer.span(f"repro.test.s{i}"):
                pass
        starts = [s.start for s in tracer.finished()]
        assert starts == sorted(starts)
        assert all(s >= 0.0 for s in starts)


class TestAttrsAndSummary:
    def test_set_and_add(self):
        sp = Span(name="x", span_id=0, parent_id=None, start=0.0)
        sp.set(rows_in=10, model=2)
        sp.add(rows_out=3)
        sp.add(rows_out=4)
        assert sp.attrs == {"rows_in": 10, "model": 2, "rows_out": 7}

    def test_stage_summary_aggregates(self):
        tracer = Tracer()
        for rows in (10, 20, 30):
            with tracer.span("repro.test.load", rows_in=rows) as sp:
                sp.set(rows_out=rows - 1)
        summary = tracer.stage_summary()
        agg = summary["repro.test.load"]
        assert agg["calls"] == 3
        assert agg["rows_in"] == 60
        assert agg["rows_out"] == 57
        assert agg["total_seconds"] >= agg["max_seconds"] >= agg["min_seconds"] >= 0

    def test_stage_summary_ignores_non_numeric_and_unprefixed(self):
        tracer = Tracer()
        with tracer.span("repro.test.x", model="PCIe-A", fold=3, n_bad=2):
            pass
        agg = tracer.stage_summary()["repro.test.x"]
        assert "model" not in agg and "fold" not in agg
        assert agg["n_bad"] == 2

    def test_to_dicts_round_trip_fields(self):
        tracer = Tracer()
        with tracer.span("repro.test.x", rows_in=5):
            pass
        (d,) = tracer.to_dicts()
        assert d["name"] == "repro.test.x"
        assert d["attrs"] == {"rows_in": 5}
        assert d["parent_id"] is None
        assert d["duration"] >= 0.0


class TestActivation:
    def test_module_span_noop_when_inactive(self):
        assert tracing.current() is None
        with tracing.span("repro.test.ignored", rows_in=1) as sp:
            # Null span swallows set/add and supports chaining.
            assert sp.set(rows_out=2).add(n_x=1) is sp

    def test_activate_collects_and_restores(self):
        assert tracing.current() is None
        with tracing.activate() as tracer:
            assert tracing.current() is tracer
            with tracing.span("repro.test.real"):
                pass
        assert tracing.current() is None
        assert [s.name for s in tracer.finished()] == ["repro.test.real"]

    def test_activate_nested_restores_previous(self):
        outer_tracer = Tracer()
        with tracing.activate(outer_tracer):
            with tracing.activate() as inner_tracer:
                assert tracing.current() is inner_tracer
            assert tracing.current() is outer_tracer
        assert tracing.current() is None

    def test_traced_decorator_default_name(self):
        @tracing.traced()
        def my_stage():
            return 42

        with tracing.activate() as tracer:
            assert my_stage() == 42
        (sp,) = tracer.finished()
        # Default name follows repro.<module>.<function>.
        assert sp.name.startswith("repro.") and sp.name.endswith(".my_stage")

    def test_traced_decorator_explicit_name(self):
        @tracing.traced("repro.test.custom")
        def fn():
            return "ok"

        with tracing.activate() as tracer:
            fn()
        assert tracer.finished()[0].name == "repro.test.custom"


class TestThreadSafety:
    def test_concurrent_spans_unique_ids(self):
        tracer = Tracer()
        n_threads, per_thread = 8, 50

        def work(tid: int) -> None:
            for i in range(per_thread):
                with tracer.span("repro.test.thread", n_items=1) as sp:
                    sp.set(tid=tid, i=i)

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tracer.finished()
        assert len(spans) == n_threads * per_thread
        assert len({s.span_id for s in spans}) == len(spans)
        # Per-thread stacks: no span picked up a parent from another thread.
        assert all(s.parent_id is None for s in spans)
        agg = tracer.stage_summary()["repro.test.thread"]
        assert agg["calls"] == n_threads * per_thread
        assert agg["n_items"] == n_threads * per_thread
