"""CLI tests for `obs tail`, `obs slo`, and `obs bench-diff`.

These commands operate on artifacts (event logs, timeline exports, bench
payloads), so the tests craft files directly — no fleet required.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.eventlog import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import TickPolicy, Timeline


@pytest.fixture()
def event_log(tmp_path):
    path = tmp_path / "events.jsonl"
    with EventLog(path) as log:
        log.emit("serve.engine.heartbeat", level="debug", events_seen=100)
        log.emit("serve.guard.dead_letter", "late event", level="warn", fault="late")
        log.emit("serve.health.transition", "ready -> degraded", level="warn")
    return path


@pytest.fixture()
def timeline_jsonl(tmp_path):
    reg = MetricsRegistry()
    tl = Timeline(TickPolicy(every_events=10), registry=reg)
    dlq = reg.counter("repro_dlq_total", help="d").labels()
    for i in range(4):
        if i == 3:  # fresh spike: only the newest window violates
            dlq.inc(5)
        tl.record(10)
    path = tmp_path / "timeline.jsonl"
    tl.export_jsonl(path)
    return path


def _spec(tmp_path, threshold, **over):
    body = {
        "name": "dlq",
        "metric": "counters.repro_dlq_total",
        "threshold": threshold,
        "short_windows": 2,
        "long_windows": 4,
        "warn_burn": 0.5,
        "breach_burn": 1.0,
    }
    body.update(over)
    path = tmp_path / f"slo_{threshold}.json"
    path.write_text(json.dumps({"objectives": [body]}))
    return path


class TestObsTail:
    def test_prints_all_events(self, event_log, capsys):
        assert main(["obs", "tail", str(event_log)]) == 0
        out = capsys.readouterr().out
        assert "serve.engine.heartbeat" in out
        assert "serve.guard.dead_letter" in out
        assert "fault=late" in out

    def test_level_and_kind_filters(self, event_log, capsys):
        assert (
            main(
                [
                    "obs",
                    "tail",
                    str(event_log),
                    "--level",
                    "warn",
                    "--kind",
                    "serve.health",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "serve.health.transition" in out
        assert "heartbeat" not in out
        assert "dead_letter" not in out

    def test_last_n(self, event_log, capsys):
        assert main(["obs", "tail", str(event_log), "--last", "1"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1
        assert "serve.health.transition" in out[0]

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["obs", "tail", str(tmp_path / "nope.jsonl")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_malformed_log_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main(["obs", "tail", str(path)]) == 2


class TestObsSlo:
    def test_ok_exits_zero(self, tmp_path, timeline_jsonl, capsys):
        spec = _spec(tmp_path, threshold=100.0)
        code = main(
            ["obs", "slo", "--spec", str(spec), "--timeline", str(timeline_jsonl)]
        )
        assert code == 0
        assert "slo ok" in capsys.readouterr().out

    def test_warn_exits_one(self, tmp_path, timeline_jsonl, capsys):
        # 1/4 windows violate: short fraction hits warn_burn, but the
        # long window stays under breach_burn.
        spec = _spec(tmp_path, threshold=1.0)
        code = main(
            ["obs", "slo", "--spec", str(spec), "--timeline", str(timeline_jsonl)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "slo warn" in out and "1/4" in out

    def test_breach_exits_two(self, tmp_path, timeline_jsonl, capsys):
        spec = _spec(tmp_path, threshold=100.0, metric="window.events", op=">=")
        code = main(
            ["obs", "slo", "--spec", str(spec), "--timeline", str(timeline_jsonl)]
        )
        assert code == 2
        assert "slo breach" in capsys.readouterr().out

    def test_missing_spec_exits_two(self, timeline_jsonl, tmp_path, capsys):
        code = main(
            [
                "obs",
                "slo",
                "--spec",
                str(tmp_path / "nope.json"),
                "--timeline",
                str(timeline_jsonl),
            ]
        )
        assert code == 2

    def test_missing_timeline_exits_two(self, tmp_path, capsys):
        spec = _spec(tmp_path, threshold=1.0)
        code = main(
            [
                "obs",
                "slo",
                "--spec",
                str(spec),
                "--timeline",
                str(tmp_path / "nope.jsonl"),
            ]
        )
        assert code == 2
        assert "--timeline-out" in capsys.readouterr().err


class TestObsBenchDiff:
    BASE = {
        "n_events": 1000,
        "n_drives": 30,
        "workers": 1,
        "chunk_rows": 8192,
        "parity": True,
        "events_per_second": 10000.0,
        "latency_p50_us": 100.0,
        "latency_p95_us": 200.0,
        "latency_p99_us": 400.0,
        "latency_events": 500,
        "elapsed_seconds": 0.1,
    }

    def _write(self, tmp_path, name, **over):
        body = dict(self.BASE)
        body.update(over)
        path = tmp_path / name
        path.write_text(json.dumps(body))
        return path

    def test_identical_payloads_ok(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json")
        b = self._write(tmp_path, "b.json")
        assert main(["obs", "bench-diff", str(a), str(b)]) == 0
        assert "Result: OK" in capsys.readouterr().out

    def test_throughput_regression_exits_one(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json")
        b = self._write(tmp_path, "b.json", events_per_second=5000.0)
        assert main(["obs", "bench-diff", str(a), str(b)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_latency_regression_exits_one(self, tmp_path):
        a = self._write(tmp_path, "a.json")
        b = self._write(tmp_path, "b.json", latency_p99_us=4000.0)
        assert main(["obs", "bench-diff", str(a), str(b)]) == 1

    def test_max_regression_loosens_gate(self, tmp_path):
        a = self._write(tmp_path, "a.json")
        b = self._write(tmp_path, "b.json", events_per_second=5000.0)
        assert (
            main(
                [
                    "obs",
                    "bench-diff",
                    str(a),
                    str(b),
                    "--max-regression",
                    "0.9",
                ]
            )
            == 0
        )

    def test_parity_loss_always_regresses(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json")
        b = self._write(tmp_path, "b.json", parity=False)
        assert (
            main(
                [
                    "obs",
                    "bench-diff",
                    str(a),
                    str(b),
                    "--max-regression",
                    "0.99",
                ]
            )
            == 1
        )

    def test_context_mismatch_warns_not_fails(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json")
        b = self._write(tmp_path, "b.json", workers=4)
        assert main(["obs", "bench-diff", str(a), str(b)]) == 0
        assert "warning" in capsys.readouterr().out.lower()

    def test_not_a_bench_payload_exits_two(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json")
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"something": "else"}))
        assert main(["obs", "bench-diff", str(a), str(bad)]) == 2
        assert "not a `serve bench" in capsys.readouterr().err
