"""Structured event log: envelope, levels, seq resume, span correlation."""

from __future__ import annotations

import json

import pytest

from repro.obs import eventlog, tracing
from repro.obs.eventlog import EventLog, iter_events, load_events


def _lines(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


class TestEmit:
    def test_envelope_fields(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("serve.guard.dead_letter", "late event", level="warn", fault="late")
        (rec,) = _lines(path)
        assert rec["seq"] == 0
        assert rec["level"] == "warn"
        assert rec["kind"] == "serve.guard.dead_letter"
        assert rec["msg"] == "late event"
        assert rec["fault"] == "late"
        assert rec["span"] is None
        assert isinstance(rec["ts"], float)

    def test_reserved_extras_prefixed_not_clobbered(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("k", "message", level="info", seq=99, span="shadow")
        (rec,) = _lines(path)
        assert rec["msg"] == "message"
        assert rec["seq"] == 0
        assert rec["x_seq"] == 99
        assert rec["span"] is None
        assert rec["x_span"] == "shadow"

    def test_min_level_drops_below_threshold(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, min_level="warn") as log:
            log.emit("a", level="debug")
            log.emit("b", level="info")
            log.emit("c", level="warn")
            log.emit("d", level="error")
        assert [r["kind"] for r in _lines(path)] == ["c", "d"]

    def test_unknown_level_rejected(self, tmp_path):
        with EventLog(tmp_path / "events.jsonl") as log:
            with pytest.raises(ValueError, match="unknown event level"):
                log.emit("k", level="fatal")

    def test_seq_resumes_from_existing_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("a")
            log.emit("b")
        with EventLog(path) as log:
            log.emit("c")
        assert [r["seq"] for r in _lines(path)] == [0, 1, 2]

    def test_span_correlation_with_active_tracer(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tracer = tracing.Tracer()
        with tracing.activate(tracer), EventLog(path) as log:
            with tracer.span("repro.test.outer"):
                log.emit("inside")
            log.emit("outside")
        inside, outside = _lines(path)
        assert inside["span"] is not None
        assert outside["span"] is None

    def test_repro_epoch_pins_ts(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EPOCH", "1733000000.0")
        with EventLog(tmp_path / "e.jsonl") as log:
            log.emit("k")
        (rec,) = _lines(tmp_path / "e.jsonl")
        assert rec["ts"] == 1733000000.0

    def test_counts_per_level(self, tmp_path):
        with EventLog(tmp_path / "e.jsonl") as log:
            log.emit("a", level="warn")
            log.emit("b", level="warn")
            log.emit("c", level="info")
            counts = log.counts()
        assert counts["warn"] == 2 and counts["info"] == 1

    def test_emit_after_close_is_noop(self, tmp_path):
        path = tmp_path / "e.jsonl"
        log = EventLog(path)
        log.emit("a")
        log.close()
        log.emit("b")
        assert len(_lines(path)) == 1


class TestReaders:
    def _write(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EventLog(path) as log:
            log.emit("serve.guard.dead_letter", level="warn")
            log.emit("serve.health.transition", level="info")
            log.emit("serve.engine.heartbeat", level="debug")
        return path

    def test_level_filter(self, tmp_path):
        path = self._write(tmp_path)
        kinds = [r["kind"] for r in iter_events(path, min_level="info")]
        assert kinds == ["serve.guard.dead_letter", "serve.health.transition"]

    def test_kind_prefix_filter(self, tmp_path):
        path = self._write(tmp_path)
        events = load_events(path, kind_prefix="serve.health")
        assert [r["kind"] for r in events] == ["serve.health.transition"]

    def test_malformed_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"seq": 0, "kind": "a", "level": "info"}\n[1, 2]\n')
        with pytest.raises(ValueError, match=":2:"):
            load_events(path)


class TestModuleHelpers:
    def test_emit_noops_when_inactive(self):
        assert eventlog.current() is None
        eventlog.emit("k", "no sink")  # must not raise

    def test_activate_installs_and_restores(self, tmp_path):
        with EventLog(tmp_path / "e.jsonl") as log:
            with eventlog.activate(log):
                assert eventlog.current() is log
                eventlog.emit("k", level="warn")
            assert eventlog.current() is None
        assert len(_lines(tmp_path / "e.jsonl")) == 1
