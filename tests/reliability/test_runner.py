"""Crash-safety tests: atomic writes, retries, checkpointed simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.reliability.runner import (
    CheckpointStore,
    atomic_save_npz,
    atomic_write,
    retry_io,
    simulate_fleet_resumable,
)
from repro.simulator import FleetConfig, default_models, simulate_fleet

SMALL = FleetConfig(
    n_drives_per_model=12, horizon_days=120, deploy_spread_days=30, seed=77
)


class TestAtomicWrite:
    def test_success_replaces(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        with atomic_write(target, "w") as fh:
            fh.write("new")
        assert target.read_text() == "new"
        assert list(tmp_path.iterdir()) == [target]  # no stray tmp files

    def test_failure_preserves_old_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        with pytest.raises(RuntimeError):
            with atomic_write(target, "w") as fh:
                fh.write("half-written")
                raise RuntimeError("crash mid-write")
        assert target.read_text() == "old"
        assert list(tmp_path.iterdir()) == [target]

    def test_atomic_save_npz_roundtrip(self, tmp_path):
        path = tmp_path / "a.npz"
        atomic_save_npz(path, x=np.arange(5))
        with np.load(path) as payload:
            assert np.array_equal(payload["x"], np.arange(5))


class TestRetryIO:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}
        delays: list[float] = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        out = retry_io(flaky, retries=4, jitter=0.0, sleep=delays.append)
        assert out == "ok"
        assert calls["n"] == 3
        assert delays == [0.05, 0.10]  # exponential, no jitter

    def test_exhaustion_reraises(self):
        def always_fails():
            raise OSError("permanent")

        with pytest.raises(OSError, match="permanent"):
            retry_io(always_fails, retries=2, sleep=lambda _: None)

    def test_non_matching_exception_not_retried(self):
        calls = {"n": 0}

        def boom():
            calls["n"] += 1
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            retry_io(boom, retries=5, sleep=lambda _: None)
        assert calls["n"] == 1

    def test_delay_capped(self):
        delays: list[float] = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 7:
                raise OSError("x")
            return 1

        retry_io(
            flaky, retries=6, base_delay=0.5, max_delay=1.0, jitter=0.0,
            sleep=delays.append,
        )
        assert max(delays) == 1.0


def _arrays_equal(x: np.ndarray, y: np.ndarray) -> bool:
    if np.issubdtype(np.asarray(x).dtype, np.floating):
        return np.array_equal(x, y, equal_nan=True)
    return np.array_equal(x, y)


def _traces_equal(a, b) -> bool:
    if len(a.records) != len(b.records):
        return False
    for k, v in a.records.items():
        if not _arrays_equal(v, b.records[k]):
            return False
    for name in ("drive_id", "model", "deploy_day", "end_of_observation_age"):
        if not _arrays_equal(getattr(a.drives, name), getattr(b.drives, name)):
            return False
    for name in ("drive_id", "failure_age", "swap_age", "reentry_age"):
        if not _arrays_equal(getattr(a.swaps, name), getattr(b.swaps, name)):
            return False
    return True


class TestResumableSimulation:
    def test_matches_one_shot(self, tmp_path):
        expected = simulate_fleet(SMALL)
        got = simulate_fleet_resumable(
            SMALL, checkpoint_dir=tmp_path / "ckpt", chunk_size=7
        )
        assert _traces_equal(expected, got)

    def test_abort_and_resume_is_identical(self, tmp_path):
        expected = simulate_fleet(SMALL)

        class Abort(Exception):
            pass

        def bomb(done, total):
            if done == 2:  # die with 2 of several chunks persisted
                raise Abort

        with pytest.raises(Abort):
            simulate_fleet_resumable(
                SMALL, checkpoint_dir=tmp_path / "ckpt", chunk_size=7,
                progress=bomb,
            )
        simulated: list[int] = []
        got = simulate_fleet_resumable(
            SMALL, checkpoint_dir=tmp_path / "ckpt", chunk_size=7, resume=True,
            progress=lambda done, total: simulated.append(done),
        )
        assert _traces_equal(expected, got)
        # The first two chunks were loaded, not re-simulated: the
        # checkpoint files must not have been rewritten.
        store = CheckpointStore(
            directory=tmp_path / "ckpt", digest="", n_chunks=0
        )
        assert store.chunk_path(0).exists()

    def test_resume_ignores_incompatible_checkpoints(self, tmp_path):
        simulate_fleet_resumable(
            SMALL, checkpoint_dir=tmp_path / "ckpt", chunk_size=7
        )
        other = FleetConfig(
            n_drives_per_model=12, horizon_days=120, deploy_spread_days=30, seed=78
        )
        got = simulate_fleet_resumable(
            other, checkpoint_dir=tmp_path / "ckpt", chunk_size=7, resume=True
        )
        assert _traces_equal(got, simulate_fleet(other))

    def test_damaged_chunk_is_resimulated(self, tmp_path):
        expected = simulate_fleet(SMALL)

        def bomb(done, total):
            if done == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            simulate_fleet_resumable(
                SMALL, checkpoint_dir=tmp_path / "ckpt", chunk_size=7,
                progress=bomb,
            )
        # Corrupt the first completed chunk in place.
        chunk0 = tmp_path / "ckpt" / "chunk_00000.npz"
        chunk0.write_bytes(chunk0.read_bytes()[: chunk0.stat().st_size // 2])
        got = simulate_fleet_resumable(
            SMALL, checkpoint_dir=tmp_path / "ckpt", chunk_size=7, resume=True
        )
        assert _traces_equal(expected, got)

    def test_without_resume_starts_fresh(self, tmp_path):
        simulate_fleet_resumable(
            SMALL, checkpoint_dir=tmp_path / "ckpt", chunk_size=7
        )
        before = (tmp_path / "ckpt" / "chunk_00000.npz").stat().st_mtime_ns
        simulate_fleet_resumable(
            SMALL, checkpoint_dir=tmp_path / "ckpt", chunk_size=7, resume=False
        )
        after = (tmp_path / "ckpt" / "chunk_00000.npz").stat().st_mtime_ns
        assert after > before  # chunk re-simulated and rewritten

    def test_cleanup_removes_directory(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        simulate_fleet_resumable(SMALL, checkpoint_dir=ckpt, chunk_size=7)
        CheckpointStore(directory=ckpt, digest="", n_chunks=0).cleanup()
        assert not ckpt.exists()

    def test_invalid_chunk_size(self, tmp_path):
        with pytest.raises(ValueError, match="chunk_size"):
            simulate_fleet_resumable(SMALL, checkpoint_dir=tmp_path, chunk_size=0)

    def test_models_override(self, tmp_path):
        models = default_models()[:2]
        expected = simulate_fleet(SMALL, models=models)
        got = simulate_fleet_resumable(
            SMALL, checkpoint_dir=tmp_path / "ckpt", chunk_size=5, models=models
        )
        assert _traces_equal(expected, got)
