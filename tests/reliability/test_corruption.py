"""Unit tests for the seeded fault injector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import TraceIntegrityError, load_raw_columns_npz, save_dataset_npz
from repro.reliability import (
    DEFAULT_RATES,
    FAULT_CLASSES,
    FaultInjector,
    truncate_file,
)


class TestDeterminism:
    def test_same_seed_same_corruption(self, dense_columns):
        a = FaultInjector(seed=9).inject(dense_columns, classes=FAULT_CLASSES[:5])
        b = FaultInjector(seed=9).inject(dense_columns, classes=FAULT_CLASSES[:5])
        assert a.faults == b.faults
        for k in a.columns:
            assert np.array_equal(a.columns[k], b.columns[k], equal_nan=True)

    def test_different_seed_differs(self, dense_columns):
        a = FaultInjector(seed=1).missing_days(dense_columns)
        b = FaultInjector(seed=2).missing_days(dense_columns)
        assert {f.ages for f in a.faults} != {f.ages for f in b.faults}


class TestFaultClasses:
    def test_missing_days_drops_interior_rows(self, dense_columns):
        n = dense_columns["drive_id"].size
        res = FaultInjector(seed=0).missing_days(dense_columns, rate=0.05)
        dropped = n - res.columns["drive_id"].size
        assert dropped == len(res.faults) == round(0.05 * n)
        # First/last day of every drive survives.
        ids = res.columns["drive_id"]
        age = res.columns["age_days"]
        for d in np.unique(ids):
            a = age[ids == d]
            assert a[0] == 0 and a[-1] == 119

    def test_duplicate_rows_adds_rows(self, dense_columns):
        n = dense_columns["drive_id"].size
        res = FaultInjector(seed=0).duplicate_rows(dense_columns, rate=0.03)
        assert res.columns["drive_id"].size == n + len(res.faults)

    def test_out_of_order_breaks_sort(self, dense_columns):
        res = FaultInjector(seed=0).out_of_order(dense_columns, rate=0.02)
        assert res.faults
        age = res.columns["age_days"]
        ids = res.columns["drive_id"]
        same = ids[1:] == ids[:-1]
        assert bool(np.any(same & (age[1:] < age[:-1])))

    def test_value_spikes_nan_and_sentinel(self, dense_columns):
        res = FaultInjector(seed=0).value_spikes(dense_columns, rate=0.01)
        assert bool(np.any(~np.isfinite(res.columns["write_count"])))
        ue = res.columns["uncorrectable_error"]
        assert bool(np.any((ue < 0) | (ue > 10**15)))

    def test_stuck_counter_freezes_pe(self, dense_columns):
        res = FaultInjector(seed=0).stuck_counter(dense_columns, rate=0.5)
        assert res.faults
        pe = res.columns["pe_cycles"]
        ids = res.columns["drive_id"]
        frozen = (ids[1:] == ids[:-1]) & (np.diff(pe) == 0)
        assert int(frozen.sum()) >= len(res.faults)

    def test_schema_drift_drop_and_rename(self, dense_columns):
        res = FaultInjector(seed=0).schema_drift(dense_columns, n_columns=2)
        assert len(res.faults) == 2
        for f in res.faults:
            assert f.column not in ("drive_id", "age_days", "model", "calendar_day")
            assert (
                f.column not in res.columns
                or f"legacy_{f.column}" in res.columns
            )

    def test_unknown_class_rejected(self, dense_columns):
        with pytest.raises(ValueError, match="unknown fault class"):
            FaultInjector().inject(dense_columns, classes=("bogus",))

    def test_truncated_file_is_file_level(self, dense_columns):
        with pytest.raises(ValueError, match="file-level"):
            FaultInjector().inject(dense_columns, classes=("truncated_file",))


class TestFileLevel:
    def test_truncate_detected_by_loader(self, small_trace, tmp_path):
        path = tmp_path / "records.npz"
        save_dataset_npz(small_trace.records, path)
        truncate_file(path, keep_fraction=DEFAULT_RATES["truncated_file"])
        with pytest.raises(TraceIntegrityError, match="corrupt or truncated"):
            load_raw_columns_npz(path)

    def test_corrupt_trace_directory(self, small_trace, tmp_path):
        src = tmp_path / "clean"
        src.mkdir()
        save_dataset_npz(small_trace.records, src / "records.npz")
        res = FaultInjector(seed=3).corrupt_trace(
            src, tmp_path / "dirty", classes=("missing_days", "value_spikes")
        )
        assert res.faults
        cols = load_raw_columns_npz(tmp_path / "dirty" / "records.npz")
        assert cols["drive_id"].size < len(small_trace.records)
