"""Fixtures for the reliability suite.

``dense_columns`` builds a *dense* clean telemetry table: every drive
reports every day, write activity is always positive, and cumulative
counters strictly increase.  Density matters: it makes every injected
fault detectable in principle (a dropped interior day always leaves a
gap), so detector recall can be measured against ground truth without
confounding from the simulator's intentional Bernoulli thinning.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.fields import ERROR_TYPES


def build_dense_columns(
    n_drives: int = 20, n_days: int = 120, seed: int = 0
) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    n = n_drives * n_days
    ids = np.repeat(np.arange(n_drives, dtype=np.int32), n_days)
    age = np.tile(np.arange(n_days, dtype=np.int32), n_drives)
    writes = rng.uniform(1e5, 2e6, n) + 1.0
    pe_inc = (writes / 512.0 / 245760.0).reshape(n_drives, n_days)
    cols: dict[str, np.ndarray] = {
        "drive_id": ids,
        "model": (ids % 3).astype(np.int8),
        "age_days": age,
        "calendar_day": (age + np.repeat(rng.integers(0, 50, n_drives), n_days)).astype(
            np.int32
        ),
        "read_count": rng.uniform(2e5, 5e6, n),
        "write_count": writes,
        "erase_count": writes / 512.0,
        "pe_cycles": np.cumsum(pe_inc, axis=1).ravel(),
        "status_dead": np.zeros(n, dtype=np.int8),
        "status_read_only": np.zeros(n, dtype=np.int8),
        "factory_bad_blocks": np.repeat(
            rng.poisson(4.0, n_drives).astype(np.int32), n_days
        ),
        "grown_bad_blocks": np.cumsum(
            rng.poisson(0.02, (n_drives, n_days)), axis=1
        ).ravel().astype(np.int32),
    }
    for err in ERROR_TYPES:
        cols[err] = rng.poisson(0.4, n).astype(np.int64)
    return cols


@pytest.fixture()
def dense_columns() -> dict[str, np.ndarray]:
    return build_dense_columns()
