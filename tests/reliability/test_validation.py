"""Unit tests for the schema/invariant validator."""

from __future__ import annotations

import numpy as np

from repro.reliability import validate_columns, validate_trace
from repro.reliability.validation import SENTINEL_CEILING


def _errors(report) -> set[str]:
    return {c.check for c in report.failed() if c.severity == "error"}


def _warnings(report) -> set[str]:
    return {c.check for c in report.failed() if c.severity == "warning"}


class TestCleanData:
    def test_dense_fixture_is_clean(self, dense_columns):
        report = validate_columns(dense_columns, max_gap_days=1)
        assert report.ok, report.render()
        assert not report.failed()

    def test_simulated_trace_is_clean(self, small_trace):
        report = validate_trace(
            small_trace.records, small_trace.drives, small_trace.swaps
        )
        assert report.ok, report.render()

    def test_render_mentions_result(self, dense_columns):
        text = validate_columns(dense_columns).render()
        assert "Result: OK" in text


class TestDetectors:
    def test_missing_column(self, dense_columns):
        dense_columns.pop("uncorrectable_error")
        report = validate_columns(dense_columns)
        assert "schema.columns" in _errors(report)

    def test_renamed_column_flags_both_sides(self, dense_columns):
        dense_columns["legacy_ue"] = dense_columns.pop("uncorrectable_error")
        report = validate_columns(dense_columns)
        assert "schema.columns" in _errors(report)
        assert "schema.unknown" in _warnings(report)

    def test_nan_detected_with_row(self, dense_columns):
        dense_columns["write_count"][7] = np.nan
        report = validate_columns(dense_columns)
        assert "values.finite" in _errors(report)
        assert 7 in report.violation_rows("values.finite")

    def test_negative_and_sentinel(self, dense_columns):
        dense_columns["read_count"][3] = -5.0
        dense_columns["uncorrectable_error"][9] = int(SENTINEL_CEILING * 10)
        report = validate_columns(dense_columns)
        assert "values.nonnegative" in _errors(report)
        assert "values.sentinel" in _errors(report)

    def test_out_of_order_rows(self, dense_columns):
        for k, v in dense_columns.items():
            v[5], v[6] = v[6], v[5]
        report = validate_columns(dense_columns)
        assert "order.sorted" in _errors(report)

    def test_duplicate_days(self, dense_columns):
        for k in dense_columns:
            dense_columns[k] = np.concatenate(
                (dense_columns[k][:1], dense_columns[k])
            )
        report = validate_columns(dense_columns)
        assert "rows.duplicates" in _errors(report)

    def test_non_monotone_cumulative(self, dense_columns):
        dense_columns["pe_cycles"][50] = 0.0
        report = validate_columns(dense_columns)
        assert any(c.startswith("monotone.pe_cycles") for c in _errors(report))

    def test_stuck_counter_is_warning(self, dense_columns):
        pe = dense_columns["pe_cycles"]
        pe[10:15] = pe[9]
        report = validate_columns(dense_columns)
        assert "stuck.pe_cycles" in _warnings(report)
        assert report.ok  # warnings alone do not make a trace corrupt

    def test_gap_detection_requires_threshold(self, dense_columns):
        keep = np.ones(len(dense_columns["drive_id"]), dtype=bool)
        keep[30] = False  # interior day of drive 0
        cols = {k: v[keep] for k, v in dense_columns.items()}
        assert validate_columns(cols).ok
        report = validate_columns(cols, max_gap_days=1)
        assert "gaps.age_days" in _warnings(report)


class TestReferentialIntegrity:
    def test_unknown_drive_in_records(self, small_trace):
        cols = {k: np.array(v) for k, v in small_trace.records.items()}
        cols["drive_id"][0] = 10_000_000
        report = validate_trace(cols, small_trace.drives, small_trace.swaps)
        assert "refint.records_drives" in _errors(report)

    def test_swap_before_failure(self, small_trace):
        swaps = small_trace.swaps
        if not len(swaps):
            return
        # Build an inconsistent swap log without tripping the constructor.
        bad = swaps.select(np.arange(len(swaps)))
        bad.swap_age = np.array(bad.swap_age)
        bad.swap_age[0] = bad.failure_age[0] - 5
        report = validate_trace(
            small_trace.records, small_trace.drives, bad
        )
        assert "swaplog.order" in _errors(report)
