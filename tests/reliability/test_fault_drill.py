"""End-to-end fault drill (the PR's acceptance criteria).

For every fault class in :mod:`repro.reliability.corruption`, injected at
its documented default rate:

(a) the validator detects it with >= 95 % recall against the injector's
    ground-truth fault log (dense fixture, so every fault is detectable
    in principle);
(b) the full load -> train -> score path completes without unhandled
    exceptions under the ``repair`` and ``quarantine`` policies;
(c) killing ``repro-ssd simulate`` mid-run (SIGKILL, no cleanup) and
    re-running with ``--resume`` produces a trace identical to an
    uninterrupted run with the same seed.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core import FailurePredictor
from repro.core.pipeline import ModelSpec
from repro.data import (
    TraceIntegrityError,
    load_dataset_checked,
    save_dataset_npz,
    save_drivetable_npz,
    save_swaplog_npz,
)
from repro.ml import DecisionTreeClassifier
from repro.reliability import FaultInjector, validate_columns

from .conftest import build_dense_columns

ROW_CLASSES = (
    "missing_days",
    "duplicate_rows",
    "out_of_order",
    "value_spikes",
    "stuck_counter",
    "schema_drift",
)

MIN_RECALL = 0.95


def _detected_pairs(report, prefixes, cols) -> set[tuple[int, int]]:
    """(drive_id, age) pairs flagged by any check with one of ``prefixes``."""
    ids = np.asarray(cols["drive_id"])
    ages = np.asarray(cols["age_days"])
    out: set[tuple[int, int]] = set()
    for prefix in prefixes:
        for rows in (
            c.rows for c in report.checks if c.check.startswith(prefix) and c.rows is not None
        ):
            for r in rows:
                out.add((int(ids[r]), int(ages[r])))
    return out


def _gap_covered_pairs(report, cols) -> set[tuple[int, int]]:
    """Every (drive, age) inside a flagged reporting gap.

    A gap check flags the row *after* the gap; all missing ages between
    that row and its same-drive predecessor count as detected.
    """
    ids = np.asarray(cols["drive_id"])
    ages = np.asarray(cols["age_days"])
    out: set[tuple[int, int]] = set()
    for c in report.checks:
        if not c.check.startswith("gaps.") or c.rows is None:
            continue
        for r in c.rows:
            r = int(r)
            if r == 0 or ids[r - 1] != ids[r]:
                continue
            for a in range(int(ages[r - 1]) + 1, int(ages[r])):
                out.add((int(ids[r]), a))
    return out


class TestDetectorRecall:
    """Criterion (a): >= 95 % recall per fault class at default rates."""

    @pytest.fixture()
    def big_dense(self):
        return build_dense_columns(n_drives=30, n_days=150, seed=11)

    @pytest.mark.parametrize("fault_class", ROW_CLASSES)
    def test_recall(self, big_dense, fault_class):
        injector = FaultInjector(seed=21)
        res = getattr(injector, fault_class)(big_dense)
        assert res.faults, f"injector produced no {fault_class} faults"
        report = validate_columns(res.columns, max_gap_days=1)

        if fault_class == "schema_drift":
            schema_failed = any(
                not c.passed and c.check.startswith("schema.") for c in report.checks
            )
            detected = sum(
                1
                for f in res.faults
                if schema_failed
                and (f.column not in res.columns or f"legacy_{f.column}" in res.columns)
            )
            recall = detected / len(res.faults)
        else:
            if fault_class == "missing_days":
                hit = _gap_covered_pairs(report, res.columns)
            elif fault_class == "duplicate_rows":
                hit = _detected_pairs(report, ("rows.duplicates",), res.columns)
            elif fault_class == "out_of_order":
                hit = _detected_pairs(report, ("order.sorted",), res.columns)
            elif fault_class == "value_spikes":
                hit = _detected_pairs(report, ("values.",), res.columns)
            else:  # stuck_counter
                hit = _detected_pairs(
                    report, ("stuck.", "monotone."), res.columns
                )
            detected = sum(
                1
                for f in res.faults
                if any((f.drive_id, a) in hit for a in f.ages)
            )
            recall = detected / len(res.faults)
        assert recall >= MIN_RECALL, (
            f"{fault_class}: recall {recall:.2%} < {MIN_RECALL:.0%} "
            f"({detected}/{len(res.faults)} faults detected)"
        )

    def test_truncated_file_detected(self, small_trace, tmp_path):
        src = tmp_path / "clean"
        src.mkdir()
        save_dataset_npz(small_trace.records, src / "records.npz")
        FaultInjector(seed=1).corrupt_trace(
            src, tmp_path / "dirty", classes=("truncated_file",)
        )
        with pytest.raises(TraceIntegrityError):
            load_dataset_checked(tmp_path / "dirty" / "records.npz", policy="repair")


@pytest.fixture(scope="module")
def trace_dir(small_trace, tmp_path_factory):
    d = tmp_path_factory.mktemp("drill_trace")
    save_dataset_npz(small_trace.records, d / "records.npz")
    save_drivetable_npz(small_trace.drives, d / "drives.npz")
    save_swaplog_npz(small_trace.swaps, d / "swaps.npz")
    return d


def _cheap_predictor() -> FailurePredictor:
    spec = ModelSpec(
        "Decision Tree",
        lambda: DecisionTreeClassifier(max_depth=6, min_samples_leaf=3, random_state=0),
        scale=False,
        log1p=False,
    )
    return FailurePredictor(lookahead=3, model_spec=spec, seed=0)


class TestPipelineUnderFaults:
    """Criterion (b): load -> train -> score survives repair/quarantine."""

    @pytest.mark.parametrize("fault_class", ROW_CLASSES)
    @pytest.mark.parametrize("policy", ("repair", "quarantine"))
    def test_train_score_completes(
        self, trace_dir, small_trace, tmp_path, fault_class, policy
    ):
        dirty = tmp_path / "dirty"
        FaultInjector(seed=13).corrupt_trace(
            trace_dir, dirty, classes=(fault_class,)
        )
        result = load_dataset_checked(dirty / "records.npz", policy=policy)
        predictor = _cheap_predictor()
        predictor.fit((result.dataset, small_trace.swaps))
        scores = predictor.predict_proba_records(result.dataset)
        assert scores.shape[0] == len(result.dataset)
        assert bool(np.all(np.isfinite(scores)))

    def test_quarantined_rows_excluded_from_training(
        self, trace_dir, small_trace, tmp_path
    ):
        from repro.core.pipeline import build_prediction_dataset

        dirty = tmp_path / "dirty"
        FaultInjector(seed=13).corrupt_trace(
            trace_dir, dirty, classes=("value_spikes",)
        )
        res = load_dataset_checked(dirty / "records.npz", policy="quarantine")
        assert res.n_quarantined > 0
        clean_ds = build_prediction_dataset(
            (small_trace.records, small_trace.swaps), lookahead=3
        )
        dirty_ds = build_prediction_dataset(
            (res.dataset, small_trace.swaps), lookahead=3
        )
        assert len(dirty_ds.y) < len(clean_ds.y)


class TestKillResumeDrill:
    """Criterion (c): SIGKILL mid-simulate, then ``--resume`` -> identical."""

    ARGS = [
        "--drives", "20", "--days", "150", "--deploy-spread", "40",
        "--seed", "3", "--checkpoint-every", "8", "--verbose",
    ]

    def _env(self):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        return env

    def _run(self, out_dir, extra=()):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", "simulate", "--out", str(out_dir)]
            + self.ARGS + list(extra),
            env=self._env(), capture_output=True, text=True, timeout=300,
        )

    def test_sigkill_then_resume_identical(self, tmp_path):
        baseline = tmp_path / "baseline"
        assert self._run(baseline).returncode == 0

        out = tmp_path / "killed"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "simulate", "--out", str(out)]
            + self.ARGS,
            env=self._env(), stdout=subprocess.PIPE, text=True,
        )
        # Kill as soon as at least two checkpoints are on disk.
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            chunks = list((out / ".checkpoints").glob("chunk_*.npz")) if (
                out / ".checkpoints"
            ).exists() else []
            if len(chunks) >= 2:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.01)
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)
            assert proc.returncode != 0
            assert not (out / "records.npz").exists()

        resumed = self._run(out, extra=("--resume",))
        assert resumed.returncode == 0, resumed.stderr

        for name in ("records.npz", "drives.npz", "swaps.npz"):
            with np.load(baseline / name) as a, np.load(out / name) as b:
                assert sorted(a.files) == sorted(b.files)
                for k in a.files:
                    x, y = a[k], b[k]
                    if np.issubdtype(x.dtype, np.floating):
                        assert np.array_equal(x, y, equal_nan=True), (name, k)
                    else:
                        assert np.array_equal(x, y), (name, k)
        # Checkpoints are cleaned up after a successful finish.
        assert not (out / ".checkpoints").exists()
