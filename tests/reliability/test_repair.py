"""Unit tests for the strict/repair/quarantine policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.reliability import (
    FaultInjector,
    TraceValidationError,
    apply_policy,
    validate_columns,
)
from repro.reliability.repair import _ffill_per_drive


class TestStrict:
    def test_clean_passes(self, dense_columns):
        res = apply_policy(dense_columns, policy="strict")
        assert not res.actions
        assert res.n_quarantined == 0
        assert len(res.dataset) == dense_columns["drive_id"].size

    def test_dirty_raises_with_report(self, dense_columns):
        dense_columns["write_count"][4] = np.nan
        with pytest.raises(TraceValidationError, match="strict policy") as ei:
            apply_policy(dense_columns, policy="strict")
        assert ei.value.report is not None
        assert not ei.value.report.ok

    def test_missing_critical_column_raises_everywhere(self, dense_columns):
        dense_columns.pop("drive_id")
        for policy in ("strict", "repair", "quarantine"):
            with pytest.raises(TraceValidationError, match="critical column"):
                apply_policy(dense_columns, policy=policy)

    def test_unknown_policy(self, dense_columns):
        with pytest.raises(ValueError, match="unknown policy"):
            apply_policy(dense_columns, policy="lenient")


class TestRepair:
    def test_repaired_table_validates_clean(self, dense_columns):
        dirty = FaultInjector(seed=4).inject(
            dense_columns,
            classes=(
                "duplicate_rows",
                "out_of_order",
                "value_spikes",
                "stuck_counter",
                "schema_drift",
            ),
        )
        res = apply_policy(dirty.columns, policy="repair")
        assert res.actions
        post = validate_columns(
            dict(res.dataset.items())
        )
        assert not [c for c in post.failed() if c.severity == "error"], post.render()

    def test_duplicates_keep_first(self, dense_columns):
        cols = {k: np.array(v) for k, v in dense_columns.items()}
        marker = cols["read_count"][0]
        dup = {k: np.concatenate((v[:1], v)) for k, v in cols.items()}
        dup["read_count"][1] = marker + 123.0  # second delivery differs
        res = apply_policy(dup, policy="repair")
        assert len(res.dataset) == cols["drive_id"].size
        assert res.dataset["read_count"][0] == marker

    def test_out_of_order_resorted(self, dense_columns):
        for v in dense_columns.values():
            v[5], v[6] = np.array(v[6]), np.array(v[5])
        res = apply_policy(dense_columns, policy="repair")
        age = res.dataset["age_days"]
        ids = res.dataset["drive_id"]
        same = ids[1:] == ids[:-1]
        assert bool(np.all(~same | (age[1:] > age[:-1])))

    def test_nan_cumulative_forward_filled(self, dense_columns):
        prev = float(dense_columns["pe_cycles"][49])
        dense_columns["pe_cycles"][50] = np.nan
        res = apply_policy(dense_columns, policy="repair")
        assert res.dataset["pe_cycles"][50] == pytest.approx(prev)

    def test_nan_daily_zeroed_and_negative_clamped(self, dense_columns):
        dense_columns["write_count"][11] = np.nan
        dense_columns["read_count"][12] = -9.0
        res = apply_policy(dense_columns, policy="repair")
        assert res.dataset["write_count"][11] == 0.0
        assert res.dataset["read_count"][12] == 0.0

    def test_monotone_clamped_to_running_max(self, dense_columns):
        true_val = float(dense_columns["pe_cycles"][49])
        dense_columns["pe_cycles"][50] = 0.0
        res = apply_policy(dense_columns, policy="repair")
        pe = res.dataset["pe_cycles"]
        assert pe[50] == pytest.approx(true_val)
        ids = res.dataset["drive_id"]
        same = ids[1:] == ids[:-1]
        assert bool(np.all(np.diff(pe)[same] >= 0))

    def test_missing_column_zero_filled(self, dense_columns):
        dense_columns.pop("uncorrectable_error")
        res = apply_policy(dense_columns, policy="repair")
        assert bool(np.all(res.dataset["uncorrectable_error"] == 0))
        # Column-level degradation does not poison rows.
        assert res.n_quarantined == 0


class TestQuarantine:
    def test_touched_rows_marked(self, dense_columns):
        dense_columns["write_count"][7] = np.nan
        res = apply_policy(dense_columns, policy="quarantine")
        q = res.dataset["quarantined"]
        assert res.n_quarantined == 1
        assert q[7] == 1 and int(q.sum()) == 1

    def test_repair_policy_has_no_quarantine_column(self, dense_columns):
        dense_columns["write_count"][7] = np.nan
        res = apply_policy(dense_columns, policy="repair")
        assert "quarantined" not in res.dataset
        assert res.n_quarantined == 0

    def test_stuck_rows_quarantined(self, dense_columns):
        pe = dense_columns["pe_cycles"]
        pe[10:15] = pe[9]
        res = apply_policy(dense_columns, policy="quarantine")
        assert res.n_quarantined >= 4
        assert any(a.check == "stuck.pe_cycles" for a in res.actions)

    def test_summary_mentions_actions(self, dense_columns):
        dense_columns["read_count"][3] = -1.0
        res = apply_policy(dense_columns, policy="quarantine")
        assert "values.read_count" in res.summary()
        assert "1 row(s) quarantined" in res.summary()


class TestFfill:
    def test_fills_from_same_drive_only(self):
        ids = np.array([0, 0, 0, 1, 1])
        vals = np.array([1.0, 2.0, np.nan, np.nan, 5.0])
        bad = ~np.isfinite(vals)
        out = _ffill_per_drive(vals, ids, bad)
        assert out[2] == 2.0  # last good value of drive 0
        assert out[3] == 0.0  # drive 1 has no prior good value

    def test_empty(self):
        out = _ffill_per_drive(
            np.array([]), np.array([], dtype=np.int32), np.array([], dtype=bool)
        )
        assert out.size == 0
