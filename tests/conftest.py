"""Shared fixtures: small simulated fleets reused across the suite.

The ``small_trace`` fixture is session-scoped — simulating once and sharing
keeps the whole suite fast while giving integration tests a trace with
enough failures to be meaningful.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator import FleetConfig, simulate_fleet


@pytest.fixture(scope="session")
def small_trace():
    """A small but non-trivial fleet: ~240 drives over two years."""
    return simulate_fleet(
        FleetConfig(
            n_drives_per_model=80,
            horizon_days=900,
            deploy_spread_days=400,
            seed=1234,
        )
    )


@pytest.fixture(scope="session")
def medium_trace():
    """A fleet large enough for stable ML evaluation (~600 drives, 3y)."""
    return simulate_fleet(
        FleetConfig(
            n_drives_per_model=200,
            horizon_days=1100,
            deploy_spread_days=500,
            seed=77,
        )
    )


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(42)
