"""The warm pool (repro.parallel.persistent) and its scoring integration.

The pool exists to amortize per-chunk model pickling in the serve replay
loop, so the tests pin the two things that matter: reuse (one install,
many runs) and byte-identity with the per-call path (pooled scoring can
never change the scores).
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.parallel import WorkerCrash
from repro.parallel.persistent import PersistentPool

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

fork_only = pytest.mark.skipif(
    not HAVE_FORK, reason="warm pool workers ride the fork start method"
)


# ---------------------------------------------------------------- worker fns

_installed = {"token": None}


def _install(token):
    _installed["token"] = token


def _echo_token(x):
    return (_installed["token"], x)


def _double(x):
    return 2 * x


def _boom(x):
    raise ValueError(f"bad task {x}")


# ---------------------------------------------------------------- pool tests


class TestPersistentPool:
    def test_results_in_task_order(self):
        with PersistentPool(workers=2) as pool:
            assert pool.run(_double, list(range(10))) == [
                2 * x for x in range(10)
            ]

    def test_initializer_state_reused_across_runs(self):
        with PersistentPool(
            workers=2, initializer=_install, initargs=("warm",)
        ) as pool:
            first = pool.run(_echo_token, [1, 2, 3, 4])
            second = pool.run(_echo_token, [5, 6])
        # Every task saw the installed state, on both calls — the state
        # survived between run() calls without re-shipping.
        assert first == [("warm", x) for x in (1, 2, 3, 4)]
        assert second == [("warm", x) for x in (5, 6)]

    def test_serial_fallback_matches(self):
        with PersistentPool(
            workers=1, initializer=_install, initargs=("solo",)
        ) as pool:
            assert not pool.parallel
            assert pool.run(_echo_token, [7]) == [("solo", 7)]

    def test_unpicklable_initializer_falls_back_serial(self):
        token = lambda: None  # unpicklable initargs force the serial path

        with PersistentPool(
            workers=2, initializer=_install, initargs=(token,)
        ) as pool:
            out = pool.run(_echo_token, [1])
            assert not pool.parallel
        assert out == [(token, 1)]

    def test_task_error_surfaces_as_worker_crash(self):
        with PersistentPool(workers=2) as pool:
            with pytest.raises(WorkerCrash, match="bad task"):
                pool.run(_boom, [0])

    def test_use_after_close_raises(self):
        pool = PersistentPool(workers=2)
        pool.close()
        with pytest.raises(WorkerCrash, match="close"):
            pool.run(_double, [1])

    def test_close_is_idempotent(self):
        pool = PersistentPool(workers=2)
        pool.run(_double, [1])
        pool.close()
        pool.close()

    def test_empty_task_list(self):
        with PersistentPool(workers=2) as pool:
            assert pool.run(_double, []) == []


# ------------------------------------------------------- scoring integration


class TestScoringPool:
    def test_pooled_scoring_is_byte_identical(self, serve_predictor, bench_xy):
        X, ages = bench_xy
        baseline = serve_predictor.predict_proba_matrix(X, ages, workers=1)
        with serve_predictor.scoring_pool(workers=2) as pool:
            pooled_a = serve_predictor.predict_proba_matrix(X, ages, pool=pool)
            pooled_b = serve_predictor.predict_proba_matrix(X, ages, pool=pool)
        assert np.array_equal(pooled_a, baseline)
        assert np.array_equal(pooled_b, baseline)

    def test_engine_replay_with_warm_pool_matches(self, serve_predictor, bench_trace):
        from repro.serve import ScoringEngine

        offline = serve_predictor.predict_proba_records(bench_trace.records)
        engine = ScoringEngine(serve_predictor, workers=2)
        try:
            result = engine.replay(bench_trace.records, chunk_rows=512)
        finally:
            engine.close()
        assert engine._scoring_pool is None  # close() reaped it
        assert np.array_equal(result.probability, offline)


@pytest.fixture(scope="module")
def bench_trace():
    from repro.simulator import FleetConfig, simulate_fleet

    return simulate_fleet(
        FleetConfig(
            n_drives_per_model=8,
            horizon_days=200,
            deploy_spread_days=100,
            seed=21,
        )
    )


@pytest.fixture(scope="module")
def serve_predictor(bench_trace):
    from repro.core import FailurePredictor

    return FailurePredictor(lookahead=7, seed=3).fit(bench_trace)


@pytest.fixture(scope="module")
def bench_xy(bench_trace, serve_predictor):
    from repro.core import build_prediction_dataset

    dataset = build_prediction_dataset(bench_trace, lookahead=7)
    return dataset.X, dataset.age_days
