"""Unit tests for the process-pool primitive (repro.parallel.pool).

The worker functions live at module level so they can cross the process
boundary by reference; everything else (ordering, fallbacks, failure
surfacing, obs-delta merging) is asserted from the parent side.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

import repro.parallel.pool as pool_mod
from repro.obs import metrics, tracing
from repro.parallel import (
    ENV_WORKERS,
    ObsDelta,
    WorkerCrash,
    capture_obs,
    iter_tasks,
    merge_obs,
    resolve_workers,
    run_tasks,
    shard_ranges,
)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


# ---------------------------------------------------------------- worker fns


def _square(x):
    return x * x


def _slow_inverse_order(x):
    # Earlier tasks sleep longer, so completion order inverts task order
    # whenever two workers actually run concurrently.
    import time

    time.sleep(0.05 * (3 - x) if x < 3 else 0.0)
    return x


def _instrumented(x):
    with tracing.span("test.work", n_items=1):
        metrics.inc("test_tasks_total", help="tasks")
    return x + 1


def _raise_value_error(x):
    raise ValueError(f"bad task {x}")


def _hard_exit(x):
    os._exit(13)  # simulates a worker killed mid-task (no exception raised)


def _needs_init(x):
    return pool_mod._in_worker, _INIT_BOX[0] + x


_INIT_BOX = [0]


def _install_box(value):
    _INIT_BOX[0] = value


# ------------------------------------------------------------ resolve/shard


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(ENV_WORKERS, raising=False)
        assert resolve_workers(None) == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "8")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "4")
        assert resolve_workers(None) == 4

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "lots")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(None)

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError, match=">= 1"):
            resolve_workers(0)

    def test_worker_pins_to_one(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "_in_worker", True)
        monkeypatch.setenv(ENV_WORKERS, "16")
        assert resolve_workers(None) == 1
        assert resolve_workers(8) == 1


class TestShardRanges:
    def test_covers_everything_once(self):
        for n, workers in [(1, 4), (7, 2), (100, 3), (5, 100)]:
            ranges = shard_ranges(n, workers)
            flat = [i for lo, hi in ranges for i in range(lo, hi)]
            assert flat == list(range(n))

    def test_empty(self):
        assert shard_ranges(0, 4) == []

    def test_deterministic(self):
        assert shard_ranges(100, 3) == shard_ranges(100, 3)


# ----------------------------------------------------------------- iter_tasks


class TestIterTasks:
    def test_serial_results_in_order(self):
        assert run_tasks(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_parallel_results_in_task_order(self):
        out = run_tasks(_slow_inverse_order, list(range(4)), workers=2)
        assert out == [0, 1, 2, 3]

    def test_empty_tasks(self):
        assert run_tasks(_square, [], workers=4) == []

    def test_lambda_fn_falls_back_to_serial(self):
        # A lambda cannot be pickled; the pool must quietly degrade, not die.
        assert run_tasks(lambda x: x * 10, [1, 2], workers=2) == [10, 20]

    def test_unpicklable_initargs_fall_back_to_serial(self):
        calls = []
        out = run_tasks(
            _square,
            [2, 3],
            workers=2,
            initializer=lambda box: calls.append(box),
            initargs=(lambda: None,),
        )
        assert out == [4, 9]
        assert len(calls) == 1  # initializer still ran, in-process

    def test_initializer_runs_on_serial_path(self):
        out = run_tasks(
            _needs_init, [1], workers=1, initializer=_install_box, initargs=(100,)
        )
        assert out == [(False, 101)]

    def test_task_exception_surfaces_as_worker_crash(self):
        with pytest.raises(WorkerCrash) as err:
            run_tasks(_raise_value_error, [0, 1], workers=2)
        assert err.value.task_index == 0
        assert "ValueError" in str(err.value)
        assert err.value.worker_traceback is not None
        assert "bad task 0" in err.value.worker_traceback

    def test_worker_death_raises_instead_of_hanging(self):
        with pytest.raises(WorkerCrash, match="died|could not run"):
            run_tasks(_hard_exit, [0, 1], workers=2)

    def test_generator_yields_indices(self):
        pairs = list(iter_tasks(_square, [5, 6], workers=1))
        assert pairs == [(0, 25), (1, 36)]

    @pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
    def test_workers_are_marked(self):
        out = run_tasks(
            _needs_init, [1, 2], workers=2, initializer=_install_box, initargs=(7,)
        )
        assert out == [(True, 8), (True, 9)]


# -------------------------------------------------------------- obs shipping


class TestObsMerge:
    def test_spans_and_metrics_survive_fanout(self):
        tracer = tracing.Tracer()
        registry = metrics.MetricsRegistry()
        with tracing.activate(tracer), metrics.activate(registry):
            out = run_tasks(_instrumented, [1, 2, 3], workers=2)
        assert out == [2, 3, 4]
        summary = tracer.stage_summary()
        assert summary["test.work"]["calls"] == 3
        assert summary["test.work"]["n_items"] == 3
        rendered = registry.render_prometheus()
        assert "test_tasks_total 3" in rendered

    def test_obs_disabled_means_empty_delta(self):
        with capture_obs(enabled=False) as delta:
            with tracing.span("ignored"):
                pass
        assert not delta
        merge_obs(delta)  # no active collectors, no delta: must be a no-op

    def test_capture_obs_collects(self):
        with capture_obs() as delta:
            with tracing.span("captured.stage", rows_in=5):
                metrics.inc("captured_total", 2, help="x")
        assert delta
        assert [s["name"] for s in delta.spans] == ["captured.stage"]
        assert delta.elapsed > 0
        names = [fam["name"] for fam in delta.metrics]
        assert "captured_total" in names

    def test_merge_reparents_under_open_span(self):
        with capture_obs() as delta:
            with tracing.span("child.stage"):
                pass
        tracer = tracing.Tracer()
        with tracing.activate(tracer):
            with tracing.span("parent.stage"):
                merge_obs(delta)
        spans = {s.name: s for s in tracer.finished()}
        assert spans["child.stage"].parent_id == spans["parent.stage"].span_id

    def test_obs_delta_is_picklable(self):
        import pickle

        with capture_obs() as delta:
            with tracing.span("s"):
                metrics.inc("c_total", help="c")
        clone = pickle.loads(pickle.dumps(delta))
        assert isinstance(clone, ObsDelta)
        assert clone.spans == delta.spans


class TestAbsorb:
    def test_ids_remapped_and_offset_applied(self):
        src = tracing.Tracer()
        with tracing.activate(src):
            with tracing.span("outer"):
                with tracing.span("inner"):
                    pass
        dst = tracing.Tracer()
        with tracing.activate(dst):
            with tracing.span("top"):
                pass
        n = dst.absorb(src.to_dicts(), offset=100.0)
        assert n == 2
        spans = {s.name: s for s in dst.finished()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].start >= 100.0
        ids = [s.span_id for s in dst.finished()]
        assert len(ids) == len(set(ids))


class TestMetricsSnapshot:
    def test_counter_and_gauge_merge(self):
        a = metrics.MetricsRegistry()
        with metrics.activate(a):
            metrics.inc("jobs_total", 2, help="jobs", kind="sim")
            metrics.set_gauge("depth", 5, help="queue depth")
        b = metrics.MetricsRegistry()
        with metrics.activate(b):
            metrics.inc("jobs_total", 3, help="jobs", kind="sim")
            metrics.set_gauge("depth", 7, help="queue depth")
        a.merge_snapshot(b.snapshot())
        rendered = a.render_prometheus()
        assert 'jobs_total{kind="sim"} 5' in rendered
        assert "depth 7" in rendered

    def test_histogram_merge(self):
        a = metrics.MetricsRegistry()
        with metrics.activate(a):
            metrics.observe("latency_seconds", 0.2, help="lat")
        b = metrics.MetricsRegistry()
        with metrics.activate(b):
            metrics.observe("latency_seconds", 0.4, help="lat")
            metrics.observe("latency_seconds", 99.0, help="lat")
        a.merge_snapshot(b.snapshot())
        rendered = a.render_prometheus()
        assert 'latency_seconds_count 3' in rendered

    def test_bucket_mismatch_rejected(self):
        a = metrics.MetricsRegistry()
        with metrics.activate(a):
            metrics.observe("h_seconds", 0.2, help="h", buckets=(0.1, 1.0))
        b = metrics.MetricsRegistry()
        with metrics.activate(b):
            metrics.observe("h_seconds", 0.2, help="h", buckets=(0.5, 2.0))
        with pytest.raises(ValueError, match="bucket"):
            a.merge_snapshot(b.snapshot())

    def test_snapshot_roundtrip_empty(self):
        reg = metrics.MetricsRegistry()
        assert reg.snapshot() == []
        reg.merge_snapshot([])


def test_numpy_payloads_roundtrip():
    # Arrays are the dominant payload type; make sure nothing in the
    # trampoline mangles dtype or contents.
    tasks = [np.arange(5, dtype=np.int32), np.linspace(0, 1, 7)]
    out = run_tasks(_square, tasks, workers=2)
    assert np.array_equal(out[0], tasks[0] * tasks[0])
    assert out[1].dtype == np.float64
