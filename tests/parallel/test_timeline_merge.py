"""Timeline deltas across the pool: capture in workers, absorb in order.

The worker functions live at module level so they can cross the process
boundary by reference (same layout as test_pool.py).
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.obs import metrics, timeline
from repro.parallel import capture_obs, merge_obs, run_tasks

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def _record_timeline(n):
    metrics.inc("tl_events_total", n, help="timeline events")
    timeline.record(n, watermark=n)
    return n


class TestCaptureObs:
    def test_delta_ships_timeline_when_recorded(self):
        with capture_obs() as delta:
            metrics.inc("tl_events_total", 3, help="t")
            timeline.record(3, watermark=9)
        assert delta.timeline is not None
        assert delta.timeline["events_total"] == 3
        assert delta.timeline["watermark"] == 9
        # flush on delta() closed the partial window
        assert delta.timeline["windows"][0]["reason"] == "flush"

    def test_delta_omits_timeline_when_untouched(self):
        with capture_obs() as delta:
            metrics.inc("tl_events_total", help="t")
        assert delta.timeline is None

    def test_merge_absorbs_into_active_timeline(self):
        with capture_obs() as delta:
            metrics.inc("tl_events_total", 4, help="t")
            timeline.record(4, watermark=2)
        with metrics.activate(), timeline.activate() as parent:
            merge_obs(delta)
        summary = parent.summary()
        assert summary["events_total"] == 4
        assert summary["watermark"] == 2
        assert summary["counter_totals"] == {"tl_events_total": 4.0}

    def test_merge_without_active_timeline_is_noop(self):
        with capture_obs() as delta:
            timeline.record(4)
        assert timeline.current() is None
        merge_obs(delta)  # must not raise


class TestPoolDeterminism:
    TASKS = [5, 3, 7, 2, 6]

    def _run(self, workers):
        with metrics.activate() as registry, timeline.activate() as parent:
            results = run_tasks(
                _record_timeline, self.TASKS, workers=workers
            )
            parent.flush()
            return (
                results,
                parent.summary(),
                [w.to_dict() for w in parent.windows()],
                registry.to_dict()["tl_events_total"]["series"][0]["value"],
            )

    def test_serial_totals(self):
        results, summary, _, counter = self._run(workers=1)
        assert results == self.TASKS
        assert summary["events_total"] == sum(self.TASKS)
        assert summary["watermark"] == max(self.TASKS)
        assert counter == float(sum(self.TASKS))

    @pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
    def test_totals_identical_one_vs_two_workers(self):
        _, s1, _, c1 = self._run(workers=1)
        _, s2, _, c2 = self._run(workers=2)
        # The determinism bar matches spans: totals are identical across
        # worker counts; only the window layout reveals the fan-out.
        assert s2["events_total"] == s1["events_total"]
        assert s2["watermark"] == s1["watermark"]
        assert s2["counter_totals"] == s1["counter_totals"]
        assert c2 == c1

    @pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
    def test_parallel_runs_are_byte_identical(self):
        run_a = self._run(workers=2)
        run_b = self._run(workers=2)
        assert run_a == run_b
