"""Serial vs parallel bit-identity across the three wired layers.

The contract under test is the headline guarantee of ``repro.parallel``:
``workers=N`` is an *execution* choice, never a *results* choice.  Every
assertion here compares artifacts produced with ``workers=1`` against
``workers=2`` (and a deliberately absurd shard count) at full precision —
no tolerances anywhere.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier
from repro.ml.model_selection import cross_validate_auc, grid_search
from repro.reliability import atomic_save_npz, simulate_fleet_resumable
from repro.simulator import FleetConfig, simulate_fleet

SMALL = FleetConfig(
    n_drives_per_model=15, horizon_days=260, deploy_spread_days=80, seed=11
)


def _trace_digest(tmp_path, trace, tag):
    """Byte-level digest via the deterministic NPZ writer."""
    path = tmp_path / f"{tag}.npz"
    arrays = {f"rec_{k}": v for k, v in trace.records.items()}
    for name in ("drive_id", "model", "deploy_day", "end_of_observation_age"):
        arrays[f"drv_{name}"] = getattr(trace.drives, name)
    for name in (
        "drive_id",
        "model",
        "failure_age",
        "swap_age",
        "reentry_age",
        "operational_start_age",
        "failure_mode",
    ):
        arrays[f"swp_{name}"] = getattr(trace.swaps, name)
    atomic_save_npz(path, **arrays)
    return hashlib.sha256(path.read_bytes()).hexdigest()


class TestSimulatorDeterminism:
    def test_workers_do_not_change_the_trace(self, tmp_path):
        serial = _trace_digest(tmp_path, simulate_fleet(SMALL, workers=1), "w1")
        two = _trace_digest(tmp_path, simulate_fleet(SMALL, workers=2), "w2")
        assert serial == two

    def test_many_tiny_shards_still_identical(self, tmp_path):
        # workers=9 on 45 drives forces shards of ~1-2 drives each: any
        # leak of scheduling into the RNG plan would show up here.
        serial = _trace_digest(tmp_path, simulate_fleet(SMALL, workers=1), "a")
        many = _trace_digest(tmp_path, simulate_fleet(SMALL, workers=9), "b")
        assert serial == many

    def test_resumable_parallel_matches_serial_oneshot(self, tmp_path):
        baseline = simulate_fleet(SMALL, workers=1)
        resumed = simulate_fleet_resumable(
            SMALL, checkpoint_dir=tmp_path / "ck", chunk_size=7, workers=2
        )
        assert _trace_digest(tmp_path, baseline, "base") == _trace_digest(
            tmp_path, resumed, "res"
        )

    def test_parallel_checkpoints_resume_identically(self, tmp_path):
        ck = tmp_path / "ck"
        first = simulate_fleet_resumable(
            SMALL, checkpoint_dir=ck, chunk_size=7, workers=2
        )
        # Everything is checkpointed now: a resume loads every chunk from
        # disk and must reproduce the parallel run byte-for-byte.
        second = simulate_fleet_resumable(
            SMALL, checkpoint_dir=ck, chunk_size=7, workers=2, resume=True
        )
        assert _trace_digest(tmp_path, first, "f") == _trace_digest(
            tmp_path, second, "s"
        )


class _TreeFactory:
    """Module/pickle-friendly classifier factory."""

    def __init__(self, max_depth=4):
        self.max_depth = max_depth

    def __call__(self):
        return DecisionTreeClassifier(max_depth=self.max_depth, random_state=0)


def _toy_problem(seed=7, n=500):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 5))
    groups = rng.integers(0, 50, size=n)
    y = ((X[:, 0] - X[:, 2] + rng.normal(scale=0.5, size=n)) > 0.8).astype(
        np.int64
    )
    return X, y, groups


def _tree(max_depth):
    return DecisionTreeClassifier(max_depth=max_depth, random_state=0)


class TestMLDeterminism:
    def test_cv_fold_aucs_and_oof_identical(self):
        X, y, groups = _toy_problem()
        serial = cross_validate_auc(_TreeFactory(), X, y, groups, seed=5, workers=1)
        fanned = cross_validate_auc(_TreeFactory(), X, y, groups, seed=5, workers=2)
        assert np.array_equal(serial.fold_aucs, fanned.fold_aucs)
        assert np.array_equal(serial.oof_true, fanned.oof_true)
        assert np.array_equal(serial.oof_score, fanned.oof_score)
        assert np.array_equal(serial.oof_index, fanned.oof_index)

    def test_explicit_splits_match_internal_splits(self):
        # Per-fold streams derive from (seed, fold_index), so handing the
        # same splits in explicitly (as grid_search does) changes nothing.
        X, y, groups = _toy_problem()
        full = cross_validate_auc(_TreeFactory(), X, y, groups, seed=5)
        from repro.data.split import GroupKFold

        splits = list(GroupKFold(n_splits=5, shuffle=True, seed=5).split(groups))
        explicit = cross_validate_auc(
            _TreeFactory(), X, y, groups=None, seed=5, splits=splits
        )
        assert np.array_equal(full.fold_aucs, explicit.fold_aucs)
        assert np.array_equal(full.oof_score, explicit.oof_score)

    def test_grid_search_identical_and_split_reuse(self):
        X, y, groups = _toy_problem()
        grid = {"max_depth": [2, 4]}
        serial = grid_search(_tree, grid, X, y, groups, seed=5, workers=1)
        fanned = grid_search(_tree, grid, X, y, groups, seed=5, workers=2)
        assert serial.best_params == fanned.best_params
        for (p1, r1), (p2, r2) in zip(serial.all_results, fanned.all_results):
            assert p1 == p2
            assert np.array_equal(r1.fold_aucs, r2.fold_aucs)
            assert np.array_equal(r1.oof_score, r2.oof_score)

    def test_cv_requires_groups_or_splits(self):
        X, y, _ = _toy_problem()
        with pytest.raises(ValueError, match="groups or splits"):
            cross_validate_auc(_TreeFactory(), X, y, groups=None)
