"""Prediction of individual error types (Section 5.4 / Table 8).

Besides swap-inducing failures, the paper recreates the error-prediction
task of Mahdisoltani et al. [17]: will error type ``E`` (or a bad-block
growth event) occur on this drive within the next ``N`` days?  It shows the
same age-partitioning trick boosts those predictions too (Table 8).

Labels are built from the *recorded* telemetry: row at age ``t`` is
positive iff some recorded day ``u`` of the same drive with
``t < u <= t + N`` carries a positive count of the target error.
"""

from __future__ import annotations

import numpy as np

from ..data import DriveDayDataset
from ..data.fields import ERROR_TYPES

__all__ = ["error_event_labels", "ERROR_PREDICTION_TARGETS"]

#: Targets of Table 8: the ten error types plus bad-block growth.
ERROR_PREDICTION_TARGETS: tuple[str, ...] = ("bad_block", *ERROR_TYPES)


def _target_event_column(records: DriveDayDataset, target: str) -> np.ndarray:
    """Per-row boolean: does this drive-day carry a target event?"""
    if target == "bad_block":
        grown = np.asarray(records["grown_bad_blocks"], dtype=np.int64)
        # A growth event is a day on which the cumulative counter increases.
        ids, offsets = records.drive_groups()
        event = np.zeros(len(records), dtype=bool)
        d = np.diff(grown, prepend=grown[:1])
        event = d > 0
        # Segment starts: a first-row positive counts iff the counter is
        # already above zero could be a stale carry-over; treat the first
        # recorded day of each drive as a non-event to avoid false diffs
        # across drive boundaries.
        event[offsets[:-1]] = False
        return event
    if target not in ERROR_TYPES:
        raise KeyError(
            f"unknown target {target!r}; valid: {ERROR_PREDICTION_TARGETS}"
        )
    return np.asarray(records[target]) > 0


def error_event_labels(
    records: DriveDayDataset, target: str, n_days: int
) -> np.ndarray:
    """Binary labels: target event within the next ``n_days`` (exclusive of
    the current day).

    Parameters
    ----------
    records:
        Telemetry dataset sorted by ``(drive_id, age_days)``.
    target:
        One of :data:`ERROR_PREDICTION_TARGETS`.
    n_days:
        Lookahead window ``N``.
    """
    if n_days < 1:
        raise ValueError("n_days must be >= 1")
    event = _target_event_column(records, target)
    ages = np.asarray(records["age_days"], dtype=np.int64)
    y = np.zeros(len(records), dtype=np.int64)
    _, offsets = records.drive_groups()
    for i in range(len(offsets) - 1):
        s, e = int(offsets[i]), int(offsets[i + 1])
        ev_ages = ages[s:e][event[s:e]]
        if ev_ages.size == 0:
            continue
        a = ages[s:e]
        # Next event strictly after each row's age.
        nxt = np.searchsorted(ev_ages, a, side="right")
        has_next = nxt < ev_ages.size
        within = np.zeros(e - s, dtype=bool)
        within[has_next] = ev_ages[nxt[has_next]] <= a[has_next] + n_days
        y[s:e] = within
    return y
