"""Telemetry drift monitoring for deployed predictors.

Section 5.3's lesson generalizes: a model trained on one drive population
degrades on another (young vs old drives, MLC-A vs MLC-B).  In production
the population shifts continuously — new drive batches, changed
provisioning, firmware updates — so a deployed predictor needs a tripwire.
:func:`feature_drift_report` compares the feature distributions the model
was trained on against a current telemetry window, feature by feature
(two-sample KS), and flags the shifted ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..stats.ks import KSResult, ks_two_sample

__all__ = ["FeatureDrift", "DriftReport", "feature_drift_report"]


@dataclass(frozen=True)
class FeatureDrift:
    """Drift verdict for one feature."""

    name: str
    ks: KSResult
    drifted: bool


@dataclass
class DriftReport:
    """Per-feature drift results plus an overall verdict."""

    features: list[FeatureDrift]
    alpha: float

    @property
    def drifted_features(self) -> list[str]:
        return [f.name for f in self.features if f.drifted]

    @property
    def any_drift(self) -> bool:
        return bool(self.drifted_features)

    def render(self, k: int = 10) -> str:
        ranked = sorted(self.features, key=lambda f: -f.ks.statistic)
        lines = [
            f"drifted features ({len(self.drifted_features)} of "
            f"{len(self.features)} at alpha={self.alpha}):"
        ]
        for f in ranked[:k]:
            mark = "DRIFT" if f.drifted else "  ok "
            lines.append(
                f"  [{mark}] {f.name:<28s} KS={f.ks.statistic:.3f} "
                f"p={f.ks.pvalue:.2e}"
            )
        return "\n".join(lines)


def feature_drift_report(
    X_train: np.ndarray,
    X_current: np.ndarray,
    feature_names: tuple[str, ...] | list[str],
    alpha: float = 1e-3,
    min_effect: float = 0.1,
    max_rows: int = 20_000,
    seed: int | None = 0,
) -> DriftReport:
    """Compare training vs current feature distributions.

    A feature counts as drifted when the KS test is significant at
    ``alpha`` AND the KS statistic exceeds ``min_effect`` — with telemetry
    row counts, statistical significance alone fires on negligible shifts.

    Parameters
    ----------
    X_train, X_current:
        Feature matrices with identical column layout.
    feature_names:
        Column names (for the report).
    max_rows:
        Per-matrix row subsample cap (KS is O(n log n) per feature).
    """
    X_train = np.asarray(X_train, dtype=np.float64)
    X_current = np.asarray(X_current, dtype=np.float64)
    if X_train.ndim != 2 or X_current.ndim != 2:
        raise ValueError("feature matrices must be 2-D")
    if X_train.shape[1] != X_current.shape[1]:
        raise ValueError("feature-count mismatch between matrices")
    if len(feature_names) != X_train.shape[1]:
        raise ValueError("feature_names must align with matrix columns")
    rng = np.random.default_rng(seed)

    def _cap(X: np.ndarray) -> np.ndarray:
        if X.shape[0] > max_rows:
            return X[rng.choice(X.shape[0], size=max_rows, replace=False)]
        return X

    A = _cap(X_train)
    B = _cap(X_current)
    out: list[FeatureDrift] = []
    for j, name in enumerate(feature_names):
        ks = ks_two_sample(A[:, j], B[:, j])
        out.append(
            FeatureDrift(
                name=name,
                ks=ks,
                drifted=bool(ks.pvalue < alpha and ks.statistic >= min_effect),
            )
        )
    return DriftReport(features=out, alpha=alpha)
