"""High-level failure-prediction API.

:class:`FailurePredictor` is the library's front door: fit it on a trace
(simulated or loaded), then score any telemetry snapshot for
probability-of-failure within the next ``N`` days.  It optionally trains
*separate models for infant and mature drives* — the paper's Section 5.3
improvement, which buys a substantial AUC gain on young failures — and
exposes feature importances for root-cause interpretation (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import DriveDayDataset, SwapLog, downsample_majority
from ..ml import BinaryClassifier, CVResult, RandomForestClassifier
from ..obs import tracing
from ..parallel import iter_tasks, resolve_workers, shard_ranges
from ..simulator import FleetTrace
from .features import build_features
from .pipeline import (
    INFANCY_DAYS,
    ModelSpec,
    PredictionDataset,
    build_prediction_dataset,
    evaluate_model,
)

__all__ = ["FailurePredictor", "DriveRiskReport"]


@dataclass(frozen=True)
class DriveRiskReport:
    """Per-drive risk snapshot: each drive scored on its latest record."""

    drive_id: np.ndarray
    age_days: np.ndarray
    probability: np.ndarray

    def top(self, k: int) -> "DriveRiskReport":
        """The ``k`` highest-risk drives, most risky first."""
        order = np.argsort(-self.probability)[:k]
        return DriveRiskReport(
            drive_id=self.drive_id[order],
            age_days=self.age_days[order],
            probability=self.probability[order],
        )

    def flagged(self, threshold: float) -> np.ndarray:
        """Drive ids whose failure probability meets the threshold."""
        return self.drive_id[self.probability >= threshold]


class _DefaultForestFactory:
    """Picklable factory for the default forest (lambdas cannot be
    pickled, and deployed predictors are saved with pickle)."""

    def __init__(self, seed: int):
        self.seed = seed

    def __call__(self) -> RandomForestClassifier:
        return RandomForestClassifier(
            n_estimators=160, max_depth=13, min_samples_leaf=2, random_state=self.seed
        )


#: Fitted models + feature matrix shared by scoring shards, installed
#: once per worker process (see :func:`_set_score_state`).
_score_state: tuple | None = None


def _set_score_state(
    models: dict[str, BinaryClassifier],
    age_partitioned: bool,
    infancy_days: int,
    X: np.ndarray,
    age_days: np.ndarray,
) -> None:
    global _score_state
    _score_state = (models, age_partitioned, infancy_days, X, age_days)


def _score_block(
    models: dict[str, BinaryClassifier],
    age_partitioned: bool,
    infancy_days: int,
    X: np.ndarray,
    age_days: np.ndarray,
) -> np.ndarray:
    """Score one block of rows — the kernel both pool task shapes share."""
    if not age_partitioned:
        return models["all"].predict_proba(X)
    out = np.empty(X.shape[0])
    young = age_days <= infancy_days
    if np.any(young):
        out[young] = models["young"].predict_proba(X[young])
    if np.any(~young):
        out[~young] = models["old"].predict_proba(X[~young])
    return out


def _score_shard(task: tuple) -> np.ndarray:
    """Pool task: score one contiguous row range of the installed matrix."""
    lo, hi = task
    assert _score_state is not None, "score state not installed"
    models, age_partitioned, infancy_days, X, age_days = _score_state
    return _score_block(
        models, age_partitioned, infancy_days, X[lo:hi], age_days[lo:hi]
    )


#: Fitted models only — the warm-pool analogue of :data:`_score_state`.
#: Installed once per persistent-pool worker; each call then ships just
#: the row slices, never the model bundle (see
#: :class:`repro.parallel.PersistentPool`).
_model_state: tuple | None = None


def _set_model_state(
    models: dict[str, BinaryClassifier],
    age_partitioned: bool,
    infancy_days: int,
) -> None:
    global _model_state
    _model_state = (models, age_partitioned, infancy_days)


def _score_rows_task(task: tuple) -> np.ndarray:
    """Warm-pool task: score a shipped ``(X_rows, age_days)`` slice."""
    X, age_days = task
    assert _model_state is not None, "model state not installed"
    models, age_partitioned, infancy_days = _model_state
    return _score_block(models, age_partitioned, infancy_days, X, age_days)


class FailurePredictor:
    """Predicts swap-inducing failures within the next ``lookahead`` days.

    Parameters
    ----------
    lookahead:
        Size of the prediction window ``N`` (days, current day included).
    model_spec:
        Which classifier to use; defaults to the paper's best (random
        forest on raw features).
    age_partitioned:
        Train separate infant (< 90 days) and mature models, as in
        Section 5.3 of the paper.
    infancy_days:
        Boundary of the infant window.
    downsample_ratio:
        Negatives kept per positive when fitting (1:1 by default).
    seed:
        Seeds downsampling and any stochastic model internals.
    """

    def __init__(
        self,
        lookahead: int = 1,
        model_spec: ModelSpec | None = None,
        age_partitioned: bool = False,
        infancy_days: int = INFANCY_DAYS,
        downsample_ratio: float | None = 1.0,
        seed: int = 0,
    ):
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        self.lookahead = lookahead
        self.model_spec = model_spec or ModelSpec(
            "Random Forest", _DefaultForestFactory(seed), scale=False, log1p=False
        )
        self.age_partitioned = age_partitioned
        self.infancy_days = infancy_days
        self.downsample_ratio = downsample_ratio
        self.seed = seed
        self._models: dict[str, BinaryClassifier] = {}
        self._feature_names: tuple[str, ...] | None = None

    @property
    def feature_names(self) -> tuple[str, ...] | None:
        """Feature layout the predictor was fitted on (``None`` before fit).

        The model registry hashes this to refuse activating a model
        against a feature store with a different layout.
        """
        return self._feature_names

    # ------------------------------------------------------------------ fit
    def fit(
        self, trace: FleetTrace | tuple[DriveDayDataset, SwapLog]
    ) -> "FailurePredictor":
        """Fit on a full trace (telemetry + swap log)."""
        dataset = build_prediction_dataset(trace, self.lookahead)
        return self.fit_dataset(dataset)

    def fit_dataset(self, dataset: PredictionDataset) -> "FailurePredictor":
        """Fit on a pre-built :class:`PredictionDataset`."""
        self._feature_names = dataset.feature_names
        self._models = {}
        if self.age_partitioned:
            parts = {
                "young": dataset.young(self.infancy_days),
                "old": dataset.old(self.infancy_days),
            }
        else:
            parts = {"all": dataset}
        rng = np.random.default_rng(self.seed)
        for key, part in parts.items():
            if part.n_positive == 0:
                raise ValueError(
                    f"cannot fit {key!r} partition: no positive samples "
                    f"(need failures inside the partition)"
                )
            with tracing.span(
                "repro.core.fit", rows_in=len(part), partition=key
            ) as sp:
                if self.downsample_ratio is not None:
                    keep = downsample_majority(
                        part.y, ratio=self.downsample_ratio, rng=rng
                    )
                    part = part.select(keep)
                sp.set(rows_out=len(part))
                model = self.model_spec.factory()
                model.fit(self._transform_fit(part.X), part.y)
            self._models[key] = model
        return self

    def _transform_fit(self, X: np.ndarray) -> np.ndarray:
        # Preprocessing for non-tree models is handled by the CV helpers in
        # pipeline.py; the deployable predictor keeps raw features and is
        # therefore restricted to specs with scale=log1p=False.
        if self.model_spec.scale or self.model_spec.log1p:
            raise ValueError(
                "FailurePredictor currently supports raw-feature models "
                "(trees/forests); use repro.core.pipeline.evaluate_model for "
                "scaled models"
            )
        return X

    # ------------------------------------------------------------------ predict
    def predict_proba_dataset(
        self,
        dataset: PredictionDataset,
        workers: int | None = None,
        policy: object | None = None,
        supervision: object | None = None,
    ) -> np.ndarray:
        """Failure probability for every row of a prediction dataset.

        ``workers`` shards the rows across worker processes (scoring is
        per-row, so the probabilities are identical for any count).  A
        :class:`repro.resilience.SupervisorPolicy` adds deadlines and
        deterministic retries; quarantine is forced off (the shards
        concatenate into one probability vector, so a hole would be
        silent corruption).
        """
        self._require_fitted()
        if dataset.feature_names != self._feature_names:
            raise ValueError("feature-name mismatch with fitted predictor")
        with tracing.span("repro.core.predict", rows_in=len(dataset)):
            return self.predict_proba_matrix(
                dataset.X,
                dataset.age_days,
                workers=workers,
                policy=policy,
                supervision=supervision,
            )

    def scoring_pool(self, workers: int | None = None) -> "PersistentPool":
        """A warm worker pool with this predictor's models pre-installed.

        The returned :class:`repro.parallel.PersistentPool` pickles the
        model bundle into each worker exactly once; pass it to
        :meth:`predict_proba_matrix` (``pool=``) so repeated scoring
        calls — the per-chunk loop of ``serve replay`` — ship only row
        slices.  Caller owns the pool's lifetime (``close()``).
        """
        from ..parallel.persistent import PersistentPool

        self._require_fitted()
        return PersistentPool(
            workers=workers,
            initializer=_set_model_state,
            initargs=(self._models, self.age_partitioned, self.infancy_days),
            label="repro.core.predict",
        )

    def predict_proba_matrix(
        self,
        X: np.ndarray,
        age_days: np.ndarray,
        workers: int | None = None,
        policy: object | None = None,
        supervision: object | None = None,
        pool: "PersistentPool | None" = None,
    ) -> np.ndarray:
        """Failure probability for every row of a raw feature matrix.

        The serving hot path (:mod:`repro.serve.engine`) calls this with
        feature rows assembled incrementally; the batch paths above call
        it with a full :class:`PredictionDataset` matrix.  Scoring is
        per-row (trees traverse each row independently), so the output is
        bit-identical for any batch split and any ``workers`` count.

        ``pool`` routes the fan-out through a warm
        :meth:`scoring_pool` instead of building a fresh process pool
        per call; row sharding matches the per-call path exactly, so
        bytes are identical either way.  Ignored when a supervisor
        ``policy`` is given (retries need the supervised pool).
        """
        self._require_fitted()
        n = X.shape[0]
        if pool is not None and policy is None:
            age = np.asarray(age_days)
            tasks = [
                (X[lo:hi], age[lo:hi])
                for lo, hi in shard_ranges(n, pool.workers)
            ]
            parts = pool.run(_score_rows_task, tasks)
            return np.concatenate(parts) if parts else np.empty(0)
        state = (
            self._models,
            self.age_partitioned,
            self.infancy_days,
            X,
            age_days,
        )
        tasks = shard_ranges(n, resolve_workers(workers))
        if policy is not None:
            from ..resilience.supervisor import force_fail

            policy = force_fail(policy)
        parts = [
            part
            for _, part in iter_tasks(
                _score_shard,
                tasks,
                workers=workers,
                label="repro.core.predict",
                initializer=_set_score_state,
                initargs=state,
                policy=policy,
                supervision=supervision,
            )
        ]
        return np.concatenate(parts) if parts else np.empty(0)

    def predict_proba_records(
        self,
        records: DriveDayDataset,
        workers: int | None = None,
        policy: object | None = None,
        supervision: object | None = None,
    ) -> np.ndarray:
        """Failure probability for every row of a raw telemetry dataset."""
        self._require_fitted()
        frame = build_features(records)
        dataset = PredictionDataset(
            X=frame.X,
            y=np.zeros(len(frame), dtype=np.int64),
            groups=frame.drive_id,
            age_days=frame.age_days,
            model=frame.model,
            feature_names=frame.names,
            lookahead=self.lookahead,
        )
        return self.predict_proba_dataset(
            dataset, workers=workers, policy=policy, supervision=supervision
        )

    def risk_report(
        self,
        records: DriveDayDataset,
        workers: int | None = None,
        policy: object | None = None,
        supervision: object | None = None,
    ) -> DriveRiskReport:
        """Score each drive on its most recent record.

        This is the operational use-case of Section 5: rank the live fleet
        by probability of failing within the next ``lookahead`` days so
        operators can migrate data / provision spares ahead of the failure.
        """
        self._require_fitted()
        probs = self.predict_proba_records(
            records, workers=workers, policy=policy, supervision=supervision
        )
        ids, offsets = records.drive_groups()
        last = offsets[1:] - 1
        return DriveRiskReport(
            drive_id=ids.astype(np.int32),
            age_days=np.asarray(records["age_days"])[last],
            probability=probs[last],
        )

    # ------------------------------------------------------------------ misc
    def feature_importances(self) -> list[tuple[str, float]]:
        """Importance-sorted ``(feature, weight)`` of the fitted model.

        With age partitioning, returns the *mature*-model importances; use
        :meth:`feature_importances_for` for a specific partition.
        """
        key = "old" if self.age_partitioned else "all"
        return self.feature_importances_for(key)

    def feature_importances_for(self, partition: str) -> list[tuple[str, float]]:
        """Importances for one partition: ``"all"``, ``"young"`` or ``"old"``."""
        self._require_fitted()
        model = self._models.get(partition)
        if model is None:
            raise KeyError(
                f"no partition {partition!r}; fitted partitions: "
                f"{sorted(self._models)}"
            )
        imp = getattr(model, "feature_importances_", None)
        if imp is None:
            raise AttributeError(
                f"{type(model).__name__} does not expose feature importances"
            )
        assert self._feature_names is not None
        pairs = sorted(
            zip(self._feature_names, imp.tolist()), key=lambda p: -p[1]
        )
        return pairs

    def cross_validate(
        self,
        trace: FleetTrace | tuple[DriveDayDataset, SwapLog],
        n_splits: int = 5,
        workers: int | None = None,
        policy: object | None = None,
        supervision: object | None = None,
    ) -> CVResult:
        """Paper-protocol CV of this predictor's model on a trace.

        ``workers`` spreads the folds across worker processes; fold AUCs
        and out-of-fold scores are identical for any count.
        """
        dataset = build_prediction_dataset(trace, self.lookahead)
        return evaluate_model(
            dataset,
            self.model_spec,
            n_splits=n_splits,
            downsample_ratio=self.downsample_ratio,
            seed=self.seed,
            workers=workers,
            policy=policy,
            supervision=supervision,
        )

    def _require_fitted(self) -> None:
        if not self._models:
            raise RuntimeError("FailurePredictor used before fit")
