"""Rolling-window feature extraction — the paper's future-work direction.

The paper closes by noting it is "advancing our understanding of disk
activity prior to a swap ... in order to improve our prediction models for
large N".  The mechanism implemented here: besides the day-of-prediction
value and the lifetime cumulative, summarize each counter over a trailing
window of the last ``k`` *recorded* days (sum, plus a recent/lifetime
ratio for activity drift).  Windowed sums let the model see an error burst
or workload drain that started a few days ago even when the current day is
quiet — exactly what large lookahead windows need.

``benchmarks/test_ablation_windows.py`` measures the gain.
"""

from __future__ import annotations

import numpy as np

from ..data import DriveDayDataset
from .features import DAILY_FEATURE_SOURCES, FeatureFrame, build_features

__all__ = ["rolling_window_sums", "build_windowed_features", "WINDOWED_SOURCES"]

#: Counters that get trailing-window features (activity + the error types
#: whose bursts matter; the ultra-rare errors add nothing but noise).
WINDOWED_SOURCES: tuple[str, ...] = (
    "read_count",
    "write_count",
    "correctable_error",
    "uncorrectable_error",
    "final_read_error",
)


def rolling_window_sums(
    records: DriveDayDataset, name: str, window: int
) -> np.ndarray:
    """Trailing sum of ``name`` over the last ``window`` recorded rows.

    Windows restart at drive boundaries and include the current row, so the
    result for row ``i`` is the sum over rows ``max(start, i-window+1)..i``
    of the same drive.  Computed from the per-drive prefix sums — no
    Python loop over rows.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    cum = records.grouped_cumsum(name)
    n = len(records)
    if n == 0:
        return np.zeros(0)
    _, offsets = records.drive_groups()
    starts = offsets[:-1]
    lengths = np.diff(offsets)
    seg_start = np.repeat(starts, lengths)  # first row index of own drive
    row = np.arange(n)
    prev = np.maximum(row - window, seg_start - 1)  # row before window start
    # Prefix-sum difference; rows whose window reaches the segment start
    # subtract zero.
    base = np.where(prev >= seg_start, cum[np.maximum(prev, 0)], 0.0)
    return cum - base


def build_windowed_features(
    records: DriveDayDataset,
    window: int = 7,
    sources: tuple[str, ...] = WINDOWED_SOURCES,
) -> FeatureFrame:
    """The standard feature frame extended with trailing-window features.

    Adds, for each source counter, ``w{window}_<name>`` (trailing sum) and,
    for the activity counters, ``w{window}_<name>_ratio`` — the trailing
    mean relative to the drive's lifetime mean, which isolates *drift*
    (a drive being drained ahead of a swap) from the drive's absolute
    activity level.
    """
    frame = build_features(records)
    extra_names: list[str] = []
    extra_cols: list[np.ndarray] = []
    n = len(records)
    _, offsets = records.drive_groups()
    lengths = np.diff(offsets)
    row_in_seg = np.arange(n) - np.repeat(offsets[:-1], lengths) + 1.0

    for src in sources:
        if src not in DAILY_FEATURE_SOURCES:
            raise KeyError(f"{src!r} is not a windowed-feature source")
        wsum = rolling_window_sums(records, src, window)
        extra_names.append(f"w{window}_{src}")
        extra_cols.append(wsum)
        if src in ("read_count", "write_count"):
            cum = records.grouped_cumsum(src)
            lifetime_mean = cum / row_in_seg
            recent_mean = wsum / np.minimum(row_in_seg, window)
            ratio = recent_mean / np.maximum(lifetime_mean, 1e-9)
            extra_names.append(f"w{window}_{src}_ratio")
            extra_cols.append(ratio)

    X = np.column_stack([frame.X, *extra_cols]) if extra_cols else frame.X
    return FeatureFrame(
        X=X,
        names=(*frame.names, *extra_names),
        drive_id=frame.drive_id,
        age_days=frame.age_days,
        model=frame.model,
    )
