"""Failure pinpointing and lookahead labelling (Sections 3 and 5).

The swap log gives, for every swap, the *failure age*: the drive's last day
of operational activity before the pre-swap non-operational period
(Section 3's failure definition).  From it this module derives:

- the **operational mask** — rows belonging to the post-failure limbo
  (zero-activity reports between failure and swap) are excluded from the
  prediction dataset: the drive has already failed there;
- the **lookahead labels** — row at age ``t`` is positive iff a failure
  occurs within ``[t, t + N - 1]``, i.e. "the drive fails within the next
  N days" counting the current day.
"""

from __future__ import annotations

import numpy as np

from ..data import DriveDayDataset, SwapLog

__all__ = ["lookahead_labels", "operational_mask", "label_dataset"]


def _drive_slices(records: DriveDayDataset) -> dict[int, tuple[int, int]]:
    """Map drive_id -> (row_start, row_stop) in the sorted dataset."""
    ids, offsets = records.drive_groups()
    return {
        int(ids[i]): (int(offsets[i]), int(offsets[i + 1]))
        for i in range(len(ids))
    }


def operational_mask(records: DriveDayDataset, swaps: SwapLog) -> np.ndarray:
    """Boolean mask of rows *not* inside a post-failure limbo period.

    A row of drive ``d`` at age ``t`` is masked out iff some swap event of
    ``d`` has ``failure_age < t <= swap_age``.
    """
    mask = np.ones(len(records), dtype=bool)
    if len(swaps) == 0 or len(records) == 0:
        return mask
    slices = _drive_slices(records)
    ages = records["age_days"]
    for i in range(len(swaps)):
        span = slices.get(int(swaps.drive_id[i]))
        if span is None:
            continue
        s, e = span
        a = ages[s:e]
        lo = s + int(np.searchsorted(a, swaps.failure_age[i], side="right"))
        hi = s + int(np.searchsorted(a, swaps.swap_age[i], side="right"))
        if hi > lo:
            mask[lo:hi] = False
    return mask


def lookahead_labels(
    records: DriveDayDataset, swaps: SwapLog, n_days: int
) -> np.ndarray:
    """Binary labels: failure within the next ``n_days`` (current day incl.).

    Row at age ``t`` is positive iff some failure of the same drive has
    ``t <= failure_age <= t + n_days - 1``.
    """
    if n_days < 1:
        raise ValueError("n_days must be >= 1")
    y = np.zeros(len(records), dtype=np.int64)
    if len(swaps) == 0 or len(records) == 0:
        return y
    slices = _drive_slices(records)
    ages = records["age_days"]
    for i in range(len(swaps)):
        span = slices.get(int(swaps.drive_id[i]))
        if span is None:
            continue
        s, e = span
        a = ages[s:e]
        f = swaps.failure_age[i]
        lo = s + int(np.searchsorted(a, f - n_days + 1, side="left"))
        hi = s + int(np.searchsorted(a, f, side="right"))
        if hi > lo:
            y[lo:hi] = 1
    return y


def label_dataset(
    records: DriveDayDataset, swaps: SwapLog, n_days: int
) -> tuple[np.ndarray, np.ndarray]:
    """Convenience: ``(labels, keep_mask)`` for a lookahead of ``n_days``.

    ``keep_mask`` removes post-failure limbo rows; apply it to both the
    feature matrix and the labels before training.
    """
    return (
        lookahead_labels(records, swaps, n_days),
        operational_mask(records, swaps),
    )
