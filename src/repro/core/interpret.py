"""Model interpretation utilities (Section 5.4 / Figure 16).

The paper leans on random-forest impurity importances to explain *why* the
model predicts failures — and finds the story differs sharply between
infant and mature drives.  This module packages that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ImportanceReport", "importance_report", "compare_importances"]


@dataclass(frozen=True)
class ImportanceReport:
    """Sorted feature-importance listing for one model."""

    names: tuple[str, ...]
    importances: np.ndarray

    def top(self, k: int = 10) -> list[tuple[str, float]]:
        """The ``k`` most important features, descending."""
        return [(self.names[i], float(self.importances[i])) for i in range(min(k, len(self.names)))]

    def rank_of(self, feature: str) -> int:
        """0-based importance rank of a feature (raises if unknown)."""
        try:
            return self.names.index(feature)
        except ValueError:
            raise KeyError(f"feature {feature!r} not in report") from None

    def render(self, k: int = 10, title: str = "") -> str:
        """Plain-text bar chart of the top-k importances."""
        lines = [title] if title else []
        top = self.top(k)
        peak = max((v for _, v in top), default=1.0) or 1.0
        for name, val in top:
            bar = "#" * max(1, int(round(40 * val / peak)))
            lines.append(f"  {name:<28s} {val:7.4f} {bar}")
        return "\n".join(lines)


def importance_report(
    names: tuple[str, ...] | list[str], importances: np.ndarray
) -> ImportanceReport:
    """Build a sorted report from raw (name, importance) arrays."""
    importances = np.asarray(importances, dtype=np.float64)
    if len(names) != importances.shape[0]:
        raise ValueError("names and importances must align")
    order = np.argsort(-importances)
    return ImportanceReport(
        names=tuple(names[i] for i in order), importances=importances[order]
    )


def compare_importances(
    young: ImportanceReport, old: ImportanceReport, k: int = 10
) -> str:
    """Side-by-side text rendering of young vs. mature importances.

    Mirrors Figure 16's two panels: the paper's headline is that the two
    rankings barely overlap (age/non-transparent errors dominate young
    failures; wear-and-tear counters dominate mature ones).
    """
    ytop = young.top(k)
    otop = old.top(k)
    lines = [f"{'Young drives':<42s} | Old drives"]
    for i in range(k):
        left = f"{ytop[i][0]:<28s} {ytop[i][1]:7.4f}" if i < len(ytop) else ""
        right = f"{otop[i][0]:<28s} {otop[i][1]:7.4f}" if i < len(otop) else ""
        lines.append(f"{left:<42s} | {right}")
    return "\n".join(lines)
