"""End-to-end prediction pipeline: trace -> features -> labels -> CV scores.

This wires the pieces together exactly as Section 5 describes: feature
extraction (daily + cumulative), lookahead labelling against the swap log,
drive-grouped 5-fold cross-validation with 1:1 training downsampling, and
ROC-AUC scoring — for any of the six classifiers of Table 6.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..data import DriveDayDataset, SwapLog
from ..ml import (
    BinaryClassifier,
    CVResult,
    DecisionTreeClassifier,
    KernelSVM,
    KNeighborsClassifier,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
    cross_validate_auc,
)
from ..obs import tracing
from ..simulator import FleetTrace
from .features import FeatureFrame, build_features
from .labeling import label_dataset

__all__ = [
    "PredictionDataset",
    "ModelSpec",
    "build_prediction_dataset",
    "default_model_zoo",
    "extended_model_zoo",
    "evaluate_model",
    "evaluate_model_zoo",
    "INFANCY_DAYS",
]

#: Age boundary between "young" (infant) and "old" (mature) drives
#: (Section 4.1: the elevated-failure window is the first 90 days).
INFANCY_DAYS: int = 90


@dataclass
class PredictionDataset:
    """A ready-to-train snapshot: features, labels, and grouping identity."""

    X: np.ndarray
    y: np.ndarray
    groups: np.ndarray
    age_days: np.ndarray
    model: np.ndarray
    feature_names: tuple[str, ...]
    lookahead: int

    def __len__(self) -> int:
        return self.X.shape[0]

    @property
    def n_positive(self) -> int:
        return int(self.y.sum())

    def select(self, idx: np.ndarray) -> "PredictionDataset":
        """Row subset (mask or indices)."""
        return PredictionDataset(
            X=self.X[idx],
            y=self.y[idx],
            groups=self.groups[idx],
            age_days=self.age_days[idx],
            model=self.model[idx],
            feature_names=self.feature_names,
            lookahead=self.lookahead,
        )

    def young(self, infancy_days: int = INFANCY_DAYS) -> "PredictionDataset":
        """Rows of drives at most ``infancy_days`` old."""
        return self.select(self.age_days <= infancy_days)

    def old(self, infancy_days: int = INFANCY_DAYS) -> "PredictionDataset":
        """Rows of drives older than ``infancy_days``."""
        return self.select(self.age_days > infancy_days)

    def for_model(self, model_index: int) -> "PredictionDataset":
        """Rows of one drive model."""
        return self.select(self.model == model_index)


def build_prediction_dataset(
    trace: FleetTrace | tuple[DriveDayDataset, SwapLog],
    lookahead: int = 1,
) -> PredictionDataset:
    """Build the supervised dataset for a given lookahead window ``N``.

    Post-failure limbo rows are dropped; everything else becomes one
    training/evaluation row.  Rows flagged by the quarantine repair
    policy (a ``quarantined`` column written by
    :func:`repro.reliability.repair.apply_policy`) are excluded the same
    way limbo rows are: their telemetry is untrusted, so they must feed
    neither training nor evaluation.
    """
    if isinstance(trace, FleetTrace):
        records, swaps = trace.records, trace.swaps
    else:
        records, swaps = trace
    with tracing.span(
        "repro.core.build_dataset", rows_in=len(records)
    ) as sp:
        frame: FeatureFrame = build_features(records)
        y, keep = label_dataset(records, swaps, lookahead)
        if "quarantined" in records:
            keep = keep & (np.asarray(records["quarantined"]) == 0)
        kept = frame.select_rows(keep)
        sp.set(rows_out=int(keep.sum()), n_dropped=int(len(records) - keep.sum()))
    return PredictionDataset(
        X=kept.X,
        y=y[keep],
        groups=kept.drive_id,
        age_days=kept.age_days,
        model=kept.model,
        feature_names=kept.names,
        lookahead=lookahead,
    )


@dataclass(frozen=True)
class ModelSpec:
    """One entry of the model zoo: factory plus preprocessing flags.

    Distance/margin/gradient models get log-compressed, standardized
    features (the raw counters span seven orders of magnitude); trees
    consume raw features.
    """

    name: str
    factory: Callable[[], BinaryClassifier]
    scale: bool
    log1p: bool


def default_model_zoo(seed: int = 0) -> tuple[ModelSpec, ...]:
    """The paper's six classifiers with grid-searched default settings.

    Hyperparameters follow the paper's tuning approach (regularization
    strength, tree depth, hidden-layer sizes chosen by cross-validated
    AUC); the values here are the best configurations found by
    ``benchmarks/ablations`` on the default simulated fleet.
    """
    return (
        ModelSpec(
            "Logistic Reg.",
            lambda: LogisticRegression(l2=1.0),
            scale=True,
            log1p=True,
        ),
        ModelSpec(
            "k-NN",
            lambda: KNeighborsClassifier(n_neighbors=15),
            scale=True,
            log1p=True,
        ),
        ModelSpec(
            "SVM",
            lambda: KernelSVM(
                gamma=0.05, n_components=200, lam=1e-3, random_state=seed
            ),
            scale=True,
            log1p=True,
        ),
        ModelSpec(
            "Neural Network",
            lambda: MLPClassifier(
                hidden_sizes=(32, 16), n_epochs=60, random_state=seed
            ),
            scale=True,
            log1p=True,
        ),
        ModelSpec(
            "Decision Tree",
            lambda: DecisionTreeClassifier(
                max_depth=8, min_samples_leaf=3, random_state=seed
            ),
            scale=False,
            log1p=False,
        ),
        ModelSpec(
            "Random Forest",
            lambda: RandomForestClassifier(
                n_estimators=160,
                max_depth=13,
                min_samples_leaf=2,
                random_state=seed,
            ),
            scale=False,
            log1p=False,
        ),
    )


def extended_model_zoo(seed: int = 0) -> tuple[ModelSpec, ...]:
    """The paper's six models plus post-2019 additions.

    Appends gradient boosting (the forest's modern successor) and a
    Gaussian naive-Bayes reference (the Bayesian approach of the paper's
    related work) to :func:`default_model_zoo`.
    """
    from ..ml import GaussianNB, GradientBoostingClassifier

    return (
        *default_model_zoo(seed),
        ModelSpec(
            "Gradient Boosting",
            lambda: GradientBoostingClassifier(
                n_estimators=150,
                learning_rate=0.1,
                max_depth=3,
                subsample=0.8,
                random_state=seed,
            ),
            scale=False,
            log1p=False,
        ),
        ModelSpec(
            "Naive Bayes",
            lambda: GaussianNB(),
            scale=True,
            log1p=True,
        ),
    )


def evaluate_model(
    dataset: PredictionDataset,
    spec: ModelSpec,
    n_splits: int = 5,
    downsample_ratio: float | None = 1.0,
    seed: int = 0,
    workers: int | None = None,
    policy: object | None = None,
    supervision: object | None = None,
) -> CVResult:
    """Cross-validate one model on a prediction dataset (paper protocol).

    ``workers`` spreads the CV folds over worker processes (results are
    identical for any count; the zoo's lambda factories fall back to
    serial automatically since they cannot cross a process boundary).
    ``policy``/``supervision`` route the fold fan-out through the
    supervision layer (:mod:`repro.resilience`).
    """
    with tracing.span(
        "repro.core.evaluate", rows_in=len(dataset), model=spec.name
    ):
        return cross_validate_auc(
            spec.factory,
            dataset.X,
            dataset.y,
            dataset.groups,
            n_splits=n_splits,
            downsample_ratio=downsample_ratio,
            scale=spec.scale,
            log1p=spec.log1p,
            seed=seed,
            workers=workers,
            policy=policy,
            supervision=supervision,
        )


def evaluate_model_zoo(
    dataset: PredictionDataset,
    specs: tuple[ModelSpec, ...] | None = None,
    n_splits: int = 5,
    downsample_ratio: float | None = 1.0,
    seed: int = 0,
    workers: int | None = None,
) -> dict[str, CVResult]:
    """Cross-validate every model of the zoo; one Table 6 column."""
    specs = specs or default_model_zoo(seed)
    return {
        spec.name: evaluate_model(
            dataset,
            spec,
            n_splits=n_splits,
            downsample_ratio=downsample_ratio,
            seed=seed,
            workers=workers,
        )
        for spec in specs
    }
