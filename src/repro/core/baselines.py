"""Non-ML baselines: threshold rules and heuristic scoring.

The paper's Section 1 observes that "statistical methods are not able to
achieve highly accurate predictions: we find no evidence that the repair
process is triggered by any deterministic decision rule", and its related
work cites threshold-based predictors (Ma et al., RAIDShield).  These
baselines make that comparison concrete:

- :class:`SingleFeatureThreshold` — flag when one counter crosses a cut
  (the best cut is chosen on the training data); its AUC is simply how far
  one metric alone can go.
- :class:`HeuristicRiskScore` — a hand-tuned additive score over the
  "usual suspect" counters (UEs, bad blocks, read-only flag), mimicking
  what an operator dashboard would alert on.

Both implement the :class:`~repro.ml.BinaryClassifier` interface, so they
drop into the same cross-validation harness as the six ML models.
"""

from __future__ import annotations

import numpy as np

from ..ml import BinaryClassifier, check_X, check_Xy, roc_auc_score

__all__ = ["SingleFeatureThreshold", "HeuristicRiskScore", "DEFAULT_HEURISTIC_WEIGHTS"]


class SingleFeatureThreshold(BinaryClassifier):
    """Best single-feature threshold rule.

    Fitting scans every feature (optionally a user-fixed one) and keeps the
    feature whose raw value ranks the training labels best (AUC), flipping
    its sign if the association is negative.  Prediction returns the
    feature's empirical quantile, a monotone score in [0, 1].

    Parameters
    ----------
    feature_index:
        Fix the rule to one feature; ``None`` scans all.
    """

    def __init__(self, feature_index: int | None = None):
        self.feature_index = feature_index
        self.chosen_index_: int | None = None
        self.sign_: float = 1.0
        self._sorted_values: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SingleFeatureThreshold":
        X, y = check_Xy(X, y)
        candidates = (
            [self.feature_index]
            if self.feature_index is not None
            else list(range(X.shape[1]))
        )
        best_auc, best_j, best_sign = -1.0, candidates[0], 1.0
        for j in candidates:
            col = X[:, j]
            if col.min() == col.max():
                continue
            auc = roc_auc_score(y, col)
            for auc_signed, sign in ((auc, 1.0), (1.0 - auc, -1.0)):
                if auc_signed > best_auc:
                    best_auc, best_j, best_sign = auc_signed, j, sign
        self.chosen_index_ = int(best_j)
        self.sign_ = best_sign
        self._sorted_values = np.sort(self.sign_ * X[:, best_j])
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.chosen_index_ is None or self._sorted_values is None:
            raise RuntimeError("SingleFeatureThreshold used before fit")
        X = check_X(X)
        vals = self.sign_ * X[:, self.chosen_index_]
        ranks = np.searchsorted(self._sorted_values, vals, side="right")
        return ranks / len(self._sorted_values)


#: Default additive weights of the operator-dashboard heuristic, keyed by
#: feature name (see :func:`repro.core.features.feature_names`).
DEFAULT_HEURISTIC_WEIGHTS: dict[str, float] = {
    "uncorrectable_error": 2.0,
    "cum_uncorrectable_error": 1.0,
    "final_read_error": 1.5,
    "cum_bad_block_count": 1.0,
    "status_read_only": 3.0,
}


class HeuristicRiskScore(BinaryClassifier):
    """Fixed additive risk score over log-compressed suspect counters.

    ``score = sigma( sum_f w_f * log1p(x_f) - b )`` with hand-set weights.
    ``fit`` only calibrates the offset ``b`` so scores centre sensibly; no
    learning of weights happens — that is the point of the baseline.

    Parameters
    ----------
    feature_names:
        Names aligned with the columns of ``X``.
    weights:
        Feature-name -> weight mapping (defaults to
        :data:`DEFAULT_HEURISTIC_WEIGHTS`; unknown names are ignored).
    """

    def __init__(
        self,
        feature_names: tuple[str, ...],
        weights: dict[str, float] | None = None,
    ):
        self.feature_names = tuple(feature_names)
        self.weights = dict(weights or DEFAULT_HEURISTIC_WEIGHTS)
        self._w: np.ndarray | None = None
        self._offset: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "HeuristicRiskScore":
        X, y = check_Xy(X, y)
        if X.shape[1] != len(self.feature_names):
            raise ValueError("feature_names must align with X columns")
        w = np.zeros(X.shape[1])
        for name, weight in self.weights.items():
            if name in self.feature_names:
                w[self.feature_names.index(name)] = weight
        self._w = w
        raw = np.log1p(np.maximum(X, 0.0)) @ w
        self._offset = float(np.median(raw))
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._w is None:
            raise RuntimeError("HeuristicRiskScore used before fit")
        X = check_X(X)
        raw = np.log1p(np.maximum(X, 0.0)) @ self._w - self._offset
        return 1.0 / (1.0 + np.exp(-np.clip(raw, -50, 50)))
