"""Cost-aware threshold selection for deployed predictors.

Section 5.3 of the paper argues for conservative thresholds because false
positives (needless replacements) carry real cost; how conservative depends
on the ratio between the cost of a missed failure (data loss, downtime) and
the cost of a false replacement (a spare drive plus a technician visit).
:func:`select_threshold` turns out-of-fold validation scores into that
decision explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ml import roc_curve

__all__ = ["ThresholdChoice", "select_threshold", "expected_cost_curve"]


def _check_scores(
    y_true: np.ndarray, y_score: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Validate the labels/scores pair before the ROC sweep.

    Raises a plain-language :class:`ValueError` instead of letting the
    length mismatch or an empty sweep surface as an opaque numpy
    broadcasting error deep inside :func:`repro.ml.roc_curve`.
    """
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_score = np.asarray(y_score, dtype=np.float64).ravel()
    if y_true.size == 0:
        raise ValueError("y_true/y_score must be non-empty")
    if y_true.size != y_score.size:
        raise ValueError(
            f"y_true has {y_true.size} samples but y_score has "
            f"{y_score.size}; they must align elementwise"
        )
    return y_true, y_score


@dataclass(frozen=True)
class ThresholdChoice:
    """A selected operating point on the ROC curve."""

    threshold: float
    tpr: float
    fpr: float
    expected_cost_per_unit: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"alpha={self.threshold:.3f} (TPR={self.tpr:.2f}, "
            f"FPR={self.fpr:.4f}, cost={self.expected_cost_per_unit:.4g})"
        )


def expected_cost_curve(
    y_true: np.ndarray,
    y_score: np.ndarray,
    miss_cost: float,
    false_alarm_cost: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Expected per-sample cost at every candidate threshold.

    Cost model: each positive that is not flagged costs ``miss_cost``; each
    negative that is flagged costs ``false_alarm_cost``.

    Returns ``(thresholds, costs)`` aligned with the ROC sweep.
    """
    if miss_cost <= 0 or false_alarm_cost <= 0:
        raise ValueError("costs must be positive")
    y_true, y_score = _check_scores(y_true, y_score)
    fpr, tpr, thresholds = roc_curve(y_true, y_score)
    pi = y_true.mean()  # positive prevalence
    costs = miss_cost * pi * (1.0 - tpr) + false_alarm_cost * (1.0 - pi) * fpr
    return thresholds, costs


def select_threshold(
    y_true: np.ndarray,
    y_score: np.ndarray,
    miss_cost: float,
    false_alarm_cost: float,
    max_fpr: float | None = None,
) -> ThresholdChoice:
    """Pick the cost-minimizing threshold from validation scores.

    Parameters
    ----------
    y_true, y_score:
        Out-of-fold labels and scores (e.g. from
        :class:`repro.ml.CVResult`); using training scores would pick an
        overconfident threshold.
    miss_cost, false_alarm_cost:
        Cost of a missed failure vs a needless replacement, in any common
        unit (only the ratio matters).
    max_fpr:
        Optional hard cap on the false positive rate (operators often have
        a replacement budget regardless of cost ratios).
    """
    y_true, y_score = _check_scores(y_true, y_score)
    fpr, tpr, thresholds = roc_curve(y_true, y_score)
    _, costs = expected_cost_curve(y_true, y_score, miss_cost, false_alarm_cost)
    feasible = np.ones_like(costs, dtype=bool)
    if max_fpr is not None:
        if not 0.0 < max_fpr <= 1.0:
            raise ValueError("max_fpr must lie in (0, 1]")
        feasible = fpr <= max_fpr
        if not np.any(feasible):
            raise ValueError("no operating point satisfies max_fpr")
    masked = np.where(feasible, costs, np.inf)
    best = int(np.argmin(masked))
    thr = float(thresholds[best])
    if not np.isfinite(thr):
        # The "flag nothing" end of the sweep: use a threshold above every
        # observed score.
        thr = float(np.max(y_score)) + 1.0
    return ThresholdChoice(
        threshold=thr,
        tpr=float(tpr[best]),
        fpr=float(fpr[best]),
        expected_cost_per_unit=float(costs[best]),
    )
