"""Feature extraction for failure prediction (Section 5.1 of the paper).

For every workload and error statistic of the daily log, two values feed
the models: the *daily* value on the day of prediction and the *cumulative*
value over the drive's lifetime up to that day.  On top of those, the
drive's age, its P/E cycle count, combined bad-block count, status flags
and a correctable-error *rate* (Figure 16 lists ``corr err rate`` among the
top mature-drive features) are included.

Cumulative counters are computed with per-drive segment cumsums over the
sorted columnar dataset — one vectorized pass per counter, no Python loop
over drives.

The matrix itself is produced by :func:`assemble_features`, a pure
kernel over ``(daily, cumulative, identity)`` arrays.  The batch path
here and the online path (:mod:`repro.serve.feature_store`, which folds
one drive-day at a time into per-drive running sums) both go through
that kernel, so a feature row depends only on the record and the
drive's cumulative counters — never on how the counters were
accumulated.  The two paths agree bit-for-bit because every cumulated
counter column is integer-valued (the simulator rounds operation
counts; error counts are integers), so float64 sums are exact up to
2**53 regardless of association order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from hashlib import sha256

import numpy as np

from ..data import DriveDayDataset
from ..data.fields import ERROR_TYPES

__all__ = [
    "FeatureFrame",
    "DAILY_FEATURE_SOURCES",
    "assemble_features",
    "fused_feature_matrix",
    "daily_matrix",
    "build_features",
    "feature_names",
    "feature_schema_hash",
]

#: Daily counters that get both a raw and a cumulative feature.
DAILY_FEATURE_SOURCES: tuple[str, ...] = (
    "read_count",
    "write_count",
    "erase_count",
    *ERROR_TYPES,
)


@dataclass
class FeatureFrame:
    """Aligned feature matrix plus the row identity needed downstream.

    Attributes
    ----------
    X:
        ``(n_rows, n_features)`` float64 matrix.
    names:
        Feature names, aligned with columns of ``X``.
    drive_id, age_days, model:
        Row identity passthrough (grouped CV splits on ``drive_id``; the
        age-partitioned models of Section 5.3 split on ``age_days``).
    """

    X: np.ndarray
    names: tuple[str, ...]
    drive_id: np.ndarray
    age_days: np.ndarray
    model: np.ndarray

    def __len__(self) -> int:
        return self.X.shape[0]

    def column(self, name: str) -> np.ndarray:
        """One feature column by name."""
        return self.X[:, self.names.index(name)]

    def select_rows(self, idx: np.ndarray) -> "FeatureFrame":
        """Row subset (mask or indices)."""
        return FeatureFrame(
            X=self.X[idx],
            names=self.names,
            drive_id=self.drive_id[idx],
            age_days=self.age_days[idx],
            model=self.model[idx],
        )


def feature_names() -> tuple[str, ...]:
    """Names of the full model feature set, in matrix order."""
    names: list[str] = []
    names.extend(DAILY_FEATURE_SOURCES)
    names.extend(f"cum_{src}" for src in DAILY_FEATURE_SOURCES)
    names.extend(
        (
            "drive_age",
            "pe_cycles",
            "cum_bad_block_count",
            "status_read_only",
            "status_dead",
            "corr_err_rate",
        )
    )
    return tuple(names)


def feature_schema_hash() -> str:
    """sha256 fingerprint of the feature layout this kernel produces.

    Stamped into model-registry metadata and feature-store snapshots so
    a model trained against one feature layout can never be activated
    against a store maintaining another (see :mod:`repro.serve`).
    """
    payload = {
        "names": list(feature_names()),
        "daily_sources": list(DAILY_FEATURE_SOURCES),
    }
    return sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


#: Column indices inside the daily-source block used by derived features.
_READ_IDX = DAILY_FEATURE_SOURCES.index("read_count")
_CORR_IDX = DAILY_FEATURE_SOURCES.index("correctable_error")


def assemble_features(
    daily: np.ndarray,
    cumulative: np.ndarray,
    age_days: np.ndarray,
    pe_cycles: np.ndarray,
    bad_blocks: np.ndarray,
    status_read_only: np.ndarray,
    status_dead: np.ndarray,
) -> np.ndarray:
    """The per-row feature kernel shared by batch and online extraction.

    Parameters
    ----------
    daily:
        ``(n, len(DAILY_FEATURE_SOURCES))`` float64 matrix of the day's
        raw counters, columns in :data:`DAILY_FEATURE_SOURCES` order.
    cumulative:
        Same shape: lifetime-cumulative value of each counter *including*
        the current day.
    age_days, pe_cycles, bad_blocks, status_read_only, status_dead:
        ``(n,)`` identity/state columns (``bad_blocks`` is factory +
        grown combined).

    Returns the ``(n, len(feature_names()))`` float64 matrix.  Rows are
    independent: calling this with one row at a time (the online path)
    produces exactly the rows of one batch call.
    """
    n, k = daily.shape
    names = feature_names()
    X = np.empty((n, len(names)), dtype=np.float64)
    X[:, :k] = daily
    X[:, k : 2 * k] = cumulative
    col = 2 * k
    X[:, col] = age_days
    col += 1
    X[:, col] = pe_cycles
    col += 1
    X[:, col] = bad_blocks
    col += 1
    X[:, col] = status_read_only
    col += 1
    X[:, col] = status_dead
    col += 1
    X[:, col] = daily[:, _CORR_IDX] / (daily[:, _READ_IDX] + 1.0)
    col += 1
    assert col == len(names)
    return X


def fused_feature_matrix(
    cols: "DriveDayDataset | dict[str, np.ndarray]",
    starts: np.ndarray,
    ends: np.ndarray,
    carry_in: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One-pass batched feature kernel over per-drive runs.

    Fuses what used to be three passes — :func:`daily_matrix` (copy),
    per-source ``grouped_cumsum`` (one pass per counter) and
    :func:`assemble_features` (another copy) — into a single kernel that
    writes every block of the feature matrix in place.  Both the batch
    path (:func:`build_features`) and the online path
    (``FeatureStore.ingest_columns``) call this, so batch/online parity
    is structural rather than tested-for.

    Parameters
    ----------
    cols:
        Column accessor holding the full daily schema for ``n`` rows
        grouped into per-drive runs with ages sorted inside each run.
    starts, ends:
        Run boundaries: run ``i`` is ``rows[starts[i]:ends[i]]``.
    carry_in:
        ``(n_runs, len(DAILY_FEATURE_SOURCES))`` cumulative counters
        already absorbed for each run's drive (the online store state),
        or ``None`` when every run starts from zero (the batch path).

    Returns
    -------
    X:
        The ``(n, len(feature_names()))`` float64 feature matrix —
        bit-identical to the unfused three-pass composition: the daily
        block is the same cast, the cumulative block is the same
        sequential ``cumsum`` corrected by the same repeated per-run
        baseline, and the derived columns are computed from the same
        float64 inputs in the same order.
    run_totals:
        ``(n_runs, k)`` cumulative counters at each run's last row — the
        state the online store carries into the next chunk.
    """
    n = np.asarray(cols[DAILY_FEATURE_SOURCES[0]]).shape[0]
    k = len(DAILY_FEATURE_SOURCES)
    names = feature_names()
    X = np.empty((n, len(names)), dtype=np.float64)
    daily = X[:, :k]
    for j, src in enumerate(DAILY_FEATURE_SOURCES):
        daily[:, j] = cols[src]
    cum = X[:, k : 2 * k]
    np.cumsum(daily, axis=0, out=cum)
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    lengths = ends - starts
    # Running total just before each run start (0 for a run at row 0),
    # gathered before the in-place baseline correction below clobbers it.
    base = np.where(
        (starts > 0)[:, None], cum[np.maximum(starts - 1, 0)], 0.0
    )
    if carry_in is None:
        np.subtract(cum, np.repeat(base, lengths, axis=0), out=cum)
    else:
        np.add(cum, np.repeat(carry_in - base, lengths, axis=0), out=cum)
    run_totals = cum[ends - 1] if n else np.zeros((0, k))
    col = 2 * k
    X[:, col] = cols["age_days"]
    col += 1
    X[:, col] = cols["pe_cycles"]
    col += 1
    X[:, col] = np.asarray(cols["factory_bad_blocks"]).astype(
        np.float64
    ) + np.asarray(cols["grown_bad_blocks"]).astype(np.float64)
    col += 1
    X[:, col] = cols["status_read_only"]
    col += 1
    X[:, col] = cols["status_dead"]
    col += 1
    X[:, col] = daily[:, _CORR_IDX] / (daily[:, _READ_IDX] + 1.0)
    col += 1
    assert col == len(names)
    return X, run_totals


def daily_matrix(records: DriveDayDataset | "dict[str, np.ndarray]") -> np.ndarray:
    """Stack the :data:`DAILY_FEATURE_SOURCES` columns as float64."""
    first = records[DAILY_FEATURE_SOURCES[0]]
    n = np.asarray(first).shape[0]
    out = np.empty((n, len(DAILY_FEATURE_SOURCES)), dtype=np.float64)
    for j, src in enumerate(DAILY_FEATURE_SOURCES):
        out[:, j] = records[src]
    return out


def build_features(records: DriveDayDataset) -> FeatureFrame:
    """Extract the model feature matrix from a telemetry dataset.

    The dataset must be sorted by ``(drive_id, age_days)`` — the simulator
    and the IO loaders guarantee this — so lifetime-cumulative counters are
    exact per-drive prefix sums.
    """
    _, offsets = records.drive_groups()
    X, _ = fused_feature_matrix(records, offsets[:-1], offsets[1:])
    return FeatureFrame(
        X=X,
        names=feature_names(),
        drive_id=np.asarray(records["drive_id"]),
        age_days=np.asarray(records["age_days"]),
        model=np.asarray(records["model"]),
    )
