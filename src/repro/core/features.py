"""Feature extraction for failure prediction (Section 5.1 of the paper).

For every workload and error statistic of the daily log, two values feed
the models: the *daily* value on the day of prediction and the *cumulative*
value over the drive's lifetime up to that day.  On top of those, the
drive's age, its P/E cycle count, combined bad-block count, status flags
and a correctable-error *rate* (Figure 16 lists ``corr err rate`` among the
top mature-drive features) are included.

Cumulative counters are computed with per-drive segment cumsums over the
sorted columnar dataset — one vectorized pass per counter, no Python loop
over drives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import DriveDayDataset
from ..data.fields import ERROR_TYPES

__all__ = ["FeatureFrame", "DAILY_FEATURE_SOURCES", "build_features", "feature_names"]

#: Daily counters that get both a raw and a cumulative feature.
DAILY_FEATURE_SOURCES: tuple[str, ...] = (
    "read_count",
    "write_count",
    "erase_count",
    *ERROR_TYPES,
)


@dataclass
class FeatureFrame:
    """Aligned feature matrix plus the row identity needed downstream.

    Attributes
    ----------
    X:
        ``(n_rows, n_features)`` float64 matrix.
    names:
        Feature names, aligned with columns of ``X``.
    drive_id, age_days, model:
        Row identity passthrough (grouped CV splits on ``drive_id``; the
        age-partitioned models of Section 5.3 split on ``age_days``).
    """

    X: np.ndarray
    names: tuple[str, ...]
    drive_id: np.ndarray
    age_days: np.ndarray
    model: np.ndarray

    def __len__(self) -> int:
        return self.X.shape[0]

    def column(self, name: str) -> np.ndarray:
        """One feature column by name."""
        return self.X[:, self.names.index(name)]

    def select_rows(self, idx: np.ndarray) -> "FeatureFrame":
        """Row subset (mask or indices)."""
        return FeatureFrame(
            X=self.X[idx],
            names=self.names,
            drive_id=self.drive_id[idx],
            age_days=self.age_days[idx],
            model=self.model[idx],
        )


def feature_names() -> tuple[str, ...]:
    """Names of the full model feature set, in matrix order."""
    names: list[str] = []
    names.extend(DAILY_FEATURE_SOURCES)
    names.extend(f"cum_{src}" for src in DAILY_FEATURE_SOURCES)
    names.extend(
        (
            "drive_age",
            "pe_cycles",
            "cum_bad_block_count",
            "status_read_only",
            "status_dead",
            "corr_err_rate",
        )
    )
    return tuple(names)


def build_features(records: DriveDayDataset) -> FeatureFrame:
    """Extract the model feature matrix from a telemetry dataset.

    The dataset must be sorted by ``(drive_id, age_days)`` — the simulator
    and the IO loaders guarantee this — so lifetime-cumulative counters are
    exact per-drive prefix sums.
    """
    names = feature_names()
    n = len(records)
    X = np.empty((n, len(names)), dtype=np.float64)
    col = 0
    for src in DAILY_FEATURE_SOURCES:
        X[:, col] = records[src]
        col += 1
    for src in DAILY_FEATURE_SOURCES:
        X[:, col] = records.grouped_cumsum(src)
        col += 1
    X[:, col] = records["age_days"]
    col += 1
    X[:, col] = records["pe_cycles"]
    col += 1
    X[:, col] = records["factory_bad_blocks"].astype(np.float64) + records[
        "grown_bad_blocks"
    ].astype(np.float64)
    col += 1
    X[:, col] = records["status_read_only"]
    col += 1
    X[:, col] = records["status_dead"]
    col += 1
    reads = records["read_count"].astype(np.float64)
    X[:, col] = records["correctable_error"] / (reads + 1.0)
    col += 1
    assert col == len(names)
    return FeatureFrame(
        X=X,
        names=names,
        drive_id=np.asarray(records["drive_id"]),
        age_days=np.asarray(records["age_days"]),
        model=np.asarray(records["model"]),
    )
