"""The paper's primary contribution: SSD failure prediction & interpretation.

- :mod:`repro.core.features` — daily + cumulative feature extraction;
- :mod:`repro.core.labeling` — failure pinpointing and lookahead labels;
- :mod:`repro.core.pipeline` — dataset building, model zoo, CV evaluation;
- :mod:`repro.core.predictor` — high-level :class:`FailurePredictor` API
  with optional infant/mature age partitioning (Section 5.3);
- :mod:`repro.core.error_prediction` — per-error-type prediction (Table 8);
- :mod:`repro.core.interpret` — feature-importance reporting (Figure 16).
"""

from .baselines import (
    DEFAULT_HEURISTIC_WEIGHTS,
    HeuristicRiskScore,
    SingleFeatureThreshold,
)
from .drift import DriftReport, FeatureDrift, feature_drift_report
from .error_prediction import ERROR_PREDICTION_TARGETS, error_event_labels
from .features import (
    DAILY_FEATURE_SOURCES,
    FeatureFrame,
    assemble_features,
    build_features,
    daily_matrix,
    feature_names,
    feature_schema_hash,
)
from .interpret import ImportanceReport, compare_importances, importance_report
from .labeling import label_dataset, lookahead_labels, operational_mask
from .pipeline import (
    INFANCY_DAYS,
    ModelSpec,
    PredictionDataset,
    build_prediction_dataset,
    default_model_zoo,
    evaluate_model,
    extended_model_zoo,
    evaluate_model_zoo,
)
from .policy import ThresholdChoice, expected_cost_curve, select_threshold
from .predictor import DriveRiskReport, FailurePredictor
from .windows import build_windowed_features, rolling_window_sums

__all__ = [
    "DEFAULT_HEURISTIC_WEIGHTS",
    "HeuristicRiskScore",
    "SingleFeatureThreshold",
    "DriftReport",
    "FeatureDrift",
    "feature_drift_report",
    "ERROR_PREDICTION_TARGETS",
    "error_event_labels",
    "DAILY_FEATURE_SOURCES",
    "FeatureFrame",
    "assemble_features",
    "build_features",
    "daily_matrix",
    "feature_names",
    "feature_schema_hash",
    "ImportanceReport",
    "compare_importances",
    "importance_report",
    "label_dataset",
    "lookahead_labels",
    "operational_mask",
    "INFANCY_DAYS",
    "ModelSpec",
    "PredictionDataset",
    "build_prediction_dataset",
    "default_model_zoo",
    "extended_model_zoo",
    "evaluate_model",
    "evaluate_model_zoo",
    "DriveRiskReport",
    "FailurePredictor",
    "ThresholdChoice",
    "expected_cost_curve",
    "select_threshold",
    "build_windowed_features",
    "rolling_window_sums",
]
