"""Kaplan-Meier survival estimation for right-censored durations.

The paper presents censored duration data (operational periods, Figure 3;
repair durations, Figure 5) as raw CDFs with an "∞ bar" for the censored
mass.  That is unbiased only when every unit shares the same censoring
horizon; in a staggered-deployment fleet the horizons differ per unit.  The
Kaplan-Meier product-limit estimator handles per-unit censoring exactly,
and is provided here as the principled upgrade (used by the extended
analyses and exposed in the public stats API).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KaplanMeier", "kaplan_meier"]


@dataclass(frozen=True)
class KaplanMeier:
    """Product-limit survival estimate.

    Attributes
    ----------
    times:
        Distinct event times, increasing.
    survival:
        ``S(t)`` evaluated just after each event time.
    at_risk:
        Number of units at risk at each event time.
    events:
        Number of events at each event time.
    n:
        Total number of units.
    """

    times: np.ndarray
    survival: np.ndarray
    at_risk: np.ndarray
    events: np.ndarray
    n: int

    def __call__(self, t: np.ndarray | float) -> np.ndarray | float:
        """Evaluate ``S(t)`` (right-continuous step function)."""
        t = np.asarray(t, dtype=np.float64)
        idx = np.searchsorted(self.times, t, side="right")
        vals = np.concatenate(([1.0], self.survival))
        out = vals[idx]
        return float(out) if out.ndim == 0 else out

    def cdf(self, t: np.ndarray | float) -> np.ndarray | float:
        """``P(T <= t) = 1 - S(t)`` — comparable to the paper's CDFs."""
        s = self(t)
        return 1.0 - s

    def median(self) -> float:
        """Smallest event time with ``S(t) <= 0.5`` (``inf`` if never)."""
        below = np.flatnonzero(self.survival <= 0.5)
        return float(self.times[below[0]]) if below.size else float("inf")

    def greenwood_variance(self, t: float) -> float:
        """Greenwood's variance estimate of ``S(t)``."""
        mask = self.times <= t
        d = self.events[mask].astype(np.float64)
        r = self.at_risk[mask].astype(np.float64)
        term = np.sum(d / (r * np.maximum(r - d, 1e-12)))
        s = float(self(t))
        return s * s * term


def kaplan_meier(
    durations: np.ndarray, observed: np.ndarray
) -> KaplanMeier:
    """Fit a Kaplan-Meier curve.

    Parameters
    ----------
    durations:
        Time on test for each unit (event time if ``observed``, censoring
        time otherwise).  Must be non-negative.
    observed:
        Boolean per unit: True when the event (failure / repair completion)
        was observed, False when the unit was right-censored.
    """
    durations = np.asarray(durations, dtype=np.float64).ravel()
    observed = np.asarray(observed, dtype=bool).ravel()
    if durations.shape != observed.shape:
        raise ValueError("durations and observed must align")
    if durations.size == 0:
        raise ValueError("kaplan_meier requires a non-empty sample")
    if np.any(durations < 0) or np.any(~np.isfinite(durations)):
        raise ValueError("durations must be finite and non-negative")

    order = np.argsort(durations, kind="stable")
    t_sorted = durations[order]
    e_sorted = observed[order]
    n = durations.size

    event_times = np.unique(t_sorted[e_sorted])
    if event_times.size == 0:
        return KaplanMeier(
            times=np.empty(0),
            survival=np.empty(0),
            at_risk=np.empty(0, dtype=np.int64),
            events=np.empty(0, dtype=np.int64),
            n=int(n),
        )

    # At-risk counts: units with duration >= t (searchsorted on the sorted
    # duration array); event counts per distinct event time.
    at_risk = n - np.searchsorted(t_sorted, event_times, side="left")
    ev_times_all = t_sorted[e_sorted]
    events = np.searchsorted(ev_times_all, event_times, side="right") - np.searchsorted(
        ev_times_all, event_times, side="left"
    )
    factors = 1.0 - events / at_risk
    survival = np.cumprod(factors)
    return KaplanMeier(
        times=event_times,
        survival=survival,
        at_risk=at_risk.astype(np.int64),
        events=events.astype(np.int64),
        n=int(n),
    )
