"""Binned quantile bands (Figure 7 of the paper).

Figure 7 shows, for each month of drive age, the quartiles of daily write
intensity across all drives of that age.  :func:`binned_quantiles` computes
such per-bin quantile bands for any value/covariate pair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QuantileBands", "binned_quantiles"]


@dataclass(frozen=True)
class QuantileBands:
    """Per-bin quantiles of a value conditioned on a binned covariate.

    Attributes
    ----------
    edges:
        Bin edges over the covariate, length ``k + 1``.
    levels:
        Quantile levels, length ``m``.
    values:
        ``(k, m)`` array of quantile values; ``nan`` for empty bins.
    counts:
        Number of observations per bin.
    """

    edges: np.ndarray
    levels: np.ndarray
    values: np.ndarray
    counts: np.ndarray

    @property
    def centers(self) -> np.ndarray:
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    def level(self, q: float) -> np.ndarray:
        """The quantile track for one level (must be among ``levels``)."""
        matches = np.flatnonzero(np.isclose(self.levels, q))
        if len(matches) == 0:
            raise KeyError(f"level {q} not computed; available: {self.levels}")
        return self.values[:, matches[0]]


def binned_quantiles(
    covariate: np.ndarray,
    values: np.ndarray,
    edges: np.ndarray,
    levels: tuple[float, ...] = (0.25, 0.5, 0.75),
) -> QuantileBands:
    """Quantiles of ``values`` within bins of ``covariate``.

    Implemented with a single sort by bin id: observations are bucketed via
    ``searchsorted``, grouped contiguously, and each group's quantiles are
    read off the sorted block — no per-bin boolean scans.
    """
    covariate = np.asarray(covariate, dtype=np.float64).ravel()
    values = np.asarray(values, dtype=np.float64).ravel()
    if covariate.shape != values.shape:
        raise ValueError("covariate and values must align")
    edges = np.asarray(edges, dtype=np.float64)
    if len(edges) < 2 or np.any(np.diff(edges) <= 0):
        raise ValueError("edges must be increasing with at least two entries")
    levels_arr = np.asarray(levels, dtype=np.float64)
    if np.any((levels_arr < 0) | (levels_arr > 1)):
        raise ValueError("quantile levels must lie in [0, 1]")

    k = len(edges) - 1
    bin_id = np.searchsorted(edges, covariate, side="right") - 1
    # Right-edge inclusion: values exactly at edges[-1] fall into last bin.
    bin_id = np.where(covariate == edges[-1], k - 1, bin_id)
    in_range = (bin_id >= 0) & (bin_id < k)
    bid = bin_id[in_range]
    val = values[in_range]

    out = np.full((k, len(levels_arr)), np.nan)
    counts = np.zeros(k, dtype=np.int64)
    if bid.size:
        order = np.argsort(bid, kind="stable")
        bid_sorted = bid[order]
        val_sorted = val[order]
        boundaries = np.concatenate(
            ([0], np.flatnonzero(bid_sorted[1:] != bid_sorted[:-1]) + 1, [bid.size])
        )
        for s, e in zip(boundaries[:-1], boundaries[1:]):
            b = int(bid_sorted[s])
            counts[b] = e - s
            out[b] = np.quantile(val_sorted[s:e], levels_arr)
    return QuantileBands(edges=edges, levels=levels_arr, values=out, counts=counts)
