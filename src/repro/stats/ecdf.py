"""Empirical CDFs, including right-censored variants.

Several of the paper's figures (3 and 5) plot CDFs over durations where a
large share of the sample is never observed to terminate within the 6-year
trace; that share is drawn as a probability-mass bar "at infinity".
:class:`CensoredECDF` models exactly this: the CDF is computed over the
*whole* sample (finite and censored), so it plateaus below 1 at the largest
finite value and :attr:`censored_mass` carries the remainder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ECDF", "CensoredECDF", "ecdf", "censored_ecdf"]


@dataclass(frozen=True)
class ECDF:
    """A right-continuous empirical CDF.

    Attributes
    ----------
    x:
        Sorted distinct sample values.
    y:
        ``P(X <= x)`` at each value; increasing, ends at 1.
    n:
        Sample size.
    """

    x: np.ndarray
    y: np.ndarray
    n: int

    def __call__(self, q: np.ndarray | float) -> np.ndarray | float:
        """Evaluate ``P(X <= q)`` (vectorized)."""
        q = np.asarray(q, dtype=np.float64)
        idx = np.searchsorted(self.x, q, side="right")
        vals = np.concatenate(([0.0], self.y))
        out = vals[idx]
        return float(out) if out.ndim == 0 else out

    def quantile(self, p: np.ndarray | float) -> np.ndarray | float:
        """Smallest sample value ``v`` with ``P(X <= v) >= p``."""
        p = np.asarray(p, dtype=np.float64)
        if np.any((p < 0) | (p > 1)):
            raise ValueError("quantile levels must lie in [0, 1]")
        idx = np.searchsorted(self.y, p, side="left")
        idx = np.minimum(idx, len(self.x) - 1)
        out = self.x[idx]
        return float(out) if out.ndim == 0 else out


@dataclass(frozen=True)
class CensoredECDF:
    """ECDF over a sample with right-censored observations.

    ``y`` is normalized by the *total* count (finite + censored), so
    ``max(y) = 1 - censored_mass``.
    """

    x: np.ndarray
    y: np.ndarray
    n_finite: int
    n_censored: int

    @property
    def censored_mass(self) -> float:
        """Probability mass never observed to terminate (the "∞ bar")."""
        total = self.n_finite + self.n_censored
        return self.n_censored / total if total else 0.0

    def __call__(self, q: np.ndarray | float) -> np.ndarray | float:
        """Evaluate ``P(X <= q)`` against the full (censor-inclusive) mass."""
        q = np.asarray(q, dtype=np.float64)
        idx = np.searchsorted(self.x, q, side="right")
        vals = np.concatenate(([0.0], self.y))
        out = vals[idx]
        return float(out) if out.ndim == 0 else out


def ecdf(sample: np.ndarray) -> ECDF:
    """Build an :class:`ECDF` from a 1-D sample (NaNs rejected)."""
    sample = np.asarray(sample, dtype=np.float64).ravel()
    if sample.size == 0:
        raise ValueError("ecdf requires a non-empty sample")
    if np.any(np.isnan(sample)):
        raise ValueError("ecdf sample contains NaN; use censored_ecdf")
    xs = np.sort(sample)
    x, counts = np.unique(xs, return_counts=True)
    y = np.cumsum(counts) / xs.size
    return ECDF(x=x, y=y, n=int(xs.size))


def censored_ecdf(sample: np.ndarray) -> CensoredECDF:
    """Build a :class:`CensoredECDF`; ``NaN``/``inf`` entries are censored."""
    sample = np.asarray(sample, dtype=np.float64).ravel()
    if sample.size == 0:
        raise ValueError("censored_ecdf requires a non-empty sample")
    censored = np.isnan(sample) | np.isinf(sample)
    finite = sample[~censored]
    n_total = sample.size
    if finite.size == 0:
        return CensoredECDF(
            x=np.empty(0), y=np.empty(0), n_finite=0, n_censored=int(n_total)
        )
    x, counts = np.unique(np.sort(finite), return_counts=True)
    y = np.cumsum(counts) / n_total
    return CensoredECDF(
        x=x, y=y, n_finite=int(finite.size), n_censored=int(n_total - finite.size)
    )
