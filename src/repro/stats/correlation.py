"""Rank statistics and Spearman correlation (Table 2 of the paper).

Spearman's rho is the Pearson correlation of mid-ranks; the paper uses it
because it captures arbitrary monotone relationships between error counters,
not just linear ones.  Implemented from scratch on NumPy (average ranks for
ties) and property-tested against closed forms.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rankdata", "spearman", "spearman_matrix"]


def rankdata(x: np.ndarray) -> np.ndarray:
    """Mid-ranks (1-based, ties averaged) of a 1-D sample.

    Equivalent to ``scipy.stats.rankdata(x, method='average')`` but kept
    dependency-light and vectorized: ties are resolved by averaging the
    rank range each tied block occupies.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    n = x.size
    if n == 0:
        return np.empty(0)
    order = np.argsort(x, kind="stable")
    xs = x[order]
    # Block boundaries of equal values in sorted order.
    boundary = np.concatenate(([True], xs[1:] != xs[:-1]))
    block_id = np.cumsum(boundary) - 1
    starts = np.flatnonzero(boundary)
    ends = np.concatenate((starts[1:], [n]))
    # Average rank of each tied block: mean of 1-based positions it spans.
    block_rank = (starts + 1 + ends) / 2.0
    ranks_sorted = block_rank[block_id]
    out = np.empty(n)
    out[order] = ranks_sorted
    return out


def spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation between two 1-D samples.

    Returns ``nan`` when either sample is constant (rho undefined).
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.size != y.size:
        raise ValueError("samples must have equal length")
    if x.size < 2:
        raise ValueError("need at least two observations")
    rx = rankdata(x)
    ry = rankdata(y)
    sx = rx.std()
    sy = ry.std()
    if sx == 0.0 or sy == 0.0:
        return float("nan")
    return float(((rx - rx.mean()) * (ry - ry.mean())).mean() / (sx * sy))


def spearman_matrix(columns: dict[str, np.ndarray]) -> tuple[list[str], np.ndarray]:
    """Spearman correlation matrix over named columns.

    All columns are ranked once, then a single Pearson correlation of the
    rank matrix produces every pairwise rho — O(k) rank passes plus one
    ``k x k`` matrix product instead of O(k^2) pairwise scans.

    Returns
    -------
    names:
        Column names in matrix order.
    rho:
        ``(k, k)`` symmetric matrix with unit diagonal; entries involving a
        constant column are ``nan``.
    """
    names = list(columns)
    if not names:
        return [], np.empty((0, 0))
    n = len(np.asarray(columns[names[0]]).ravel())
    ranks = np.empty((len(names), n))
    for i, name in enumerate(names):
        col = np.asarray(columns[name], dtype=np.float64).ravel()
        if col.size != n:
            raise ValueError(f"column {name!r} length mismatch")
        ranks[i] = rankdata(col)
    centered = ranks - ranks.mean(axis=1, keepdims=True)
    std = centered.std(axis=1)
    cov = centered @ centered.T / n
    denom = np.outer(std, std)
    with np.errstate(invalid="ignore", divide="ignore"):
        rho = cov / denom
    rho[denom == 0] = np.nan
    # Clamp tiny float excursions and pin the diagonal.
    np.clip(rho, -1.0, 1.0, out=rho)
    good = std > 0
    rho[np.ix_(good, good)][np.diag_indices(int(good.sum()))] = 1.0
    for i in range(len(names)):
        if std[i] > 0:
            rho[i, i] = 1.0
    return names, rho
