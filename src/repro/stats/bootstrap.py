"""Bootstrap confidence intervals for scalar statistics.

Used by the experiment harness to attach uncertainty to characterization
statistics (failure fractions, CDF quantiles) computed on the simulated
fleet, mirroring the ± values the paper reports for its cross-validated
metrics.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

__all__ = ["BootstrapResult", "bootstrap_ci"]


@dataclass(frozen=True)
class BootstrapResult:
    """Point estimate plus percentile bootstrap interval."""

    estimate: float
    low: float
    high: float
    level: float
    n_resamples: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.estimate:.4g} [{self.low:.4g}, {self.high:.4g}]"


def bootstrap_ci(
    sample: np.ndarray,
    statistic: Callable[[np.ndarray], float],
    n_resamples: int = 1000,
    level: float = 0.95,
    seed: int | None = 0,
) -> BootstrapResult:
    """Percentile bootstrap CI of ``statistic`` over a 1-D sample.

    Parameters
    ----------
    sample:
        Observations to resample (with replacement) along axis 0.
    statistic:
        Scalar-valued function of a resampled array.
    n_resamples:
        Number of bootstrap replicates.
    level:
        Central coverage of the interval (default 95%).
    seed:
        RNG seed for reproducibility.
    """
    sample = np.asarray(sample)
    if sample.shape[0] == 0:
        raise ValueError("bootstrap_ci requires a non-empty sample")
    if not 0.0 < level < 1.0:
        raise ValueError("level must lie in (0, 1)")
    if n_resamples < 1:
        raise ValueError("n_resamples must be positive")
    rng = np.random.default_rng(seed)
    n = sample.shape[0]
    reps = np.empty(n_resamples)
    for i in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        reps[i] = statistic(sample[idx])
    alpha = (1.0 - level) / 2.0
    low, high = np.quantile(reps, [alpha, 1.0 - alpha])
    return BootstrapResult(
        estimate=float(statistic(sample)),
        low=float(low),
        high=float(high),
        level=level,
        n_resamples=n_resamples,
    )
