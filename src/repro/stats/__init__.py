"""Statistics toolkit: ECDFs, rank correlation, hazard rates, quantile bands.

Small, dependency-light estimators used throughout the characterization
sections of the reproduction (Tables 1–5, Figures 1–11).
"""

from .bootstrap import BootstrapResult, bootstrap_ci
from .correlation import rankdata, spearman, spearman_matrix
from .ecdf import ECDF, CensoredECDF, censored_ecdf, ecdf
from .hazard import BinnedRate, binned_failure_rate, exposure_from_intervals
from .ks import KSResult, ks_two_sample
from .quantiles import QuantileBands, binned_quantiles
from .survival import KaplanMeier, kaplan_meier

__all__ = [
    "BootstrapResult",
    "bootstrap_ci",
    "rankdata",
    "spearman",
    "spearman_matrix",
    "ECDF",
    "CensoredECDF",
    "ecdf",
    "censored_ecdf",
    "BinnedRate",
    "binned_failure_rate",
    "exposure_from_intervals",
    "QuantileBands",
    "binned_quantiles",
    "KaplanMeier",
    "kaplan_meier",
    "KSResult",
    "ks_two_sample",
]
