"""Two-sample Kolmogorov-Smirnov test, implemented from scratch.

Used by :mod:`repro.core.drift` to detect telemetry distribution shift
between the data a predictor was trained on and the fleet it currently
scores — the operational counterpart of the paper's finding that different
drive populations (ages, models) need different models.

The p-value uses the asymptotic Kolmogorov distribution via its standard
series expansion; exact small-sample corrections are unnecessary at
telemetry row counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KSResult", "ks_two_sample"]


@dataclass(frozen=True)
class KSResult:
    """Two-sample KS statistic and asymptotic p-value."""

    statistic: float
    pvalue: float
    n1: int
    n2: int

    def significant(self, alpha: float = 0.01) -> bool:
        """Whether the two samples differ at level ``alpha``."""
        return self.pvalue < alpha


def _kolmogorov_sf(x: float) -> float:
    """Survival function of the Kolmogorov distribution.

    ``Q(x) = 2 * sum_{k>=1} (-1)^(k-1) exp(-2 k^2 x^2)``; the series
    converges extremely fast for the x values of interest.
    """
    if x <= 0:
        return 1.0
    total = 0.0
    for k in range(1, 101):
        term = (-1.0) ** (k - 1) * np.exp(-2.0 * (k * x) ** 2)
        total += term
        if abs(term) < 1e-16:
            break
    return float(min(max(2.0 * total, 0.0), 1.0))


def ks_two_sample(a: np.ndarray, b: np.ndarray) -> KSResult:
    """Two-sample KS test: max distance between the empirical CDFs.

    Parameters
    ----------
    a, b:
        1-D samples (finite values).
    """
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")
    if not (np.isfinite(a).all() and np.isfinite(b).all()):
        raise ValueError("samples must be finite")
    # Evaluate both ECDFs at every observed point via searchsorted.
    a_sorted = np.sort(a)
    b_sorted = np.sort(b)
    grid = np.concatenate((a_sorted, b_sorted))
    cdf_a = np.searchsorted(a_sorted, grid, side="right") / a.size
    cdf_b = np.searchsorted(b_sorted, grid, side="right") / b.size
    d = float(np.max(np.abs(cdf_a - cdf_b)))
    n_eff = a.size * b.size / (a.size + b.size)
    # Asymptotic p-value with the Stephens continuity adjustment.
    x = (np.sqrt(n_eff) + 0.12 + 0.11 / np.sqrt(n_eff)) * d
    return KSResult(statistic=d, pvalue=_kolmogorov_sf(x), n1=int(a.size), n2=int(b.size))
