"""Exposure-normalized failure-rate estimation.

Figures 6 and 8 of the paper plot, next to the raw CDF of failure
age / P/E count, a *failure rate*: the number of failures in a bin divided
by the number of drives "at risk" in that bin.  Without that normalization
the raw CDF slope is biased because old drives (or high-P/E drives) are
under-represented in the fleet.  :func:`binned_failure_rate` implements the
estimator generically over any per-failure covariate with a matching
per-drive exposure measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BinnedRate", "binned_failure_rate", "exposure_from_intervals"]


@dataclass(frozen=True)
class BinnedRate:
    """A binned hazard estimate.

    Attributes
    ----------
    edges:
        Bin edges, length ``k + 1``.
    failures:
        Failure count per bin, length ``k``.
    exposure:
        Number of drive-level units at risk in each bin (e.g. drives that
        reached this age bin), length ``k``.
    rate:
        ``failures / exposure``; ``nan`` where exposure is zero.
    """

    edges: np.ndarray
    failures: np.ndarray
    exposure: np.ndarray

    @property
    def rate(self) -> np.ndarray:
        with np.errstate(invalid="ignore", divide="ignore"):
            r = self.failures / self.exposure
        return np.where(self.exposure > 0, r, np.nan)

    @property
    def centers(self) -> np.ndarray:
        return 0.5 * (self.edges[:-1] + self.edges[1:])


def exposure_from_intervals(
    start: np.ndarray, stop: np.ndarray, edges: np.ndarray
) -> np.ndarray:
    """Units at risk per bin from per-unit covariate intervals.

    A unit whose covariate ranged over ``[start, stop)`` counts as exposed
    in every bin its interval overlaps.  Computed with two searchsorted
    passes and a difference array — O(n log k), no per-bin loop.
    """
    start = np.asarray(start, dtype=np.float64)
    stop = np.asarray(stop, dtype=np.float64)
    if start.shape != stop.shape:
        raise ValueError("start/stop must align")
    if np.any(stop < start):
        raise ValueError("stop must be >= start")
    edges = np.asarray(edges, dtype=np.float64)
    k = len(edges) - 1
    # Bin of the interval start (right-side so a start exactly on an edge
    # belongs to the bin it opens) and of the interval stop (left-side so a
    # stop exactly on an edge does NOT expose the bin it opens).
    lo = np.searchsorted(edges, start, side="right") - 1
    hi = np.searchsorted(edges, stop, side="left") - 1
    valid = (stop > edges[0]) & (start < edges[-1]) & (hi >= 0)
    lo = np.clip(lo, 0, k - 1)
    hi = np.clip(hi, 0, k - 1)
    hi = np.maximum(hi, lo)  # degenerate interval still exposes its own bin
    delta = np.zeros(k + 1, dtype=np.int64)
    np.add.at(delta, lo[valid], 1)
    np.add.at(delta, hi[valid] + 1, -1)
    return np.cumsum(delta[:-1])


def binned_failure_rate(
    failure_values: np.ndarray,
    exposure_start: np.ndarray,
    exposure_stop: np.ndarray,
    edges: np.ndarray,
) -> BinnedRate:
    """Failures per at-risk unit, binned over a covariate.

    Parameters
    ----------
    failure_values:
        Covariate value at each failure (e.g. failure age in days, or P/E
        count at failure).
    exposure_start, exposure_stop:
        Per *unit* (drive / operational period) covariate interval observed.
    edges:
        Bin edges (monotone increasing).
    """
    edges = np.asarray(edges, dtype=np.float64)
    if len(edges) < 2 or np.any(np.diff(edges) <= 0):
        raise ValueError("edges must be increasing with at least two entries")
    failure_values = np.asarray(failure_values, dtype=np.float64)
    fail_counts, _ = np.histogram(failure_values, bins=edges)
    exposure = exposure_from_intervals(exposure_start, exposure_stop, edges)
    return BinnedRate(
        edges=edges,
        failures=fail_counts.astype(np.int64),
        exposure=exposure.astype(np.int64),
    )
