"""Append-only, hash-chained audit journal for fleet decisions.

Every action the autopilot takes — and every revert — is one JSON line:

.. code-block:: json

    {"seq": 3, "ts": 1733000000.0, "day": 412, "kind": "action",
     "action": "replace", "drive_id": 17, "prev_status": "watched",
     "new_status": "replaced", "risk": 0.974, "cost": 50.0,
     "reason": "risk 0.974000 >= replace_at 0.95",
     "chain": "ab12..."}

Three contracts, shared with the serving DLQ/journal and the event log:

- **append-only, line-buffered** — a crashed process leaves a prefix of
  whole lines, so the journal on disk after SIGKILL is byte-for-byte a
  prefix of the uninterrupted run's journal;
- **seq resumes** from an existing file's line count, so appends across
  restarts never collide;
- **ts honors** ``REPRO_EPOCH``; the what-if/run decision loop pins it
  to logical time (the decision day) instead, so two runs of the same
  policy on the same trace are byte-identical without any env knob.

On top of those, entries are **hash-chained**: each entry's ``chain`` is
``sha256(prev_chain + canonical_body)``.  ``fleet audit --verify``
recomputes the chain and replays the entries through the same
:func:`repro.fleet.actions.apply_entry` fold the live run used — a
journal that verifies is one whose reconstructed
:class:`~repro.fleet.actions.FleetState` provably matches what the run
held, and any in-place edit, reorder, or mid-file truncation breaks the
chain.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping, TextIO

from .actions import FleetState, apply_entry

__all__ = [
    "AUDIT_SCHEMA_VERSION",
    "AuditError",
    "AuditEntry",
    "AuditJournal",
    "VerifyReport",
    "read_journal",
    "replay_journal",
    "verify_journal",
    "journal_summary",
]

#: Bumped whenever the entry layout changes incompatibly.
AUDIT_SCHEMA_VERSION = 1

#: Chain seed for the first entry of a journal.
GENESIS = "0" * 64


class AuditError(RuntimeError):
    """An audit journal is unreadable, inconsistent, or tampered with."""


def _now() -> float:
    """Wall clock, unless ``REPRO_EPOCH`` pins it (manifest contract)."""
    epoch = os.environ.get("REPRO_EPOCH")
    if epoch is not None:
        try:
            return float(epoch)
        except ValueError:
            pass
    return time.time()


@dataclass(frozen=True)
class AuditEntry:
    """One journaled action or revert (see the module docstring)."""

    seq: int
    ts: float
    day: int
    kind: str  # "action" | "revert"
    action: str
    drive_id: int
    prev_status: str
    new_status: str
    risk: float
    reason: str
    cost: float
    ref: int | None = None
    chain: str = ""

    def body(self) -> dict[str, Any]:
        """The canonical chained payload (everything but ``chain``)."""
        out: dict[str, Any] = {
            "seq": self.seq,
            "ts": self.ts,
            "day": self.day,
            "kind": self.kind,
            "action": self.action,
            "drive_id": self.drive_id,
            "prev_status": self.prev_status,
            "new_status": self.new_status,
            "risk": self.risk,
            "reason": self.reason,
            "cost": self.cost,
        }
        if self.ref is not None:
            out["ref"] = self.ref
        return out

    def to_dict(self) -> dict[str, Any]:
        return {**self.body(), "chain": self.chain}

    @classmethod
    def from_dict(cls, body: Mapping[str, Any]) -> "AuditEntry":
        try:
            return cls(
                seq=int(body["seq"]),
                ts=float(body["ts"]),
                day=int(body["day"]),
                kind=str(body["kind"]),
                action=str(body["action"]),
                drive_id=int(body["drive_id"]),
                prev_status=str(body["prev_status"]),
                new_status=str(body["new_status"]),
                risk=float(body["risk"]),
                reason=str(body.get("reason", "")),
                cost=float(body["cost"]),
                ref=None if body.get("ref") is None else int(body["ref"]),
                chain=str(body.get("chain", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AuditError(f"malformed audit entry ({exc})") from None


def chain_digest(prev_chain: str, body: Mapping[str, Any]) -> str:
    """``sha256(prev_chain + canonical_json(body))`` — the chain step."""
    payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256((prev_chain + payload).encode()).hexdigest()


class AuditJournal:
    """Append-only JSONL sink for audit entries, chain included.

    Opening an existing journal resumes both ``seq`` (from the line
    count) and the hash chain (from the last line), so a restarted run
    extends the same tamper-evident history rather than forking it.

    Opening a fresh journal creates the file immediately: a run that
    takes zero actions still leaves a (valid, empty) journal behind, so
    "the journal exists" is a post-condition of the run, not of the
    first action.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.appended = 0
        self._chain = GENESIS
        self._fh: TextIO | None = None
        if not self.path.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.touch()
        else:
            last = None
            with open(self.path, encoding="utf-8") as fh:
                for line in fh:
                    if line.strip():
                        self.appended += 1
                        last = line
            if last is not None:
                try:
                    self._chain = str(json.loads(last)["chain"])
                except (ValueError, KeyError, TypeError) as exc:
                    raise AuditError(
                        f"audit journal {self.path} has an unreadable "
                        f"final entry ({exc}); cannot resume the chain"
                    ) from None

    @property
    def next_seq(self) -> int:
        return self.appended

    @property
    def chain(self) -> str:
        """The chain head (digest of the newest entry)."""
        return self._chain

    def append(self, entry: AuditEntry) -> AuditEntry:
        """Stamp seq + chain onto ``entry``, write it, and return it."""
        if entry.seq != self.appended:
            entry = replace(entry, seq=self.appended)
        chained = replace(entry, chain=chain_digest(self._chain, entry.body()))
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(
            json.dumps(chained.to_dict(), sort_keys=True) + "\n"
        )
        self._fh.flush()
        self.appended += 1
        self._chain = chained.chain
        return chained

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "AuditJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# --------------------------------------------------------------------------
# reading, replaying, verifying
# --------------------------------------------------------------------------

def read_journal(path: str | Path) -> list[AuditEntry]:
    """Load every entry of a journal, in append order.

    Raises :class:`AuditError` on a missing file or a line that does not
    parse — partial trailing lines cannot exist under the line-buffered
    append contract, so any malformed line is real corruption.
    """
    path = Path(path)
    if not path.exists():
        raise AuditError(f"audit journal {path} does not exist")
    out: list[AuditEntry] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                body = json.loads(line)
            except ValueError as exc:
                raise AuditError(
                    f"audit journal {path} line {lineno} is not valid "
                    f"JSON ({exc})"
                ) from None
            out.append(AuditEntry.from_dict(body))
    return out


def replay_journal(
    path: str | Path, state: FleetState | None = None
) -> FleetState:
    """Reconstruct the fleet state by folding the journal's entries.

    This is the recovery path after a crash *and* the verification path:
    it runs the exact :func:`repro.fleet.actions.apply_entry` fold the
    live actuator ran, so the result is the state the journaled run
    held — bit-for-bit (``FleetState.digest()`` equality).
    """
    state = state if state is not None else FleetState()
    for entry in read_journal(path):
        apply_entry(state, entry)
    return state


@dataclass
class VerifyReport:
    """Outcome of :func:`verify_journal`."""

    n_entries: int = 0
    problems: list[str] = field(default_factory=list)
    state: FleetState | None = None

    @property
    def ok(self) -> bool:
        return not self.problems

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "ok": self.ok,
            "n_entries": self.n_entries,
            "problems": list(self.problems),
        }
        if self.state is not None:
            out["state_digest"] = self.state.digest()
        return out


def verify_journal(path: str | Path) -> VerifyReport:
    """Full integrity check: seq contiguity, hash chain, legal replay.

    Returns a report rather than raising on *integrity* problems (the
    CLI turns them into exit code 1); an unreadable file still raises
    :class:`AuditError` (exit code 2) — "corrupt beyond parsing" and
    "parsed but tampered" are different failures.
    """
    report = VerifyReport()
    entries = read_journal(path)
    report.n_entries = len(entries)
    prev_chain = GENESIS
    state = FleetState()
    for i, entry in enumerate(entries):
        if entry.seq != i:
            report.problems.append(
                f"entry {i}: seq is {entry.seq}, expected {i}"
            )
        expected = chain_digest(prev_chain, entry.body())
        if entry.chain != expected:
            report.problems.append(
                f"entry {i}: chain mismatch (entry was edited, reordered, "
                "or an earlier line was removed)"
            )
        prev_chain = entry.chain
        try:
            apply_entry(state, entry)
        except Exception as exc:  # FleetActionError and kin
            report.problems.append(f"entry {i}: illegal replay ({exc})")
    if report.ok:
        report.state = state
    return report


def journal_summary(entries: list[AuditEntry]) -> dict[str, Any]:
    """Aggregate view of a journal for ``fleet audit`` output."""
    by_action: dict[str, int] = {}
    reverts = 0
    cost = 0.0
    drives: set[int] = set()
    first_day = None
    last_day = None
    for entry in entries:
        drives.add(entry.drive_id)
        cost += entry.cost
        if entry.kind == "revert":
            reverts += 1
        else:
            by_action[entry.action] = by_action.get(entry.action, 0) + 1
        first_day = entry.day if first_day is None else min(first_day, entry.day)
        last_day = entry.day if last_day is None else max(last_day, entry.day)
    return {
        "n_entries": len(entries),
        "by_action": dict(sorted(by_action.items())),
        "reverts": reverts,
        "cost_total": cost,
        "drives_touched": len(drives),
        "first_day": first_day,
        "last_day": last_day,
    }
