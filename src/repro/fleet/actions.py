"""The fleet actuator: typed, reversible state transitions with audit.

Policies *propose* :class:`~repro.fleet.policy.FleetAction`\\ s; this
module is where they take effect.  Every drive is in exactly one status:

====================  =====================================================
``active``            in the serving rotation (the default; drives never
                      acted on carry no state at all)
``watched``           flagged for closer monitoring
``quarantined``       pulled from rotation, still powered — reversible
``replaced``          swapped out; a spare was consumed
====================  =====================================================

Transitions are typed (:data:`TRANSITIONS`): ``watch`` only escalates an
active drive, ``clear`` only de-escalates, ``replace`` is legal from any
in-service status.  An illegal transition raises
:class:`FleetActionError` — the actuator refuses rather than papers
over, because the audit journal must replay to exactly one state.

Reversibility: every applied entry records the *previous* status, so a
``revert`` is exact — the drive returns to where it was, a consumed
spare returns to the pool — and the journal's replay (a fold of
:func:`apply_entry` over entries) reconstructs the live
:class:`FleetState` bit-for-bit.  ``apply_entry`` is deliberately the
only place state mutates: the live actuator and the journal replayer
share it, so they cannot drift apart.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..obs import eventlog, metrics
from .policy import ACTIONS, FleetAction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .audit import AuditEntry, AuditJournal

__all__ = [
    "STATUSES",
    "TRANSITIONS",
    "FleetActionError",
    "FleetState",
    "Actuator",
    "apply_entry",
]

#: Drive statuses, in escalation order.
STATUSES = ("active", "watched", "quarantined", "replaced")

#: action -> (legal source statuses, resulting status).
TRANSITIONS: dict[str, tuple[frozenset[str], str]] = {
    "watch": (frozenset({"active"}), "watched"),
    "quarantine": (frozenset({"active", "watched"}), "quarantined"),
    "replace": (frozenset({"active", "watched", "quarantined"}), "replaced"),
    "clear": (frozenset({"watched", "quarantined"}), "active"),
}


class FleetActionError(RuntimeError):
    """An action's transition is illegal for the drive's current status."""


@dataclass
class FleetState:
    """The full mutable fleet action state.

    Everything here is reconstructible from the audit journal alone
    (:func:`repro.fleet.audit.replay_journal`); :meth:`digest` is the
    equality gate tests and ``fleet audit --verify`` compare on.
    """

    #: drive_id -> status; absent drives are ``active``.
    status: dict[int, str] = field(default_factory=dict)
    #: drive_id -> day of the drive's most recent action (cooldown input).
    last_action_day: dict[int, int] = field(default_factory=dict)
    #: Days on which replace actions landed (sorted; budget-window input).
    replace_days: list[int] = field(default_factory=list)
    spares_used: int = 0
    actions_total: int = 0
    reverts_total: int = 0
    cost_total: float = 0.0
    by_action: dict[str, int] = field(default_factory=dict)

    def status_of(self, drive_id: int) -> str:
        return self.status.get(int(drive_id), "active")

    def count(self, status: str) -> int:
        """Drives currently in ``status`` (``active`` counts only acted-on
        drives that returned — pristine drives carry no state)."""
        if status not in STATUSES:
            raise FleetActionError(f"unknown status {status!r}")
        return sum(1 for s in self.status.values() if s == status)

    def replacements_since(self, day: int) -> int:
        """Replace actions on days ``>= day`` (rolling budget window)."""
        return len(self.replace_days) - bisect_left(self.replace_days, day)

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON form (sorted keys, plain scalars)."""
        return {
            "status": {
                str(d): self.status[d] for d in sorted(self.status)
            },
            "last_action_day": {
                str(d): self.last_action_day[d]
                for d in sorted(self.last_action_day)
            },
            "replace_days": list(self.replace_days),
            "spares_used": self.spares_used,
            "actions_total": self.actions_total,
            "reverts_total": self.reverts_total,
            "cost_total": self.cost_total,
            "by_action": dict(sorted(self.by_action.items())),
        }

    def digest(self) -> str:
        """sha256 of the canonical state — the reconstruction gate."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()


def apply_entry(state: FleetState, entry: "AuditEntry") -> None:
    """Fold one audit entry into the state — the single mutation path.

    Both the live :class:`Actuator` and the journal replayer call this,
    so the reconstructed state cannot diverge from the state the run
    actually held.  Raises :class:`FleetActionError` on an entry whose
    transition is illegal against the current state (a corrupt or
    reordered journal).
    """
    drive = int(entry.drive_id)
    current = state.status_of(drive)
    if current != entry.prev_status:
        raise FleetActionError(
            f"journal entry seq={entry.seq} expects drive {drive} in "
            f"{entry.prev_status!r} but state says {current!r}"
        )
    if entry.kind == "action":
        sources, target = TRANSITIONS[entry.action]
        if current not in sources or target != entry.new_status:
            raise FleetActionError(
                f"journal entry seq={entry.seq}: illegal {entry.action} "
                f"from {current!r} to {entry.new_status!r}"
            )
        state.status[drive] = target
        state.last_action_day[drive] = int(entry.day)
        state.actions_total += 1
        state.by_action[entry.action] = (
            state.by_action.get(entry.action, 0) + 1
        )
        state.cost_total += float(entry.cost)
        if entry.action == "replace":
            state.spares_used += 1
            insort(state.replace_days, int(entry.day))
    elif entry.kind == "revert":
        # The revert restores the *original* entry's prev_status, which
        # the revert entry carries as its own new_status.
        state.status[drive] = entry.new_status
        state.reverts_total += 1
        state.cost_total += float(entry.cost)
        if entry.action == "replace":
            # The spare returns to the pool; the budget window forgets
            # the replacement day.
            state.spares_used -= 1
            idx = bisect_left(state.replace_days, int(entry.day))
            if idx < len(state.replace_days) and state.replace_days[
                idx
            ] == int(entry.day):
                del state.replace_days[idx]
    else:
        raise FleetActionError(f"unknown journal entry kind {entry.kind!r}")


class Actuator:
    """Applies policy actions to a :class:`FleetState`, journaling each.

    Parameters
    ----------
    state:
        The fleet state to mutate (fresh by default).
    journal:
        Optional :class:`~repro.fleet.audit.AuditJournal`; every applied
        action and revert appends one entry, making the state exactly
        reconstructible after a crash.
    strict:
        With ``strict=True`` (default) an illegal transition raises;
        with ``strict=False`` it is counted in ``rejected_total`` and
        skipped — the mode the policy runner uses, since a policy
        deciding from a slightly stale view may legitimately re-propose
        an action that already took effect.
    """

    def __init__(
        self,
        state: FleetState | None = None,
        journal: "AuditJournal | None" = None,
        strict: bool = True,
    ):
        self.state = state if state is not None else FleetState()
        self.journal = journal
        self.strict = strict
        self.rejected_total = 0
        #: seq -> applied entry, for revert-by-sequence.
        self._applied: dict[int, "AuditEntry"] = {}
        self._seq = 0

    def _next_seq(self) -> int:
        if self.journal is not None:
            return self.journal.next_seq
        seq = self._seq
        self._seq += 1
        return seq

    def apply(
        self, action: FleetAction, ts: float | None = None
    ) -> "AuditEntry | None":
        """Validate, apply, and journal one action.

        Returns the journal entry (journaled or not), or ``None`` when a
        non-strict actuator rejected an illegal transition.
        """
        from .audit import AuditEntry

        if action.action not in ACTIONS:
            raise FleetActionError(f"unknown action {action.action!r}")
        current = self.state.status_of(action.drive_id)
        sources, target = TRANSITIONS[action.action]
        if current not in sources:
            if self.strict:
                raise FleetActionError(
                    f"cannot {action.action} drive {action.drive_id}: "
                    f"status is {current!r} (legal from "
                    f"{', '.join(sorted(sources))})"
                )
            self.rejected_total += 1
            metrics.inc(
                "repro_fleet_rejected_total",
                help="Policy actions rejected as illegal transitions",
            )
            return None
        from .audit import _now

        entry = AuditEntry(
            seq=self._next_seq(),
            ts=_now() if ts is None else float(ts),
            day=action.day,
            kind="action",
            action=action.action,
            drive_id=action.drive_id,
            prev_status=current,
            new_status=target,
            risk=float(action.risk),
            reason=action.reason,
            cost=float(action.cost),
        )
        if self.journal is not None:
            entry = self.journal.append(entry)
        apply_entry(self.state, entry)
        self._applied[entry.seq] = entry
        metrics.inc(
            "repro_fleet_actions_total",
            help="Fleet actions applied by the actuator",
            action=action.action,
        )
        metrics.set_gauge(
            "repro_fleet_spares_used",
            float(self.state.spares_used),
            help="Spares consumed by replace actions (net of reverts)",
        )
        eventlog.emit(
            "fleet.action.applied",
            f"{action.action} drive {action.drive_id}",
            level="info",
            action=action.action,
            drive_id=action.drive_id,
            day=action.day,
            risk=action.risk,
            cost=action.cost,
        )
        return entry

    def revert(
        self, seq: int, reason: str = "", ts: float | None = None
    ) -> "AuditEntry":
        """Reverse a previously applied action by its sequence number.

        The drive returns to the status it held before the original
        action; a reverted ``replace`` returns its spare.  The revert
        entry carries the *original* action's day, so replaying it
        removes exactly that replacement from the budget window.
        Illegal when the drive has moved on since (a later action
        changed its status) — reverts are exact or not at all.
        """
        from .audit import AuditEntry, _now

        original = self._applied.get(seq)
        if original is None or original.kind != "action":
            raise FleetActionError(
                f"no applied action with seq={seq} to revert"
            )
        drive = original.drive_id
        current = self.state.status_of(drive)
        if current != original.new_status:
            raise FleetActionError(
                f"cannot revert seq={seq}: drive {drive} has moved from "
                f"{original.new_status!r} to {current!r} since"
            )
        entry = AuditEntry(
            seq=self._next_seq(),
            ts=_now() if ts is None else float(ts),
            day=original.day,
            kind="revert",
            action=original.action,
            drive_id=drive,
            prev_status=current,
            new_status=original.prev_status,
            risk=original.risk,
            reason=reason or f"revert of seq={seq}",
            cost=0.0,
            ref=seq,
        )
        if self.journal is not None:
            entry = self.journal.append(entry)
        apply_entry(self.state, entry)
        del self._applied[seq]
        metrics.inc(
            "repro_fleet_reverts_total",
            help="Fleet actions reverted",
        )
        metrics.set_gauge(
            "repro_fleet_spares_used",
            float(self.state.spares_used),
            help="Spares consumed by replace actions (net of reverts)",
        )
        eventlog.emit(
            "fleet.action.reverted",
            f"revert {original.action} drive {drive}",
            level="warn",
            action=original.action,
            drive_id=drive,
            ref=seq,
        )
        return entry
