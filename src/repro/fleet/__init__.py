"""``repro.fleet`` — the closed-loop fleet autopilot.

The serving plane (:mod:`repro.serve`) turns telemetry into failure
probabilities; this package turns probabilities into *operations*:

score → decide → act → audit

- :mod:`repro.fleet.health` — per-drive rolling risk (EWMA over the
  scored-event stream, staleness-aware, deterministic snapshots);
- :mod:`repro.fleet.policy` — cost-aware replacement policies
  (threshold with hysteresis/cooldown, top-k budgeted ranking) emitting
  typed actions with per-action cost attribution;
- :mod:`repro.fleet.actions` — the actuator: typed, reversible status
  transitions over a :class:`FleetState` that is exactly
  reconstructible from the audit journal;
- :mod:`repro.fleet.audit` — the append-only, hash-chained JSONL
  journal and its verifier;
- :mod:`repro.fleet.whatif` — byte-deterministic policy replay with a
  cost/availability report, for pricing a policy before activation.

Everything downstream of the scores is deterministic by construction:
decisions depend only on the *admitted* event set (never arrival
order), journals are byte-identical across runs and worker counts, and
``fleet audit --verify`` proves a journal replays to the exact state
the run held.
"""

from .actions import (
    Actuator,
    FleetActionError,
    FleetState,
    STATUSES,
    TRANSITIONS,
    apply_entry,
)
from .audit import (
    AuditEntry,
    AuditError,
    AuditJournal,
    VerifyReport,
    journal_summary,
    read_journal,
    replay_journal,
    verify_journal,
)
from .health import FleetHealth, FleetView, HealthError, RiskPolicy
from .policy import (
    ACTIONS,
    ActionCosts,
    BasePolicy,
    FleetAction,
    POLICY_KINDS,
    PolicyError,
    ThresholdPolicy,
    TopKPolicy,
    load_policy,
    policy_from_spec,
)
from .whatif import (
    GroundTruth,
    PolicyRunner,
    RunOutcome,
    WhatIfReport,
    evaluate_outcome,
    ground_truth,
    run_whatif,
)

__all__ = [
    "ACTIONS",
    "STATUSES",
    "TRANSITIONS",
    "ActionCosts",
    "Actuator",
    "AuditEntry",
    "AuditError",
    "AuditJournal",
    "BasePolicy",
    "FleetAction",
    "FleetActionError",
    "FleetHealth",
    "FleetState",
    "FleetView",
    "GroundTruth",
    "HealthError",
    "POLICY_KINDS",
    "PolicyError",
    "PolicyRunner",
    "RiskPolicy",
    "RunOutcome",
    "ThresholdPolicy",
    "TopKPolicy",
    "VerifyReport",
    "WhatIfReport",
    "apply_entry",
    "evaluate_outcome",
    "ground_truth",
    "journal_summary",
    "load_policy",
    "policy_from_spec",
    "read_journal",
    "replay_journal",
    "run_whatif",
    "verify_journal",
]
