"""Per-drive rolling risk state, fed by the serving plane's scored events.

A single score is a snapshot; a *decision* needs history.  Pinciroli et
al. (PAPERS.md) show decision quality degrades silently as fleets drift,
so the autopilot keeps, per drive, an exponentially-weighted moving
average of its failure probability plus enough metadata to know how
trustworthy that estimate is right now:

- ``risk`` — EWMA of the scores, newest-weighted by ``ewma_alpha``
  (``risk = alpha * p + (1 - alpha) * risk``; the first score seeds it);
- ``peak`` — the highest single score ever seen (a drive that spiked
  and "recovered" is still suspect);
- ``last_day``/``staleness`` — how far the drive's newest score lags
  the decision day, the input to the policies' staleness gate.

Updates fold left in event order, exactly like the serving feature
store, so the state after N events is a pure function of the event
sequence — snapshots are deterministic NPZ files
(:func:`repro.reliability.runner.atomic_save_npz`, fixed zip metadata)
and two identical streams produce byte-identical snapshots.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["RiskPolicy", "FleetView", "FleetHealth", "HealthError"]

#: Bumped whenever the snapshot layout changes incompatibly.
HEALTH_SNAPSHOT_VERSION = 1


class HealthError(RuntimeError):
    """A health snapshot is missing, corrupt, or incompatible."""


@dataclass(frozen=True)
class RiskPolicy:
    """How score history becomes a per-drive risk estimate.

    ``ewma_alpha`` is the weight of the newest score (1.0 degenerates to
    "latest score wins", small values smooth heavily);
    ``stale_after_days`` is the default staleness bound stamped onto
    views for policies that don't override it.
    """

    ewma_alpha: float = 0.3
    stale_after_days: int = 7

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must lie in (0, 1]")
        if self.stale_after_days < 0:
            raise ValueError("stale_after_days must be >= 0")


@dataclass(frozen=True)
class FleetView:
    """One decision day's read-only snapshot of fleet health.

    Arrays are parallel and sorted by ``drive_id`` — the canonical
    iteration order every policy sees, so decisions never depend on
    event arrival order.  ``staleness_days`` is measured against the
    view's ``day``; ``stale`` applies the risk policy's default bound.
    """

    day: int
    drive_id: np.ndarray
    risk: np.ndarray
    last_probability: np.ndarray
    peak: np.ndarray
    n_scores: np.ndarray
    last_age: np.ndarray
    last_day: np.ndarray
    staleness_days: np.ndarray
    stale: np.ndarray

    def __len__(self) -> int:
        return len(self.drive_id)


class FleetHealth:
    """The mutable per-drive risk registry behind the autopilot.

    ``observe`` folds one scored event; ``observe_columns`` folds a
    scored chunk (the serving tap's shape).  Out-of-order days within a
    drive are tolerated — the EWMA folds in arrival order, matching
    what a live consumer of the scored-event stream would compute — but
    ``last_age``/``last_day`` only ever advance.
    """

    def __init__(self, policy: RiskPolicy | None = None):
        self.policy = policy or RiskPolicy()
        # drive_id -> [risk, last_prob, peak, n_scores, last_age, last_day]
        self._state: dict[int, list[float]] = {}
        self.events_total = 0
        self.watermark = -1

    @property
    def n_drives(self) -> int:
        return len(self._state)

    # ------------------------------------------------------------------ ingest
    def observe(
        self, drive_id: int, age_days: int, probability: float, day: int
    ) -> float:
        """Fold one scored event; returns the drive's updated risk."""
        drive_id = int(drive_id)
        p = float(probability)
        alpha = self.policy.ewma_alpha
        cell = self._state.get(drive_id)
        if cell is None:
            cell = [p, p, p, 1.0, float(age_days), float(day)]
            self._state[drive_id] = cell
        else:
            cell[0] = alpha * p + (1.0 - alpha) * cell[0]
            cell[1] = p
            if p > cell[2]:
                cell[2] = p
            cell[3] += 1.0
            if age_days > cell[4]:
                cell[4] = float(age_days)
            if day > cell[5]:
                cell[5] = float(day)
        self.events_total += 1
        if day > self.watermark:
            self.watermark = int(day)
        return cell[0]

    def observe_columns(
        self,
        drive_ids: np.ndarray,
        ages: np.ndarray,
        days: np.ndarray,
        probs: np.ndarray,
    ) -> None:
        """Fold one scored chunk (parallel arrays), row by row.

        Row order is the fold order — callers that need canonical
        decisions sort by ``(day, drive_id, age)`` first (the
        :class:`repro.fleet.whatif.PolicyRunner` does).
        """
        n = len(drive_ids)
        if not (len(ages) == len(days) == len(probs) == n):
            raise ValueError("observe_columns needs same-length columns")
        for i in range(n):
            self.observe(
                int(drive_ids[i]), int(ages[i]), float(probs[i]), int(days[i])
            )

    # ------------------------------------------------------------------ views
    def view(self, day: int | None = None) -> FleetView:
        """The fleet's risk state as of ``day`` (default: the watermark)."""
        if day is None:
            day = self.watermark
        ids = sorted(self._state)
        n = len(ids)
        arr = np.empty((n, 6), dtype=np.float64)
        for i, d in enumerate(ids):
            arr[i] = self._state[d]
        last_day = arr[:, 5].astype(np.int64)
        staleness = np.maximum(0, int(day) - last_day)
        return FleetView(
            day=int(day),
            drive_id=np.asarray(ids, dtype=np.int64),
            risk=arr[:, 0].copy(),
            last_probability=arr[:, 1].copy(),
            peak=arr[:, 2].copy(),
            n_scores=arr[:, 3].astype(np.int64),
            last_age=arr[:, 4].astype(np.int64),
            last_day=last_day,
            staleness_days=staleness,
            stale=staleness > self.policy.stale_after_days,
        )

    def state_digest(self) -> str:
        """sha256 over the canonical state — the reconstruction gate."""
        body = {
            "version": HEALTH_SNAPSHOT_VERSION,
            "ewma_alpha": self.policy.ewma_alpha,
            "stale_after_days": self.policy.stale_after_days,
            "events_total": self.events_total,
            "watermark": self.watermark,
            "drives": {
                str(d): self._state[d] for d in sorted(self._state)
            },
        }
        payload = json.dumps(body, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    # -------------------------------------------------------------- snapshots
    def snapshot(self, path: str | Path) -> Path:
        """Atomically persist the full state as a deterministic NPZ."""
        from ..reliability.runner import atomic_save_npz

        path = Path(path)
        ids = np.asarray(sorted(self._state), dtype=np.int64)
        arr = np.empty((len(ids), 6), dtype=np.float64)
        for i, d in enumerate(ids):
            arr[i] = self._state[int(d)]
        atomic_save_npz(
            path,
            meta=np.asarray(
                [
                    HEALTH_SNAPSHOT_VERSION,
                    self.events_total,
                    self.watermark,
                ],
                dtype=np.int64,
            ),
            policy=np.asarray(
                [self.policy.ewma_alpha, float(self.policy.stale_after_days)],
                dtype=np.float64,
            ),
            drive_id=ids,
            state=arr,
        )
        return path

    @classmethod
    def restore(cls, path: str | Path) -> "FleetHealth":
        """Rebuild a :class:`FleetHealth` from a snapshot, exactly."""
        path = Path(path)
        try:
            with np.load(path) as npz:
                meta = npz["meta"]
                policy = npz["policy"]
                ids = npz["drive_id"]
                state = npz["state"]
        except (OSError, KeyError, ValueError) as exc:
            raise HealthError(f"health snapshot {path}: {exc}") from None
        if int(meta[0]) != HEALTH_SNAPSHOT_VERSION:
            raise HealthError(
                f"health snapshot {path} has version {int(meta[0])}, "
                f"this build reads {HEALTH_SNAPSHOT_VERSION}"
            )
        out = cls(
            RiskPolicy(
                ewma_alpha=float(policy[0]),
                stale_after_days=int(policy[1]),
            )
        )
        out.events_total = int(meta[1])
        out.watermark = int(meta[2])
        for i in range(len(ids)):
            out._state[int(ids[i])] = [float(v) for v in state[i]]
        return out
