"""Cost-aware replacement policies: score history in, typed actions out.

The paper's prediction models only matter operationally if something
consumes the scores.  Basak & Katz (PAPERS.md) argue the useful output
is a *ranked, budgeted replacement decision*, not a raw probability —
this module turns the per-drive rolling risk maintained by
:mod:`repro.fleet.health` into typed, reversible actions:

``replace``
    Stage a spare and migrate the data off the drive (consumes a spare).
``quarantine``
    Pull the drive out of the serving rotation but keep it powered —
    cheaper than a replacement, reversible with ``clear``.
``watch``
    Flag the drive for closer monitoring; no capacity impact.
``clear``
    De-escalate a watched/quarantined drive whose risk subsided.

Two policy families cover the paper's Section 5.3 trade-off:

- :class:`ThresholdPolicy` — the classic operating-point policy: act
  when the EWMA risk crosses a threshold, with **hysteresis** (a
  separate, lower ``clear_below`` bound de-escalates, so a drive
  oscillating around the threshold doesn't flap) and a per-drive
  **cooldown** (no new escalation within ``cooldown_days`` of the last
  action).
- :class:`TopKPolicy` — the budgeted ranking policy: every decision day
  rank candidates by risk and replace at most ``budget`` drives per
  rolling ``window_days``, the spares-constrained form operators
  actually run.

Every action carries its cost, attributed at decision time from
:class:`ActionCosts`, so audit journals and what-if reports account for
money the moment it is committed.  Policies are pure functions of
``(view, state, day)`` — same inputs, same decisions, byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.policy import ThresholdChoice
    from .actions import FleetState
    from .health import FleetView

__all__ = [
    "ACTIONS",
    "ESCALATION_ORDER",
    "ActionCosts",
    "FleetAction",
    "PolicyError",
    "BasePolicy",
    "ThresholdPolicy",
    "TopKPolicy",
    "POLICY_KINDS",
    "policy_from_spec",
    "load_policy",
]

#: The typed fleet actions, in documentation order.
ACTIONS = ("replace", "quarantine", "watch", "clear")

#: Escalation ladder: a drive only moves *up* this order on escalation
#: (``clear`` is the de-escalation edge back to the bottom).
ESCALATION_ORDER = ("watch", "quarantine", "replace")


class PolicyError(ValueError):
    """A policy spec or parameter set is invalid."""


@dataclass(frozen=True)
class ActionCosts:
    """Per-action cost attribution plus the miss penalty.

    Units are arbitrary (only ratios matter, like
    :func:`repro.core.select_threshold`); defaults follow the paper's
    Section 5.3 framing where a missed failure (data loss, emergency
    migration) is an order of magnitude costlier than a planned
    replacement, which in turn dwarfs monitoring overhead.
    """

    replace: float = 50.0
    quarantine: float = 5.0
    watch: float = 0.5
    clear: float = 0.0
    miss: float = 500.0

    def __post_init__(self) -> None:
        for name in ("replace", "quarantine", "watch", "clear", "miss"):
            value = getattr(self, name)
            if not np.isfinite(value) or value < 0:
                raise PolicyError(f"cost {name!r} must be finite and >= 0")
        if self.miss <= 0:
            raise PolicyError("miss cost must be > 0 (else never act)")

    def of(self, action: str) -> float:
        """The attributed cost of one action."""
        if action not in ACTIONS:
            raise PolicyError(f"unknown action {action!r}")
        return float(getattr(self, action))

    def to_dict(self) -> dict[str, float]:
        return {
            "replace": self.replace,
            "quarantine": self.quarantine,
            "watch": self.watch,
            "clear": self.clear,
            "miss": self.miss,
        }

    @classmethod
    def from_dict(cls, body: dict[str, Any]) -> "ActionCosts":
        known = {"replace", "quarantine", "watch", "clear", "miss"}
        extra = set(body) - known
        if extra:
            raise PolicyError(f"unknown cost field(s): {sorted(extra)}")
        try:
            return cls(**{k: float(v) for k, v in body.items()})
        except (TypeError, ValueError) as exc:
            raise PolicyError(f"bad costs: {exc}") from None


@dataclass(frozen=True)
class FleetAction:
    """One typed decision: what to do to which drive, and why.

    ``cost`` is attributed at decision time from the policy's
    :class:`ActionCosts`, so downstream accounting (audit journal,
    what-if reports) never re-derives prices.
    """

    action: str
    drive_id: int
    day: int
    risk: float
    reason: str
    cost: float

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise PolicyError(f"unknown action {self.action!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "action": self.action,
            "drive_id": self.drive_id,
            "day": self.day,
            "risk": self.risk,
            "reason": self.reason,
            "cost": self.cost,
        }


#: Status -> rung on the escalation ladder (active = below the ladder).
_STATUS_RANK = {"active": -1, "watched": 0, "quarantined": 1, "replaced": 2}


@dataclass(frozen=True)
class BasePolicy:
    """Shared policy surface: costs, staleness gating, cooldown.

    ``max_staleness_days`` is the chaos-mode knob: when telemetry for a
    drive is late (its last score lags the decision day by more than the
    bound), the policy refuses to *escalate* on the stale risk estimate —
    acting on week-old scores replaces the wrong drives.  De-escalation
    (``clear``) is likewise suppressed, since the risk may simply not
    have been observed falling.  ``None`` acts regardless of staleness.
    """

    costs: ActionCosts = field(default_factory=ActionCosts)
    cooldown_days: int = 0
    max_staleness_days: int | None = None

    #: Spec discriminator; subclasses override.
    kind = "base"

    def __post_init__(self) -> None:
        if self.cooldown_days < 0:
            raise PolicyError("cooldown_days must be >= 0")
        if self.max_staleness_days is not None and self.max_staleness_days < 0:
            raise PolicyError("max_staleness_days must be >= 0")

    # ------------------------------------------------------------------ hooks
    def decide(
        self, view: "FleetView", state: "FleetState", day: int
    ) -> list[FleetAction]:
        """Propose actions for one decision day (pure; does not act)."""
        raise NotImplementedError

    def spec(self) -> dict[str, Any]:
        """The JSON-round-trippable spec (``policy_from_spec`` inverse)."""
        return {
            "kind": self.kind,
            "costs": self.costs.to_dict(),
            "cooldown_days": self.cooldown_days,
            "max_staleness_days": self.max_staleness_days,
        }

    # -------------------------------------------------------------- shared
    def _in_cooldown(self, state: "FleetState", drive: int, day: int) -> bool:
        if self.cooldown_days <= 0:
            return False
        last = state.last_action_day.get(drive)
        return last is not None and day - last < self.cooldown_days

    def _too_stale(self, staleness_days: int) -> bool:
        return (
            self.max_staleness_days is not None
            and staleness_days > self.max_staleness_days
        )


@dataclass(frozen=True)
class ThresholdPolicy(BasePolicy):
    """Operating-point policy with hysteresis and cooldown.

    A drive escalates to the highest rung whose threshold its risk
    crosses (``watch_at`` < ``quarantine_at`` < ``replace_at``; unset
    rungs are skipped) and only ever moves *up* the ladder — except via
    ``clear``, taken when a watched/quarantined drive's risk falls below
    ``clear_below`` (the hysteresis band: ``clear_below`` strictly under
    the lowest escalation threshold, so risk noise around one threshold
    cannot produce act/clear flapping).
    """

    replace_at: float = 0.95
    quarantine_at: float | None = None
    watch_at: float | None = None
    clear_below: float | None = None

    kind = "threshold"

    def __post_init__(self) -> None:
        super().__post_init__()
        rungs = self._rungs()
        if not rungs:
            raise PolicyError("threshold policy needs at least one threshold")
        for action, thr in rungs:
            if not 0.0 <= thr <= 1.0:
                raise PolicyError(
                    f"{action} threshold must lie in [0, 1], got {thr}"
                )
        # The ladder must be monotone: a higher rung needs a higher bar.
        values = [thr for _, thr in rungs]
        if any(b < a for a, b in zip(values, values[1:])):
            raise PolicyError(
                "thresholds must be ordered watch_at <= quarantine_at "
                "<= replace_at"
            )
        if self.clear_below is not None:
            if not 0.0 <= self.clear_below <= 1.0:
                raise PolicyError("clear_below must lie in [0, 1]")
            if self.clear_below >= values[0]:
                raise PolicyError(
                    "clear_below must sit strictly under the lowest "
                    "escalation threshold (the hysteresis band)"
                )

    def _rungs(self) -> list[tuple[str, float]]:
        """The configured escalation rungs, lowest first."""
        out = []
        for action, thr in (
            ("watch", self.watch_at),
            ("quarantine", self.quarantine_at),
            ("replace", self.replace_at),
        ):
            if thr is not None:
                out.append((action, float(thr)))
        return out

    def decide(
        self, view: "FleetView", state: "FleetState", day: int
    ) -> list[FleetAction]:
        rungs = self._rungs()
        out: list[FleetAction] = []
        for i in range(len(view.drive_id)):
            drive = int(view.drive_id[i])
            status = state.status_of(drive)
            if status == "replaced":
                continue
            risk = float(view.risk[i])
            stale = self._too_stale(int(view.staleness_days[i]))
            rank = _STATUS_RANK[status]
            # Highest rung the risk clears that is above the current one.
            target: tuple[str, float] | None = None
            for j, (action, thr) in enumerate(rungs):
                if risk >= thr and _STATUS_RANK_OF_ACTION[action] > rank:
                    target = (action, thr)
            if target is not None:
                if stale or self._in_cooldown(state, drive, day):
                    continue
                action, thr = target
                out.append(
                    FleetAction(
                        action=action,
                        drive_id=drive,
                        day=day,
                        risk=risk,
                        reason=f"risk {risk:.6f} >= {action}_at {thr:g}",
                        cost=self.costs.of(action),
                    )
                )
            elif (
                self.clear_below is not None
                and status in ("watched", "quarantined")
                and risk < self.clear_below
                and not stale
                and not self._in_cooldown(state, drive, day)
            ):
                out.append(
                    FleetAction(
                        action="clear",
                        drive_id=drive,
                        day=day,
                        risk=risk,
                        reason=(
                            f"risk {risk:.6f} < clear_below "
                            f"{self.clear_below:g}"
                        ),
                        cost=self.costs.of("clear"),
                    )
                )
        return out

    def spec(self) -> dict[str, Any]:
        return {
            **super().spec(),
            "replace_at": self.replace_at,
            "quarantine_at": self.quarantine_at,
            "watch_at": self.watch_at,
            "clear_below": self.clear_below,
        }

    @classmethod
    def from_choice(
        cls, choice: "ThresholdChoice", **kwargs: Any
    ) -> "ThresholdPolicy":
        """Lift a :func:`repro.core.select_threshold` operating point.

        The cost-minimizing validation threshold becomes ``replace_at``;
        everything else (hysteresis, cooldown, costs) passes through.
        The "flag nothing" end of the ROC sweep yields a threshold above
        every observed score (> 1 for probabilities); risk is bounded by
        1, so that operating point clamps to ``replace_at = 1.0``.
        """
        return cls(replace_at=min(float(choice.threshold), 1.0), **kwargs)


_STATUS_RANK_OF_ACTION = {"watch": 0, "quarantine": 1, "replace": 2}


@dataclass(frozen=True)
class TopKPolicy(BasePolicy):
    """Budgeted ranking: replace the riskiest K drives per rolling window.

    Every decision day, drives not yet replaced whose risk is at least
    ``min_risk`` are ranked by ``(-risk, drive_id)`` (the deterministic
    tie-break) and replaced top-down until the rolling spares budget —
    at most ``budget`` replacements within the trailing ``window_days``
    — is exhausted.  This is the operational form Basak & Katz argue
    for: spares arrive on a schedule, so the question is never "which
    drives cross α" but "which K drives do I swap this week".
    """

    budget: int = 4
    window_days: int = 30
    min_risk: float = 0.5

    kind = "topk"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.budget < 1:
            raise PolicyError("budget must be >= 1")
        if self.window_days < 1:
            raise PolicyError("window_days must be >= 1")
        if not 0.0 <= self.min_risk <= 1.0:
            raise PolicyError("min_risk must lie in [0, 1]")

    def decide(
        self, view: "FleetView", state: "FleetState", day: int
    ) -> list[FleetAction]:
        remaining = self.budget - state.replacements_since(
            day - self.window_days + 1
        )
        if remaining <= 0:
            return []
        candidates: list[tuple[float, int, float]] = []
        for i in range(len(view.drive_id)):
            drive = int(view.drive_id[i])
            if state.status_of(drive) == "replaced":
                continue
            risk = float(view.risk[i])
            if risk < self.min_risk:
                continue
            if self._too_stale(int(view.staleness_days[i])):
                continue
            if self._in_cooldown(state, drive, day):
                continue
            candidates.append((-risk, drive, risk))
        candidates.sort()
        out: list[FleetAction] = []
        for _, drive, risk in candidates[:remaining]:
            out.append(
                FleetAction(
                    action="replace",
                    drive_id=drive,
                    day=day,
                    risk=risk,
                    reason=(
                        f"rank {len(out) + 1}/{remaining} in window budget "
                        f"{self.budget}/{self.window_days}d"
                    ),
                    cost=self.costs.of("replace"),
                )
            )
        return out

    def spec(self) -> dict[str, Any]:
        return {
            **super().spec(),
            "budget": self.budget,
            "window_days": self.window_days,
            "min_risk": self.min_risk,
        }


#: Spec discriminator -> policy class.
POLICY_KINDS: dict[str, type[BasePolicy]] = {
    "threshold": ThresholdPolicy,
    "topk": TopKPolicy,
}


def policy_from_spec(spec: dict[str, Any]) -> BasePolicy:
    """Build a policy from its JSON spec (the :meth:`BasePolicy.spec` inverse)."""
    if not isinstance(spec, dict):
        raise PolicyError(f"policy spec must be an object, got {type(spec).__name__}")
    body = dict(spec)
    kind = body.pop("kind", None)
    if kind not in POLICY_KINDS:
        raise PolicyError(
            f"unknown policy kind {kind!r}; choose from "
            f"{', '.join(sorted(POLICY_KINDS))}"
        )
    costs = body.pop("costs", None)
    kwargs: dict[str, Any] = {}
    if costs is not None:
        kwargs["costs"] = ActionCosts.from_dict(costs)
    cls = POLICY_KINDS[kind]
    allowed = {
        f for f in cls.__dataclass_fields__  # type: ignore[attr-defined]
    }
    extra = set(body) - allowed
    if extra:
        raise PolicyError(
            f"unknown field(s) for {kind} policy: {sorted(extra)}"
        )
    try:
        return cls(**kwargs, **body)
    except TypeError as exc:
        raise PolicyError(f"bad {kind} policy spec: {exc}") from None


def load_policy(source: str) -> BasePolicy:
    """Resolve a CLI ``--policy`` value to a policy.

    Accepts, in order: a bare kind name (``threshold``/``topk`` with
    defaults), inline JSON (starts with ``{``), or a path to a JSON spec
    file.
    """
    source = source.strip()
    if source in POLICY_KINDS:
        return POLICY_KINDS[source]()
    if source.startswith("{"):
        try:
            spec = json.loads(source)
        except ValueError as exc:
            raise PolicyError(f"inline policy spec is not JSON: {exc}") from None
        return policy_from_spec(spec)
    path = Path(source)
    if not path.exists():
        raise PolicyError(
            f"policy {source!r} is neither a known kind "
            f"({', '.join(sorted(POLICY_KINDS))}), inline JSON, nor a file"
        )
    try:
        spec = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise PolicyError(f"policy spec file {path}: {exc}") from None
    return policy_from_spec(spec)
