"""What-if policy replay: run a policy against a trace, price the outcome.

Pinciroli et al. (PAPERS.md) show decision quality degrades silently as
fleets drift — so a policy must be priced against recorded history
*before* it is activated.  This module is that harness, and it is also
the production decision loop: ``fleet run`` and ``fleet whatif`` both
drive a :class:`PolicyRunner`, so the journal a what-if produces is
byte-for-byte the journal the live run would have produced on the same
admitted telemetry.

Determinism is structural, not incidental:

- scored events are buffered and **sorted by (day, drive_id, age)**
  before any decision — arrival order (worker count, batch split, chunk
  size, chaos reordering) never changes what the policy sees, only
  *admission* does (the chaos story: a diverted event is genuinely
  missing information, and the report prices the consequences);
- the decision clock is **logical**: journal entries carry
  ``ts = float(day)``, so two runs of the same policy on the same trace
  are byte-identical with no environment pinning at all;
- scores come from :meth:`FailurePredictor.predict_proba_records`,
  which is byte-identical at any worker count.

The cost model mirrors :func:`repro.core.expected_cost_curve` at fleet
granularity: every applied action is priced at decision time
(:class:`~repro.fleet.policy.ActionCosts`), every failure the policy
failed to remove in time is priced at the miss cost, and the baseline
is the do-nothing fleet (every failure a miss) — ``savings`` is what
the policy is worth against that baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from ..obs import metrics, tracing
from ..obs import timeline as obs_timeline
from .actions import Actuator, FleetState
from .audit import AuditEntry, AuditJournal
from .health import FleetHealth, RiskPolicy
from .policy import BasePolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..simulator.fleet import FleetTrace

__all__ = [
    "PolicyRunner",
    "RunOutcome",
    "GroundTruth",
    "ground_truth",
    "WhatIfReport",
    "evaluate_outcome",
    "run_whatif",
]

#: Days before a failure during which an in-service drive counts as
#: exposure (``drive_days_at_risk``) — two weeks, the paper's Section 5
#: lead-time horizon.
DEFAULT_AT_RISK_WINDOW = 14


@dataclass
class RunOutcome:
    """Everything one policy run produced (state + audit trail)."""

    state: FleetState
    health: FleetHealth
    entries: list[AuditEntry]
    n_events: int = 0
    n_days: int = 0
    n_actions: int = 0
    n_rejected: int = 0
    #: Hash-chain head of the journal (GENESIS when nothing was applied).
    chain: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_events": self.n_events,
            "n_days": self.n_days,
            "n_actions": self.n_actions,
            "n_rejected": self.n_rejected,
            "chain": self.chain,
            "state_digest": self.state.digest(),
            "health_digest": self.health.state_digest(),
        }


class PolicyRunner:
    """Buffer scored events, then decide day by day in canonical order.

    ``feed``/``feed_event`` accept scored telemetry in *any* order;
    :meth:`finalize` sorts by ``(day, drive_id, age)``, folds each day
    into the :class:`~repro.fleet.health.FleetHealth` registry, asks the
    policy for that day's actions against the day's
    :class:`~repro.fleet.health.FleetView`, and applies them through a
    non-strict :class:`~repro.fleet.actions.Actuator` (a policy deciding
    from a view may re-propose an action a prior day made moot).  Every
    applied action lands in the journal with the *decision day* as its
    timestamp — logical time, so journals are byte-deterministic.
    """

    def __init__(
        self,
        policy: BasePolicy,
        journal: AuditJournal | None = None,
        risk: RiskPolicy | None = None,
    ):
        self.policy = policy
        self.journal = journal
        self.health = FleetHealth(risk)
        self.actuator = Actuator(journal=journal, strict=False)
        self._events: list[tuple[int, int, int, float]] = []

    def feed_event(
        self, drive_id: int, age_days: int, day: int, probability: float
    ) -> None:
        """Buffer one scored event for the decision pass."""
        self._events.append(
            (int(day), int(drive_id), int(age_days), float(probability))
        )

    def feed(
        self,
        drive_ids: np.ndarray,
        ages: np.ndarray,
        days: np.ndarray,
        probs: np.ndarray,
    ) -> None:
        """Buffer one scored column chunk (the serving tap's shape)."""
        n = len(drive_ids)
        if not (len(ages) == len(days) == len(probs) == n):
            raise ValueError("feed needs same-length columns")
        for i in range(n):
            self._events.append(
                (
                    int(days[i]),
                    int(drive_ids[i]),
                    int(ages[i]),
                    float(probs[i]),
                )
            )

    def finalize(self) -> RunOutcome:
        """Run the buffered events through the policy, day by day."""
        events = sorted(self._events)
        self._events = []
        entries: list[AuditEntry] = []
        n_days = 0
        i = 0
        n = len(events)
        with tracing.span("repro.fleet.decide", rows_in=n) as sp:
            while i < n:
                day = events[i][0]
                j = i
                while j < n and events[j][0] == day:
                    d, drive, age, p = events[j]
                    self.health.observe(drive, age, p, d)
                    j += 1
                view = self.health.view(day)
                actions = self.policy.decide(view, self.actuator.state, day)
                for action in actions:
                    entry = self.actuator.apply(action, ts=float(day))
                    if entry is not None:
                        entries.append(entry)
                n_days += 1
                metrics.inc(
                    "repro_fleet_decision_days_total",
                    help="Decision days the policy runner evaluated",
                )
                # Advance the timeline watermark without inflating event
                # counts (the scoring plane already counted arrivals);
                # window closes capture the repro_fleet_* counter deltas.
                obs_timeline.record(0, watermark=day)
                i = j
            sp.set(rows_out=len(entries))
        state = self.actuator.state
        metrics.set_gauge(
            "repro_fleet_drives_quarantined",
            float(state.count("quarantined")),
            help="Drives currently quarantined by the fleet autopilot",
        )
        metrics.set_gauge(
            "repro_fleet_cost_total",
            float(state.cost_total),
            help="Cumulative attributed cost of applied fleet actions",
        )
        return RunOutcome(
            state=state,
            health=self.health,
            entries=entries,
            n_events=n,
            n_days=n_days,
            n_actions=len(entries),
            n_rejected=self.actuator.rejected_total,
            chain=self.journal.chain if self.journal is not None else "",
        )


# --------------------------------------------------------------------------
# ground truth & the cost report
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class GroundTruth:
    """What actually happened to each drive, from the simulator tables."""

    #: drive_id -> calendar day of the drive's *first* failure.
    fail_day: dict[int, int]
    #: drive_id -> deployment day.
    deploy_day: dict[int, int]
    #: drive_id -> last observed calendar day.
    end_day: dict[int, int]

    @property
    def n_failures(self) -> int:
        return len(self.fail_day)


def ground_truth(trace: "FleetTrace") -> GroundTruth:
    """Derive per-drive failure days from the drive and swap tables.

    A drive's failure day is its deployment day plus the age of its
    first failure — the same arithmetic the labeling pipeline uses, so
    what-if reports and training labels agree on what a miss is.
    """
    drives = trace.drives
    deploy = {
        int(drives.drive_id[i]): int(drives.deploy_day[i])
        for i in range(len(drives.drive_id))
    }
    end = {
        int(drives.drive_id[i]): int(drives.deploy_day[i])
        + int(drives.end_of_observation_age[i])
        for i in range(len(drives.drive_id))
    }
    swaps = trace.swaps
    fail: dict[int, int] = {}
    for i in range(len(swaps.drive_id)):
        drive = int(swaps.drive_id[i])
        day = deploy[drive] + int(swaps.failure_age[i])
        if drive not in fail or day < fail[drive]:
            fail[drive] = day
    return GroundTruth(fail_day=fail, deploy_day=deploy, end_day=end)


@dataclass
class WhatIfReport:
    """Cost/availability deltas of one policy over one trace.

    ``caught`` failures are drives out of service (quarantined or
    replaced) strictly before their failure day; everything else is a
    ``missed`` failure priced at the miss cost.  ``false_replacements``
    are spares burned on drives that never fail in the observation
    window.  ``drive_days_at_risk`` counts in-service days of failing
    drives within the final ``at_risk_window`` days before failure —
    the exposure a faster policy would have removed.  The baseline is
    the do-nothing fleet: every failure a miss, zero action cost.
    """

    policy: dict[str, Any] = field(default_factory=dict)
    n_drives: int = 0
    n_failures: int = 0
    caught: int = 0
    missed: int = 0
    false_replacements: int = 0
    spares_used: int = 0
    drive_days_at_risk: int = 0
    quarantine_drive_days: int = 0
    at_risk_window: int = DEFAULT_AT_RISK_WINDOW
    by_action: dict[str, int] = field(default_factory=dict)
    action_cost: float = 0.0
    miss_cost: float = 0.0
    total_cost: float = 0.0
    baseline_cost: float = 0.0
    savings: float = 0.0
    outcome: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "n_drives": self.n_drives,
            "n_failures": self.n_failures,
            "caught": self.caught,
            "missed": self.missed,
            "false_replacements": self.false_replacements,
            "spares_used": self.spares_used,
            "drive_days_at_risk": self.drive_days_at_risk,
            "quarantine_drive_days": self.quarantine_drive_days,
            "at_risk_window": self.at_risk_window,
            "by_action": dict(sorted(self.by_action.items())),
            "action_cost": self.action_cost,
            "miss_cost": self.miss_cost,
            "total_cost": self.total_cost,
            "baseline_cost": self.baseline_cost,
            "savings": self.savings,
            "outcome": self.outcome,
        }


#: Statuses that count as "out of service" for miss/exposure accounting.
_REMOVED = frozenset({"quarantined", "replaced"})


def _status_timeline(
    entries: list[AuditEntry],
) -> dict[int, list[tuple[int, str]]]:
    """Per-drive ``(day, status)`` transitions, in applied order."""
    out: dict[int, list[tuple[int, str]]] = {}
    for entry in entries:
        out.setdefault(int(entry.drive_id), []).append(
            (int(entry.day), entry.new_status)
        )
    return out


def _status_on(timeline: list[tuple[int, str]], day: int) -> str:
    """Status at the end of ``day`` (``active`` before any action)."""
    status = "active"
    for d, s in timeline:
        if d > day:
            break
        status = s
    return status


def evaluate_outcome(
    outcome: RunOutcome,
    truth: GroundTruth,
    policy: BasePolicy,
    at_risk_window: int = DEFAULT_AT_RISK_WINDOW,
) -> WhatIfReport:
    """Price one run outcome against the ground truth (pure function)."""
    if at_risk_window < 1:
        raise ValueError("at_risk_window must be >= 1")
    timelines = _status_timeline(outcome.entries)
    costs = policy.costs
    report = WhatIfReport(
        policy=policy.spec(),
        n_drives=len(truth.deploy_day),
        n_failures=truth.n_failures,
        at_risk_window=at_risk_window,
        by_action=dict(sorted(outcome.state.by_action.items())),
        spares_used=outcome.state.spares_used,
        action_cost=float(outcome.state.cost_total),
        outcome=outcome.to_dict(),
    )
    for drive, fail_day in sorted(truth.fail_day.items()):
        tl = timelines.get(drive, [])
        # Out of service by the end of the day before the failure day?
        if _status_on(tl, fail_day - 1) in _REMOVED:
            report.caught += 1
        else:
            report.missed += 1
        lo = max(truth.deploy_day[drive], fail_day - at_risk_window)
        for day in range(lo, fail_day):
            if _status_on(tl, day) not in _REMOVED:
                report.drive_days_at_risk += 1
    replaced = {
        d for d, s in outcome.state.status.items() if s == "replaced"
    }
    report.false_replacements = sum(
        1 for d in replaced if d not in truth.fail_day
    )
    for drive, tl in sorted(timelines.items()):
        end = min(
            truth.end_day.get(drive, tl[-1][0]),
            truth.fail_day.get(drive, truth.end_day.get(drive, tl[-1][0])),
        )
        since: int | None = None
        for day, status in tl:
            if status == "quarantined" and since is None:
                since = day
            elif status != "quarantined" and since is not None:
                report.quarantine_drive_days += max(0, day - since)
                since = None
        if since is not None:
            report.quarantine_drive_days += max(0, end - since)
    report.miss_cost = report.missed * costs.miss
    report.total_cost = report.action_cost + report.miss_cost
    report.baseline_cost = report.n_failures * costs.miss
    report.savings = report.baseline_cost - report.total_cost
    metrics.set_gauge(
        "repro_fleet_missed_failures",
        float(report.missed),
        help="Failures the evaluated policy did not remove in time",
    )
    return report


def run_whatif(
    trace: "FleetTrace",
    policy: BasePolicy,
    predictor: Any = None,
    *,
    probs: np.ndarray | None = None,
    workers: int | None = None,
    journal_path: Any = None,
    risk: RiskPolicy | None = None,
    at_risk_window: int = DEFAULT_AT_RISK_WINDOW,
) -> tuple[WhatIfReport, RunOutcome]:
    """Replay ``policy`` against a trace and price the outcome.

    Scores come from ``probs`` when given (so a multi-policy comparison
    scores the trace once) or from
    ``predictor.predict_proba_records(trace.records, workers=...)`` —
    byte-identical at any worker count, which is what makes the journal
    at ``journal_path`` byte-deterministic.
    """
    records = trace.records
    if probs is None:
        if predictor is None:
            raise ValueError("run_whatif needs a predictor or probs")
        probs = predictor.predict_proba_records(records, workers=workers)
    n_rows = len(records["drive_id"])
    if len(probs) != n_rows:
        raise ValueError(
            f"probs has {len(probs)} rows, trace has {n_rows}"
        )
    journal = AuditJournal(journal_path) if journal_path else None
    try:
        runner = PolicyRunner(policy, journal=journal, risk=risk)
        runner.feed(
            records["drive_id"],
            records["age_days"],
            records["calendar_day"],
            probs,
        )
        outcome = runner.finalize()
    finally:
        if journal is not None:
            journal.close()
    report = evaluate_outcome(
        outcome, ground_truth(trace), policy, at_risk_window=at_risk_window
    )
    return report, outcome
