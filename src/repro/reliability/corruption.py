"""Seeded fault injection over telemetry datasets and trace directories.

Fleet telemetry is never pristine: collectors die mid-day (missing
records), retry on flaky links (duplicates), flush out of order, report
stuck SMART counters, emit NaN/sentinel spikes, and upgrade their schema
under the consumer's feet.  This module reproduces those fault classes on
demand — deterministically, from a seed — so the validator, the repair
policies and the prediction pipeline can be exercised against realistic
corruption and so robustness can be *measured* (see
``benchmarks/test_robustness.py``).

All row-level injectors operate on raw column mappings and return an
:class:`InjectionResult` carrying both the corrupted columns and a
ground-truth :class:`InjectedFault` log, which the fault-drill tests use
to score detector recall.  File-level faults (NPZ truncation) operate on
trace directories.

Default rates (fraction of rows, drives or bytes affected) are in
:data:`DEFAULT_RATES`; they are deliberately aggressive so that a single
injected trace exercises every detector.
"""

from __future__ import annotations

import shutil
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..data.dataset import DriveDayDataset

__all__ = [
    "FAULT_CLASSES",
    "DEFAULT_RATES",
    "InjectedFault",
    "InjectionResult",
    "FaultInjector",
    "truncate_file",
]

#: Every fault class the injector knows, in canonical order.
FAULT_CLASSES: tuple[str, ...] = (
    "missing_days",
    "duplicate_rows",
    "out_of_order",
    "value_spikes",
    "stuck_counter",
    "schema_drift",
    "truncated_file",
)

#: Documented default injection rates.  Row-level classes are a fraction
#: of rows; ``stuck_counter`` is a fraction of drives; ``schema_drift``
#: is the number of columns dropped/renamed; ``truncated_file`` is the
#: fraction of file bytes *kept*.
DEFAULT_RATES: dict[str, float] = {
    "missing_days": 0.05,
    "duplicate_rows": 0.03,
    "out_of_order": 0.02,
    "value_spikes": 0.01,
    "stuck_counter": 0.10,
    "schema_drift": 1.0,
    "truncated_file": 0.5,
}

#: Sentinel values a sick collector emits into integer counters.
_INT_SENTINELS: tuple[int, ...] = (-1, 2**60)


@dataclass(frozen=True)
class InjectedFault:
    """Ground truth for one injected fault instance.

    ``ages`` are the affected drive-day ages (empty for table-level
    faults such as schema drift), ``column`` the affected column when the
    fault is column-scoped.
    """

    fault: str
    drive_id: int
    ages: tuple[int, ...] = ()
    column: str | None = None


@dataclass
class InjectionResult:
    """Corrupted raw columns plus the ground-truth fault log."""

    columns: dict[str, np.ndarray]
    faults: list[InjectedFault] = field(default_factory=list)

    @property
    def n_faults(self) -> int:
        return len(self.faults)

    def dataset(self) -> DriveDayDataset:
        """Build a dataset *without* the sanitizing sort/cast.

        Only valid when the corruption left dtypes castable; use the raw
        ``columns`` mapping with the validator otherwise.
        """
        return DriveDayDataset(self.columns, check_sorted=False)

    def summary(self) -> str:
        by_class: dict[str, int] = {}
        for f in self.faults:
            by_class[f.fault] = by_class.get(f.fault, 0) + 1
        parts = ", ".join(f"{k}: {v}" for k, v in sorted(by_class.items()))
        return f"Injected {len(self.faults)} fault(s) ({parts or 'none'})"


def _as_columns(
    data: DriveDayDataset | Mapping[str, np.ndarray],
) -> dict[str, np.ndarray]:
    if isinstance(data, DriveDayDataset):
        return {k: np.array(v) for k, v in data.items()}
    return {k: np.array(v) for k, v in data.items()}


class FaultInjector:
    """Deterministic, seeded injector for every fault class.

    Parameters
    ----------
    seed:
        Root seed; two injectors with the same seed and inputs produce
        byte-identical corruption.
    """

    def __init__(self, seed: int = 0):
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------- row-level
    def missing_days(
        self,
        data: DriveDayDataset | Mapping[str, np.ndarray],
        rate: float | None = None,
    ) -> InjectionResult:
        """Drop a fraction of *interior* drive-days (collector gaps).

        First/last rows of each drive are kept: dropping an endpoint
        leaves no gap signature, so it would be undetectable by design,
        not by detector weakness.
        """
        rate = DEFAULT_RATES["missing_days"] if rate is None else rate
        cols = _as_columns(data)
        ids = np.asarray(cols["drive_id"])
        n = ids.size
        interior = np.ones(n, dtype=bool)
        if n:
            first = np.concatenate(([True], ids[1:] != ids[:-1]))
            last = np.concatenate((ids[1:] != ids[:-1], [True]))
            interior = ~(first | last)
        candidates = np.flatnonzero(interior)
        k = int(round(rate * n))
        k = min(k, candidates.size)
        drop = self.rng.choice(candidates, size=k, replace=False) if k else np.empty(
            0, dtype=np.int64
        )
        keep = np.ones(n, dtype=bool)
        keep[drop] = False
        ages = np.asarray(cols["age_days"])
        faults = [
            InjectedFault("missing_days", int(ids[i]), (int(ages[i]),))
            for i in np.sort(drop)
        ]
        return InjectionResult(
            columns={k_: v[keep] for k_, v in cols.items()}, faults=faults
        )

    def duplicate_rows(
        self,
        data: DriveDayDataset | Mapping[str, np.ndarray],
        rate: float | None = None,
    ) -> InjectionResult:
        """Re-deliver a fraction of rows (collector retry storms).

        Duplicates are inserted right after the original, mimicking an
        at-least-once delivery queue.
        """
        rate = DEFAULT_RATES["duplicate_rows"] if rate is None else rate
        cols = _as_columns(data)
        ids = np.asarray(cols["drive_id"])
        n = ids.size
        k = int(round(rate * n))
        pick = (
            np.sort(self.rng.choice(n, size=min(k, n), replace=False))
            if k and n
            else np.empty(0, dtype=np.int64)
        )
        # Index vector with each picked row appearing twice, in place.
        idx = np.sort(np.concatenate((np.arange(n), pick)), kind="stable")
        ages = np.asarray(cols["age_days"])
        faults = [
            InjectedFault("duplicate_rows", int(ids[i]), (int(ages[i]),))
            for i in pick
        ]
        return InjectionResult(
            columns={k_: v[idx] for k_, v in cols.items()}, faults=faults
        )

    def out_of_order(
        self,
        data: DriveDayDataset | Mapping[str, np.ndarray],
        rate: float | None = None,
    ) -> InjectionResult:
        """Swap adjacent same-drive rows (out-of-order flushes)."""
        rate = DEFAULT_RATES["out_of_order"] if rate is None else rate
        cols = _as_columns(data)
        ids = np.asarray(cols["drive_id"])
        ages = np.asarray(cols["age_days"])
        n = ids.size
        # Candidate positions i where swapping rows (i, i+1) breaks the
        # order: same drive, strictly increasing ages.
        cand = np.flatnonzero((ids[1:] == ids[:-1]) & (ages[1:] > ages[:-1]))
        k = min(int(round(rate * n)), cand.size)
        pick = (
            self.rng.choice(cand, size=k, replace=False)
            if k
            else np.empty(0, dtype=np.int64)
        )
        # Avoid overlapping swaps (i and i+1 both picked).
        pick = np.sort(pick)
        chosen: list[int] = []
        prev = -2
        for i in pick:
            if i > prev + 1:
                chosen.append(int(i))
                prev = int(i)
        perm = np.arange(n)
        for i in chosen:
            perm[i], perm[i + 1] = perm[i + 1], perm[i]
        faults = [
            InjectedFault(
                "out_of_order", int(ids[i]), (int(ages[i]), int(ages[i + 1]))
            )
            for i in chosen
        ]
        return InjectionResult(
            columns={k_: v[perm] for k_, v in cols.items()}, faults=faults
        )

    def value_spikes(
        self,
        data: DriveDayDataset | Mapping[str, np.ndarray],
        rate: float | None = None,
        columns: Iterable[str] = ("write_count", "read_count", "uncorrectable_error"),
    ) -> InjectionResult:
        """NaN (float columns) or sentinel (int columns) value spikes."""
        rate = DEFAULT_RATES["value_spikes"] if rate is None else rate
        cols = _as_columns(data)
        ids = np.asarray(cols["drive_id"])
        ages = np.asarray(cols["age_days"])
        n = ids.size
        faults: list[InjectedFault] = []
        for name in columns:
            if name not in cols:
                continue
            k = int(round(rate * n))
            if not k or not n:
                continue
            rows = self.rng.choice(n, size=min(k, n), replace=False)
            arr = cols[name]
            if np.issubdtype(arr.dtype, np.floating):
                arr[rows] = np.nan
            else:
                sentinels = self.rng.choice(_INT_SENTINELS, size=rows.size)
                arr[rows] = sentinels
            faults.extend(
                InjectedFault("value_spikes", int(ids[i]), (int(ages[i]),), name)
                for i in np.sort(rows)
            )
        return InjectionResult(columns=cols, faults=faults)

    def stuck_counter(
        self,
        data: DriveDayDataset | Mapping[str, np.ndarray],
        rate: float | None = None,
        column: str = "pe_cycles",
        min_run: int = 3,
        max_run: int = 10,
    ) -> InjectionResult:
        """Freeze a cumulative counter over a window (stuck SMART value).

        For a fraction of drives, ``column`` is parked at its value on a
        random day for ``min_run..max_run`` subsequent reports, while the
        drive keeps reporting activity — the non-monotone/stuck pattern
        of sick collectors.
        """
        rate = DEFAULT_RATES["stuck_counter"] if rate is None else rate
        cols = _as_columns(data)
        ids = np.asarray(cols["drive_id"])
        n = ids.size
        faults: list[InjectedFault] = []
        if not n or column not in cols:
            return InjectionResult(columns=cols, faults=faults)
        first = np.concatenate(([True], ids[1:] != ids[:-1]))
        starts = np.flatnonzero(first)
        stops = np.concatenate((starts[1:], [n]))
        ages = np.asarray(cols["age_days"])
        arr = cols[column]
        n_drives = starts.size
        k = int(round(rate * n_drives))
        pick = (
            self.rng.choice(n_drives, size=min(k, n_drives), replace=False)
            if k
            else np.empty(0, dtype=np.int64)
        )
        for d in np.sort(pick):
            s, e = int(starts[d]), int(stops[d])
            if e - s < min_run + 1:
                continue
            run = int(self.rng.integers(min_run, max_run + 1))
            start = int(self.rng.integers(s, e - min_run))
            stop = min(start + run, e - 1)
            arr[start + 1 : stop + 1] = arr[start]
            faults.append(
                InjectedFault(
                    "stuck_counter",
                    int(ids[s]),
                    tuple(int(a) for a in ages[start + 1 : stop + 1]),
                    column,
                )
            )
        return InjectionResult(columns=cols, faults=faults)

    def schema_drift(
        self,
        data: DriveDayDataset | Mapping[str, np.ndarray],
        n_columns: int | None = None,
        mode: str | None = None,
    ) -> InjectionResult:
        """Drop or rename telemetry columns (collector schema upgrade).

        ``mode`` is ``"drop"``, ``"rename"`` or ``None`` (random per
        column).  Identity columns are never touched — losing
        ``drive_id`` makes the table meaningless rather than dirty.
        """
        n_columns = (
            int(DEFAULT_RATES["schema_drift"]) if n_columns is None else int(n_columns)
        )
        cols = _as_columns(data)
        protected = {"drive_id", "age_days", "model", "calendar_day"}
        candidates = [c for c in cols if c not in protected]
        faults: list[InjectedFault] = []
        if not candidates or n_columns <= 0:
            return InjectionResult(columns=cols, faults=faults)
        pick = self.rng.choice(
            len(candidates), size=min(n_columns, len(candidates)), replace=False
        )
        for j in np.sort(pick):
            name = candidates[int(j)]
            m = mode or ("drop" if self.rng.random() < 0.5 else "rename")
            if m == "rename":
                cols[f"legacy_{name}"] = cols.pop(name)
            else:
                cols.pop(name)
            faults.append(InjectedFault("schema_drift", -1, (), name))
        return InjectionResult(columns=cols, faults=faults)

    # ---------------------------------------------------------- compositions
    def inject(
        self,
        data: DriveDayDataset | Mapping[str, np.ndarray],
        classes: Iterable[str] = ("missing_days", "duplicate_rows", "value_spikes"),
        rates: Mapping[str, float] | None = None,
    ) -> InjectionResult:
        """Apply several row-level fault classes in sequence."""
        cols = _as_columns(data)
        all_faults: list[InjectedFault] = []
        for cls in classes:
            if cls == "truncated_file":
                raise ValueError(
                    "truncated_file is a file-level fault; use corrupt_trace()"
                )
            fn = getattr(self, cls, None)
            if fn is None:
                raise ValueError(
                    f"unknown fault class {cls!r}; known: {FAULT_CLASSES}"
                )
            rate = None if rates is None else rates.get(cls)
            res = fn(cols, rate) if rate is not None else fn(cols)
            cols = res.columns
            all_faults.extend(res.faults)
        return InjectionResult(columns=cols, faults=all_faults)

    def corrupt_trace(
        self,
        trace_dir: str | Path,
        out_dir: str | Path,
        classes: Iterable[str] = ("missing_days", "duplicate_rows", "value_spikes"),
        rates: Mapping[str, float] | None = None,
    ) -> InjectionResult:
        """Corrupt an on-disk trace directory into ``out_dir``.

        Row-level faults rewrite ``records.npz`` with the raw corrupted
        columns (no sanitizing sort/cast); ``truncated_file`` chops the
        written NPZ; ``drives.npz``/``swaps.npz`` are copied verbatim.
        """
        # Local import: repro.data imports this package at module load.
        from ..data.io import load_raw_columns_npz

        trace_dir, out_dir = Path(trace_dir), Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        classes = list(classes)
        # The wrapped loader maps a missing/corrupt records.npz to
        # TraceIntegrityError, which the CLI turns into exit code 2
        # instead of a traceback.
        cols = load_raw_columns_npz(trace_dir / "records.npz")
        row_classes = [c for c in classes if c != "truncated_file"]
        result = self.inject(cols, row_classes, rates)
        out_records = out_dir / "records.npz"
        np.savez_compressed(out_records, **result.columns)
        if "truncated_file" in classes:
            keep = (
                DEFAULT_RATES["truncated_file"]
                if rates is None
                else rates.get("truncated_file", DEFAULT_RATES["truncated_file"])
            )
            truncate_file(out_records, keep)
            result.faults.append(InjectedFault("truncated_file", -1, (), None))
        for name in ("drives.npz", "swaps.npz"):
            if (trace_dir / name).exists():
                shutil.copyfile(trace_dir / name, out_dir / name)
        return result


def truncate_file(path: str | Path, keep_fraction: float = 0.5) -> int:
    """Truncate a file to ``keep_fraction`` of its bytes; returns new size.

    Models a crash mid-write by a non-atomic writer (the reason
    :mod:`repro.data.io` writes via tmp-file + rename).
    """
    if not 0 <= keep_fraction < 1:
        raise ValueError("keep_fraction must lie in [0, 1)")
    path = Path(path)
    size = path.stat().st_size
    new_size = int(size * keep_fraction)
    with open(path, "r+b") as fh:
        fh.truncate(new_size)
    return new_size
