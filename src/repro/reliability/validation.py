"""Schema and invariant validation for telemetry traces.

Real fleet-monitoring pipelines cannot trust their collectors: records
arrive duplicated, out of order, with stuck cumulative counters or
sentinel-valued spikes, and whole days go missing when an agent dies.
This module checks a raw trace against the invariants the rest of the
pipeline silently assumes and reports every violation in a structured
:class:`ValidationReport`, so callers can choose a policy
(``strict`` / ``repair`` / ``quarantine`` — see
:mod:`repro.reliability.repair`) instead of crashing deep inside NumPy.

Checks operate on *raw column mappings* (``name -> 1-D array``), not on
:class:`~repro.data.DriveDayDataset`: the dataset constructor sorts rows
and casts dtypes, which would mask exactly the corruption we are trying
to detect.  Use :func:`dataset_columns` to validate an already-built
dataset.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from ..data.dataset import DriveDayDataset
from ..data.fields import DAILY_FIELDS
from ..data.tables import DriveTable, SwapLog
from ..obs import tracing

__all__ = [
    "CheckResult",
    "ValidationReport",
    "CUMULATIVE_FIELDS",
    "COUNT_FIELDS",
    "REQUIRED_COLUMNS",
    "SENTINEL_CEILING",
    "dataset_columns",
    "check_schema",
    "check_finite",
    "check_nonnegative",
    "check_sorted_rows",
    "check_duplicate_days",
    "check_monotone_cumulative",
    "check_stuck_counters",
    "check_day_gaps",
    "check_referential_integrity",
    "validate_columns",
    "validate_trace",
]

#: Columns that must never decrease over a drive's lifetime.
CUMULATIVE_FIELDS: tuple[str, ...] = tuple(
    f.name for f in DAILY_FIELDS if f.cumulative
)

#: Columns that hold event/operation counts and must be non-negative.
COUNT_FIELDS: tuple[str, ...] = tuple(
    f.name
    for f in DAILY_FIELDS
    if f.name not in ("drive_id", "model", "age_days", "calendar_day")
)

#: Any count above this is treated as a collector sentinel (the largest
#: plausible real value — daily writes — is ~1e9; cumulative counters cap
#: out several orders of magnitude below this).
SENTINEL_CEILING: float = 1e15

#: Column names every record table must carry to be usable at all.
REQUIRED_COLUMNS: tuple[str, ...] = tuple(f.name for f in DAILY_FIELDS)

#: Columns without which no check (or repair) can even run.
CRITICAL_COLUMNS: tuple[str, ...] = ("drive_id", "age_days")


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one validation check.

    Attributes
    ----------
    check:
        Dotted check identifier, e.g. ``"monotone.pe_cycles"``.
    severity:
        ``"error"`` (data unusable as-is) or ``"warning"`` (suspicious
        but survivable).
    passed:
        ``True`` when no violation was found.
    n_violations:
        Number of violating rows/entries.
    message:
        One-line human-readable description.
    rows:
        Indices of violating rows in the *checked* table, when the check
        is row-level (``None`` for table-level checks such as schema).
    """

    check: str
    severity: str
    passed: bool
    n_violations: int
    message: str
    rows: np.ndarray | None = None


@dataclass
class ValidationReport:
    """Structured result of a validation run."""

    checks: list[CheckResult] = field(default_factory=list)
    n_rows: int = 0

    @property
    def ok(self) -> bool:
        """True when no *error*-severity check failed."""
        return not any(c.severity == "error" and not c.passed for c in self.checks)

    @property
    def n_errors(self) -> int:
        return sum(1 for c in self.checks if c.severity == "error" and not c.passed)

    @property
    def n_warnings(self) -> int:
        return sum(1 for c in self.checks if c.severity == "warning" and not c.passed)

    def failed(self) -> list[CheckResult]:
        """Every check that found at least one violation."""
        return [c for c in self.checks if not c.passed]

    def by_check(self, prefix: str) -> list[CheckResult]:
        """Checks whose identifier starts with ``prefix``."""
        return [c for c in self.checks if c.check.startswith(prefix)]

    def violation_rows(self, prefix: str = "") -> np.ndarray:
        """Union of violating row indices across (matching) failed checks."""
        idx: list[np.ndarray] = [
            c.rows
            for c in self.checks
            if not c.passed and c.rows is not None and c.check.startswith(prefix)
        ]
        if not idx:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(idx)).astype(np.int64)

    def render(self) -> str:
        """Multi-line textual report (one line per check)."""
        lines = [f"Validation: {len(self.checks)} checks over {self.n_rows} rows"]
        for c in self.checks:
            mark = "ok  " if c.passed else ("FAIL" if c.severity == "error" else "warn")
            lines.append(f"  [{mark}] {c.check:<28s} {c.message}")
        lines.append(
            f"Result: {'OK' if self.ok else 'CORRUPT'} "
            f"({self.n_errors} error(s), {self.n_warnings} warning(s))"
        )
        return "\n".join(lines)


def dataset_columns(records: DriveDayDataset) -> dict[str, np.ndarray]:
    """Raw column mapping of a dataset (for re-validation after load)."""
    return {k: v for k, v in records.items()}


def _result(
    check: str,
    severity: str,
    rows: np.ndarray | None,
    ok_msg: str,
    fail_msg: str,
) -> CheckResult:
    n = 0 if rows is None else int(rows.size)
    passed = n == 0
    return CheckResult(
        check=check,
        severity=severity,
        passed=passed,
        n_violations=n,
        message=ok_msg if passed else f"{fail_msg} ({n} row(s))",
        rows=None if rows is None or passed else rows.astype(np.int64),
    )


# --------------------------------------------------------------------------
# individual checks
# --------------------------------------------------------------------------

def check_schema(cols: Mapping[str, np.ndarray]) -> list[CheckResult]:
    """Required columns present; unknown columns reported as drift."""
    missing = [c for c in REQUIRED_COLUMNS if c not in cols]
    known = set(REQUIRED_COLUMNS) | {"quarantined"}
    unknown = [c for c in cols if c not in known]
    out = [
        CheckResult(
            check="schema.columns",
            severity="error",
            passed=not missing,
            n_violations=len(missing),
            message="all required columns present"
            if not missing
            else f"missing column(s): {', '.join(missing)}",
        )
    ]
    out.append(
        CheckResult(
            check="schema.unknown",
            severity="warning",
            passed=not unknown,
            n_violations=len(unknown),
            message="no unknown columns"
            if not unknown
            else f"unknown column(s): {', '.join(unknown)} (schema drift?)",
        )
    )
    return out


def _numeric(arr: np.ndarray) -> np.ndarray:
    return np.asarray(arr).astype(np.float64, copy=False)


def check_finite(cols: Mapping[str, np.ndarray]) -> list[CheckResult]:
    """No NaN/inf anywhere in the numeric telemetry."""
    out: list[CheckResult] = []
    bad_any: list[np.ndarray] = []
    for name, arr in cols.items():
        a = np.asarray(arr)
        if not np.issubdtype(a.dtype, np.floating):
            continue
        bad = np.flatnonzero(~np.isfinite(a))
        if bad.size:
            bad_any.append(bad)
    rows = (
        np.unique(np.concatenate(bad_any)) if bad_any else np.empty(0, dtype=np.int64)
    )
    out.append(
        _result(
            "values.finite",
            "error",
            rows,
            "all values finite",
            "non-finite values (NaN/inf)",
        )
    )
    return out


def check_nonnegative(cols: Mapping[str, np.ndarray]) -> list[CheckResult]:
    """Counts non-negative and below the sentinel ceiling."""
    neg: list[np.ndarray] = []
    huge: list[np.ndarray] = []
    for name in COUNT_FIELDS:
        if name not in cols:
            continue
        a = _numeric(cols[name])
        with np.errstate(invalid="ignore"):
            neg_i = np.flatnonzero(a < 0)
            huge_i = np.flatnonzero(a > SENTINEL_CEILING)
        if neg_i.size:
            neg.append(neg_i)
        if huge_i.size:
            huge.append(huge_i)
    neg_rows = np.unique(np.concatenate(neg)) if neg else np.empty(0, dtype=np.int64)
    huge_rows = np.unique(np.concatenate(huge)) if huge else np.empty(0, dtype=np.int64)
    return [
        _result(
            "values.nonnegative",
            "error",
            neg_rows,
            "no negative counts",
            "negative count values",
        ),
        _result(
            "values.sentinel",
            "error",
            huge_rows,
            "no sentinel spikes",
            f"count values above {SENTINEL_CEILING:.0e} (collector sentinel)",
        ),
    ]


def check_sorted_rows(cols: Mapping[str, np.ndarray]) -> list[CheckResult]:
    """Rows sorted by ``(drive_id, age_days)``."""
    ids = np.asarray(cols["drive_id"])
    age = np.asarray(cols["age_days"])
    if ids.size < 2:
        rows = np.empty(0, dtype=np.int64)
    else:
        same = ids[1:] == ids[:-1]
        ordered = (ids[1:] > ids[:-1]) | (same & (age[1:] >= age[:-1]))
        rows = np.flatnonzero(~ordered) + 1
    return [
        _result(
            "order.sorted",
            "error",
            rows,
            "rows sorted by (drive_id, age_days)",
            "out-of-order rows",
        )
    ]


def check_duplicate_days(cols: Mapping[str, np.ndarray]) -> list[CheckResult]:
    """No drive reports the same age twice."""
    ids = np.asarray(cols["drive_id"], dtype=np.int64)
    age = np.asarray(cols["age_days"], dtype=np.int64)
    if ids.size == 0:
        rows = np.empty(0, dtype=np.int64)
    else:
        # Duplicates independent of row order: sort the composite key and
        # flag the *later occurrences* (in original index order) of each
        # repeated (drive, age) pair.
        key = ids * np.int64(1 << 32) + age
        order = np.argsort(key, kind="stable")
        sk = key[order]
        dup_sorted = np.flatnonzero(sk[1:] == sk[:-1]) + 1
        rows = np.sort(order[dup_sorted])
    return [
        _result(
            "rows.duplicates",
            "error",
            rows,
            "no duplicated (drive_id, age_days) rows",
            "duplicated drive-day rows",
        )
    ]


def _per_drive_view(
    cols: Mapping[str, np.ndarray],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(order, ids_sorted, age_sorted)`` — a sorted view with the
    permutation needed to map violations back to original row indices."""
    ids = np.asarray(cols["drive_id"])
    age = np.asarray(cols["age_days"])
    order = np.lexsort((age, ids))
    return order, ids[order], age[order]


def check_monotone_cumulative(cols: Mapping[str, np.ndarray]) -> list[CheckResult]:
    """Cumulative counters never decrease within a drive."""
    out: list[CheckResult] = []
    if "drive_id" not in cols or "age_days" not in cols:
        return out
    order, ids_s, _ = _per_drive_view(cols)
    same = ids_s[1:] == ids_s[:-1]
    for name in CUMULATIVE_FIELDS:
        if name not in cols:
            continue
        v = _numeric(cols[name])[order]
        with np.errstate(invalid="ignore"):
            drop = same & (np.diff(v) < 0)
        rows = order[np.flatnonzero(drop) + 1]
        out.append(
            _result(
                f"monotone.{name}",
                "error",
                np.sort(rows),
                f"{name} non-decreasing per drive",
                f"{name} decreases within a drive",
            )
        )
    return out


def check_stuck_counters(cols: Mapping[str, np.ndarray]) -> list[CheckResult]:
    """P/E cycles advance on active days.

    A wear counter frozen across consecutive reports while the drive keeps
    writing is the classic "stuck SMART attribute" failure of fleet
    collectors: the value parks at its last reading.  Flag every report
    whose ``pe_cycles`` is exactly unchanged from the previous report of
    the same drive despite non-zero write activity on that day.
    """
    needed = ("drive_id", "age_days", "pe_cycles", "write_count")
    if any(n not in cols for n in needed):
        return []
    order, ids_s, _ = _per_drive_view(cols)
    pe = _numeric(cols["pe_cycles"])[order]
    writes = _numeric(cols["write_count"])[order]
    same = ids_s[1:] == ids_s[:-1]
    with np.errstate(invalid="ignore"):
        stuck = same & (np.diff(pe) == 0) & (writes[1:] > 0)
    rows = order[np.flatnonzero(stuck) + 1]
    return [
        _result(
            "stuck.pe_cycles",
            "warning",
            np.sort(rows),
            "pe_cycles advances on active days",
            "pe_cycles frozen despite write activity (stuck counter)",
        )
    ]


def check_day_gaps(
    cols: Mapping[str, np.ndarray], max_gap_days: int | None = None
) -> list[CheckResult]:
    """Per-drive reporting gaps no longer than ``max_gap_days``.

    Collector thinning makes small gaps normal (the observation model
    records ~65 % of days), so this is a *warning* by default and only
    runs when a threshold is given.  Dense fixtures use ``max_gap_days=1``
    to catch every removed day.
    """
    if max_gap_days is None:
        return []
    order, ids_s, age_s = _per_drive_view(cols)
    same = ids_s[1:] == ids_s[:-1]
    gap = same & (np.diff(age_s.astype(np.int64)) > max_gap_days)
    rows = order[np.flatnonzero(gap) + 1]
    return [
        _result(
            "gaps.age_days",
            "warning",
            np.sort(rows),
            f"no reporting gap exceeds {max_gap_days} day(s)",
            f"reporting gaps longer than {max_gap_days} day(s)",
        )
    ]


def check_referential_integrity(
    cols: Mapping[str, np.ndarray],
    drives: DriveTable | None,
    swaps: SwapLog | None,
) -> list[CheckResult]:
    """Cross-table identity and swap-log consistency."""
    out: list[CheckResult] = []
    if drives is not None and "drive_id" in cols:
        known = np.asarray(drives.drive_id)
        rows = np.flatnonzero(~np.isin(np.asarray(cols["drive_id"]), known))
        out.append(
            _result(
                "refint.records_drives",
                "error",
                rows,
                "every record drive_id exists in the drive table",
                "records reference unknown drives",
            )
        )
    if drives is not None and swaps is not None and len(swaps):
        known = np.asarray(drives.drive_id)
        bad = np.flatnonzero(~np.isin(np.asarray(swaps.drive_id), known))
        out.append(
            _result(
                "refint.swaps_drives",
                "error",
                bad,
                "every swap drive_id exists in the drive table",
                "swap events reference unknown drives",
            )
        )
    if swaps is not None and len(swaps):
        with np.errstate(invalid="ignore"):
            bad_order = np.flatnonzero(swaps.swap_age < swaps.failure_age)
            re = swaps.reentry_age
            bad_re = np.flatnonzero(~np.isnan(re) & (re < swaps.swap_age))
            bad_start = np.flatnonzero(
                swaps.operational_start_age > swaps.failure_age
            )
        out.append(
            _result(
                "swaplog.order",
                "error",
                bad_order,
                "swap_age >= failure_age for every event",
                "swap precedes its failure",
            )
        )
        out.append(
            _result(
                "swaplog.reentry",
                "error",
                bad_re,
                "reentry_age >= swap_age (or censored)",
                "re-entry precedes its swap",
            )
        )
        out.append(
            _result(
                "swaplog.period_start",
                "error",
                bad_start,
                "operational periods start before their failure",
                "operational period starts after its failure",
            )
        )
    return out


# --------------------------------------------------------------------------
# composite entry points
# --------------------------------------------------------------------------

def validate_columns(
    cols: Mapping[str, np.ndarray],
    max_gap_days: int | None = None,
) -> ValidationReport:
    """Run every record-level check on raw columns.

    Each check runs under a ``repro.reliability.<check>`` span, so run
    manifests record per-check wall-clock (the validator is a real cost
    on fleet-sized traces).
    """
    checks: list[CheckResult] = []
    n_rows = int(np.asarray(next(iter(cols.values()))).shape[0]) if cols else 0

    def run(stage: str, fn, *args) -> None:
        with tracing.span(f"repro.reliability.{stage}", rows_in=n_rows):
            checks.extend(fn(*args))

    run("check_schema", check_schema, cols)
    if all(c in cols for c in CRITICAL_COLUMNS):
        run("check_finite", check_finite, cols)
        run("check_nonnegative", check_nonnegative, cols)
        run("check_sorted_rows", check_sorted_rows, cols)
        run("check_duplicate_days", check_duplicate_days, cols)
        run("check_monotone_cumulative", check_monotone_cumulative, cols)
        run("check_stuck_counters", check_stuck_counters, cols)
        run("check_day_gaps", check_day_gaps, cols, max_gap_days)
    return ValidationReport(checks=checks, n_rows=n_rows)


def validate_trace(
    records: DriveDayDataset | Mapping[str, np.ndarray],
    drives: DriveTable | None = None,
    swaps: SwapLog | None = None,
    max_gap_days: int | None = None,
) -> ValidationReport:
    """Validate a full trace: record invariants + cross-table integrity."""
    cols = dataset_columns(records) if isinstance(records, DriveDayDataset) else records
    report = validate_columns(cols, max_gap_days=max_gap_days)
    if all(c in cols for c in CRITICAL_COLUMNS):
        with tracing.span(
            "repro.reliability.check_referential_integrity",
            rows_in=report.n_rows,
        ):
            report.checks.extend(check_referential_integrity(cols, drives, swaps))
    return report
