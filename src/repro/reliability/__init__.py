"""Reliability subsystem: fault injection, validation, repair, crash safety.

The paper studies drives that fail in the field; this package makes the
*pipeline itself* survive field conditions (see DESIGN.md §9):

- :mod:`repro.reliability.corruption` — seeded fault injector covering
  the telemetry failure modes of real fleet collectors;
- :mod:`repro.reliability.validation` — schema + invariant validator
  producing a structured :class:`ValidationReport`;
- :mod:`repro.reliability.repair` — ``strict`` / ``repair`` /
  ``quarantine`` policies turning dirty traces into usable datasets;
- :mod:`repro.reliability.runner` — atomic writes, retry with backoff,
  and chunked checkpointed simulation (``repro-ssd simulate --resume``).
"""

from .corruption import (
    DEFAULT_RATES,
    FAULT_CLASSES,
    FaultInjector,
    InjectedFault,
    InjectionResult,
    truncate_file,
)
from .repair import (
    POLICIES,
    RepairAction,
    RepairResult,
    TraceValidationError,
    apply_policy,
)
from .runner import (
    CheckpointStore,
    atomic_save_npz,
    atomic_write,
    retry_io,
    simulate_fleet_resumable,
)
from .validation import (
    CheckResult,
    ValidationReport,
    validate_columns,
    validate_trace,
)

__all__ = [
    "DEFAULT_RATES",
    "FAULT_CLASSES",
    "FaultInjector",
    "InjectedFault",
    "InjectionResult",
    "truncate_file",
    "POLICIES",
    "RepairAction",
    "RepairResult",
    "TraceValidationError",
    "apply_policy",
    "CheckpointStore",
    "atomic_save_npz",
    "atomic_write",
    "retry_io",
    "simulate_fleet_resumable",
    "CheckResult",
    "ValidationReport",
    "validate_columns",
    "validate_trace",
]
