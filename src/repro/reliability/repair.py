"""Repair policies: turn a dirty raw trace into a usable dataset.

Three policies, mirroring how production ingestion tiers handle dirty
telemetry (see DESIGN.md's failure-mode taxonomy):

- ``strict`` — any error-severity violation raises
  :class:`TraceValidationError` carrying the full report; nothing is
  silently fixed.
- ``repair`` — violations are fixed in place: duplicate drive-days
  dropped, out-of-order rows re-sorted, NaN/sentinel values
  forward-filled (cumulative counters) or zeroed (daily counts),
  negatives clamped, non-monotone cumulative counters clamped to their
  per-drive running max, missing schema columns zero-filled.
- ``quarantine`` — the same sanitization is applied so downstream maths
  stays finite, but every touched row is *marked* in a ``quarantined``
  column instead of being trusted; the training pipeline excludes those
  rows via the operational mask
  (:func:`repro.core.pipeline.build_prediction_dataset`).

The entry point is :func:`apply_policy`, used by the checked loaders in
:mod:`repro.data.io`.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from ..data.dataset import DriveDayDataset
from ..data.fields import FIELD_DTYPES
from .validation import (
    CRITICAL_COLUMNS,
    CUMULATIVE_FIELDS,
    REQUIRED_COLUMNS,
    SENTINEL_CEILING,
    ValidationReport,
    validate_columns,
)

__all__ = [
    "POLICIES",
    "TraceValidationError",
    "RepairAction",
    "RepairResult",
    "apply_policy",
]

#: The recognized repair policies.
POLICIES: tuple[str, ...] = ("strict", "repair", "quarantine")


class TraceValidationError(ValueError):
    """A trace failed validation under the ``strict`` policy."""

    def __init__(self, message: str, report: ValidationReport | None = None):
        super().__init__(message)
        self.report = report


@dataclass(frozen=True)
class RepairAction:
    """One repair applied to the raw columns."""

    check: str
    action: str
    n_rows: int

    def __str__(self) -> str:
        return f"{self.check}: {self.action} ({self.n_rows} row(s))"


@dataclass
class RepairResult:
    """Outcome of :func:`apply_policy`.

    Attributes
    ----------
    dataset:
        The usable dataset.  Under ``quarantine`` it carries a
        ``quarantined`` uint8 column (1 = untrusted row).
    report:
        The *pre-repair* validation report.
    actions:
        Repairs applied, in order.
    n_quarantined:
        Rows marked untrusted (0 unless policy is ``quarantine``).
    """

    dataset: DriveDayDataset
    report: ValidationReport
    actions: list[RepairAction] = field(default_factory=list)
    n_quarantined: int = 0

    def summary(self) -> str:
        acts = "; ".join(str(a) for a in self.actions) or "none"
        return (
            f"Repair: {len(self.actions)} action(s) [{acts}], "
            f"{self.n_quarantined} row(s) quarantined"
        )


def _ffill_per_drive(
    values: np.ndarray, ids: np.ndarray, bad: np.ndarray
) -> np.ndarray:
    """Forward-fill ``bad`` positions with the last good same-drive value.

    Rows with no prior good value in their drive fall back to 0.
    Expects rows sorted by drive (ages may be anything).
    """
    v = values.astype(np.float64, copy=True)
    n = v.size
    if not n:
        return v
    good = ~bad
    # Index of the most recent good row at or before each position.
    idx = np.where(good, np.arange(n), -1)
    idx = np.maximum.accumulate(idx)
    # Reset carries across drive boundaries: a fill source must belong to
    # the same drive.
    first_of_drive = np.concatenate(([0], np.flatnonzero(ids[1:] != ids[:-1]) + 1))
    drive_start = np.zeros(n, dtype=np.int64)
    drive_start[first_of_drive] = first_of_drive
    drive_start = np.maximum.accumulate(drive_start)
    usable = idx >= drive_start
    out = np.where(usable, v[np.maximum(idx, 0)], 0.0)
    return np.where(bad, out, v)


def apply_policy(
    cols: Mapping[str, np.ndarray],
    policy: str = "strict",
    max_gap_days: int | None = None,
) -> RepairResult:
    """Validate raw columns and apply the chosen policy.

    Raises
    ------
    TraceValidationError
        Under ``strict`` when any error-severity check fails, and under
        every policy when a *critical* column (``drive_id``/``age_days``)
        is missing — there is no meaningful repair for a table without
        row identity.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
    report = validate_columns(cols, max_gap_days=max_gap_days)
    missing_critical = [c for c in CRITICAL_COLUMNS if c not in cols]
    if missing_critical:
        raise TraceValidationError(
            f"trace is missing critical column(s) {missing_critical}; "
            "cannot repair a table without row identity",
            report,
        )
    if policy == "strict":
        if not report.ok:
            failed = ", ".join(c.check for c in report.failed() if c.severity == "error")
            raise TraceValidationError(
                f"trace failed validation under strict policy: {failed}", report
            )
        return RepairResult(
            dataset=DriveDayDataset(dict(cols), check_sorted=False),
            report=report,
        )

    work = {k: np.array(v) for k, v in cols.items()}
    actions: list[RepairAction] = []
    n = int(np.asarray(work["drive_id"]).shape[0])
    suspect = np.zeros(n, dtype=bool)

    # -- schema: zero-fill missing non-critical columns -------------------
    for name in REQUIRED_COLUMNS:
        if name in work:
            continue
        # Zero-fill keeps downstream maths working; the column (not the
        # rows) is degraded, so rows are not quarantined for this.
        work[name] = np.zeros(n, dtype=FIELD_DTYPES[name])
        actions.append(RepairAction(f"schema.{name}", "zero-filled missing column", n))

    # -- sort (fixes out-of-order) ---------------------------------------
    ids = np.asarray(work["drive_id"])
    age = np.asarray(work["age_days"])
    same = ids[1:] == ids[:-1]
    ordered = (ids[1:] > ids[:-1]) | (same & (age[1:] >= age[:-1]))
    if ids.size > 1 and not bool(np.all(ordered)):
        moved = np.zeros(n, dtype=bool)
        bad_pairs = np.flatnonzero(~ordered)
        moved[bad_pairs] = True
        moved[bad_pairs + 1] = True
        order = np.lexsort((age, ids))
        work = {k: v[order] for k, v in work.items()}
        suspect = suspect | moved
        suspect = suspect[order]
        moved_n = int(moved.sum())
        actions.append(
            RepairAction("order.sorted", "re-sorted by (drive_id, age_days)", moved_n)
        )
        ids = np.asarray(work["drive_id"])
        age = np.asarray(work["age_days"])

    # -- duplicates: keep the first delivery ------------------------------
    if ids.size:
        dup = np.concatenate(
            ([False], (ids[1:] == ids[:-1]) & (age[1:] == age[:-1]))
        )
        if bool(dup.any()):
            keep = ~dup
            # The surviving first delivery of a duplicated day is suspect
            # too: we cannot tell which delivery carried the true values.
            survivors = np.concatenate((dup[1:], [False])) & keep
            suspect = suspect | survivors
            work = {k: v[keep] for k, v in work.items()}
            suspect = suspect[keep]
            actions.append(
                RepairAction(
                    "rows.duplicates", "dropped re-delivered rows", int(dup.sum())
                )
            )
            ids = np.asarray(work["drive_id"])
            age = np.asarray(work["age_days"])
            n = ids.size

    # -- non-finite & sentinel values -------------------------------------
    for name, arr in list(work.items()):
        if name in ("drive_id", "age_days", "model", "calendar_day", "quarantined"):
            continue
        a = arr.astype(np.float64, copy=False)
        with np.errstate(invalid="ignore"):
            bad = ~np.isfinite(a) | (a < 0) | (a > SENTINEL_CEILING)
        if not bool(bad.any()):
            continue
        if name in CUMULATIVE_FIELDS:
            fixed = _ffill_per_drive(a, ids, bad)
            action = "forward-filled from last good value"
        else:
            fixed = np.where(bad, 0.0, a)
            action = "zeroed"
        dtype = FIELD_DTYPES.get(name, arr.dtype)
        if not np.issubdtype(dtype, np.floating):
            fixed = np.round(fixed)
        work[name] = fixed.astype(dtype, copy=False)
        suspect = suspect | bad
        actions.append(
            RepairAction(f"values.{name}", action, int(bad.sum()))
        )

    # -- monotone cumulative counters -------------------------------------
    if n:
        first = np.concatenate(([True], ids[1:] != ids[:-1]))
        seg_start = np.flatnonzero(first)
        for name in CUMULATIVE_FIELDS:
            if name not in work:
                continue
            a = work[name].astype(np.float64, copy=False)
            drop_mask = np.concatenate(([False], (np.diff(a) < 0) & ~first[1:]))
            if not bool(drop_mask.any()):
                continue
            # Per-drive running max: global cummax restarted at segment
            # starts via the subtract-baseline trick is wrong for max, so
            # do it with a segmented loop over only the affected drives.
            seg_of_row = np.cumsum(first) - 1
            affected = np.unique(seg_of_row[drop_mask])
            fixed = a.copy()
            stops = np.concatenate((seg_start[1:], [n]))
            for s_idx in affected:
                s, e = int(seg_start[s_idx]), int(stops[s_idx])
                fixed[s:e] = np.maximum.accumulate(fixed[s:e])
            dtype = FIELD_DTYPES.get(name, work[name].dtype)
            if not np.issubdtype(dtype, np.floating):
                fixed = np.round(fixed)
            work[name] = fixed.astype(dtype, copy=False)
            suspect = suspect | drop_mask
            actions.append(
                RepairAction(
                    f"monotone.{name}",
                    "clamped to per-drive running max",
                    int(drop_mask.sum()),
                )
            )

    # -- stuck counters: unrecoverable, mark only --------------------------
    # The true counter value is unknowable, so there is nothing to fix;
    # re-detect on the repaired table (pre-repair row indices no longer
    # apply after the sort/drop steps above) and mark the rows suspect.
    had_stuck = any(not c.passed for c in report.by_check("stuck."))
    if had_stuck and n > 1 and "pe_cycles" in work and "write_count" in work:
        pe = work["pe_cycles"].astype(np.float64, copy=False)
        writes = work["write_count"].astype(np.float64, copy=False)
        same_d = ids[1:] == ids[:-1]
        with np.errstate(invalid="ignore"):
            frozen = same_d & (np.diff(pe) == 0) & (writes[1:] > 0)
        rows = np.flatnonzero(frozen) + 1
        if rows.size:
            suspect[rows] = True
            actions.append(
                RepairAction(
                    "stuck.pe_cycles",
                    "marked frozen-counter rows as suspect",
                    int(rows.size),
                )
            )

    if policy == "quarantine":
        work["quarantined"] = suspect.astype(np.uint8)
        n_quarantined = int(suspect.sum())
    else:
        work.pop("quarantined", None)
        n_quarantined = 0

    return RepairResult(
        dataset=DriveDayDataset(work, check_sorted=False),
        report=report,
        actions=actions,
        n_quarantined=n_quarantined,
    )
