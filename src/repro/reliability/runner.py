"""Crash-safe execution: atomic writes, retries, resumable simulation.

Three building blocks, used by :mod:`repro.data.io` and the CLI:

- :func:`atomic_write` / :func:`atomic_save_npz` — tmp-file +
  ``fsync`` + ``os.replace``, so a killed process never leaves a
  half-written artifact where a reader expects a whole one;
- :func:`retry_io` — bounded retries with exponential backoff + jitter
  for transient I/O failures (network filesystems, busy volumes);
- :func:`simulate_fleet_resumable` — chunked, checkpointed fleet
  simulation.  Per-drive RNG streams are spawned exactly as
  :func:`repro.simulator.simulate_fleet` spawns them, so the resumable
  path is bit-identical to the one-shot path: a run killed at any point
  and resumed with ``--resume`` produces the same trace as an
  uninterrupted run with the same seed.
"""

from __future__ import annotations

import io
import json
import os
import time
import zipfile
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from hashlib import sha256
from pathlib import Path
from typing import IO, Any

import numpy as np

from ..data import DriveDayDataset, DriveTable, SwapLog
from ..obs import metrics, tracing
from ..parallel import iter_tasks, resolve_workers
from ..resilience.supervisor import (
    QuarantinedRunError,
    SupervisionLog,
    SupervisorPolicy,
)
from ..simulator import (
    DriveModelSpec,
    DriveResult,
    FleetConfig,
    FleetTrace,
    default_models,
    simulate_drive,
)
from ..simulator.fleet import _assemble, _seed_plan, concat_traces

__all__ = [
    "atomic_write",
    "atomic_save_npz",
    "retry_io",
    "CheckpointStore",
    "simulate_fleet_resumable",
]


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry so a rename survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@contextmanager
def atomic_write(path: str | Path, mode: str = "wb") -> Iterator[IO[Any]]:
    """Write a file atomically: tmp + flush + fsync + ``os.replace``.

    The target either keeps its previous content or gets the complete
    new content — never a truncated hybrid.  The tmp file lives next to
    the target (same filesystem, so the final rename is atomic) and is
    removed on failure.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    fh = open(tmp, mode)
    try:
        yield fh
        fh.flush()
        os.fsync(fh.fileno())
        fh.close()
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except BaseException:
        fh.close()
        tmp.unlink(missing_ok=True)
        raise


#: Fixed zip entry timestamp (the zip epoch) for deterministic archives.
_NPZ_EPOCH = (1980, 1, 1, 0, 0, 0)


def atomic_save_npz(path: str | Path, **arrays: np.ndarray) -> None:
    """Atomic, *deterministic* replacement for :func:`numpy.savez_compressed`.

    Unlike ``np.savez_compressed``, zip entries carry a fixed timestamp,
    so two runs with the same seed produce byte-identical artifacts —
    required for ``repro-ssd obs diff`` to report zero drift between
    same-seed runs (manifests digest every output file).
    """
    with atomic_write(path, "wb") as fh:
        with zipfile.ZipFile(fh, "w", compression=zipfile.ZIP_DEFLATED) as zf:
            for name, array in arrays.items():
                buf = io.BytesIO()
                np.lib.format.write_array(
                    buf, np.asanyarray(array), allow_pickle=False
                )
                info = zipfile.ZipInfo(name + ".npy", date_time=_NPZ_EPOCH)
                info.compress_type = zipfile.ZIP_DEFLATED
                info.external_attr = 0o600 << 16
                zf.writestr(info, buf.getvalue())


def retry_io(
    fn: Callable[[], Any],
    retries: int = 4,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
    jitter: float = 0.5,
    exceptions: tuple[type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
    rng: np.random.Generator | None = None,
) -> Any:
    """Call ``fn`` with exponential backoff + jitter on transient errors.

    Delay before attempt ``k`` (1-based retry) is
    ``min(base_delay * 2**(k-1), max_delay) * (1 + U(0, jitter))``.
    The last failure is re-raised once ``retries`` are exhausted.
    """
    rng = rng or np.random.default_rng()
    attempt = 0
    while True:
        try:
            return fn()
        except exceptions:
            attempt += 1
            if attempt > retries:
                raise
            delay = min(base_delay * (2 ** (attempt - 1)), max_delay)
            sleep(delay * (1.0 + jitter * float(rng.random())))


# --------------------------------------------------------------------------
# checkpointed simulation
# --------------------------------------------------------------------------

_MANIFEST = "manifest.json"


def _config_digest(
    config: FleetConfig, models: tuple[DriveModelSpec, ...]
) -> str:
    """Stable fingerprint of everything that shapes the trace."""
    payload = {
        "config": asdict(config),
        "models": [asdict(m) for m in models],
    }
    return sha256(
        json.dumps(payload, sort_keys=True, default=str).encode()
    ).hexdigest()


@dataclass
class CheckpointStore:
    """Chunk files + manifest under one checkpoint directory.

    Layout: ``<dir>/manifest.json`` plus ``<dir>/chunk_<i>.npz`` with
    prefixed keys (``rec_*``, ``drv_*``, ``swp_*``).  Every write is
    atomic, so a crash leaves either a complete chunk or none.
    """

    directory: Path
    digest: str
    n_chunks: int

    @property
    def manifest_path(self) -> Path:
        return self.directory / _MANIFEST

    def chunk_path(self, index: int) -> Path:
        return self.directory / f"chunk_{index:05d}.npz"

    # -- manifest ---------------------------------------------------------
    def write_manifest(self, completed: list[int]) -> None:
        body = {
            "digest": self.digest,
            "n_chunks": self.n_chunks,
            "completed": sorted(completed),
        }
        with atomic_write(self.manifest_path, "w") as fh:
            json.dump(body, fh)

    def read_completed(self) -> list[int]:
        """Chunk indices recorded complete by a compatible previous run.

        Returns ``[]`` (fresh start) when there is no manifest, it is
        unreadable, or it was written for a different config/seed.
        """
        try:
            body = json.loads(self.manifest_path.read_text())
        except (OSError, ValueError):
            return []
        if body.get("digest") != self.digest or body.get("n_chunks") != self.n_chunks:
            return []
        return [int(i) for i in body.get("completed", []) if 0 <= int(i) < self.n_chunks]

    # -- chunks -----------------------------------------------------------
    def save_chunk(self, index: int, trace: FleetTrace) -> None:
        arrays: dict[str, np.ndarray] = {}
        for name, arr in trace.records.items():
            arrays[f"rec_{name}"] = arr
        for name in ("drive_id", "model", "deploy_day", "end_of_observation_age"):
            arrays[f"drv_{name}"] = getattr(trace.drives, name)
        for name in (
            "drive_id",
            "model",
            "failure_age",
            "swap_age",
            "reentry_age",
            "operational_start_age",
            "failure_mode",
        ):
            arrays[f"swp_{name}"] = getattr(trace.swaps, name)
        retry_io(lambda: atomic_save_npz(self.chunk_path(index), **arrays))

    def load_chunk(self, index: int, config: FleetConfig) -> FleetTrace | None:
        """Load one chunk; ``None`` when missing or unreadable."""
        path = self.chunk_path(index)
        try:
            with np.load(path) as payload:
                rec = {
                    k[len("rec_"):]: payload[k]
                    for k in payload.files
                    if k.startswith("rec_")
                }
                drv = {
                    k[len("drv_"):]: payload[k]
                    for k in payload.files
                    if k.startswith("drv_")
                }
                swp = {
                    k[len("swp_"):]: payload[k]
                    for k in payload.files
                    if k.startswith("swp_")
                }
        except (OSError, ValueError, zipfile.BadZipFile, KeyError):
            return None
        if not drv or not swp:
            return None
        return FleetTrace(
            records=DriveDayDataset(rec, check_sorted=False)
            if rec
            else DriveDayDataset.empty(),
            drives=DriveTable(**drv),
            swaps=SwapLog(**swp),
            config=config,
        )

    def cleanup(self) -> None:
        """Remove every checkpoint artifact and the directory."""
        if not self.directory.exists():
            return
        for p in self.directory.glob("chunk_*.npz"):
            p.unlink(missing_ok=True)
        # A SIGKILL during an atomic chunk write leaves its tmp file
        # behind; without this sweep the rmdir below fails silently and
        # the checkpoint directory outlives a successful run.
        for p in self.directory.glob(".*.tmp.*"):
            p.unlink(missing_ok=True)
        self.manifest_path.unlink(missing_ok=True)
        try:
            self.directory.rmdir()
        except OSError:
            pass  # unexpected stray files: leave them for inspection


def _simulate_chunk_task(task: tuple) -> FleetTrace:
    """Pool task: simulate one checkpoint chunk into a partial trace.

    Runs inside a worker process under ``workers > 1`` (the chunk span
    it emits ships back in the worker's obs delta) and in-process on the
    serial path — either way the span layout and stage aggregates match.
    Persisting the chunk stays with the parent, which owns the store.
    """
    config, models, chunk, lo, hi, seeds, deploy_days = task
    with tracing.span("repro.simulator.chunk", n_drives=hi - lo) as sp:
        results: list[DriveResult] = []
        for drive_id in range(lo, hi):
            model_index = drive_id // config.n_drives_per_model
            results.append(
                simulate_drive(
                    drive_id=drive_id,
                    model_index=model_index,
                    spec=models[model_index],
                    deploy_day=deploy_days[drive_id - lo],
                    horizon_days=config.horizon_days,
                    rng=np.random.default_rng(seeds[drive_id - lo]),
                )
            )
        part = _assemble(results, config)
        sp.set(chunk=chunk, cached=False, rows_out=len(part.records))
    return part


def simulate_fleet_resumable(
    config: FleetConfig | None = None,
    checkpoint_dir: str | Path = ".checkpoints",
    chunk_size: int = 64,
    resume: bool = False,
    models: tuple[DriveModelSpec, ...] | None = None,
    progress: Callable[[int, int], None] | None = None,
    workers: int | None = None,
    policy: SupervisorPolicy | None = None,
    supervision: SupervisionLog | None = None,
) -> FleetTrace:
    """Chunked, checkpointed drop-in for :func:`simulate_fleet`.

    Drives are simulated in chunks of ``chunk_size``; each finished
    chunk is persisted atomically under ``checkpoint_dir`` together with
    a manifest keyed by a config digest.  With ``resume=True``,
    previously completed chunks of a *compatible* run (same config,
    models and seed) are loaded instead of re-simulated; incompatible or
    damaged checkpoints are re-simulated from scratch.

    With ``workers > 1`` (or ``$REPRO_WORKERS`` set) the still-missing
    chunks fan out across worker processes; every chunk owns its
    pre-spawned seed slice, so the trace — and every checkpoint file —
    is byte-identical to a serial run.  Checkpoints are persisted by the
    parent in chunk order as results stream back, so a killed parallel
    run resumes exactly like a killed serial one.

    ``progress(done_chunks, n_chunks)`` is invoked after every chunk —
    the CLI uses it for status lines, the tests to kill the run
    mid-flight.  The caller is responsible for calling
    :meth:`CheckpointStore.cleanup` (or reusing the directory) after the
    final trace has been persisted.

    A :class:`~repro.resilience.SupervisorPolicy` routes chunk execution
    through the supervision layer (deadlines, deterministic retries,
    quarantine, circuit breaker); ``supervision`` receives the event log.
    Under ``on_poison="quarantine"`` every healthy chunk is simulated and
    checkpointed first, then :class:`~repro.resilience.QuarantinedRunError`
    is raised — the checkpoints survive, so fixing the fault and rerunning
    with ``--resume`` only redoes the poisoned chunks.

    Returns a trace bit-identical to ``simulate_fleet(config, models)``.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    config = config or FleetConfig()
    models = models or default_models()
    workers = resolve_workers(workers)
    n_total = config.n_drives_per_model * len(models)
    n_chunks = (n_total + chunk_size - 1) // chunk_size

    # RNG streams exactly as simulate_fleet spawns them: one child per
    # drive plus a trailing deployment stream, with deploy days drawn
    # sequentially in global drive order.
    seeds, deploy_days = _seed_plan(config, n_total)

    directory = Path(checkpoint_dir)
    directory.mkdir(parents=True, exist_ok=True)
    store = CheckpointStore(
        directory=directory,
        digest=_config_digest(config, models),
        n_chunks=n_chunks,
    )
    completed = set(store.read_completed()) if resume else set()
    if not resume:
        store.write_manifest([])

    parts: list[FleetTrace | None] = [None] * n_chunks
    done = 0

    def bounds(chunk: int) -> tuple[int, int]:
        lo = chunk * chunk_size
        return lo, min(lo + chunk_size, n_total)

    # Cached chunks first: loading is parent-side work (the store is not
    # shared with workers), and surfacing them early keeps the resume
    # path free of pool startup cost when everything is already done.
    for chunk in sorted(completed):
        lo, hi = bounds(chunk)
        part = store.load_chunk(chunk, config)
        if part is None:  # damaged checkpoint: re-simulate below
            completed.discard(chunk)
            continue
        with tracing.span("repro.simulator.chunk", n_drives=hi - lo) as sp:
            parts[chunk] = part
            sp.set(chunk=chunk, cached=True, rows_out=len(part.records))
        metrics.inc(
            "repro_chunks_total",
            help="Simulation chunks processed",
            outcome="cached",
        )
        done += 1
        if progress is not None:
            progress(done, n_chunks)

    todo = [chunk for chunk in range(n_chunks) if parts[chunk] is None]
    tasks = []
    for chunk in todo:
        lo, hi = bounds(chunk)
        tasks.append(
            (config, models, chunk, lo, hi, seeds[lo:hi], deploy_days[lo:hi])
        )
    log = supervision if supervision is not None else SupervisionLog()
    n_quarantined_before = len(log.quarantined)
    for i, part in iter_tasks(
        _simulate_chunk_task,
        tasks,
        workers=workers,
        label="repro.simulator",
        policy=policy,
        supervision=log,
    ):
        chunk = todo[i]
        store.save_chunk(chunk, part)
        completed.add(chunk)
        store.write_manifest(sorted(completed))
        parts[chunk] = part
        metrics.inc(
            "repro_chunks_total",
            help="Simulation chunks processed",
            outcome="simulated",
        )
        done += 1
        if progress is not None:
            progress(done, n_chunks)

    if len(log.quarantined) > n_quarantined_before:
        # Every healthy chunk is checkpointed above; report the poison
        # ones instead of assembling a trace with holes.
        n_bad = len(log.quarantined) - n_quarantined_before
        raise QuarantinedRunError(
            f"simulation finished with {n_bad} quarantined chunk(s) out of "
            f"{n_chunks}; completed chunks are checkpointed under "
            f"{directory} — rerun with --resume after fixing the fault",
            log=log,
            completed=len(completed),
            total=n_chunks,
        )
    return concat_traces(parts, config)
