"""Supervised execution: deadlines, deterministic retries, quarantine.

:func:`supervised_iter_tasks` is a drop-in for
:func:`repro.parallel.pool.iter_tasks` that adds a supervision layer on
top of the same task model (module-level ``fn`` mapped over a task
list, results yielded strictly in task order):

- **deadlines** — a parent-side watchdog polls every in-flight task;
  one that outlives ``policy.task_timeout`` gets its worker SIGKILLed
  and is recorded as a ``timeout`` failure instead of hanging the run;
- **deterministic retries** — a failed attempt re-dispatches the exact
  same payload after a capped exponential backoff.  Payloads carry
  their pre-spawned :class:`~numpy.random.SeedSequence` work (see
  DESIGN.md §11), so a task retried five times returns byte-identical
  results to one that succeeded first try;
- **poison quarantine** — a task that exhausts ``max_retries`` becomes
  a structured :class:`FailureReport`.  Under
  ``on_poison="quarantine"`` the run completes every healthy task and
  the report lands in the :class:`SupervisionLog` (and from there in
  the run manifest); under ``on_poison="fail"`` a
  :class:`PoisonTask`/:class:`TaskTimeout` is raised immediately;
- **circuit breaker** — ``pool_crash_threshold`` worker deaths (OOM
  kills, fork failures, hard crashes) trip the run to serial
  in-process execution, preserving per-task attempt budgets;
- **graceful shutdown** — a :class:`ShutdownRequested`/Ctrl-C caught
  while supervising stops dispatch, drains in-flight tasks, yields the
  completed in-order prefix (so the caller can checkpoint it), then
  re-raises for the CLI to exit 130.

Every retry/timeout/crash/quarantine event increments the counters
named in :data:`repro.obs.metrics.RESILIENCE_COUNTERS` and is tallied
in the caller-visible :class:`SupervisionLog`.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import traceback
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field, replace
from multiprocessing import connection as mp_connection
from typing import Any

from ..obs import metrics, tracing
from ..obs.metrics import RESILIENCE_COUNTERS
from ..parallel import pool as _pool
from ..parallel.obsmerge import merge_obs
from . import chaos
from .shutdown import ShutdownRequested

__all__ = [
    "SupervisorPolicy",
    "TaskFailure",
    "FailureReport",
    "SupervisionLog",
    "TaskTimeout",
    "PoisonTask",
    "QuarantinedRunError",
    "supervised_iter_tasks",
]

#: Failure kinds recorded per attempt (also the manifest schema enum).
FAILURE_KINDS = ("error", "timeout", "crash")


class TaskTimeout(_pool.WorkerCrash):
    """A task exceeded its deadline on every allowed attempt."""

    def __init__(self, message: str, report: "FailureReport"):
        super().__init__(
            message,
            task_index=report.task_index,
            worker_traceback=report.last_traceback(),
        )
        self.report = report


class PoisonTask(_pool.WorkerCrash):
    """A task exhausted its retry budget (``on_poison="fail"``)."""

    def __init__(self, message: str, report: "FailureReport"):
        super().__init__(
            message,
            task_index=report.task_index,
            worker_traceback=report.last_traceback(),
        )
        self.report = report


class QuarantinedRunError(RuntimeError):
    """A quarantine-mode run finished, but some tasks were poison.

    Raised by callers that cannot hand back a partial result (the
    chunked runner): every healthy chunk has been completed and
    checkpointed, the poisoned ones are described by ``log.quarantined``,
    and the CLI maps this to its distinct quarantine exit code.
    """

    def __init__(self, message: str, log: "SupervisionLog", completed: int, total: int):
        super().__init__(message)
        self.log = log
        self.completed = completed
        self.total = total


@dataclass(frozen=True)
class SupervisorPolicy:
    """Knobs of the supervision layer (see DESIGN.md §12 for tuning).

    Attributes
    ----------
    task_timeout:
        Per-attempt deadline in seconds; ``None`` disables the watchdog.
        Deadlines are enforced only on pooled execution — a serial
        in-process task cannot be killed from within.
    max_retries:
        Re-dispatches allowed after the first failed attempt (so a task
        runs at most ``max_retries + 1`` times).
    backoff_base, backoff_cap:
        Delay before retry ``k`` is ``min(base * 2**(k-1), cap)`` —
        deterministic on purpose: jitter here would not desynchronize
        anything (one parent schedules all retries) but would make run
        timings irreproducible.
    on_poison:
        ``"fail"`` raises :class:`PoisonTask`/:class:`TaskTimeout` at the
        first exhausted task; ``"quarantine"`` records a
        :class:`FailureReport`, skips the task's slot, and lets every
        healthy task finish.
    pool_crash_threshold:
        Worker deaths (crashes, OOM kills, failed spawns) tolerated
        before the circuit breaker trips the run to serial in-process
        execution.
    poll_interval:
        Parent watchdog heartbeat: upper bound on how long a result,
        death, deadline, or shutdown request can go unnoticed.
    drain_grace:
        On shutdown with no ``task_timeout``, how long to wait for
        in-flight tasks before abandoning them.
    """

    task_timeout: float | None = None
    max_retries: int = 2
    backoff_base: float = 0.1
    backoff_cap: float = 2.0
    on_poison: str = "fail"
    pool_crash_threshold: int = 3
    poll_interval: float = 0.05
    drain_grace: float = 10.0

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {self.task_timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.on_poison not in ("fail", "quarantine"):
            raise ValueError(
                f"on_poison must be 'fail' or 'quarantine', got {self.on_poison!r}"
            )
        if self.pool_crash_threshold < 1:
            raise ValueError("pool_crash_threshold must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base/backoff_cap must be >= 0")

    def backoff(self, retry_number: int) -> float:
        """Deterministic delay before the ``retry_number``-th retry (1-based)."""
        return min(self.backoff_base * (2.0 ** (retry_number - 1)), self.backoff_cap)


@dataclass
class TaskFailure:
    """One failed attempt of one task."""

    attempt: int
    kind: str  # "error" | "timeout" | "crash"
    message: str
    traceback: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "attempt": self.attempt,
            "kind": self.kind,
            "message": self.message,
            "traceback": self.traceback,
        }


@dataclass
class FailureReport:
    """Everything known about a task that exhausted its retry budget."""

    task_index: int
    label: str
    attempts: int
    quarantined: bool
    errors: list[TaskFailure] = field(default_factory=list)

    def last_traceback(self) -> str | None:
        for failure in reversed(self.errors):
            if failure.traceback:
                return failure.traceback
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "task_index": self.task_index,
            "label": self.label,
            "attempts": self.attempts,
            "quarantined": self.quarantined,
            "errors": [f.to_dict() for f in self.errors],
        }


@dataclass
class SupervisionLog:
    """Caller-visible tally of everything the supervisor had to absorb."""

    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    breaker_tripped: bool = False
    quarantined: list[FailureReport] = field(default_factory=list)

    @property
    def events(self) -> bool:
        """True when any retry/timeout/crash/quarantine/breaker event fired."""
        return bool(
            self.retries
            or self.timeouts
            or self.crashes
            or self.breaker_tripped
            or self.quarantined
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "breaker_tripped": self.breaker_tripped,
            "quarantined": [r.to_dict() for r in self.quarantined],
        }

    def summary(self) -> str:
        parts = [
            f"{self.retries} retr{'y' if self.retries == 1 else 'ies'}",
            f"{self.timeouts} timeout(s)",
            f"{self.crashes} worker crash(es)",
            f"{len(self.quarantined)} quarantined task(s)",
        ]
        if self.breaker_tripped:
            parts.append("circuit breaker tripped to serial")
        return "supervision: " + ", ".join(parts)


# --------------------------------------------------------------------------
# internal task/worker bookkeeping
# --------------------------------------------------------------------------

#: Slot marker for a quarantined task (never yielded to the caller).
_QUARANTINED = object()


class _TaskState:
    __slots__ = ("index", "payload", "attempts", "failures", "not_before")

    def __init__(self, index: int, payload: Any):
        self.index = index
        self.payload = payload
        self.attempts = 0
        self.failures: list[TaskFailure] = []
        self.not_before = 0.0  # monotonic time before which no re-dispatch


def _inc(name: str) -> None:
    metrics.inc(name, help=RESILIENCE_COUNTERS[name])


def _supervised_worker_main(
    conn: Any,
    fn: Callable[[Any], Any],
    initializer: Callable[..., None] | None,
    initargs: tuple,
    want_obs: bool,
) -> None:
    """Worker loop: receive ``(index, attempt, task)``, send the outcome.

    Exceptions travel back as data (the :func:`~repro.parallel.pool._call_task`
    protocol); chaos faults injected here are indistinguishable from real
    worker failures, which is exactly what the drill wants.
    """
    _pool._mark_worker(initializer, initargs)
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            break
        if item is None:
            break
        index, attempt, task = item
        try:
            chaos.maybe_inject(index, attempt)
            out = _pool._call_task((fn, task, want_obs))
        except chaos.ChaosError as exc:
            out = ("error", f"ChaosError: {exc}", traceback.format_exc(), None)
        try:
            conn.send((index, *out))
        except Exception:
            # Unpicklable/unsendable result: report the failure instead of
            # dying silently (a silent death would read as a pool crash).
            try:
                conn.send(
                    (
                        index,
                        "error",
                        "task result could not be sent back to the parent",
                        traceback.format_exc(),
                        None,
                    )
                )
            except Exception:  # pragma: no cover - pipe gone entirely
                break


class _WorkerHandle:
    """One supervised worker process plus its dedicated message pipe."""

    __slots__ = ("conn", "process", "state", "deadline")

    def __init__(
        self,
        ctx: multiprocessing.context.BaseContext,
        fn: Callable[[Any], Any],
        initializer: Callable[..., None] | None,
        initargs: tuple,
        want_obs: bool,
    ):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_supervised_worker_main,
            args=(child_conn, fn, initializer, initargs, want_obs),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.state: _TaskState | None = None
        self.deadline: float | None = None

    def assign(self, state: _TaskState, policy: SupervisorPolicy) -> None:
        self.conn.send((state.index, state.attempts, state.payload))
        self.state = state
        self.deadline = (
            time.monotonic() + policy.task_timeout
            if policy.task_timeout is not None
            else None
        )

    def release(self) -> _TaskState | None:
        state, self.state, self.deadline = self.state, None, None
        return state

    def stop(self, kill: bool = False) -> None:
        """Shut the worker down; ``kill=True`` skips the polite attempt."""
        if not kill and self.process.is_alive():
            try:
                self.conn.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
            self.process.join(timeout=0.5)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


# --------------------------------------------------------------------------
# failure handling shared by the pooled and serial paths
# --------------------------------------------------------------------------


def _record_failure(
    state: _TaskState, kind: str, message: str, tb: str | None
) -> None:
    state.failures.append(
        TaskFailure(
            attempt=state.attempts, kind=kind, message=message, traceback=tb or ""
        )
    )


def _schedule_retry(
    state: _TaskState, policy: SupervisorPolicy, log: SupervisionLog
) -> bool:
    """Arm the next attempt; ``False`` when the retry budget is exhausted."""
    if state.attempts > policy.max_retries:
        return False
    log.retries += 1
    _inc("repro_task_retries_total")
    state.not_before = time.monotonic() + policy.backoff(state.attempts)
    return True


def _poison(
    state: _TaskState, policy: SupervisorPolicy, log: SupervisionLog, label: str
) -> object:
    """Handle an out-of-retries task: quarantine it or raise."""
    report = FailureReport(
        task_index=state.index,
        label=label,
        attempts=state.attempts,
        quarantined=policy.on_poison == "quarantine",
        errors=list(state.failures),
    )
    if report.quarantined:
        log.quarantined.append(report)
        _inc("repro_tasks_quarantined_total")
        return _QUARANTINED
    kinds = {f.kind for f in report.errors}
    if kinds == {"timeout"}:
        raise TaskTimeout(
            f"{label}: task {state.index} exceeded its "
            f"{policy.task_timeout}s deadline on all {report.attempts} attempt(s)",
            report,
        )
    last = report.errors[-1].message if report.errors else "unknown failure"
    raise PoisonTask(
        f"{label}: task {state.index} is poison after "
        f"{report.attempts} attempt(s); last failure: {last}",
        report,
    )


def _merge_success(delta: Any, attempts: int) -> None:
    """Fold the winning attempt's obs delta into the parent collectors.

    Failed attempts' deltas are dropped (their spans would double-count
    stage aggregates); retried tasks are visible instead through the
    ``attempt`` attribute stamped on the surviving spans and through the
    resilience counters.
    """
    extra = {"attempt": attempts} if attempts > 1 else None
    merge_obs(delta, extra_attrs=extra)


# --------------------------------------------------------------------------
# serial supervised execution (workers=1, unpicklable work, tripped breaker)
# --------------------------------------------------------------------------


def _run_serial(
    fn: Callable[[Any], Any],
    states: list[_TaskState],
    policy: SupervisorPolicy,
    label: str,
    log: SupervisionLog,
    want_obs: bool,
) -> Iterator[tuple[int, Any]]:
    """Run ``states`` in-process with retry/quarantine bookkeeping.

    No deadlines (a hung in-process task cannot be killed from within)
    and no chaos injection (a ``crash`` fault here would take the parent
    down with it) — this is both the ``workers=1`` path and the circuit
    breaker's landing strip.
    """
    for state in states:
        while True:
            state.attempts += 1
            status, value, tb, delta = _pool._call_task(
                (fn, state.payload, want_obs)
            )
            if status == "ok":
                _merge_success(delta, state.attempts)
                yield state.index, value
                break
            _record_failure(state, "error", value, tb)
            if _schedule_retry(state, policy, log):
                time.sleep(max(state.not_before - time.monotonic(), 0.0))
                continue
            if _poison(state, policy, log, label) is _QUARANTINED:
                break


# --------------------------------------------------------------------------
# pooled supervised execution
# --------------------------------------------------------------------------


def _pop_ready(pending: list[_TaskState], now: float) -> _TaskState | None:
    for i, state in enumerate(pending):
        if state.not_before <= now:
            return pending.pop(i)
    return None


def _next_wait(
    workers: list[_WorkerHandle],
    pending: list[_TaskState],
    policy: SupervisorPolicy,
    now: float,
) -> float:
    """How long the parent may sleep before the next scheduled event."""
    timeout = policy.poll_interval
    for handle in workers:
        if handle.deadline is not None:
            timeout = min(timeout, handle.deadline - now)
    for state in pending:
        if state.not_before > now:
            timeout = min(timeout, state.not_before - now)
    return max(timeout, 0.0)


def _supervise_pool(
    fn: Callable[[Any], Any],
    states: list[_TaskState],
    n_workers: int,
    policy: SupervisorPolicy,
    label: str,
    initializer: Callable[..., None] | None,
    initargs: tuple,
    log: SupervisionLog,
    want_obs: bool,
) -> Iterator[tuple[int, Any]]:
    ctx = multiprocessing.get_context(_pool._START_METHOD)
    pending: list[_TaskState] = list(states)
    results: dict[int, tuple[Any, Any, int] | object] = {}
    next_yield = 0
    crashes = 0
    draining = False
    drain_deadline = float("inf")
    shutdown_exc: BaseException | None = None
    workers: list[_WorkerHandle] = []

    def spawn() -> bool:
        nonlocal crashes
        try:
            workers.append(
                _WorkerHandle(ctx, fn, initializer, initargs, want_obs)
            )
            return True
        except (OSError, ValueError):
            crashes += 1
            log.crashes += 1
            _inc("repro_pool_crashes_total")
            return False

    def task_failed(state: _TaskState, kind: str, message: str, tb: str | None) -> None:
        """Record a failed attempt; re-queue or poison the task."""
        _record_failure(state, kind, message, tb)
        if draining:
            return  # no retries while shutting down; --resume redoes it
        if _schedule_retry(state, policy, log):
            pending.append(state)
        elif _poison(state, policy, log, label) is _QUARANTINED:
            results[state.index] = _QUARANTINED

    def reap(handle: _WorkerHandle, kill: bool) -> None:
        handle.stop(kill=kill)
        workers.remove(handle)

    try:
        for _ in range(min(n_workers, len(pending))):
            spawn()
        if not workers:
            # No pool at all (resource limits, sandbox): run serially.
            if initializer is not None:
                initializer(*initargs)
            yield from _run_serial(fn, pending, policy, label, log, want_obs)
            return

        while next_yield < len(states):
            # Circuit breaker: repeated pool-level deaths mean the machine
            # (not a task) is the problem — fall back to one process.
            if crashes >= policy.pool_crash_threshold and not log.breaker_tripped:
                log.breaker_tripped = True
                _inc("repro_breaker_trips_total")
                for handle in list(workers):
                    state = handle.release()
                    if state is not None:
                        pending.append(state)
                    reap(handle, kill=True)
                break  # serial completion happens below, outside the loop

            try:
                # Yield every result that extends the in-order prefix.
                while next_yield in results:
                    slot = results.pop(next_yield)
                    if slot is not _QUARANTINED:
                        value, delta, attempts = slot
                        _merge_success(delta, attempts)
                        yield next_yield, value
                    next_yield += 1
                if next_yield >= len(states):
                    return
                if draining and all(h.state is None for h in workers):
                    raise shutdown_exc  # drained everything that was in flight

                now = time.monotonic()
                # Keep the pool at strength and the idle workers busy.
                if not draining:
                    in_flight = sum(1 for h in workers if h.state is not None)
                    while len(workers) < min(n_workers, in_flight + len(pending)):
                        if not spawn():
                            break
                    for handle in workers:
                        if handle.state is not None or not handle.process.is_alive():
                            continue
                        state = _pop_ready(pending, now)
                        if state is None:
                            break
                        state.attempts += 1
                        try:
                            handle.assign(state, policy)
                        except (OSError, ValueError, BrokenPipeError):
                            # Died between poll and send: crash-account it.
                            pending.append(state)
                            state.attempts -= 1
                            crashes += 1
                            log.crashes += 1
                            _inc("repro_pool_crashes_total")
                            reap(handle, kill=True)
                            break

                waitables: list[Any] = []
                for handle in workers:
                    waitables.append(handle.conn)
                    waitables.append(handle.process.sentinel)
                if waitables:
                    mp_connection.wait(
                        waitables, timeout=_next_wait(workers, pending, policy, now)
                    )
                elif pending:
                    time.sleep(_next_wait(workers, pending, policy, now))

                now = time.monotonic()
                if draining and now >= drain_deadline:
                    raise shutdown_exc  # in-flight work refused to finish

                for handle in list(workers):
                    # 1. completed result (consume before declaring death:
                    #    a worker may finish the task and then die).
                    try:
                        has_data = handle.conn.poll()
                    except (OSError, EOFError):
                        has_data = False
                    if has_data:
                        try:
                            msg = handle.conn.recv()
                        except (EOFError, OSError):
                            msg = None
                        if msg is not None:
                            index, status, value, tb, delta = msg
                            state = handle.release()
                            if state is None or state.index != index:
                                continue  # stale message from a reassigned pipe
                            if status == "ok":
                                results[index] = (value, delta, state.attempts)
                            else:
                                task_failed(state, "error", value, tb)
                            continue
                    # 2. worker death (crash, OOM kill, chaos kill/crash).
                    if not handle.process.is_alive():
                        state = handle.release()
                        crashes += 1
                        log.crashes += 1
                        _inc("repro_pool_crashes_total")
                        reap(handle, kill=True)
                        if state is not None:
                            task_failed(
                                state,
                                "crash",
                                "worker process died while running task "
                                f"{state.index} (exit code "
                                f"{handle.process.exitcode})",
                                None,
                            )
                        continue
                    # 3. deadline exceeded: the watchdog turns a wedged
                    #    worker into a recorded timeout.
                    if (
                        handle.state is not None
                        and handle.deadline is not None
                        and now >= handle.deadline
                    ):
                        state = handle.release()
                        log.timeouts += 1
                        _inc("repro_task_timeouts_total")
                        reap(handle, kill=True)
                        task_failed(
                            state,
                            "timeout",
                            f"task {state.index} exceeded the "
                            f"{policy.task_timeout}s deadline",
                            None,
                        )
            except (ShutdownRequested, KeyboardInterrupt) as exc:
                if draining:
                    raise  # second signal: stop waiting, abandon the drain
                draining = True
                shutdown_exc = exc
                drain_deadline = time.monotonic() + (
                    policy.task_timeout
                    if policy.task_timeout is not None
                    else policy.drain_grace
                )
    finally:
        for handle in list(workers):
            handle.stop(kill=handle.state is not None)
        workers.clear()

    # Circuit breaker landed here: finish the remaining work in-process,
    # preserving each task's consumed attempt budget.  The workers owned
    # the initializer state until now; install it in-process first.
    remaining = sorted(pending, key=lambda s: s.index)
    if remaining and initializer is not None:
        initializer(*initargs)
    serial_results: dict[int, Any] = {}
    for index, value in _run_serial(
        fn, remaining, policy, label, log, want_obs
    ):
        serial_results[index] = value
    while next_yield < len(states):
        if next_yield in serial_results:
            yield next_yield, serial_results[next_yield]
        elif next_yield in results:
            slot = results[next_yield]
            if slot is not _QUARANTINED:
                value, delta, attempts = slot
                _merge_success(delta, attempts)
                yield next_yield, value
        # slots in neither dict were quarantined (serial path logs them)
        next_yield += 1


# --------------------------------------------------------------------------
# entry point
# --------------------------------------------------------------------------


def supervised_iter_tasks(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    workers: int | None = None,
    policy: SupervisorPolicy | None = None,
    label: str = "repro.resilience",
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    supervision: SupervisionLog | None = None,
) -> Iterator[tuple[int, Any]]:
    """Supervised :func:`repro.parallel.pool.iter_tasks`.

    Yields ``(index, result)`` strictly in task order; quarantined tasks'
    indices are skipped (the :class:`SupervisionLog` names them).  The
    serial path (``workers=1``, unpicklable payloads, pool unavailable,
    tripped breaker) applies the same retry/quarantine policy minus
    deadlines, so supervision semantics never depend on the machine.
    """
    policy = policy if policy is not None else SupervisorPolicy()
    log = supervision if supervision is not None else SupervisionLog()
    states = [_TaskState(i, task) for i, task in enumerate(tasks)]
    if not states:
        return
    n_workers = min(_pool.resolve_workers(workers), len(states))
    want_obs = tracing.current() is not None or metrics.current() is not None

    parallel_ok = n_workers > 1
    if parallel_ok:
        try:
            pickle.dumps((states[0].payload, fn, initializer, initargs))
        except Exception:
            parallel_ok = False
    if not parallel_ok:
        if initializer is not None:
            initializer(*initargs)
        yield from _run_serial(fn, states, policy, label, log, want_obs)
        return
    yield from _supervise_pool(
        fn,
        states,
        n_workers,
        policy,
        label,
        initializer,
        initargs,
        log,
        want_obs,
    )


def force_fail(policy: SupervisorPolicy | None) -> SupervisorPolicy | None:
    """A copy of ``policy`` with ``on_poison="fail"``.

    For call sites that must hand back a *complete* result (fleet shards
    concatenated into one trace, scoring shards concatenated into one
    probability vector) — a quarantined hole there would silently corrupt
    the output, so poison must raise instead.
    """
    if policy is None or policy.on_poison == "fail":
        return policy
    return replace(policy, on_poison="fail")
