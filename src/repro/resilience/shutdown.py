"""Graceful shutdown: turn SIGTERM/SIGINT into a drainable exception.

A long fleet run killed with ``kill <pid>`` should not discard hours of
checkpointed progress.  :func:`graceful_shutdown` installs signal
handlers that raise :class:`ShutdownRequested` in the main thread; the
supervision layer (:mod:`repro.resilience.supervisor`) catches it once,
stops dispatching new tasks, drains the in-flight ones, and re-raises so
the CLI can exit with code 130 — after which ``--resume`` continues from
the last completed checkpoint.

:class:`ShutdownRequested` subclasses :class:`KeyboardInterrupt` on
purpose: Ctrl-C (the default SIGINT behaviour) and a delivered SIGTERM
follow the exact same drain/checkpoint/exit-130 path, and existing
``except Exception`` blocks cannot swallow either.
"""

from __future__ import annotations

import signal
import threading
from collections.abc import Iterator
from contextlib import contextmanager

__all__ = ["ShutdownRequested", "graceful_shutdown"]

#: Exit code for an interrupted-but-cleanly-drained run (128 + SIGINT).
EXIT_INTERRUPTED = 130


class ShutdownRequested(KeyboardInterrupt):
    """A termination signal arrived; drain, checkpoint, and exit 130."""

    def __init__(self, signum: int = signal.SIGTERM):
        self.signum = int(signum)
        super().__init__(self.signal_name)

    @property
    def signal_name(self) -> str:
        try:
            return signal.Signals(self.signum).name
        except ValueError:  # pragma: no cover - unknown signal number
            return f"signal {self.signum}"


@contextmanager
def graceful_shutdown(
    signals: tuple[int, ...] = (signal.SIGTERM, signal.SIGINT),
) -> Iterator[None]:
    """Map termination signals to :class:`ShutdownRequested` for the block.

    Safe to call from non-main threads (where handler installation is
    impossible): the block simply runs unprotected.  Previous handlers
    are restored on exit, so nesting and test harnesses stay intact.
    """

    def _handler(signum: int, frame: object) -> None:
        raise ShutdownRequested(signum)

    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous: dict[int, object] = {}
    try:
        for signum in signals:
            previous[signum] = signal.signal(signum, _handler)
    except (ValueError, OSError):  # pragma: no cover - exotic interpreters
        for signum, old in previous.items():
            signal.signal(signum, old)
        yield
        return
    try:
        yield
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)
