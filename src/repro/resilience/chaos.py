"""Deterministic chaos injection for supervised pool workers.

The chaos drill (tests + the CI ``chaos-smoke`` job) needs to crash,
hang, and SIGKILL workers *reproducibly* — the whole point of the
resilience acceptance criterion is that surviving outputs stay
byte-identical to a fault-free run, which is only checkable when the
faults themselves are a pure function of ``(seed, task_index)``.

Faults are configured through environment variables (inherited by
forked workers, so ``REPRO_CHAOS=... repro-ssd simulate -j2`` just
works):

- ``REPRO_CHAOS`` — spec like ``"crash=0.2,hang=0.1"``: per-task fault
  probabilities by mode;
- ``REPRO_CHAOS_SEED`` — seed of the fault plan (default 0);
- ``REPRO_CHAOS_HANG_SECONDS`` — how long ``hang`` sleeps (default
  3600, i.e. "forever" next to any sane ``--task-timeout``).

Modes (all fire on the **first attempt only**, so a retried task
succeeds — except ``error_always``, which poisons the task):

=============  ==========================================================
``error``      raise :class:`ChaosError` inside the task
``crash``      ``os._exit`` — worker dies without an exception
``kill``       SIGKILL own process — simulates the OOM killer
``hang``       sleep past any deadline — simulates a wedged worker
``error_always``  raise on *every* attempt — a poison task
=============  ==========================================================

Injection happens only in :func:`maybe_inject`, which is called solely
from the supervised worker loop — serial in-process execution (including
the circuit breaker's serial fallback) never injects, so tripping to
serial under chaos is always safe.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np

__all__ = [
    "ENV_CHAOS",
    "ENV_CHAOS_SEED",
    "ENV_CHAOS_HANG",
    "CHAOS_MODES",
    "ChaosError",
    "parse_chaos_spec",
    "planned_fault",
    "maybe_inject",
]

ENV_CHAOS = "REPRO_CHAOS"
ENV_CHAOS_SEED = "REPRO_CHAOS_SEED"
ENV_CHAOS_HANG = "REPRO_CHAOS_HANG_SECONDS"

#: Recognized fault modes, in documentation order.
CHAOS_MODES = ("error", "crash", "kill", "hang", "error_always")

#: Exit status used by the ``crash`` mode (visible in worker post-mortems).
CRASH_EXIT_STATUS = 23


class ChaosError(RuntimeError):
    """The injected task-level fault (modes ``error``/``error_always``)."""


def parse_chaos_spec(spec: str) -> list[tuple[str, float]]:
    """Parse ``"crash=0.2,hang=0.1"`` into ``[(mode, rate), ...]``.

    Rates must lie in ``[0, 1]`` and sum to at most 1 (they partition the
    unit interval: each task draws one uniform variate and lands in at
    most one mode's slice).
    """
    out: list[tuple[str, float]] = []
    total = 0.0
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        mode, _, raw = item.partition("=")
        mode = mode.strip()
        if mode not in CHAOS_MODES:
            raise ChaosError(
                f"unknown chaos mode {mode!r}; choose from {', '.join(CHAOS_MODES)}"
            )
        try:
            rate = float(raw)
        except ValueError:
            raise ChaosError(f"chaos rate for {mode!r} is not a number: {raw!r}") from None
        if not 0.0 <= rate <= 1.0:
            raise ChaosError(f"chaos rate for {mode!r} must be in [0, 1], got {rate}")
        total += rate
        out.append((mode, rate))
    if total > 1.0 + 1e-9:
        raise ChaosError(f"chaos rates sum to {total}, must be <= 1")
    return out


def planned_fault(
    task_index: int, spec: list[tuple[str, float]], seed: int = 0
) -> str | None:
    """The fault mode (or ``None``) planned for one task — pure function.

    Each task draws a single uniform variate from
    ``SeedSequence([seed, task_index])``, so the plan is independent of
    worker scheduling, retry history, and every other task.
    """
    if not spec:
        return None
    u = float(
        np.random.default_rng(np.random.SeedSequence([seed, task_index])).random()
    )
    cumulative = 0.0
    for mode, rate in spec:
        cumulative += rate
        if u < cumulative:
            return mode
    return None


def maybe_inject(task_index: int, attempt: int) -> None:
    """Apply the planned fault for ``(task_index, attempt)``, if any.

    ``attempt`` is 1-based.  Called from the supervised worker loop right
    before the task body; a no-op unless ``$REPRO_CHAOS`` is set.
    """
    raw = os.environ.get(ENV_CHAOS, "").strip()
    if not raw:
        return
    spec = parse_chaos_spec(raw)
    seed = int(os.environ.get(ENV_CHAOS_SEED, "0") or 0)
    mode = planned_fault(task_index, spec, seed)
    if mode is None:
        return
    if mode == "error_always":
        raise ChaosError(
            f"injected poison fault (task={task_index}, attempt={attempt})"
        )
    if attempt > 1:  # first-attempt faults: the retry is meant to succeed
        return
    if mode == "error":
        raise ChaosError(f"injected transient fault (task={task_index})")
    if mode == "crash":
        os._exit(CRASH_EXIT_STATUS)
    if mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if mode == "hang":
        time.sleep(float(os.environ.get(ENV_CHAOS_HANG, "3600") or 3600))
