"""Deterministic chaos injection for supervised pool workers.

The chaos drill (tests + the CI ``chaos-smoke`` job) needs to crash,
hang, and SIGKILL workers *reproducibly* — the whole point of the
resilience acceptance criterion is that surviving outputs stay
byte-identical to a fault-free run, which is only checkable when the
faults themselves are a pure function of ``(seed, task_index)``.

Faults are configured through environment variables (inherited by
forked workers, so ``REPRO_CHAOS=... repro-ssd simulate -j2`` just
works):

- ``REPRO_CHAOS`` — spec like ``"crash=0.2,hang=0.1"``: per-task fault
  probabilities by mode;
- ``REPRO_CHAOS_SEED`` — seed of the fault plan (default 0);
- ``REPRO_CHAOS_HANG_SECONDS`` — how long ``hang`` sleeps (default
  3600, i.e. "forever" next to any sane ``--task-timeout``).

Modes (all fire on the **first attempt only**, so a retried task
succeeds — except ``error_always``, which poisons the task):

=============  ==========================================================
``error``      raise :class:`ChaosError` inside the task
``crash``      ``os._exit`` — worker dies without an exception
``kill``       SIGKILL own process — simulates the OOM killer
``hang``       sleep past any deadline — simulates a wedged worker
``error_always``  raise on *every* attempt — a poison task
=============  ==========================================================

Injection happens only in :func:`maybe_inject`, which is called solely
from the supervised worker loop — serial in-process execution (including
the circuit breaker's serial fallback) never injects, so tripping to
serial under chaos is always safe.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np

__all__ = [
    "ENV_CHAOS",
    "ENV_CHAOS_SEED",
    "ENV_CHAOS_HANG",
    "CHAOS_MODES",
    "TELEMETRY_MODES",
    "SHARD_MODES",
    "GARBLE_FIELDS",
    "ChaosError",
    "parse_chaos_spec",
    "planned_fault",
    "maybe_inject",
    "telemetry_spec_from_env",
    "shard_spec_from_env",
    "planned_shard_kill",
    "garble_event",
    "chaos_telemetry_events",
]

ENV_CHAOS = "REPRO_CHAOS"
ENV_CHAOS_SEED = "REPRO_CHAOS_SEED"
ENV_CHAOS_HANG = "REPRO_CHAOS_HANG_SECONDS"

#: Recognized worker fault modes, in documentation order.
CHAOS_MODES = ("error", "crash", "kill", "hang", "error_always")

#: Telemetry fault modes applied to the serve-path event stream (one
#: entry per event index, same pure-function contract as worker faults):
#:
#: ``reorder``   hold the event a few arrivals, emitting it out of order;
#: ``duplicate`` emit the event twice back to back;
#: ``late``      hold the event for dozens of arrivals — past the point
#:               where later same-drive days have been absorbed;
#: ``garble``    corrupt one non-key counter field (NaN / negative /
#:               collector sentinel), keys left intact.
TELEMETRY_MODES = ("reorder", "duplicate", "late", "garble")

#: Shard-plane fault modes applied by the sharded serving tier (see
#: :mod:`repro.serve.shard`).  ``shard_kill`` SIGKILLs a scorer shard
#: mid-replay on its first attempt — the planned victim is a pure
#: function of ``(seed, shard_index)``, and the shard supervisor's
#: retry must heal it via checkpoint restore + journal-tail replay.
#: Kept in its own domain tuple so neither the worker injection site
#: (:func:`maybe_inject`) nor the telemetry site picks it up.
SHARD_MODES = ("shard_kill",)

#: Non-key numeric fields eligible for ``garble`` corruption.  Keys
#: (``drive_id``/``age_days``) are never touched: a garbled event stays
#: addressable, so ``serve heal --refetch`` can restore it from the
#: upstream source of truth.
GARBLE_FIELDS = (
    "read_count",
    "write_count",
    "erase_count",
    "pe_cycles",
    "grown_bad_blocks",
    "uncorrectable_error",
)

#: Corruption values cycled through by ``garble`` — each trips a
#: different admission-guard check (non-finite, negative, sentinel).
_GARBLE_VALUES = (float("nan"), -1.0, 1e18)

#: Exit status used by the ``crash`` mode (visible in worker post-mortems).
CRASH_EXIT_STATUS = 23


class ChaosError(RuntimeError):
    """The injected task-level fault (modes ``error``/``error_always``)."""


def parse_chaos_spec(
    spec: str, modes: tuple[str, ...] | None = None
) -> list[tuple[str, float]]:
    """Parse ``"crash=0.2,hang=0.1"`` into ``[(mode, rate), ...]``.

    Rates must lie in ``[0, 1]`` and sum to at most 1 (they partition the
    unit interval: each task draws one uniform variate and lands in at
    most one mode's slice).  ``modes`` restricts the accepted mode names;
    by default both worker (:data:`CHAOS_MODES`) and telemetry
    (:data:`TELEMETRY_MODES`) modes parse, since one ``$REPRO_CHAOS``
    value may mix them — each injection site filters to its own domain.
    """
    allowed = (
        modes
        if modes is not None
        else CHAOS_MODES + TELEMETRY_MODES + SHARD_MODES
    )
    out: list[tuple[str, float]] = []
    total = 0.0
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        mode, _, raw = item.partition("=")
        mode = mode.strip()
        if mode not in allowed:
            raise ChaosError(
                f"unknown chaos mode {mode!r}; choose from {', '.join(allowed)}"
            )
        try:
            rate = float(raw)
        except ValueError:
            raise ChaosError(f"chaos rate for {mode!r} is not a number: {raw!r}") from None
        if not 0.0 <= rate <= 1.0:
            raise ChaosError(f"chaos rate for {mode!r} must be in [0, 1], got {rate}")
        total += rate
        out.append((mode, rate))
    if total > 1.0 + 1e-9:
        raise ChaosError(f"chaos rates sum to {total}, must be <= 1")
    return out


def planned_fault(
    task_index: int, spec: list[tuple[str, float]], seed: int = 0
) -> str | None:
    """The fault mode (or ``None``) planned for one task — pure function.

    Each task draws a single uniform variate from
    ``SeedSequence([seed, task_index])``, so the plan is independent of
    worker scheduling, retry history, and every other task.
    """
    if not spec:
        return None
    u = float(
        np.random.default_rng(np.random.SeedSequence([seed, task_index])).random()
    )
    cumulative = 0.0
    for mode, rate in spec:
        cumulative += rate
        if u < cumulative:
            return mode
    return None


def maybe_inject(task_index: int, attempt: int) -> None:
    """Apply the planned fault for ``(task_index, attempt)``, if any.

    ``attempt`` is 1-based.  Called from the supervised worker loop right
    before the task body; a no-op unless ``$REPRO_CHAOS`` is set.
    """
    raw = os.environ.get(ENV_CHAOS, "").strip()
    if not raw:
        return
    # Telemetry modes target the serve-path event stream, not pool
    # workers — drop them here so a mixed spec never faults a worker.
    spec = [
        (mode, rate)
        for mode, rate in parse_chaos_spec(raw)
        if mode in CHAOS_MODES
    ]
    seed = int(os.environ.get(ENV_CHAOS_SEED, "0") or 0)
    mode = planned_fault(task_index, spec, seed)
    if mode is None:
        return
    if mode == "error_always":
        raise ChaosError(
            f"injected poison fault (task={task_index}, attempt={attempt})"
        )
    if attempt > 1:  # first-attempt faults: the retry is meant to succeed
        return
    if mode == "error":
        raise ChaosError(f"injected transient fault (task={task_index})")
    if mode == "crash":
        os._exit(CRASH_EXIT_STATUS)
    if mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if mode == "hang":
        time.sleep(float(os.environ.get(ENV_CHAOS_HANG, "3600") or 3600))


# --------------------------------------------------------------------------
# telemetry fault modes (the serve-path chaos drill)
# --------------------------------------------------------------------------


def telemetry_spec_from_env() -> tuple[list[tuple[str, float]], int]:
    """The telemetry slice of ``$REPRO_CHAOS`` plus the chaos seed.

    Returns ``([], seed)`` when no telemetry mode is configured — the
    serve path uses this to decide whether to perturb a replay at all.
    """
    raw = os.environ.get(ENV_CHAOS, "").strip()
    seed = int(os.environ.get(ENV_CHAOS_SEED, "0") or 0)
    if not raw:
        return [], seed
    spec = [
        (mode, rate)
        for mode, rate in parse_chaos_spec(raw)
        if mode in TELEMETRY_MODES
    ]
    return spec, seed


def shard_spec_from_env() -> tuple[list[tuple[str, float]], int]:
    """The shard-plane slice of ``$REPRO_CHAOS`` plus the chaos seed.

    Returns ``([], seed)`` when no shard mode is configured.
    """
    raw = os.environ.get(ENV_CHAOS, "").strip()
    seed = int(os.environ.get(ENV_CHAOS_SEED, "0") or 0)
    if not raw:
        return [], seed
    spec = [
        (mode, rate)
        for mode, rate in parse_chaos_spec(raw)
        if mode in SHARD_MODES
    ]
    return spec, seed


def planned_shard_kill(
    shard_index: int, spec: list[tuple[str, float]], seed: int = 0
) -> float | None:
    """The kill point planned for one shard, or ``None`` — pure function.

    Returns the fraction of the shard's sub-stream (in ``[0.25, 0.75]``)
    after which the shard SIGKILLs itself.  Drawn from
    ``SeedSequence([seed, shard_index, 2])`` — disjoint from both the
    worker-fault and telemetry variate streams, so enabling shard chaos
    never shifts the other plans.
    """
    if planned_fault(shard_index, spec, seed) != "shard_kill":
        return None
    u = float(
        np.random.default_rng(
            np.random.SeedSequence([seed, shard_index, 2])
        ).random()
    )
    return 0.25 + 0.5 * u


def _event_variates(event_index: int, seed: int) -> "np.ndarray":
    """Three auxiliary uniforms for one event (delay, field, value picks).

    Drawn from ``SeedSequence([seed, event_index, 1])`` — disjoint from
    the :func:`planned_fault` stream, so adding telemetry chaos never
    shifts the worker fault plan (and vice versa).
    """
    return np.random.default_rng(
        np.random.SeedSequence([seed, event_index, 1])
    ).random(3)


def garble_event(event: dict, event_index: int, seed: int = 0) -> dict:
    """A copy of ``event`` with one counter field corrupted — pure function.

    The target field and corruption value are deterministic in
    ``(seed, event_index)``.  Keys (``drive_id``/``age_days``) are never
    touched, so the garbled event remains addressable for refetch-based
    healing.
    """
    u = _event_variates(event_index, seed)
    fields = [f for f in GARBLE_FIELDS if f in event]
    if not fields:
        return dict(event)
    field = fields[int(u[1] * len(fields)) % len(fields)]
    value = _GARBLE_VALUES[int(u[2] * len(_GARBLE_VALUES)) % len(_GARBLE_VALUES)]
    out = dict(event)
    out[field] = value
    return out


def chaos_telemetry_events(
    events, spec: list[tuple[str, float]], seed: int = 0
):
    """Perturb an event stream with the telemetry fault plan — pure function.

    Yields the events of ``events`` with, per original event index,
    the planned fault applied: duplicates emitted back to back, reordered
    events delayed 1-4 arrivals, late events delayed 16-48 arrivals, and
    garbled events corrupted in one counter field.  The output sequence
    depends only on the input sequence, ``spec``, and ``seed`` — replays
    of the same trace under the same plan are identical, which is what
    lets the chaos drill assert heal-to-bit-identity.

    ``spec`` accepts either the ``[(mode, rate), ...]`` pairs of
    :func:`parse_chaos_spec` or a ``{mode: rate}`` mapping.
    """
    if isinstance(spec, dict):
        spec = list(spec.items())
    if not spec:
        yield from events
        return
    held: list[tuple[int, int, dict]] = []  # (release_at, original_index, event)

    def release(now: int):
        while held and held[0][0] <= now:
            yield held.pop(0)[2]

    for i, event in enumerate(events):
        yield from release(i)
        mode = planned_fault(i, spec, seed)
        if mode == "duplicate":
            yield event
            yield dict(event)
        elif mode in ("reorder", "late"):
            u = _event_variates(i, seed)
            if mode == "reorder":
                delay = 1 + int(u[0] * 4)
            else:
                delay = 16 + int(u[0] * 33)
            held.append((i + delay, i, event))
            held.sort(key=lambda h: (h[0], h[1]))
        elif mode == "garble":
            yield garble_event(event, i, seed)
        else:
            yield event
    held.sort(key=lambda h: (h[0], h[1]))
    for _, _, event in held:
        yield event
