"""repro.resilience — supervised execution for the parallel layer.

Wraps :mod:`repro.parallel` with per-task deadlines, deterministic
retries, poison-task quarantine, a pool-level circuit breaker, and
graceful SIGTERM/SIGINT draining.  See DESIGN.md §12.
"""

from .chaos import (
    CHAOS_MODES,
    ENV_CHAOS,
    ENV_CHAOS_HANG,
    ENV_CHAOS_SEED,
    GARBLE_FIELDS,
    SHARD_MODES,
    TELEMETRY_MODES,
    ChaosError,
    chaos_telemetry_events,
    garble_event,
    parse_chaos_spec,
    planned_fault,
    planned_shard_kill,
    shard_spec_from_env,
    telemetry_spec_from_env,
)
from .shutdown import EXIT_INTERRUPTED, ShutdownRequested, graceful_shutdown
from .supervisor import (
    FailureReport,
    PoisonTask,
    QuarantinedRunError,
    SupervisionLog,
    SupervisorPolicy,
    TaskFailure,
    TaskTimeout,
    force_fail,
    supervised_iter_tasks,
)

__all__ = [
    "SupervisorPolicy",
    "SupervisionLog",
    "FailureReport",
    "TaskFailure",
    "TaskTimeout",
    "PoisonTask",
    "QuarantinedRunError",
    "supervised_iter_tasks",
    "force_fail",
    "ShutdownRequested",
    "graceful_shutdown",
    "EXIT_INTERRUPTED",
    "ChaosError",
    "parse_chaos_spec",
    "planned_fault",
    "CHAOS_MODES",
    "TELEMETRY_MODES",
    "SHARD_MODES",
    "GARBLE_FIELDS",
    "chaos_telemetry_events",
    "garble_event",
    "telemetry_spec_from_env",
    "shard_spec_from_env",
    "planned_shard_kill",
    "ENV_CHAOS",
    "ENV_CHAOS_SEED",
    "ENV_CHAOS_HANG",
]
