"""Random forest: bagged CART trees with feature subsampling.

The paper's best predictor (Table 6, Figures 12-16).  Each tree is fit on a
bootstrap resample with ``sqrt(d)`` features considered per split; the
ensemble probability is the mean of tree leaf frequencies, and feature
importances are the mean of per-tree impurity importances (Section 5.4).
"""

from __future__ import annotations

import weakref

import numpy as np

from .base import BinaryClassifier, check_X, check_Xy
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]

#: Rows evaluated per batched pass; bounds peak memory to a handful of
#: ``n_trees x chunk`` temporaries instead of ``n_trees x n_rows``, and
#: keeps the traversal working set inside the cache hierarchy (larger
#: chunks measurably thrash).
_PREDICT_CHUNK_ROWS = 2048


class _FlatForest:
    """All trees of an ensemble packed into flat structure-of-arrays.

    Nodes are renumbered breadth-first with each internal node's children
    adjacent (``right == left + 1``), so one traversal step for every
    (row, tree) pair is ``idx = child[idx] + (x > threshold[idx])``.
    Leaves self-loop: their threshold is ``+inf`` (the comparison is always
    False) and their child slot points back at themselves, so finished rows
    idle in place while deeper rows keep stepping.

    Threshold and child index are packed into one complex128 record
    (real = threshold, imag = child index, exact for any node count below
    2**53) so each step costs one 16-byte node gather instead of two.

    The traversal state is laid out ``(n_trees, chunk_rows)`` with trees
    sorted deepest-first: a tree of depth ``k`` has every row on a leaf
    after ``k`` steps, so step ``s`` only touches the contiguous prefix of
    trees whose depth exceeds ``s``.  Shallow trees drop out of the hot
    loop early instead of self-looping to the ensemble's maximum depth.
    """

    __slots__ = (
        "feature",
        "nodes",
        "value",
        "roots",
        "depth",
        "active_per_step",
        "accum_order",
    )

    def __init__(self, trees: list[DecisionTreeClassifier]):
        depths = np.asarray([t.max_depth_ for t in trees], dtype=np.int64)
        order = np.argsort(-depths, kind="stable")
        sorted_depths = depths[order]

        feats, thrs, childs, vals, roots = [], [], [], [], []
        base = 0
        for tree_pos in order:
            tree = trees[tree_pos]
            f, left, right = tree.feature_, tree.left_, tree.right_
            n = f.shape[0]
            # Breadth-first renumbering with sibling-adjacent children.
            bfs = np.empty(n, dtype=np.int64)
            bfs[0] = 0
            count = 1
            pos = 0
            while pos < count:
                old = bfs[pos]
                if f[old] >= 0:
                    bfs[count] = left[old]
                    bfs[count + 1] = right[old]
                    count += 2
                pos += 1
            new_id = np.empty(n, dtype=np.int64)
            new_id[bfs] = np.arange(n)

            nf = f[bfs]
            leaf = nf < 0
            nt = tree.threshold_[bfs].copy()
            nt[leaf] = np.inf
            # new_id[-1] for leaves is junk but masked out by ``where``.
            nc = np.where(leaf, np.arange(n), new_id[left[bfs]]) + base
            feats.append(np.where(leaf, 0, nf))
            thrs.append(nt)
            childs.append(nc)
            vals.append(tree.value_[bfs])
            roots.append(base)
            base += n
        self.feature = np.concatenate(feats).astype(np.int32)
        self.nodes = np.empty(base, dtype=np.complex128)
        self.nodes.real = np.concatenate(thrs)
        self.nodes.imag = np.concatenate(childs)
        self.value = np.concatenate(vals)
        self.roots = np.asarray(roots, dtype=np.int32)
        self.depth = int(sorted_depths[0]) if len(trees) else 0
        #: Trees still traversing at step s: prefix length of the
        #: deepest-first ordering whose depth exceeds s.
        self.active_per_step = tuple(
            int(np.count_nonzero(sorted_depths > s)) for s in range(self.depth)
        )
        #: Sorted-row position of each original tree: accumulation must
        #: visit trees in *fit* order to keep the float64 sum bit-identical
        #: to the original sequential ``acc += tree.predict_proba(X)`` loop.
        accum = np.empty(len(trees), dtype=np.int64)
        accum[order] = np.arange(len(trees))
        self.accum_order = accum

    def predict_mean(self, X: np.ndarray) -> np.ndarray:
        """Mean leaf frequency across trees, one value per row of ``X``.

        Bit-identical to averaging per-tree ``predict_proba`` calls: the
        traversal is exact integer index arithmetic, leaf values are the
        same float64 entries, and accumulation is per-tree sequential in
        the original fit order (``np.sum`` along the tree axis would
        pairwise-sum and differ in the last ulp).
        """
        n, d = X.shape
        n_trees = self.roots.shape[0]
        Xc = np.ascontiguousarray(X)
        out = np.zeros(n)
        m = min(_PREDICT_CHUNK_ROWS, n)
        # One set of reused traversal buffers per call; ``np.take(...,
        # out=...)`` keeps the hot loop allocation-free.
        idx = np.empty((n_trees, m), dtype=np.int32)
        z = np.empty((n_trees, m), dtype=np.complex128)
        fidx = np.empty((n_trees, m), dtype=np.int32)
        xv = np.empty((n_trees, m), dtype=np.float64)
        cmp_ = np.empty((n_trees, m), dtype=np.bool_)
        vbuf = np.empty(m, dtype=np.float64)
        row_base = np.arange(m, dtype=np.int32) * d
        for lo in range(0, n, _PREDICT_CHUNK_ROWS):
            hi = min(lo + _PREDICT_CHUNK_ROWS, n)
            k = hi - lo
            x_flat = Xc[lo:hi].ravel()
            rb = row_base[:k]
            idx[:, :k] = self.roots[:, None]
            for a in self.active_per_step:
                ik = idx[:a, :k]
                zk = z[:a, :k]
                fk = fidx[:a, :k]
                xk = xv[:a, :k]
                ck = cmp_[:a, :k]
                np.take(self.nodes, ik, out=zk, mode="clip")
                np.take(self.feature, ik, out=fk, mode="clip")
                np.add(fk, rb, out=fk)
                np.take(x_flat, fk, out=xk, mode="clip")
                np.greater(xk, zk.real, out=ck)
                np.add(zk.imag, ck, out=ik, casting="unsafe")
            acc = out[lo:hi]
            vk = vbuf[:k]
            for ti in range(n_trees):
                np.take(self.value, idx[self.accum_order[ti], :k], out=vk, mode="clip")
                acc += vk
        out /= max(n_trees, 1)
        return out


#: Packed-forest cache keyed by ensemble instance.  Kept outside the
#: instances so pickles (model registry digests, snapshots) are unchanged;
#: each process rebuilds the pack lazily on first predict.
_FLAT_CACHE: "weakref.WeakKeyDictionary[RandomForestClassifier, _FlatForest]" = (
    weakref.WeakKeyDictionary()
)


class RandomForestClassifier(BinaryClassifier):
    """Bootstrap-aggregated decision trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf:
        Passed to each tree; ``max_depth`` is the paper's main
        regularization hyperparameter for this model.
    max_features:
        Features considered per split (default ``"sqrt"``, the standard
        choice for classification forests).
    bootstrap:
        Resample the training set per tree (with replacement) when True.
    random_state:
        Seed for the whole ensemble; trees get independent spawned streams.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.trees_: list[DecisionTreeClassifier] = []
        self.feature_importances_: np.ndarray | None = None
        self.n_features_: int | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X, y = check_Xy(X, y)
        n, d = X.shape
        self.n_features_ = d
        seeds = np.random.SeedSequence(self.random_state).spawn(self.n_estimators)
        self.trees_ = []
        importance = np.zeros(d)
        for seq in seeds:
            rng = np.random.default_rng(seq)
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
                Xb, yb = X[idx], y[idx]
                if yb.min() == yb.max():
                    # Degenerate resample (possible on tiny training sets):
                    # fall back to the full sample so the tree stays valid.
                    Xb, yb = X, y
            else:
                Xb, yb = X, y
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(Xb, yb)
            self.trees_.append(tree)
            importance += tree.feature_importances_
        importance /= self.n_estimators
        total = importance.sum()
        self.feature_importances_ = importance / total if total > 0 else importance
        _FLAT_CACHE.pop(self, None)  # refit invalidates the packed form
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("RandomForestClassifier used before fit")
        X = check_X(X)
        if X.shape[1] != self.n_features_:
            raise ValueError("feature-count mismatch with fitted tree")
        flat = _FLAT_CACHE.get(self)
        if flat is None:
            flat = _FlatForest(self.trees_)
            _FLAT_CACHE[self] = flat
        return flat.predict_mean(X)
