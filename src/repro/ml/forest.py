"""Random forest: bagged CART trees with feature subsampling.

The paper's best predictor (Table 6, Figures 12-16).  Each tree is fit on a
bootstrap resample with ``sqrt(d)`` features considered per split; the
ensemble probability is the mean of tree leaf frequencies, and feature
importances are the mean of per-tree impurity importances (Section 5.4).
"""

from __future__ import annotations

import numpy as np

from .base import BinaryClassifier, check_X, check_Xy
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(BinaryClassifier):
    """Bootstrap-aggregated decision trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf:
        Passed to each tree; ``max_depth`` is the paper's main
        regularization hyperparameter for this model.
    max_features:
        Features considered per split (default ``"sqrt"``, the standard
        choice for classification forests).
    bootstrap:
        Resample the training set per tree (with replacement) when True.
    random_state:
        Seed for the whole ensemble; trees get independent spawned streams.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = "sqrt",
        bootstrap: bool = True,
        random_state: int | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.trees_: list[DecisionTreeClassifier] = []
        self.feature_importances_: np.ndarray | None = None
        self.n_features_: int | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X, y = check_Xy(X, y)
        n, d = X.shape
        self.n_features_ = d
        seeds = np.random.SeedSequence(self.random_state).spawn(self.n_estimators)
        self.trees_ = []
        importance = np.zeros(d)
        for seq in seeds:
            rng = np.random.default_rng(seq)
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
                Xb, yb = X[idx], y[idx]
                if yb.min() == yb.max():
                    # Degenerate resample (possible on tiny training sets):
                    # fall back to the full sample so the tree stays valid.
                    Xb, yb = X, y
            else:
                Xb, yb = X, y
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(Xb, yb)
            self.trees_.append(tree)
            importance += tree.feature_importances_
        importance /= self.n_estimators
        total = importance.sum()
        self.feature_importances_ = importance / total if total > 0 else importance
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("RandomForestClassifier used before fit")
        X = check_X(X)
        acc = np.zeros(X.shape[0])
        for tree in self.trees_:
            acc += tree.predict_proba(X)
        return acc / len(self.trees_)
