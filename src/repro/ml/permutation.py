"""Model-agnostic permutation feature importance.

Impurity importances (the paper's Figure 16 tool) are biased toward
high-cardinality continuous features; permutation importance — the AUC drop
when one feature's values are shuffled on held-out data — is the standard
cross-check.  ``repro.core.interpret`` reports can be built from either.
"""

from __future__ import annotations

import numpy as np

from .base import BinaryClassifier
from .metrics import roc_auc_score

__all__ = ["permutation_importance"]


def permutation_importance(
    model: BinaryClassifier,
    X: np.ndarray,
    y: np.ndarray,
    n_repeats: int = 5,
    seed: int | None = 0,
    max_rows: int | None = 50_000,
) -> np.ndarray:
    """Mean AUC drop per feature under value shuffling.

    Parameters
    ----------
    model:
        A fitted classifier.
    X, y:
        Held-out evaluation data (using training data rewards memorized
        features).
    n_repeats:
        Shuffles averaged per feature.
    max_rows:
        Random row subsample cap (permutation importance is O(d * repeats)
        full predictions; trace-scale matrices need the cap).

    Returns
    -------
    Array of length ``n_features``; larger = more important.  Values can be
    slightly negative for useless features (noise).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    rng = np.random.default_rng(seed)
    if max_rows is not None and X.shape[0] > max_rows:
        # Keep every positive (they are rare and carry the signal).
        pos = np.flatnonzero(y == 1)
        neg = np.flatnonzero(y == 0)
        take_neg = rng.choice(neg, size=max(max_rows - len(pos), 1), replace=False)
        rows = np.sort(np.concatenate((pos, take_neg)))
        X, y = X[rows], y[rows]
    base = roc_auc_score(y, model.predict_proba(X))
    n, d = X.shape
    out = np.zeros(d)
    work = X.copy()
    for j in range(d):
        saved = work[:, j].copy()
        drop = 0.0
        for _ in range(n_repeats):
            work[:, j] = saved[rng.permutation(n)]
            drop += base - roc_auc_score(y, model.predict_proba(work))
        work[:, j] = saved
        out[j] = drop / n_repeats
    return out
