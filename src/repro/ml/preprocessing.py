"""Feature preprocessing: standardization and log compression.

Error counters in the trace are heavy-tailed (daily UE counts span seven
orders of magnitude, Figure 11), so distance- and margin-based classifiers
need their inputs standardized; :class:`Log1pTransformer` additionally
compresses the tails.  Tree models consume raw features.
"""

from __future__ import annotations

import numpy as np

from .base import check_X

__all__ = ["StandardScaler", "Log1pTransformer"]


class StandardScaler:
    """Per-feature zero-mean unit-variance scaling.

    Constant features are left centred but unscaled (divisor forced to 1),
    so downstream solvers never see NaNs.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = check_X(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler used before fit")
        X = check_X(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError("feature-count mismatch with fitted scaler")
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class Log1pTransformer:
    """``sign(x) * log1p(|x|)`` compression for heavy-tailed counters.

    Stateless (fit is a no-op) but keeps the fit/transform interface so it
    can be dropped into the same pipeline slots as the scaler.
    """

    def fit(self, X: np.ndarray) -> "Log1pTransformer":
        check_X(X)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        X = check_X(X)
        return np.sign(X) * np.log1p(np.abs(X))

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
