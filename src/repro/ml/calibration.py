"""Probability calibration diagnostics: reliability curves and Brier score.

ROC AUC (the paper's metric) measures *ranking* quality only.  Deployment
decisions — the conservative thresholds of Section 5.3, the cost-optimal
operating points of :mod:`repro.core.policy` — additionally need the
predicted probabilities to *mean something*.  This module provides the
standard diagnostics: binned reliability curves, expected calibration
error, and the Brier score with its calibration/refinement decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ReliabilityCurve", "reliability_curve", "brier_score", "expected_calibration_error"]


def _check(y_true: np.ndarray, y_prob: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_prob = np.asarray(y_prob, dtype=np.float64).ravel()
    if y_true.shape != y_prob.shape:
        raise ValueError("y_true and y_prob must align")
    if y_true.size == 0:
        raise ValueError("empty input")
    if np.any((y_prob < 0) | (y_prob > 1)):
        raise ValueError("y_prob must lie in [0, 1]")
    if not np.all(np.isin(np.unique(y_true), (0.0, 1.0))):
        raise ValueError("y_true must be binary 0/1")
    return y_true, y_prob


@dataclass(frozen=True)
class ReliabilityCurve:
    """Binned predicted-vs-observed frequencies.

    Attributes
    ----------
    bin_edges:
        Probability bin edges, length ``k + 1``.
    mean_predicted:
        Mean predicted probability per bin (``nan`` for empty bins).
    observed_frequency:
        Empirical positive rate per bin (``nan`` for empty bins).
    counts:
        Samples per bin.
    """

    bin_edges: np.ndarray
    mean_predicted: np.ndarray
    observed_frequency: np.ndarray
    counts: np.ndarray

    def max_gap(self) -> float:
        """Largest |predicted - observed| over non-empty bins."""
        ok = self.counts > 0
        if not np.any(ok):
            return float("nan")
        return float(
            np.max(np.abs(self.mean_predicted[ok] - self.observed_frequency[ok]))
        )


def reliability_curve(
    y_true: np.ndarray, y_prob: np.ndarray, n_bins: int = 10
) -> ReliabilityCurve:
    """Equal-width reliability curve over ``[0, 1]``."""
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    y_true, y_prob = _check(y_true, y_prob)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bin_id = np.clip(np.searchsorted(edges, y_prob, side="right") - 1, 0, n_bins - 1)
    counts = np.bincount(bin_id, minlength=n_bins)
    sum_p = np.bincount(bin_id, weights=y_prob, minlength=n_bins)
    sum_y = np.bincount(bin_id, weights=y_true, minlength=n_bins)
    with np.errstate(invalid="ignore"):
        mean_p = np.where(counts > 0, sum_p / np.maximum(counts, 1), np.nan)
        freq = np.where(counts > 0, sum_y / np.maximum(counts, 1), np.nan)
    return ReliabilityCurve(
        bin_edges=edges,
        mean_predicted=mean_p,
        observed_frequency=freq,
        counts=counts.astype(np.int64),
    )


def brier_score(y_true: np.ndarray, y_prob: np.ndarray) -> float:
    """Mean squared error of the probability forecast."""
    y_true, y_prob = _check(y_true, y_prob)
    return float(np.mean((y_prob - y_true) ** 2))


def expected_calibration_error(
    y_true: np.ndarray, y_prob: np.ndarray, n_bins: int = 10
) -> float:
    """Count-weighted mean |predicted - observed| over probability bins."""
    curve = reliability_curve(y_true, y_prob, n_bins=n_bins)
    ok = curve.counts > 0
    if not np.any(ok):
        return float("nan")
    weights = curve.counts[ok] / curve.counts.sum()
    gaps = np.abs(curve.mean_predicted[ok] - curve.observed_frequency[ok])
    return float(np.sum(weights * gaps))
