"""From-scratch machine-learning substrate.

scikit-learn is unavailable in this environment, so the six classifiers the
paper compares (Table 6) — logistic regression, k-NN, SVM, neural network,
decision tree, random forest — plus metrics, preprocessing and grouped
cross-validation are implemented here on plain NumPy.  Each algorithm
follows its canonical formulation and is unit/property-tested in
``tests/ml``.
"""

from .base import BinaryClassifier, check_X, check_Xy
from .boosting import GradientBoostingClassifier
from .calibration import (
    ReliabilityCurve,
    brier_score,
    expected_calibration_error,
    reliability_curve,
)
from .forest import RandomForestClassifier
from .linear import LogisticRegression, sigmoid
from .metrics import (
    ConfusionCounts,
    confusion_at_threshold,
    f1_score,
    false_positive_rate,
    precision_score,
    roc_auc_score,
    roc_curve,
    true_positive_rate,
)
from .model_selection import (
    CVResult,
    GridSearchResult,
    cross_validate_auc,
    grid_search,
    parameter_grid,
)
from .naive_bayes import GaussianNB
from .neighbors import KNeighborsClassifier
from .permutation import permutation_importance
from .neural import MLPClassifier
from .pr import average_precision_score, precision_recall_curve
from .preprocessing import Log1pTransformer, StandardScaler
from .svm import KernelSVM, LinearSVM, RBFSampler
from .tree import DecisionTreeClassifier

__all__ = [
    "BinaryClassifier",
    "check_X",
    "check_Xy",
    "GradientBoostingClassifier",
    "ReliabilityCurve",
    "brier_score",
    "expected_calibration_error",
    "reliability_curve",
    "average_precision_score",
    "precision_recall_curve",
    "RandomForestClassifier",
    "LogisticRegression",
    "sigmoid",
    "ConfusionCounts",
    "confusion_at_threshold",
    "f1_score",
    "false_positive_rate",
    "precision_score",
    "roc_auc_score",
    "roc_curve",
    "true_positive_rate",
    "CVResult",
    "GridSearchResult",
    "cross_validate_auc",
    "grid_search",
    "parameter_grid",
    "GaussianNB",
    "KNeighborsClassifier",
    "permutation_importance",
    "MLPClassifier",
    "Log1pTransformer",
    "StandardScaler",
    "KernelSVM",
    "LinearSVM",
    "RBFSampler",
    "DecisionTreeClassifier",
]
