"""Cross-validation and hyperparameter search.

Implements the paper's evaluation protocol (Section 5.1):

- folds partition *drive ids*, never rows (drive days are correlated);
- the majority class of each training fold is downsampled to a 1:1 ratio;
- the test fold is left imbalanced and scored with ROC AUC;
- the reported statistic is the mean ± std across folds.

Hyperparameters are chosen by grid search on exactly this cross-validated
AUC, as in the paper.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..data.sampling import downsample_majority
from ..data.split import GroupKFold
from ..obs import metrics, tracing
from .base import BinaryClassifier
from .metrics import roc_auc_score
from .preprocessing import Log1pTransformer, StandardScaler

__all__ = ["CVResult", "cross_validate_auc", "parameter_grid", "GridSearchResult", "grid_search"]


@dataclass(frozen=True)
class CVResult:
    """Cross-validated AUC summary.

    Attributes
    ----------
    fold_aucs:
        Per-fold test AUCs.
    oof_true, oof_score, oof_index:
        Out-of-fold labels / scores / original row indices concatenated
        across test folds — enough to draw pooled ROC curves (Figures 13,
        15) and per-subgroup recall (Figure 14) without refitting.
    """

    fold_aucs: np.ndarray
    oof_true: np.ndarray
    oof_score: np.ndarray
    oof_index: np.ndarray

    @property
    def mean_auc(self) -> float:
        return float(self.fold_aucs.mean())

    @property
    def std_auc(self) -> float:
        return float(self.fold_aucs.std())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"AUC {self.mean_auc:.3f} ± {self.std_auc:.3f}"


def _prepare(
    X: np.ndarray, scale: bool, log1p: bool, fit_rows: np.ndarray
) -> Callable[[np.ndarray], np.ndarray]:
    """Build the per-fold feature transform, fit on the training rows only."""
    steps: list[object] = []
    if log1p:
        steps.append(Log1pTransformer())
    if scale:
        steps.append(StandardScaler())
    if not steps:
        return lambda rows: X[rows]
    Xf = X[fit_rows]
    for step in steps:
        Xf = step.fit_transform(Xf)  # type: ignore[attr-defined]

    def transform(rows: np.ndarray) -> np.ndarray:
        Z = X[rows]
        for step in steps:
            Z = step.transform(Z)  # type: ignore[attr-defined]
        return Z

    return transform


def cross_validate_auc(
    make_model: Callable[[], BinaryClassifier],
    X: np.ndarray,
    y: np.ndarray,
    groups: np.ndarray,
    n_splits: int = 5,
    downsample_ratio: float | None = 1.0,
    scale: bool = False,
    log1p: bool = False,
    seed: int = 0,
) -> CVResult:
    """Drive-grouped K-fold cross-validation with training downsampling.

    Parameters
    ----------
    make_model:
        Zero-argument factory returning a fresh classifier per fold.
    X, y, groups:
        Features, binary labels, per-row drive ids.
    downsample_ratio:
        Negatives kept per positive in the training fold (``None`` = no
        downsampling).
    scale, log1p:
        Optional per-fold feature preprocessing (fit on the *downsampled
        training rows* only — no test leakage).
    seed:
        Seeds the fold assignment and the downsampling.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    groups = np.asarray(groups)
    rng = np.random.default_rng(seed)
    folds = GroupKFold(n_splits=n_splits, shuffle=True, seed=seed)

    aucs: list[float] = []
    oof_true: list[np.ndarray] = []
    oof_score: list[np.ndarray] = []
    oof_index: list[np.ndarray] = []
    for fold_index, (train_idx, test_idx) in enumerate(folds.split(groups)):
        with tracing.span("repro.ml.fold", rows_in=len(train_idx)) as fold_sp:
            if downsample_ratio is not None:
                keep = downsample_majority(
                    y[train_idx], ratio=downsample_ratio, rng=rng
                )
                fit_rows = train_idx[keep]
            else:
                fit_rows = train_idx
            fold_sp.set(
                fold=fold_index,
                n_downsampled=int(len(train_idx) - len(fit_rows)),
            )
            if len(np.unique(y[test_idx])) < 2:
                # A test fold without positives cannot be scored; skip it (can
                # only happen on very small fleets).
                fold_sp.set(skipped=True)
                continue
            transform = _prepare(X, scale, log1p, fit_rows)
            model = make_model()
            with tracing.span("repro.ml.fit", rows_in=len(fit_rows)):
                model.fit(transform(fit_rows), y[fit_rows])
            with tracing.span("repro.ml.predict", rows_in=len(test_idx)):
                scores = model.predict_proba(transform(test_idx))
            metrics.inc("repro_cv_folds_total", help="CV folds scored")
            aucs.append(roc_auc_score(y[test_idx], scores))
            oof_true.append(y[test_idx])
            oof_score.append(scores)
            oof_index.append(test_idx)

    if not aucs:
        raise ValueError("no scoreable folds (every test fold lacked positives)")
    return CVResult(
        fold_aucs=np.asarray(aucs),
        oof_true=np.concatenate(oof_true),
        oof_score=np.concatenate(oof_score),
        oof_index=np.concatenate(oof_index),
    )


def parameter_grid(grid: Mapping[str, Sequence[object]]) -> Iterator[dict[str, object]]:
    """Iterate the Cartesian product of a parameter grid (sorted keys)."""
    keys = sorted(grid)
    for combo in itertools.product(*(grid[k] for k in keys)):
        yield dict(zip(keys, combo))


@dataclass
class GridSearchResult:
    """Outcome of a hyperparameter grid search."""

    best_params: dict[str, object]
    best_result: CVResult
    all_results: list[tuple[dict[str, object], CVResult]] = field(default_factory=list)

    def table(self) -> str:
        """Plain-text ranking of every configuration tried."""
        lines = ["params -> mean AUC ± std"]
        ranked = sorted(
            self.all_results, key=lambda pr: pr[1].mean_auc, reverse=True
        )
        for params, res in ranked:
            lines.append(f"  {params} -> {res.mean_auc:.4f} ± {res.std_auc:.4f}")
        return "\n".join(lines)


def grid_search(
    model_factory: Callable[..., BinaryClassifier],
    grid: Mapping[str, Sequence[object]],
    X: np.ndarray,
    y: np.ndarray,
    groups: np.ndarray,
    n_splits: int = 5,
    downsample_ratio: float | None = 1.0,
    scale: bool = False,
    log1p: bool = False,
    seed: int = 0,
) -> GridSearchResult:
    """Exhaustive search maximizing cross-validated AUC.

    ``model_factory(**params)`` must return a fresh classifier for each
    parameter combination.
    """
    best: tuple[dict[str, object], CVResult] | None = None
    all_results: list[tuple[dict[str, object], CVResult]] = []
    for params in parameter_grid(grid):
        result = cross_validate_auc(
            lambda params=params: model_factory(**params),
            X,
            y,
            groups,
            n_splits=n_splits,
            downsample_ratio=downsample_ratio,
            scale=scale,
            log1p=log1p,
            seed=seed,
        )
        all_results.append((params, result))
        if best is None or result.mean_auc > best[1].mean_auc:
            best = (params, result)
    assert best is not None  # grid is non-empty by construction
    return GridSearchResult(
        best_params=best[0], best_result=best[1], all_results=all_results
    )
