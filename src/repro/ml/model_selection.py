"""Cross-validation and hyperparameter search.

Implements the paper's evaluation protocol (Section 5.1):

- folds partition *drive ids*, never rows (drive days are correlated);
- the majority class of each training fold is downsampled to a 1:1 ratio;
- the test fold is left imbalanced and scored with ROC AUC;
- the reported statistic is the mean ± std across folds.

Hyperparameters are chosen by grid search on exactly this cross-validated
AUC, as in the paper.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..data.sampling import downsample_majority
from ..data.split import GroupKFold
from ..obs import metrics, tracing
from ..parallel import iter_tasks
from .base import BinaryClassifier
from .metrics import roc_auc_score
from .preprocessing import Log1pTransformer, StandardScaler

__all__ = [
    "CVResult",
    "cross_validate_auc",
    "parameter_grid",
    "GridSearchResult",
    "grid_search",
]


@dataclass(frozen=True)
class CVResult:
    """Cross-validated AUC summary.

    Attributes
    ----------
    fold_aucs:
        Per-fold test AUCs.
    oof_true, oof_score, oof_index:
        Out-of-fold labels / scores / original row indices concatenated
        across test folds — enough to draw pooled ROC curves (Figures 13,
        15) and per-subgroup recall (Figure 14) without refitting.
    """

    fold_aucs: np.ndarray
    oof_true: np.ndarray
    oof_score: np.ndarray
    oof_index: np.ndarray

    @property
    def mean_auc(self) -> float:
        return float(self.fold_aucs.mean())

    @property
    def std_auc(self) -> float:
        return float(self.fold_aucs.std())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"AUC {self.mean_auc:.3f} ± {self.std_auc:.3f}"


def _prepare(
    X: np.ndarray, scale: bool, log1p: bool, fit_rows: np.ndarray
) -> Callable[[np.ndarray], np.ndarray]:
    """Build the per-fold feature transform, fit on the training rows only."""
    steps: list[object] = []
    if log1p:
        steps.append(Log1pTransformer())
    if scale:
        steps.append(StandardScaler())
    if not steps:
        return lambda rows: X[rows]
    Xf = X[fit_rows]
    for step in steps:
        Xf = step.fit_transform(Xf)  # type: ignore[attr-defined]

    def transform(rows: np.ndarray) -> np.ndarray:
        Z = X[rows]
        for step in steps:
            Z = step.transform(Z)  # type: ignore[attr-defined]
        return Z

    return transform


def _fold_rng(seed: int, fold_index: int) -> np.random.Generator:
    """Downsampling stream for one fold, independent of every other fold.

    Derived from ``(seed, fold_index)`` rather than threaded through the
    folds sequentially, so a fold's sampling does not depend on which
    folds ran before it — the property that lets folds run on worker
    processes in any order and still match a serial run bit-for-bit.
    """
    return np.random.default_rng(np.random.SeedSequence([seed, fold_index]))


#: Features/labels shared by every fold task, installed once per worker
#: process by :func:`_set_fold_data` (and in-process on the serial path)
#: so the matrix is not re-pickled for every fold.
_fold_data: tuple[np.ndarray, np.ndarray] | None = None


def _set_fold_data(X: np.ndarray, y: np.ndarray) -> None:
    global _fold_data
    _fold_data = (X, y)


def _run_fold(task: tuple) -> tuple | None:
    """Pool task: fit and score one CV fold; ``None`` for a skipped fold."""
    make_model, train_idx, test_idx, fold_index, ratio, scale, log1p, seed = task
    assert _fold_data is not None, "fold data not installed"
    X, y = _fold_data
    with tracing.span("repro.ml.fold", rows_in=len(train_idx)) as fold_sp:
        if ratio is not None:
            keep = downsample_majority(
                y[train_idx], ratio=ratio, rng=_fold_rng(seed, fold_index)
            )
            fit_rows = train_idx[keep]
        else:
            fit_rows = train_idx
        fold_sp.set(
            fold=fold_index,
            n_downsampled=int(len(train_idx) - len(fit_rows)),
        )
        if len(np.unique(y[test_idx])) < 2:
            # A test fold without positives cannot be scored; skip it (can
            # only happen on very small fleets).
            fold_sp.set(skipped=True)
            return None
        transform = _prepare(X, scale, log1p, fit_rows)
        model = make_model()
        with tracing.span("repro.ml.fit", rows_in=len(fit_rows)):
            model.fit(transform(fit_rows), y[fit_rows])
        with tracing.span("repro.ml.predict", rows_in=len(test_idx)):
            scores = model.predict_proba(transform(test_idx))
        metrics.inc("repro_cv_folds_total", help="CV folds scored")
    return (roc_auc_score(y[test_idx], scores), y[test_idx], scores, test_idx)


def cross_validate_auc(
    make_model: Callable[[], BinaryClassifier],
    X: np.ndarray,
    y: np.ndarray,
    groups: np.ndarray | None,
    n_splits: int = 5,
    downsample_ratio: float | None = 1.0,
    scale: bool = False,
    log1p: bool = False,
    seed: int = 0,
    workers: int | None = None,
    splits: list[tuple[np.ndarray, np.ndarray]] | None = None,
    policy: object | None = None,
    supervision: object | None = None,
) -> CVResult:
    """Drive-grouped K-fold cross-validation with training downsampling.

    Parameters
    ----------
    make_model:
        Zero-argument factory returning a fresh classifier per fold.
    X, y, groups:
        Features, binary labels, per-row drive ids.
    downsample_ratio:
        Negatives kept per positive in the training fold (``None`` = no
        downsampling).
    scale, log1p:
        Optional per-fold feature preprocessing (fit on the *downsampled
        training rows* only — no test leakage).
    seed:
        Seeds the fold assignment and the per-fold downsampling streams
        (fold ``i`` draws from ``SeedSequence([seed, i])``).
    workers:
        Worker processes to spread folds across; ``None`` resolves to
        ``$REPRO_WORKERS`` or 1.  Fold results are identical for every
        value (each fold owns its own sampling stream).
    splits:
        Precomputed ``(train_idx, test_idx)`` pairs; when given,
        ``groups``/``n_splits`` are ignored.  Grid search passes the
        same splits to every parameter combination.
    policy, supervision:
        A :class:`repro.resilience.SupervisorPolicy` adds deadlines,
        deterministic retries and quarantine to the fold fan-out.  A
        quarantined fold is simply absent from the aggregate (exactly
        like a fold skipped for lacking positives) and is named in the
        :class:`~repro.resilience.SupervisionLog`.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if splits is None:
        if groups is None:
            raise ValueError("either groups or splits must be provided")
        folds = GroupKFold(n_splits=n_splits, shuffle=True, seed=seed)
        splits = list(folds.split(np.asarray(groups)))

    tasks = [
        (make_model, train_idx, test_idx, i, downsample_ratio, scale, log1p, seed)
        for i, (train_idx, test_idx) in enumerate(splits)
    ]
    aucs: list[float] = []
    oof_true: list[np.ndarray] = []
    oof_score: list[np.ndarray] = []
    oof_index: list[np.ndarray] = []
    for _, out in iter_tasks(
        _run_fold,
        tasks,
        workers=workers,
        label="repro.ml.cv",
        initializer=_set_fold_data,
        initargs=(X, y),
        policy=policy,
        supervision=supervision,
    ):
        if out is None:
            continue
        auc, y_test, scores, test_idx = out
        aucs.append(auc)
        oof_true.append(y_test)
        oof_score.append(scores)
        oof_index.append(test_idx)

    if not aucs:
        raise ValueError("no scoreable folds (every test fold lacked positives)")
    return CVResult(
        fold_aucs=np.asarray(aucs),
        oof_true=np.concatenate(oof_true),
        oof_score=np.concatenate(oof_score),
        oof_index=np.concatenate(oof_index),
    )


def parameter_grid(grid: Mapping[str, Sequence[object]]) -> Iterator[dict[str, object]]:
    """Iterate the Cartesian product of a parameter grid (sorted keys)."""
    keys = sorted(grid)
    for combo in itertools.product(*(grid[k] for k in keys)):
        yield dict(zip(keys, combo))


@dataclass
class GridSearchResult:
    """Outcome of a hyperparameter grid search."""

    best_params: dict[str, object]
    best_result: CVResult
    all_results: list[tuple[dict[str, object], CVResult]] = field(default_factory=list)

    def table(self) -> str:
        """Plain-text ranking of every configuration tried."""
        lines = ["params -> mean AUC ± std"]
        ranked = sorted(
            self.all_results, key=lambda pr: pr[1].mean_auc, reverse=True
        )
        for params, res in ranked:
            lines.append(f"  {params} -> {res.mean_auc:.4f} ± {res.std_auc:.4f}")
        return "\n".join(lines)


class _FactoryCall:
    """Picklable deferred ``factory(**params)`` call (lambdas are not)."""

    def __init__(self, factory: Callable[..., BinaryClassifier], params: dict):
        self.factory = factory
        self.params = params

    def __call__(self) -> BinaryClassifier:
        return self.factory(**self.params)


def _grid_eval(task: tuple) -> CVResult:
    """Pool task: cross-validate one parameter combination.

    Features/labels come from the worker-installed :data:`_fold_data`
    (nested fold-level fan-out is pinned to serial inside workers).
    """
    factory, params, splits, ratio, scale, log1p, seed = task
    assert _fold_data is not None, "fold data not installed"
    X, y = _fold_data
    return cross_validate_auc(
        _FactoryCall(factory, params),
        X,
        y,
        groups=None,
        downsample_ratio=ratio,
        scale=scale,
        log1p=log1p,
        seed=seed,
        splits=splits,
    )


def grid_search(
    model_factory: Callable[..., BinaryClassifier],
    grid: Mapping[str, Sequence[object]],
    X: np.ndarray,
    y: np.ndarray,
    groups: np.ndarray,
    n_splits: int = 5,
    downsample_ratio: float | None = 1.0,
    scale: bool = False,
    log1p: bool = False,
    seed: int = 0,
    workers: int | None = None,
    policy: object | None = None,
    supervision: object | None = None,
) -> GridSearchResult:
    """Exhaustive search maximizing cross-validated AUC.

    ``model_factory(**params)`` must return a fresh classifier for each
    parameter combination.  The GroupKFold split is computed once and
    shared by every combination (it depends only on ``groups`` and
    ``seed``, and recomputing it per combo was pure waste); with
    ``workers > 1`` the combinations fan out across worker processes,
    best-by-mean-AUC with first-wins tie-breaking either way.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    folds = GroupKFold(n_splits=n_splits, shuffle=True, seed=seed)
    splits = list(folds.split(np.asarray(groups)))

    combos = list(parameter_grid(grid))
    tasks = [
        (model_factory, params, splits, downsample_ratio, scale, log1p, seed)
        for params in combos
    ]
    best: tuple[dict[str, object], CVResult] | None = None
    all_results: list[tuple[dict[str, object], CVResult]] = []
    for i, result in iter_tasks(
        _grid_eval,
        tasks,
        workers=workers,
        label="repro.ml.grid",
        initializer=_set_fold_data,
        initargs=(X, y),
        policy=policy,
        supervision=supervision,
    ):
        all_results.append((combos[i], result))
        if best is None or result.mean_auc > best[1].mean_auc:
            best = (combos[i], result)
    assert best is not None  # grid is non-empty by construction
    return GridSearchResult(
        best_params=best[0], best_result=best[1], all_results=all_results
    )
