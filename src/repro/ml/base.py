"""Estimator interface shared by every classifier in :mod:`repro.ml`.

The interface intentionally mirrors the fit/predict-proba convention of the
mainstream Python ML ecosystem so the pipeline code reads familiarly, but
everything underneath is implemented from scratch on NumPy (scikit-learn is
not available in this environment; see DESIGN.md §2).
"""

from __future__ import annotations

import inspect
from abc import ABC, abstractmethod

import numpy as np

__all__ = ["BinaryClassifier", "check_Xy", "check_X"]


def check_X(X: np.ndarray) -> np.ndarray:
    """Validate and standardize a feature matrix to float64 C-order."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if not np.all(np.isfinite(X)):
        raise ValueError("X contains NaN or infinite values")
    return np.ascontiguousarray(X)


def check_Xy(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate a training pair: 2-D finite X, binary y aligned with X."""
    X = check_X(X)
    y = np.asarray(y)
    if y.ndim != 1 or y.shape[0] != X.shape[0]:
        raise ValueError("y must be 1-D and aligned with X")
    uniq = np.unique(y)
    if not np.all(np.isin(uniq, (0, 1))):
        raise ValueError(f"y must be binary 0/1, found values {uniq}")
    if len(uniq) < 2:
        raise ValueError("y must contain both classes")
    return X, y.astype(np.float64)


class BinaryClassifier(ABC):
    """Base class for binary probabilistic classifiers.

    Subclasses implement :meth:`fit` and :meth:`predict_proba`; thresholded
    prediction and parameter introspection are provided here.
    """

    @abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "BinaryClassifier":
        """Fit the classifier; returns ``self``."""

    @abstractmethod
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row, shape ``(n,)``."""

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Binary prediction at a discrimination threshold alpha.

        The paper's deployment discussion (Section 5.3) favours conservative
        thresholds close to 1 to keep false positive rates low.
        """
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must lie in [0, 1]")
        return (self.predict_proba(X) >= threshold).astype(np.int64)

    # ------------------------------------------------------------------ params
    def get_params(self) -> dict[str, object]:
        """Constructor parameters, by introspection of ``__init__``."""
        sig = inspect.signature(type(self).__init__)
        return {
            name: getattr(self, name)
            for name in sig.parameters
            if name != "self" and hasattr(self, name)
        }

    def clone(self, **overrides: object) -> "BinaryClassifier":
        """A fresh, unfitted copy with optionally overridden parameters."""
        params = self.get_params()
        params.update(overrides)
        return type(self)(**params)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({args})"
