"""Feed-forward neural network classifier with Adam and backprop.

Matches the paper's "neural network" entry in Table 6: a small multi-layer
perceptron whose hidden-layer sizes are the tuned hyperparameter.  Binary
cross-entropy loss, ReLU hidden units, sigmoid output, mini-batch Adam, L2
weight decay.  Everything is plain NumPy matrix algebra.
"""

from __future__ import annotations

import numpy as np

from .base import BinaryClassifier, check_X, check_Xy
from .linear import sigmoid

__all__ = ["MLPClassifier"]


class MLPClassifier(BinaryClassifier):
    """Multi-layer perceptron for binary classification.

    Parameters
    ----------
    hidden_sizes:
        Width of each hidden layer, e.g. ``(32, 16)``.
    l2:
        Weight-decay coefficient.
    lr:
        Adam learning rate.
    n_epochs:
        Training passes over the data.
    batch_size:
        Mini-batch size.
    random_state:
        Seed for init and batching.
    """

    def __init__(
        self,
        hidden_sizes: tuple[int, ...] = (32, 16),
        l2: float = 1e-4,
        lr: float = 1e-2,
        n_epochs: int = 60,
        batch_size: int = 64,
        random_state: int | None = 0,
    ):
        if any(h < 1 for h in hidden_sizes):
            raise ValueError("hidden layer sizes must be >= 1")
        self.hidden_sizes = tuple(hidden_sizes)
        self.l2 = l2
        self.lr = lr
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.random_state = random_state
        self._weights: list[np.ndarray] = []
        self._biases: list[np.ndarray] = []
        self.loss_curve_: list[float] = []

    # ------------------------------------------------------------------ fit
    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        X, y = check_Xy(X, y)
        n, d = X.shape
        rng = np.random.default_rng(self.random_state)
        sizes = (d, *self.hidden_sizes, 1)
        # He initialization for ReLU stacks.
        self._weights = [
            rng.normal(0.0, np.sqrt(2.0 / sizes[i]), size=(sizes[i], sizes[i + 1]))
            for i in range(len(sizes) - 1)
        ]
        self._biases = [np.zeros(sizes[i + 1]) for i in range(len(sizes) - 1)]

        m_w = [np.zeros_like(w) for w in self._weights]
        v_w = [np.zeros_like(w) for w in self._weights]
        m_b = [np.zeros_like(b) for b in self._biases]
        v_b = [np.zeros_like(b) for b in self._biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        t = 0
        self.loss_curve_ = []

        for _ in range(self.n_epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb, yb = X[idx], y[idx]
                # Forward pass, caching pre-activation inputs per layer.
                acts = [xb]
                h = xb
                for li in range(len(self._weights) - 1):
                    h = np.maximum(h @ self._weights[li] + self._biases[li], 0.0)
                    acts.append(h)
                logits = (h @ self._weights[-1] + self._biases[-1]).ravel()
                p = sigmoid(logits)
                p_c = np.clip(p, 1e-12, 1.0 - 1e-12)
                epoch_loss += float(
                    -(yb * np.log(p_c) + (1 - yb) * np.log(1 - p_c)).sum()
                )

                # Backward pass.
                delta = ((p - yb) / len(idx))[:, None]
                grads_w: list[np.ndarray] = [np.empty(0)] * len(self._weights)
                grads_b: list[np.ndarray] = [np.empty(0)] * len(self._biases)
                for li in range(len(self._weights) - 1, -1, -1):
                    grads_w[li] = acts[li].T @ delta + self.l2 * self._weights[li]
                    grads_b[li] = delta.sum(axis=0)
                    if li > 0:
                        delta = (delta @ self._weights[li].T) * (acts[li] > 0)

                # Adam update.
                t += 1
                bc1 = 1.0 - beta1**t
                bc2 = 1.0 - beta2**t
                for li in range(len(self._weights)):
                    m_w[li] = beta1 * m_w[li] + (1 - beta1) * grads_w[li]
                    v_w[li] = beta2 * v_w[li] + (1 - beta2) * grads_w[li] ** 2
                    self._weights[li] -= (
                        self.lr * (m_w[li] / bc1) / (np.sqrt(v_w[li] / bc2) + eps)
                    )
                    m_b[li] = beta1 * m_b[li] + (1 - beta1) * grads_b[li]
                    v_b[li] = beta2 * v_b[li] + (1 - beta2) * grads_b[li] ** 2
                    self._biases[li] -= (
                        self.lr * (m_b[li] / bc1) / (np.sqrt(v_b[li] / bc2) + eps)
                    )
            self.loss_curve_.append(epoch_loss / n)
        return self

    # ------------------------------------------------------------------ predict
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self._weights:
            raise RuntimeError("MLPClassifier used before fit")
        X = check_X(X)
        if X.shape[1] != self._weights[0].shape[0]:
            raise ValueError("feature-count mismatch with fitted model")
        h = X
        for li in range(len(self._weights) - 1):
            h = np.maximum(h @ self._weights[li] + self._biases[li], 0.0)
        logits = (h @ self._weights[-1] + self._biases[-1]).ravel()
        return sigmoid(logits)
