"""Classification metrics: ROC analysis and confusion statistics.

The paper evaluates every predictor with the ROC AUC because it is
insensitive to the extreme class imbalance of the trace (one failure per
~10,000 drive-days, Section 5.1).  The implementations here are exact:
:func:`roc_curve` sweeps all distinct score thresholds, and
:func:`roc_auc_score` is the tie-corrected rank statistic (equivalent to the
trapezoidal area under that curve, and to the probability a random positive
outranks a random negative).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "roc_curve",
    "roc_auc_score",
    "ConfusionCounts",
    "confusion_at_threshold",
    "true_positive_rate",
    "false_positive_rate",
    "precision_score",
    "f1_score",
]


def _check_binary(y_true: np.ndarray, y_score: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_score = np.asarray(y_score, dtype=np.float64).ravel()
    if y_true.shape != y_score.shape:
        raise ValueError("y_true and y_score must align")
    if y_true.size == 0:
        raise ValueError("empty input")
    uniq = np.unique(y_true)
    if not np.all(np.isin(uniq, (0.0, 1.0))):
        raise ValueError("y_true must be binary 0/1")
    return y_true, y_score


def roc_curve(
    y_true: np.ndarray, y_score: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full ROC curve.

    Returns
    -------
    fpr, tpr:
        Curve points from (0, 0) to (1, 1), one per distinct threshold.
    thresholds:
        Score threshold at each point; the first is ``+inf`` (predict
        nothing positive).
    """
    y_true, y_score = _check_binary(y_true, y_score)
    n_pos = float(y_true.sum())
    n_neg = float(y_true.size - n_pos)
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_curve requires both classes present")
    order = np.argsort(-y_score, kind="stable")
    scores = y_score[order]
    labels = y_true[order]
    # Collapse ties: curve points only where the score value changes.
    distinct = np.concatenate((np.flatnonzero(scores[1:] != scores[:-1]), [scores.size - 1]))
    tp = np.cumsum(labels)[distinct]
    fp = (distinct + 1) - tp
    tpr = np.concatenate(([0.0], tp / n_pos))
    fpr = np.concatenate(([0.0], fp / n_neg))
    thresholds = np.concatenate(([np.inf], scores[distinct]))
    return fpr, tpr, thresholds


def roc_auc_score(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Tie-corrected ROC AUC via the rank-sum (Mann-Whitney) statistic.

    Equals the trapezoidal area under :func:`roc_curve`, with ties between
    positive and negative scores counted as half.
    """
    y_true, y_score = _check_binary(y_true, y_score)
    n_pos = int(y_true.sum())
    n_neg = y_true.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc_score requires both classes present")
    # Mid-ranks of the scores (average over ties).
    order = np.argsort(y_score, kind="stable")
    sorted_scores = y_score[order]
    boundary = np.concatenate(([True], sorted_scores[1:] != sorted_scores[:-1]))
    block_id = np.cumsum(boundary) - 1
    starts = np.flatnonzero(boundary)
    ends = np.concatenate((starts[1:], [y_score.size]))
    block_rank = (starts + 1 + ends) / 2.0
    ranks = np.empty(y_score.size)
    ranks[order] = block_rank[block_id]
    rank_sum_pos = ranks[y_true == 1].sum()
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


@dataclass(frozen=True)
class ConfusionCounts:
    """Confusion-matrix counts at a fixed threshold."""

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def tpr(self) -> float:
        """True positive rate (recall); ``nan`` with no positives."""
        d = self.tp + self.fn
        return self.tp / d if d else float("nan")

    @property
    def fpr(self) -> float:
        """False positive rate; ``nan`` with no negatives."""
        d = self.fp + self.tn
        return self.fp / d if d else float("nan")

    @property
    def fnr(self) -> float:
        """False negative rate = 1 - TPR (the paper compares via this)."""
        t = self.tpr
        return float("nan") if np.isnan(t) else 1.0 - t

    @property
    def precision(self) -> float:
        d = self.tp + self.fp
        return self.tp / d if d else float("nan")


def confusion_at_threshold(
    y_true: np.ndarray, y_score: np.ndarray, threshold: float
) -> ConfusionCounts:
    """Confusion counts of the thresholded classifier ``score >= alpha``."""
    y_true, y_score = _check_binary(y_true, y_score)
    pred = y_score >= threshold
    pos = y_true == 1
    tp = int(np.count_nonzero(pred & pos))
    fp = int(np.count_nonzero(pred & ~pos))
    fn = int(np.count_nonzero(~pred & pos))
    tn = int(np.count_nonzero(~pred & ~pos))
    return ConfusionCounts(tp=tp, fp=fp, tn=tn, fn=fn)


def true_positive_rate(y_true: np.ndarray, y_score: np.ndarray, threshold: float) -> float:
    """Recall of the thresholded classifier."""
    return confusion_at_threshold(y_true, y_score, threshold).tpr


def false_positive_rate(y_true: np.ndarray, y_score: np.ndarray, threshold: float) -> float:
    """False positive rate of the thresholded classifier."""
    return confusion_at_threshold(y_true, y_score, threshold).fpr


def precision_score(y_true: np.ndarray, y_score: np.ndarray, threshold: float) -> float:
    """Precision of the thresholded classifier."""
    return confusion_at_threshold(y_true, y_score, threshold).precision


def f1_score(y_true: np.ndarray, y_score: np.ndarray, threshold: float) -> float:
    """F1 of the thresholded classifier (``nan`` if undefined)."""
    c = confusion_at_threshold(y_true, y_score, threshold)
    p, r = c.precision, c.tpr
    if np.isnan(p) or np.isnan(r) or (p + r) == 0:
        return float("nan")
    return 2.0 * p * r / (p + r)
