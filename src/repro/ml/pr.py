"""Precision-recall analysis for heavily imbalanced evaluation.

The paper reports ROC curves, which are prevalence-independent; operators
planning replacement budgets also care about *precision* — of the drives
flagged today, how many will actually fail?  With one failure per ~10,000
drive-days, precision tells a very different story from FPR, so the
precision-recall curve and average precision are provided alongside.
"""

from __future__ import annotations

import numpy as np

__all__ = ["precision_recall_curve", "average_precision_score"]


def _check(y_true: np.ndarray, y_score: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_score = np.asarray(y_score, dtype=np.float64).ravel()
    if y_true.shape != y_score.shape:
        raise ValueError("y_true and y_score must align")
    if y_true.size == 0 or y_true.sum() == 0:
        raise ValueError("need at least one positive sample")
    if not np.all(np.isin(np.unique(y_true), (0.0, 1.0))):
        raise ValueError("y_true must be binary 0/1")
    return y_true, y_score


def precision_recall_curve(
    y_true: np.ndarray, y_score: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision and recall at every distinct score threshold.

    Returns
    -------
    precision, recall:
        Aligned arrays; recall is nondecreasing along the sweep from the
        strictest threshold to the loosest, ending at recall 1.  A final
        (precision=1, recall=0) anchor point is appended, matching common
        convention.
    thresholds:
        Score cut for each point (without the anchor).
    """
    y_true, y_score = _check(y_true, y_score)
    order = np.argsort(-y_score, kind="stable")
    scores = y_score[order]
    labels = y_true[order]
    distinct = np.concatenate(
        (np.flatnonzero(scores[1:] != scores[:-1]), [scores.size - 1])
    )
    tp = np.cumsum(labels)[distinct]
    flagged = distinct + 1.0
    precision = tp / flagged
    recall = tp / y_true.sum()
    precision = np.concatenate((precision[::-1], [1.0]))
    recall = np.concatenate((recall[::-1], [0.0]))
    thresholds = scores[distinct][::-1]
    return precision, recall, thresholds


def average_precision_score(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Area under the precision-recall curve (step-wise AP definition)."""
    precision, recall, _ = precision_recall_curve(y_true, y_score)
    # Points are ordered by decreasing recall after the flip; integrate
    # sum (r_i - r_{i+1}) * p_i over the sweep.
    return float(np.sum(np.diff(recall[::-1]) * precision[::-1][1:]))
