"""Ridge-regularized logistic regression, fit by Newton-IRLS.

The paper's baseline classifier (Table 6); its regularization strength is
the tuned hyperparameter.  IRLS converges in a handful of iterations on the
small (downsampled) training sets used here; a damped step plus an L2 ridge
keeps the Hessian well-conditioned even with separable data.
"""

from __future__ import annotations

import numpy as np

from .base import BinaryClassifier, check_X, check_Xy

__all__ = ["LogisticRegression", "sigmoid"]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically-stable logistic function."""
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression(BinaryClassifier):
    """Binary logistic regression with L2 (ridge) penalty.

    Parameters
    ----------
    l2:
        Ridge coefficient on the weights (the intercept is not penalized).
    max_iter:
        Newton iteration cap.
    tol:
        Convergence threshold on the max absolute parameter update.
    """

    def __init__(self, l2: float = 1.0, max_iter: int = 100, tol: float = 1e-8):
        if l2 < 0:
            raise ValueError("l2 must be >= 0")
        self.l2 = l2
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X, y = check_Xy(X, y)
        n, d = X.shape
        Xb = np.hstack((np.ones((n, 1)), X))
        w = np.zeros(d + 1)
        ridge = np.full(d + 1, self.l2, dtype=np.float64)
        ridge[0] = 0.0  # never penalize the intercept
        self.n_iter_ = 0
        for _ in range(self.max_iter):
            z = Xb @ w
            p = sigmoid(z)
            grad = Xb.T @ (p - y) + ridge * w
            s = np.maximum(p * (1.0 - p), 1e-10)
            hess = (Xb * s[:, None]).T @ Xb
            hess[np.diag_indices_from(hess)] += ridge + 1e-10
            try:
                step = np.linalg.solve(hess, grad)
            except np.linalg.LinAlgError:
                # Extremely ill-conditioned Hessian: fall back to a scaled
                # gradient step.
                step = grad / (np.abs(np.diag(hess)) + 1.0)
            # Damp huge Newton steps (separable data pushes |w| -> inf).
            norm = float(np.max(np.abs(step)))
            if norm > 10.0:
                step *= 10.0 / norm
            w -= step
            self.n_iter_ += 1
            if norm < self.tol:
                break
        self.intercept_ = float(w[0])
        self.coef_ = w[1:]
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Linear logit ``X @ w + b``."""
        if self.coef_ is None:
            raise RuntimeError("LogisticRegression used before fit")
        X = check_X(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError("feature-count mismatch with fitted model")
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return sigmoid(self.decision_function(X))
