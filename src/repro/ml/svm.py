"""Support vector machines: Pegasos primal solver + RBF feature maps.

The linear SVM is trained with the Pegasos stochastic sub-gradient method
on the hinge loss; the RBF variant maps inputs through random Fourier
features (Rahimi & Recht) first, which approximates the Gaussian kernel
while keeping training linear-time — appropriate for the paper's setting of
small training sets but very large evaluation sets.

SVM margins are not probabilities, so a one-dimensional logistic (Platt)
calibration is fit on the training margins to produce the ``[0, 1]`` output
the prediction pipeline thresholds (Section 5.1 of the paper).
"""

from __future__ import annotations

import numpy as np

from .base import BinaryClassifier, check_X, check_Xy
from .linear import sigmoid

__all__ = ["LinearSVM", "RBFSampler", "KernelSVM"]


class LinearSVM(BinaryClassifier):
    """L2-regularized hinge-loss linear classifier (Pegasos).

    Parameters
    ----------
    lam:
        Regularization strength (Pegasos lambda); the learning rate is the
        schedule ``1 / (lam * t)``.
    n_epochs:
        Passes over the training set.
    batch_size:
        Mini-batch size of each sub-gradient step.
    random_state:
        Seed for shuffling and batching.
    """

    def __init__(
        self,
        lam: float = 1e-3,
        n_epochs: int = 30,
        batch_size: int = 32,
        random_state: int | None = 0,
    ):
        if lam <= 0:
            raise ValueError("lam must be > 0")
        self.lam = lam
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.random_state = random_state
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self._platt_a: float = 1.0
        self._platt_b: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        X, y01 = check_Xy(X, y)
        y_pm = 2.0 * y01 - 1.0  # hinge loss wants +/-1 labels
        n, d = X.shape
        rng = np.random.default_rng(self.random_state)
        w = np.zeros(d)
        b = 0.0
        t = 0
        for _ in range(self.n_epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                t += 1
                idx = order[start : start + self.batch_size]
                eta = 1.0 / (self.lam * t)
                margins = y_pm[idx] * (X[idx] @ w + b)
                viol = margins < 1.0
                w *= 1.0 - eta * self.lam
                if np.any(viol):
                    rows = idx[viol]
                    scale = eta / len(idx)
                    w += scale * (y_pm[rows] @ X[rows])
                    b += scale * y_pm[rows].sum()
                # Pegasos projection onto the ball of radius 1/sqrt(lam).
                norm = float(np.linalg.norm(w))
                cap = 1.0 / np.sqrt(self.lam)
                if norm > cap:
                    w *= cap / norm
        self.coef_ = w
        self.intercept_ = float(b)
        self._fit_platt(X @ w + b, y01)
        return self

    def _fit_platt(self, margins: np.ndarray, y: np.ndarray) -> None:
        """1-D logistic calibration of margins -> probabilities."""
        a, b = 1.0, 0.0
        for _ in range(50):
            z = a * margins + b
            p = sigmoid(z)
            ga = float(((p - y) * margins).mean())
            gb = float((p - y).mean())
            s = np.maximum(p * (1 - p), 1e-10)
            haa = float((s * margins * margins).mean()) + 1e-9
            hbb = float(s.mean()) + 1e-9
            a -= ga / haa
            b -= gb / hbb
            if max(abs(ga), abs(gb)) < 1e-9:
                break
        self._platt_a, self._platt_b = a, b

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed margin ``X @ w + b``."""
        if self.coef_ is None:
            raise RuntimeError("LinearSVM used before fit")
        X = check_X(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError("feature-count mismatch with fitted model")
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return sigmoid(self._platt_a * self.decision_function(X) + self._platt_b)


class RBFSampler:
    """Random Fourier feature map approximating the Gaussian kernel.

    ``z(x) = sqrt(2/D) * cos(x @ W + c)`` with ``W ~ N(0, gamma * 2 * I)``
    satisfies ``E[z(x).z(y)] ~ exp(-gamma |x - y|^2)``.
    """

    def __init__(self, gamma: float = 0.1, n_components: int = 200, random_state: int | None = 0):
        if gamma <= 0:
            raise ValueError("gamma must be > 0")
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.gamma = gamma
        self.n_components = n_components
        self.random_state = random_state
        self._W: np.ndarray | None = None
        self._c: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "RBFSampler":
        X = check_X(X)
        rng = np.random.default_rng(self.random_state)
        d = X.shape[1]
        self._W = rng.normal(0.0, np.sqrt(2.0 * self.gamma), size=(d, self.n_components))
        self._c = rng.uniform(0.0, 2.0 * np.pi, size=self.n_components)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self._W is None or self._c is None:
            raise RuntimeError("RBFSampler used before fit")
        X = check_X(X)
        proj = X @ self._W + self._c
        return np.sqrt(2.0 / self.n_components) * np.cos(proj)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class KernelSVM(BinaryClassifier):
    """RBF-kernel SVM via random Fourier features + Pegasos.

    Parameters
    ----------
    gamma:
        RBF bandwidth.
    n_components:
        Random feature dimension (accuracy/cost trade-off).
    lam, n_epochs, batch_size, random_state:
        Passed to the underlying :class:`LinearSVM`.
    """

    def __init__(
        self,
        gamma: float = 0.1,
        n_components: int = 200,
        lam: float = 1e-3,
        n_epochs: int = 30,
        batch_size: int = 32,
        random_state: int | None = 0,
    ):
        self.gamma = gamma
        self.n_components = n_components
        self.lam = lam
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.random_state = random_state
        self._sampler: RBFSampler | None = None
        self._svm: LinearSVM | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KernelSVM":
        X, y = check_Xy(X, y)
        self._sampler = RBFSampler(
            gamma=self.gamma,
            n_components=self.n_components,
            random_state=self.random_state,
        )
        Z = self._sampler.fit_transform(X)
        self._svm = LinearSVM(
            lam=self.lam,
            n_epochs=self.n_epochs,
            batch_size=self.batch_size,
            random_state=self.random_state,
        )
        self._svm.fit(Z, y)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._sampler is None or self._svm is None:
            raise RuntimeError("KernelSVM used before fit")
        return self._svm.predict_proba(self._sampler.transform(X))
