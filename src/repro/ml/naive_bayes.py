"""Gaussian Naive Bayes classifier.

The paper's related work contrasts its ML models with earlier *Bayesian
approaches* to disk-failure prediction (Hamerly & Elkan, ICML '01).  This
Gaussian NB implementation provides that reference point: per-class
feature Gaussians with independence assumptions, closed-form fitting, and
log-space scoring (heavy-tailed counters should be log1p-compressed
upstream, as the model zoo's preprocessing flags do).
"""

from __future__ import annotations

import numpy as np

from .base import BinaryClassifier, check_X, check_Xy

__all__ = ["GaussianNB"]


class GaussianNB(BinaryClassifier):
    """Binary Gaussian Naive Bayes.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to every per-class
        variance for numerical stability (sklearn's convention).
    """

    def __init__(self, var_smoothing: float = 1e-9):
        if var_smoothing < 0:
            raise ValueError("var_smoothing must be >= 0")
        self.var_smoothing = var_smoothing
        self.theta_: np.ndarray | None = None  # (2, d) means
        self.var_: np.ndarray | None = None  # (2, d) variances
        self.class_log_prior_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNB":
        X, y = check_Xy(X, y)
        d = X.shape[1]
        self.theta_ = np.empty((2, d))
        self.var_ = np.empty((2, d))
        priors = np.empty(2)
        eps = self.var_smoothing * float(X.var(axis=0).max() or 1.0)
        for c in (0, 1):
            Xc = X[y == c]
            priors[c] = Xc.shape[0] / X.shape[0]
            self.theta_[c] = Xc.mean(axis=0)
            self.var_[c] = Xc.var(axis=0) + eps + 1e-300
        self.class_log_prior_ = np.log(priors)
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        assert self.theta_ is not None and self.var_ is not None
        jll = np.empty((X.shape[0], 2))
        for c in (0, 1):
            diff = X - self.theta_[c]
            jll[:, c] = self.class_log_prior_[c] - 0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_[c]) + diff**2 / self.var_[c],
                axis=1,
            )
        return jll

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.theta_ is None:
            raise RuntimeError("GaussianNB used before fit")
        X = check_X(X)
        if X.shape[1] != self.theta_.shape[1]:
            raise ValueError("feature-count mismatch with fitted model")
        jll = self._joint_log_likelihood(X)
        # Stable softmax over the two classes.
        m = jll.max(axis=1, keepdims=True)
        num = np.exp(jll - m)
        return num[:, 1] / num.sum(axis=1)
