"""k-nearest-neighbour classification.

Training sets are tiny after the paper's 1:1 downsampling (a few hundred to
a few thousand rows), while evaluation sweeps hundreds of thousands of
drive-days — so distances are computed in query *chunks* against the whole
(small) training matrix, keeping peak memory bounded while staying fully
vectorized.
"""

from __future__ import annotations

import numpy as np

from .base import BinaryClassifier, check_X, check_Xy

__all__ = ["KNeighborsClassifier"]


class KNeighborsClassifier(BinaryClassifier):
    """k-NN with Euclidean distance.

    Parameters
    ----------
    n_neighbors:
        Neighbourhood size (the paper's tuned hyperparameter).
    weights:
        ``"uniform"`` (vote share) or ``"distance"`` (inverse-distance
        weighted vote).
    chunk_size:
        Number of query rows per distance block.
    """

    def __init__(
        self,
        n_neighbors: int = 5,
        weights: str = "uniform",
        chunk_size: int = 8192,
    ):
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self.chunk_size = chunk_size
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._sq_norms: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        X, y = check_Xy(X, y)
        if self.n_neighbors > X.shape[0]:
            raise ValueError(
                f"n_neighbors={self.n_neighbors} exceeds training size {X.shape[0]}"
            )
        self._X = X
        self._y = y
        self._sq_norms = np.einsum("ij,ij->i", X, X)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._X is None:
            raise RuntimeError("KNeighborsClassifier used before fit")
        X = check_X(X)
        if X.shape[1] != self._X.shape[1]:
            raise ValueError("feature-count mismatch with fitted model")
        n = X.shape[0]
        k = self.n_neighbors
        out = np.empty(n)
        for start in range(0, n, self.chunk_size):
            q = X[start : start + self.chunk_size]
            # Squared Euclidean distances via the expansion
            # |q - x|^2 = |q|^2 - 2 q.x + |x|^2 (constant |q|^2 dropped:
            # it does not change neighbour ranking).
            d2 = self._sq_norms[None, :] - 2.0 * (q @ self._X.T)
            # argpartition gives the k smallest per row in O(m).
            nn = np.argpartition(d2, kth=k - 1, axis=1)[:, :k]
            labels = self._y[nn]
            if self.weights == "uniform":
                out[start : start + q.shape[0]] = labels.mean(axis=1)
            else:
                rows = np.arange(q.shape[0])[:, None]
                dist = np.sqrt(
                    np.maximum(
                        d2[rows, nn] + np.einsum("ij,ij->i", q, q)[:, None], 0.0
                    )
                )
                w = 1.0 / np.maximum(dist, 1e-12)
                out[start : start + q.shape[0]] = (labels * w).sum(axis=1) / w.sum(
                    axis=1
                )
        return out
